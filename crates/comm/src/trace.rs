//! Event tracing with vector clocks: the substrate of protocol verification.
//!
//! Protocol analysis (deadlock-freedom, tag disjointness, conservation — the
//! passes in `bruck-check`) needs more than `CountingComm`'s send log: it
//! needs *both* sides of every transfer, the matching between them, and a
//! happens-before order so that questions like "could these two messages have
//! been in flight at the same time under some legal schedule?" have answers
//! independent of the interleaving that happened to occur.
//!
//! This module provides that layer:
//!
//! * [`VectorClock`] — the standard logical-clock construction: each rank
//!   ticks its own component on every event and joins the sender's clock on
//!   every receive, so `a.le(b)` decides happens-before for any two events.
//! * [`Event`] / [`EventKind`] — one record per communicator operation.
//! * [`MsgRecord`] — one record per message, linking its send event, its
//!   receive event (if matched), the payload, and the sender's clock.
//! * [`Schedule`] — the complete extracted history: per-rank event logs, the
//!   message table, and each rank's final blocked state.
//! * [`TraceComm`] — a transparent wrapper (like [`crate::CountingComm`])
//!   that records a [`Schedule`] from a *real* run on any backend. All ranks'
//!   wrappers share one [`TraceState`].
//!
//! A `TraceComm` schedule reflects the one interleaving that actually ran and
//! cannot observe a deadlock (the run would simply hang); `bruck-check`'s
//! `ModelComm` produces the same [`Schedule`] type from a single-threaded
//! symbolic execution and can. The analysis passes accept either source.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::{CommResult, Communicator, MsgBuf, Tag};

/// A vector logical clock over `P` ranks.
///
/// Maintained with the classic protocol: tick your own component before
/// stamping an event, join the sender's clock on receive. For two stamped
/// events `a` (on rank `ra`) and `b`, `a` happens-before `b` iff
/// `a.clock.get(ra) <= b.clock.get(ra)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock for `p` ranks.
    pub fn new(p: usize) -> Self {
        VectorClock(vec![0; p])
    }

    /// Advance `rank`'s own component by one.
    pub fn tick(&mut self, rank: usize) {
        self.0[rank] += 1;
    }

    /// Component-wise maximum with `other` (the receive-side join).
    pub fn join(&mut self, other: &VectorClock) {
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `rank`'s component.
    pub fn get(&self, rank: usize) -> u64 {
        self.0.get(rank).copied().unwrap_or(0)
    }

    /// Component-wise `<=` (the happens-before-or-equal partial order).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// What a recorded event did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An eager send; `msg` indexes [`Schedule::messages`].
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: Tag,
        /// Payload bytes.
        len: usize,
        /// Index into the message table.
        msg: usize,
    },
    /// A completed receive; `msg` indexes [`Schedule::messages`].
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: Tag,
        /// Payload bytes.
        len: usize,
        /// Index into the message table.
        msg: usize,
    },
    /// A probe and the answer it returned.
    Probe {
        /// Source rank probed.
        src: usize,
        /// Tag probed.
        tag: Tag,
        /// `Some(len)` if a matching message had arrived.
        found: Option<usize>,
    },
}

/// One recorded communicator operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The operation.
    pub kind: EventKind,
    /// The acting rank's vector clock *after* ticking for this event.
    pub clock: VectorClock,
}

/// One message's life in the schedule.
#[derive(Debug, Clone)]
pub struct MsgRecord {
    /// Sending rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Message tag.
    pub tag: Tag,
    /// The payload (a shared view; cloning it never copies).
    pub payload: MsgBuf,
    /// The sender's clock at the send event.
    pub send_clock: VectorClock,
    /// `(rank, event index)` of the send in [`Schedule::events`].
    pub send_event: (usize, usize),
    /// `(rank, event index)` of the matching receive, if it happened.
    pub recv_event: Option<(usize, usize)>,
}

/// A receive a rank is parked on (schedule extraction only; a traced real run
/// either completes or hangs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedOn {
    /// Source rank of the unmatched receive.
    pub src: usize,
    /// Tag of the unmatched receive.
    pub tag: Tag,
}

/// A complete extracted communication history for one SPMD region.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Number of ranks.
    pub p: usize,
    /// Per-rank event logs, in program order.
    pub events: Vec<Vec<Event>>,
    /// Every message sent in the region, in global send-commit order (FIFO
    /// per `(src, dst, tag)` key by construction).
    pub messages: Vec<MsgRecord>,
    /// Per rank: the receive it was still parked on when extraction stopped
    /// (`None` for ranks that ran to completion). Always all-`None` for
    /// schedules recorded from real runs.
    pub blocked: Vec<Option<BlockedOn>>,
}

impl Schedule {
    /// An empty schedule for `p` ranks.
    pub fn new(p: usize) -> Self {
        Schedule {
            p,
            events: (0..p).map(|_| Vec::new()).collect(),
            messages: Vec::new(),
            blocked: vec![None; p],
        }
    }

    /// Whether the send of `second` could have happened while `first` was
    /// still in flight — i.e. `first`'s receive does **not** happen-before
    /// `second`'s send (or `first` was never received at all).
    ///
    /// This is the vector-clock question behind tag-collision detection: two
    /// same-`(src, dst, tag)` messages with this property are matched purely
    /// by the runtime's non-overtaking guarantee, not by the protocol.
    pub fn concurrent_in_flight(&self, first: usize, second: usize) -> bool {
        let m1 = &self.messages[first];
        let m2 = &self.messages[second];
        let Some((recv_rank, recv_idx)) = m1.recv_event else {
            return true; // never received: still in flight at m2's send
        };
        let recv_clock = &self.events[recv_rank][recv_idx].clock;
        let send_clock = &self.events[m2.send_event.0][m2.send_event.1].clock;
        // recv(m1) → send(m2) iff the receiver's component of the receive
        // stamp is visible in the send stamp.
        send_clock.get(recv_rank) < recv_clock.get(recv_rank)
    }

    /// Indices of messages never matched by a receive.
    pub fn unmatched_messages(&self) -> Vec<usize> {
        (0..self.messages.len()).filter(|&i| self.messages[i].recv_event.is_none()).collect()
    }

    /// Total events across all ranks.
    pub fn event_count(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }
}

/// Shared recording state behind every rank's [`TraceComm`] wrapper.
pub struct TraceState {
    p: usize,
    inner: Mutex<TraceInner>,
}

struct TraceInner {
    clocks: Vec<VectorClock>,
    schedule: Schedule,
    /// Sender clocks (by message id) awaiting their receive, FIFO per key —
    /// mirrors the runtime's own non-overtaking matching.
    inflight: BTreeMap<(usize, usize, Tag), VecDeque<usize>>,
}

impl TraceState {
    /// Fresh shared state for a `p`-rank region.
    pub fn new(p: usize) -> Arc<Self> {
        Arc::new(TraceState {
            p,
            inner: Mutex::new(TraceInner {
                clocks: vec![VectorClock::new(p); p],
                schedule: Schedule::new(p),
                inflight: BTreeMap::new(),
            }),
        })
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Snapshot the recorded schedule (typically after the region completes).
    pub fn schedule(&self) -> Schedule {
        self.lock().schedule.clone()
    }

    fn lock(&self) -> MutexGuard<'_, TraceInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn record_send(&self, src: usize, dst: usize, tag: Tag, payload: &MsgBuf) {
        let mut inner = self.lock();
        inner.clocks[src].tick(src);
        let clock = inner.clocks[src].clone();
        let msg = inner.schedule.messages.len();
        let event_idx = inner.schedule.events[src].len();
        inner.schedule.messages.push(MsgRecord {
            src,
            dst,
            tag,
            payload: payload.clone(),
            send_clock: clock.clone(),
            send_event: (src, event_idx),
            recv_event: None,
        });
        inner.schedule.events[src].push(Event {
            kind: EventKind::Send { dst, tag, len: payload.len(), msg },
            clock,
        });
        inner.inflight.entry((src, dst, tag)).or_default().push_back(msg);
    }

    fn record_recv(&self, dst: usize, src: usize, tag: Tag, len: usize) {
        let mut inner = self.lock();
        let msg = inner
            .inflight
            .get_mut(&(src, dst, tag))
            .and_then(VecDeque::pop_front);
        let Some(msg) = msg else {
            // A receive the tracer never saw the send of (the wrapper was
            // installed mid-conversation, or the peer bypassed its wrapper).
            // Record nothing rather than corrupt the matching.
            return;
        };
        let send_clock = inner.schedule.messages[msg].send_clock.clone();
        inner.clocks[dst].tick(dst);
        inner.clocks[dst].join(&send_clock);
        let clock = inner.clocks[dst].clone();
        let event_idx = inner.schedule.events[dst].len();
        inner.schedule.messages[msg].recv_event = Some((dst, event_idx));
        inner.schedule.events[dst].push(Event {
            kind: EventKind::Recv { src, tag, len, msg },
            clock,
        });
    }

    fn record_probe(&self, rank: usize, src: usize, tag: Tag, found: Option<usize>) {
        let mut inner = self.lock();
        inner.clocks[rank].tick(rank);
        let clock = inner.clocks[rank].clone();
        inner.schedule.events[rank].push(Event { kind: EventKind::Probe { src, tag, found }, clock });
    }
}

/// A transparent wrapper that records every operation of a real run into a
/// shared [`TraceState`]. Construct one per rank over the same state.
pub struct TraceComm<'a, C: Communicator + ?Sized> {
    inner: &'a C,
    state: Arc<TraceState>,
}

impl<'a, C: Communicator + ?Sized> TraceComm<'a, C> {
    /// Wrap `inner`; `state` must be shared by every rank of the region and
    /// sized for `inner.size()` ranks.
    pub fn new(inner: &'a C, state: Arc<TraceState>) -> Self {
        assert_eq!(state.p(), inner.size(), "TraceState sized for a different communicator");
        TraceComm { inner, state }
    }

    /// The shared recording state.
    pub fn state(&self) -> &Arc<TraceState> {
        &self.state
    }
}

impl<C: Communicator + ?Sized> Communicator for TraceComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now(&self) -> std::time::Duration {
        self.inner.now()
    }

    fn sleep(&self, d: std::time::Duration) {
        self.inner.sleep(d)
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        // Record before forwarding so the matching receive (which can only
        // complete after the runtime delivery) always finds the in-flight
        // entry, even under real-thread interleaving.
        self.check_rank(dest)?;
        self.state.record_send(self.rank(), dest, tag, &buf);
        self.inner.send_buf(dest, tag, buf)
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        let got = self.inner.recv_buf(src, tag)?;
        self.state.record_recv(self.rank(), src, tag, got.len());
        Ok(got)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        let n = self.inner.recv_into(src, tag, buf)?;
        // A truncation error returns above without consuming the message, so
        // only successful receives are recorded.
        self.state.record_recv(self.rank(), src, tag, n);
        Ok(n)
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        let found = self.inner.probe(src, tag)?;
        self.state.record_probe(self.rank(), src, tag, found);
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadComm;

    #[test]
    fn clock_ordering_basics() {
        let mut a = VectorClock::new(3);
        a.tick(0);
        let mut b = a.clone();
        b.tick(1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        let mut c = VectorClock::new(3);
        c.tick(2);
        assert!(!a.le(&c) && !c.le(&a), "independent events are concurrent");
        b.join(&c);
        assert!(c.le(&b));
    }

    #[test]
    fn traced_run_matches_sends_to_recvs() {
        let state = TraceState::new(2);
        let st = Arc::clone(&state);
        ThreadComm::run(2, move |comm| {
            let traced = TraceComm::new(comm, Arc::clone(&st));
            if traced.rank() == 0 {
                traced.send(1, 7, &[1, 2, 3]).unwrap();
                traced.send(1, 7, &[4, 5]).unwrap();
            } else {
                assert_eq!(traced.probe(0, 9).unwrap(), None);
                assert_eq!(traced.recv(0, 7).unwrap(), vec![1, 2, 3]);
                assert_eq!(traced.recv(0, 7).unwrap(), vec![4, 5]);
            }
        });
        let schedule = state.schedule();
        assert_eq!(schedule.messages.len(), 2);
        assert!(schedule.unmatched_messages().is_empty());
        // FIFO matching: first send pairs with first recv.
        assert_eq!(schedule.messages[0].payload, vec![1u8, 2, 3]);
        assert_eq!(schedule.messages[0].recv_event, Some((1, 1)));
        assert_eq!(schedule.messages[1].recv_event, Some((1, 2)));
        // Same-key back-to-back sends with no ack in between: the second was
        // sent while the first could still be in flight.
        assert!(schedule.concurrent_in_flight(0, 1));
    }

    #[test]
    fn acknowledged_resend_is_not_concurrent() {
        let state = TraceState::new(2);
        let st = Arc::clone(&state);
        ThreadComm::run(2, move |comm| {
            let traced = TraceComm::new(comm, Arc::clone(&st));
            if traced.rank() == 0 {
                traced.send(1, 7, &[1]).unwrap();
                traced.recv(1, 8).unwrap(); // ack: 1 received the first message
                traced.send(1, 7, &[2]).unwrap();
            } else {
                traced.recv(0, 7).unwrap();
                traced.send(0, 8, &[]).unwrap();
                traced.recv(0, 7).unwrap();
            }
        });
        let schedule = state.schedule();
        // messages: [0→1 tag7 #1, 1→0 tag8 ack, 0→1 tag7 #2] in commit order.
        let tag7: Vec<usize> =
            (0..schedule.messages.len()).filter(|&i| schedule.messages[i].tag == 7).collect();
        assert_eq!(tag7.len(), 2);
        assert!(
            !schedule.concurrent_in_flight(tag7[0], tag7[1]),
            "the ack forces recv(first) to happen-before send(second)"
        );
    }

    #[test]
    fn unmatched_sends_are_visible() {
        let state = TraceState::new(2);
        let st = Arc::clone(&state);
        ThreadComm::run(2, move |comm| {
            let traced = TraceComm::new(comm, Arc::clone(&st));
            if traced.rank() == 0 {
                traced.send(1, 3, &[9]).unwrap();
                traced.send(1, 4, &[8]).unwrap(); // never received
            } else {
                traced.recv(0, 3).unwrap();
            }
        });
        let schedule = state.schedule();
        let unmatched = schedule.unmatched_messages();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(schedule.messages[unmatched[0]].tag, 4);
    }
}
