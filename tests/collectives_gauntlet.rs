//! The differential collective gauntlet (DESIGN.md §16).
//!
//! Every schedule of the collective family — allgatherv (ring / Bruck /
//! PAT), reduce_scatter (pairwise / recursive halving / PAT), allreduce
//! (recursive doubling / reduce_scatter+allgather) — is held to four bars:
//!
//! 1. **Differential**: byte-identical to the naive local reference on
//!    every rank, across ThreadComm, SimComm, and EventComm.
//! 2. **Schedule independence**: byte-identical results over 16 SimComm
//!    schedule seeds.
//! 3. **Conformance**: under `MeteredComm`, per-tag message and byte counts
//!    match `bruck-model`'s closed-form traces *exactly*, logical totals are
//!    fully explained by the trace, and the probe-span timeline matches the
//!    declared phase table.
//! 4. **Honest gate**: a deliberately miscounted model trace must produce a
//!    precise violation — proving the conformance gate can actually fail.

use bruck_comm::{Communicator, EventComm, MeteredComm, Metrics, ReduceOp, SimComm, ThreadComm};
use bruck_core::common::{
    agv_bruck_tag, agv_ring_tag, ar_doubling_tag, ceil_log2, pat_ag_tag, pat_rs_tag,
    rs_halving_tag, AR_FOLD_TAG, AR_UNFOLD_TAG, RS_FOLD_TAG, RS_PAIRWISE_TAG, RS_UNFOLD_TAG,
};
use bruck_core::probe::{self, PhaseEvent};
use bruck_core::{
    allgatherv, allreduce, packed_displs, pattern_byte, pattern_u64, reduce_scatter,
    reference_allgatherv, reference_allreduce, reference_reduce_scatter, AllgathervAlgorithm,
    AllreduceAlgorithm, ReduceScatterAlgorithm,
};
use bruck_model::{
    allgatherv_trace, allreduce_trace, reduce_scatter_trace, AllgathervModel, AllreduceModel,
    CommTrace, RankSample, ReduceScatterModel,
};

/// World sizes covering the degenerate (1), even/odd, power-of-two and
/// non-power-of-two regimes.
const SIZES: [usize; 6] = [1, 2, 3, 5, 8, 12];

const SIM_SEEDS: u64 = 16;

/// Deterministic non-uniform per-rank counts with zeros sprinkled in.
fn gv_counts(p: usize, seed: u64) -> Vec<usize> {
    (0..p)
        .map(|i| {
            let x = (seed.wrapping_mul(31).wrapping_add(i as u64 * 7)) % 13;
            if (i as u64 + seed) % 4 == 0 {
                0
            } else {
                x as usize + 1
            }
        })
        .collect()
}

fn gv_input(r: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| pattern_byte(r, i)).collect()
}

fn rs_input(r: usize, len: usize) -> Vec<u64> {
    (0..len).map(|i| pattern_u64(r, i)).collect()
}

/// The closure each rank runs for one allgatherv cell.
fn gv_cell<C: Communicator + ?Sized>(
    algo: AllgathervAlgorithm,
    comm: &C,
    counts: &[usize],
) -> Vec<u8> {
    let me = comm.rank();
    let displs = packed_displs(counts);
    let input = gv_input(me, counts[me]);
    let mut recvbuf = vec![0u8; counts.iter().sum()];
    allgatherv(algo, comm, &input, &mut recvbuf, counts, &displs).unwrap();
    recvbuf
}

fn rs_cell<C: Communicator + ?Sized>(
    algo: ReduceScatterAlgorithm,
    comm: &C,
    counts: &[usize],
    op: ReduceOp,
) -> Vec<u64> {
    let me = comm.rank();
    let total: usize = counts.iter().sum();
    let input = rs_input(me, total);
    let mut recvbuf = vec![0u64; counts[me]];
    reduce_scatter(algo, comm, &input, &mut recvbuf, counts, op).unwrap();
    recvbuf
}

fn ar_cell<C: Communicator + ?Sized>(
    algo: AllreduceAlgorithm,
    comm: &C,
    n: usize,
    op: ReduceOp,
) -> Vec<u64> {
    let mut buf = rs_input(comm.rank(), n);
    allreduce(algo, comm, &mut buf, op).unwrap();
    buf
}

// ---------------------------------------------------------------------------
// Bar 1: differential vs the local reference, across all three backends.
// ---------------------------------------------------------------------------

#[test]
fn allgatherv_is_byte_identical_across_backends() {
    for p in SIZES {
        let counts = gv_counts(p, 2);
        let want = reference_allgatherv(&(0..p).map(|r| gv_input(r, counts[r])).collect::<Vec<_>>());
        for algo in AllgathervAlgorithm::ALL {
            let c = counts.clone();
            let thread = ThreadComm::run(p, move |comm| gv_cell(algo, comm, &c));
            let c = counts.clone();
            let sim = SimComm::run(p, 1, move |comm| gv_cell(algo, comm, &c)).results;
            let c = counts.clone();
            let event = EventComm::run(p, move |comm| gv_cell(algo, comm, &c));
            for (backend, results) in [("ThreadComm", &thread), ("SimComm", &sim), ("EventComm", &event)] {
                for (r, got) in results.iter().enumerate() {
                    assert_eq!(got, &want, "{} {backend} rank {r} p={p}", algo.name());
                }
            }
        }
    }
}

#[test]
fn reduce_scatter_is_byte_identical_across_backends() {
    for p in SIZES {
        let counts = gv_counts(p, 4);
        let total: usize = counts.iter().sum();
        let inputs: Vec<Vec<u64>> = (0..p).map(|r| rs_input(r, total)).collect();
        for op in ReduceOp::ALL {
            let want = reference_reduce_scatter(&inputs, &counts, op);
            for algo in ReduceScatterAlgorithm::ALL {
                let c = counts.clone();
                let thread = ThreadComm::run(p, move |comm| rs_cell(algo, comm, &c, op));
                let c = counts.clone();
                let sim = SimComm::run(p, 1, move |comm| rs_cell(algo, comm, &c, op)).results;
                let c = counts.clone();
                let event = EventComm::run(p, move |comm| rs_cell(algo, comm, &c, op));
                for (backend, results) in
                    [("ThreadComm", &thread), ("SimComm", &sim), ("EventComm", &event)]
                {
                    for (r, got) in results.iter().enumerate() {
                        assert_eq!(got, &want[r], "{} {backend} rank {r} p={p} {op:?}", algo.name());
                    }
                }
            }
        }
    }
}

#[test]
fn allreduce_is_byte_identical_across_backends() {
    for p in SIZES {
        for n in [0usize, 1, 23] {
            let inputs: Vec<Vec<u64>> = (0..p).map(|r| rs_input(r, n)).collect();
            for op in ReduceOp::ALL {
                let want = reference_allreduce(&inputs, op);
                for algo in AllreduceAlgorithm::ALL {
                    let thread = ThreadComm::run(p, move |comm| ar_cell(algo, comm, n, op));
                    let sim = SimComm::run(p, 1, move |comm| ar_cell(algo, comm, n, op)).results;
                    let event = EventComm::run(p, move |comm| ar_cell(algo, comm, n, op));
                    for (backend, results) in
                        [("ThreadComm", &thread), ("SimComm", &sim), ("EventComm", &event)]
                    {
                        for (r, got) in results.iter().enumerate() {
                            assert_eq!(
                                got, &want,
                                "{} {backend} rank {r} p={p} n={n} {op:?}",
                                algo.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bar 2: schedule independence over SimComm seeds.
// ---------------------------------------------------------------------------

#[test]
fn every_schedule_is_seed_independent_on_simcomm() {
    for p in [5usize, 8] {
        let counts = gv_counts(p, 6);
        let total: usize = counts.iter().sum();
        let gv_want =
            reference_allgatherv(&(0..p).map(|r| gv_input(r, counts[r])).collect::<Vec<_>>());
        let rs_inputs: Vec<Vec<u64>> = (0..p).map(|r| rs_input(r, total)).collect();
        let rs_want = reference_reduce_scatter(&rs_inputs, &counts, ReduceOp::Sum);
        let ar_want =
            reference_allreduce(&(0..p).map(|r| rs_input(r, 19)).collect::<Vec<_>>(), ReduceOp::Sum);
        for seed in 0..SIM_SEEDS {
            for algo in AllgathervAlgorithm::ALL {
                let c = counts.clone();
                let run = SimComm::run(p, seed, move |comm| gv_cell(algo, comm, &c));
                for (r, got) in run.results.iter().enumerate() {
                    assert_eq!(got, &gv_want, "{} seed {seed} rank {r} p={p}", algo.name());
                }
            }
            for algo in ReduceScatterAlgorithm::ALL {
                let c = counts.clone();
                let run = SimComm::run(p, seed, move |comm| rs_cell(algo, comm, &c, ReduceOp::Sum));
                for (r, got) in run.results.iter().enumerate() {
                    assert_eq!(got, &rs_want[r], "{} seed {seed} rank {r} p={p}", algo.name());
                }
            }
            for algo in AllreduceAlgorithm::ALL {
                let run = SimComm::run(p, seed, move |comm| ar_cell(algo, comm, 19, ReduceOp::Sum));
                for (r, got) in run.results.iter().enumerate() {
                    assert_eq!(got, &ar_want, "{} seed {seed} rank {r} p={p}", algo.name());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bar 3: metered conformance against the closed-form model traces.
// ---------------------------------------------------------------------------

/// Compare one rank's metered counters against the model trace — exact
/// message and byte counts per tag, and logical totals fully explained.
fn conformance_violations(rank: usize, metrics: &Metrics, trace: &CommTrace) -> Vec<String> {
    let mut v = metrics.consistency_errors();
    let mut predicted_msgs = 0u64;
    let mut predicted_bytes = 0u64;
    for tag in trace.wire_tags() {
        let Some(want_msgs) = trace.msgs_for_tag(rank, tag) else {
            v.push(format!("rank {rank}: trace does not cover rank for tag {tag:#x}"));
            continue;
        };
        let want_bytes = trace.bytes_for_tag(rank, tag).unwrap_or(0);
        predicted_msgs += want_msgs;
        predicted_bytes += want_bytes;
        let got = metrics.sent_for_tag(tag);
        if got.msgs != want_msgs {
            v.push(format!(
                "rank {rank} tag {tag:#x}: sent {} messages, model predicts {want_msgs}",
                got.msgs
            ));
        }
        if got.bytes != want_bytes {
            v.push(format!(
                "rank {rank} tag {tag:#x}: sent {} bytes, model predicts {want_bytes}",
                got.bytes
            ));
        }
    }
    if metrics.logical.sent_msgs != predicted_msgs {
        v.push(format!(
            "rank {rank}: {} logical messages total, model explains {predicted_msgs}",
            metrics.logical.sent_msgs
        ));
    }
    if metrics.logical.sent_bytes != predicted_bytes {
        v.push(format!(
            "rank {rank}: {} logical bytes total, model explains {predicted_bytes}",
            metrics.logical.sent_bytes
        ));
    }
    v
}

/// Every expected span name exactly `count` times, and nothing else.
fn phase_violations(rank: usize, events: &[PhaseEvent], expected: &[(&str, u64)]) -> Vec<String> {
    let mut v = Vec::new();
    for &(name, count) in expected {
        let got = events.iter().filter(|e| e.name == name).count() as u64;
        if got != count {
            v.push(format!("rank {rank}: phase '{name}' recorded {got} times, expected {count}"));
        }
    }
    let total: u64 = expected.iter().map(|&(_, c)| c).sum();
    if events.len() as u64 != total {
        v.push(format!("rank {rank}: {} phase events, expected {total}", events.len()));
    }
    v
}

fn pow2_core(p: usize) -> usize {
    if p.is_power_of_two() {
        p
    } else {
        p.next_power_of_two() / 2
    }
}

fn nonzero(phases: Vec<(&'static str, u64)>) -> Vec<(&'static str, u64)> {
    phases.into_iter().filter(|&(_, c)| c > 0).collect()
}

fn gv_phases(algo: AllgathervAlgorithm, p: usize) -> Vec<(&'static str, u64)> {
    let lg = u64::from(ceil_log2(p));
    nonzero(match algo {
        AllgathervAlgorithm::Ring => vec![("agv_ring.step", p as u64 - 1)],
        AllgathervAlgorithm::Bruck => vec![("agv_bruck.step", lg)],
        AllgathervAlgorithm::Pat => vec![("pat_ag.step", lg)],
    })
}

/// Halving/doubling phase table — per rank: remainder ranks see only
/// fold + unfold, core ranks see the halving steps (plus fold/unfold when
/// they have a remainder partner).
fn folded_phases(
    names: (&'static str, &'static str, &'static str),
    p: usize,
    me: usize,
) -> Vec<(&'static str, u64)> {
    let (fold, step, unfold) = names;
    let m = pow2_core(p);
    let r = p - m;
    let lg = m.trailing_zeros() as u64;
    if me >= m {
        vec![(fold, 1), (unfold, 1)]
    } else {
        let partnered = u64::from(me < r);
        nonzero(vec![(fold, partnered), (step, lg), (unfold, partnered)])
    }
}

fn rs_phases(algo: ReduceScatterAlgorithm, p: usize, me: usize) -> Vec<(&'static str, u64)> {
    match algo {
        ReduceScatterAlgorithm::Pairwise => nonzero(vec![("rs_pairwise.step", p as u64 - 1)]),
        ReduceScatterAlgorithm::RecursiveHalving => {
            folded_phases(("rs_halving.fold", "rs_halving.step", "rs_halving.unfold"), p, me)
        }
        ReduceScatterAlgorithm::Pat => nonzero(vec![("pat_rs.step", u64::from(ceil_log2(p)))]),
    }
}

fn ar_phases(algo: AllreduceAlgorithm, p: usize, me: usize) -> Vec<(&'static str, u64)> {
    match algo {
        AllreduceAlgorithm::RecursiveDoubling => {
            folded_phases(("ar_doubling.fold", "ar_doubling.step", "ar_doubling.unfold"), p, me)
        }
        AllreduceAlgorithm::ReduceScatterAllgather => {
            let mut v = rs_phases(ReduceScatterAlgorithm::RecursiveHalving, p, me);
            v.extend(gv_phases(AllgathervAlgorithm::Bruck, p));
            v
        }
    }
}

fn assert_conformant(
    name: &str,
    runs: &[(Metrics, Vec<PhaseEvent>)],
    trace: &CommTrace,
    phases: impl Fn(usize) -> Vec<(&'static str, u64)>,
) {
    for (rank, (metrics, events)) in runs.iter().enumerate() {
        let mut v = conformance_violations(rank, metrics, trace);
        v.extend(phase_violations(rank, events, &phases(rank)));
        assert!(v.is_empty(), "{name}: {v:#?}");
    }
}

#[test]
fn allgatherv_conforms_to_model_traces() {
    for p in SIZES {
        let counts = gv_counts(p, 7);
        for (algo, model) in [
            (AllgathervAlgorithm::Ring, AllgathervModel::Ring),
            (AllgathervAlgorithm::Bruck, AllgathervModel::Bruck),
            (AllgathervAlgorithm::Pat, AllgathervModel::Pat),
        ] {
            let trace = allgatherv_trace(model, &counts, &RankSample::all(p));
            let c = counts.clone();
            let runs = ThreadComm::run(p, move |comm| {
                let mc = MeteredComm::new(comm);
                probe::install();
                gv_cell(algo, &mc, &c);
                (mc.metrics(), probe::take())
            });
            assert_conformant(&format!("{} p={p}", algo.name()), &runs, &trace, |_| {
                gv_phases(algo, p)
            });
        }
    }
}

#[test]
fn reduce_scatter_conforms_to_model_traces() {
    for p in SIZES {
        let counts = gv_counts(p, 9);
        for (algo, model) in [
            (ReduceScatterAlgorithm::Pairwise, ReduceScatterModel::Pairwise),
            (ReduceScatterAlgorithm::RecursiveHalving, ReduceScatterModel::Halving),
            (ReduceScatterAlgorithm::Pat, ReduceScatterModel::Pat),
        ] {
            let trace = reduce_scatter_trace(model, &counts, &RankSample::all(p));
            let c = counts.clone();
            let runs = ThreadComm::run(p, move |comm| {
                let mc = MeteredComm::new(comm);
                probe::install();
                rs_cell(algo, &mc, &c, ReduceOp::Sum);
                (mc.metrics(), probe::take())
            });
            assert_conformant(&format!("{} p={p}", algo.name()), &runs, &trace, |me| {
                rs_phases(algo, p, me)
            });
        }
    }
}

#[test]
fn allreduce_conforms_to_model_traces() {
    for p in SIZES {
        let n = 23usize;
        for (algo, model) in [
            (AllreduceAlgorithm::RecursiveDoubling, AllreduceModel::Doubling),
            (AllreduceAlgorithm::ReduceScatterAllgather, AllreduceModel::RsAg),
        ] {
            let trace = allreduce_trace(model, p, n, &RankSample::all(p));
            let runs = ThreadComm::run(p, move |comm| {
                let mc = MeteredComm::new(comm);
                probe::install();
                ar_cell(algo, &mc, n, ReduceOp::Max);
                (mc.metrics(), probe::take())
            });
            assert_conformant(&format!("{} p={p}", algo.name()), &runs, &trace, |me| {
                ar_phases(algo, p, me)
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Tag agreement: core's tag functions and the model's trace tags are the
// same constants (the two crates deliberately do not share code).
// ---------------------------------------------------------------------------

#[test]
fn core_and_model_agree_on_every_wire_tag() {
    let p = 12;
    let counts = vec![4usize; p];
    let s = RankSample::all(p);
    let lg = ceil_log2(p);
    assert_eq!(
        allgatherv_trace(AllgathervModel::Ring, &counts, &s).wire_tags(),
        (0..p as u32 - 1).map(agv_ring_tag).collect::<Vec<_>>()
    );
    assert_eq!(
        allgatherv_trace(AllgathervModel::Bruck, &counts, &s).wire_tags(),
        (0..lg).map(agv_bruck_tag).collect::<Vec<_>>()
    );
    assert_eq!(
        allgatherv_trace(AllgathervModel::Pat, &counts, &s).wire_tags(),
        (0..lg).rev().map(pat_ag_tag).collect::<Vec<_>>()
    );
    assert_eq!(
        reduce_scatter_trace(ReduceScatterModel::Pairwise, &counts, &s).wire_tags(),
        vec![RS_PAIRWISE_TAG]
    );
    let m = pow2_core(p);
    let mut halving = vec![RS_FOLD_TAG];
    halving.extend((0..m.trailing_zeros()).rev().map(rs_halving_tag));
    halving.push(RS_UNFOLD_TAG);
    assert_eq!(reduce_scatter_trace(ReduceScatterModel::Halving, &counts, &s).wire_tags(), halving);
    assert_eq!(
        reduce_scatter_trace(ReduceScatterModel::Pat, &counts, &s).wire_tags(),
        (0..lg).map(pat_rs_tag).collect::<Vec<_>>()
    );
    let mut doubling = vec![AR_FOLD_TAG];
    doubling.extend((0..m.trailing_zeros()).map(ar_doubling_tag));
    doubling.push(AR_UNFOLD_TAG);
    assert_eq!(allreduce_trace(AllreduceModel::Doubling, p, 8, &s).wire_tags(), doubling);
}

// ---------------------------------------------------------------------------
// Bar 4: the conformance gate can fail — a miscounted fixture must produce
// a precise diagnostic.
// ---------------------------------------------------------------------------

#[test]
fn miscounted_allgatherv_fixture_fails_the_gate_with_precise_diagnostic() {
    let p = 5;
    let counts = gv_counts(p, 7);
    let c = counts.clone();
    let runs = ThreadComm::run(p, move |comm| {
        let mc = MeteredComm::new(comm);
        gv_cell(AllgathervAlgorithm::Bruck, &mc, &c);
        mc.metrics()
    });

    // The honest trace passes...
    let honest = allgatherv_trace(AllgathervModel::Bruck, &counts, &RankSample::all(p));
    for (rank, metrics) in runs.iter().enumerate() {
        assert!(conformance_violations(rank, metrics, &honest).is_empty());
    }

    // ...and a trace built from deliberately miscounted contributions — the
    // classic "one rank's count drifted" bug — must fail, naming a Bruck
    // wire tag, the measured bytes, and the (wrong) prediction.
    let mut wrong = counts.clone();
    wrong[1] += 3;
    let fixture = allgatherv_trace(AllgathervModel::Bruck, &wrong, &RankSample::all(p));
    let violations: Vec<String> = runs
        .iter()
        .enumerate()
        .flat_map(|(rank, metrics)| conformance_violations(rank, metrics, &fixture))
        .collect();
    assert!(!violations.is_empty(), "miscounted fixture must not pass the gate");
    assert!(
        violations.iter().any(|v| v.contains("tag 0x9") && v.contains("model predicts")),
        "diagnostic must name the Bruck tag and both byte counts: {violations:#?}"
    );

    // A wrong-schedule trace (ring instead of Bruck) fails on message
    // accounting, not just bytes.
    let wrong_schedule = allgatherv_trace(AllgathervModel::Ring, &counts, &RankSample::all(p));
    let violations: Vec<String> = runs
        .iter()
        .enumerate()
        .flat_map(|(rank, metrics)| conformance_violations(rank, metrics, &wrong_schedule))
        .collect();
    assert!(violations.iter().any(|v| v.contains("messages")), "{violations:#?}");
}
