//! `PaddedAlltoall` (§4.1): pad to uniform, then use the *vendor's* uniform
//! all-to-all instead of our Bruck — the ablation baseline that isolates how
//! much of padded Bruck's win comes from the Bruck exchange itself.

use bruck_comm::{CommResult, Communicator, MsgBuf, ReduceOp};

use super::validate_v;
use crate::common::{add_mod, sub_mod, SPREAD_TAG};

/// Pad to the global maximum `N`, run a vendor-style (throttled pairwise)
/// uniform all-to-all, scan the real bytes out.
#[allow(clippy::too_many_arguments)]
pub fn padded_alltoall<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    let local_max = sendcounts.iter().copied().max().unwrap_or(0);
    let n_max = comm.allreduce_u64(local_max as u64, ReduceOp::Max)? as usize;
    if n_max == 0 {
        return Ok(());
    }

    let mut padded_send = vec![0u8; p * n_max];
    for dst in 0..p {
        let d = sdispls[dst];
        padded_send[dst * n_max..dst * n_max + sendcounts[dst]]
            .copy_from_slice(&sendbuf[d..d + sendcounts[dst]]);
    }
    let mut padded_recv = vec![0u8; p * n_max];

    // Vendor-style uniform exchange (throttled pairwise, window as in
    // `vendor_alltoallv`). The padded region is the packed send buffer:
    // every message is a disjoint slice of it.
    padded_recv[me * n_max..(me + 1) * n_max]
        .copy_from_slice(&padded_send[me * n_max..(me + 1) * n_max]);
    let packed = MsgBuf::from_vec(padded_send);
    let window = super::VENDOR_WINDOW;
    let mut next = 1usize;
    while next < p {
        let batch_end = (next + window).min(p);
        for i in next..batch_end {
            let dest = add_mod(me, i, p);
            comm.isend_buf(dest, SPREAD_TAG, packed.slice(dest * n_max..(dest + 1) * n_max))?;
        }
        for i in next..batch_end {
            let src = sub_mod(me, i, p);
            comm.recv_into(src, SPREAD_TAG, &mut padded_recv[src * n_max..(src + 1) * n_max])?;
        }
        next = batch_end;
    }

    for src in 0..p {
        let want = recvcounts[src];
        recvbuf[rdispls[src]..rdispls[src] + want]
            .copy_from_slice(&padded_recv[src * n_max..src * n_max + want]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallvAlgorithm::PaddedAlltoall;

    #[test]
    fn correct_for_all_communicator_sizes() {
        for p in TEST_SIZES {
            run_and_check(PaddedAlltoall, p, 24, 0xABCD);
        }
    }
}
