//! Vector collectives: variable-length gather/scatter/allgather, provided as
//! a blanket extension trait over any [`Communicator`].

use crate::{CommError, CommResult, Communicator, MsgBuf, Tag, RESERVED_TAG_BASE};

const TAG_ALLGATHERV: Tag = RESERVED_TAG_BASE + 16;
const TAG_SCATTERV: Tag = RESERVED_TAG_BASE + 17;
const TAG_REDUCE: Tag = RESERVED_TAG_BASE + 18;

/// Variable-length collectives (`MPI_Allgatherv`, `MPI_Scatterv`,
/// `MPI_Reduce`-to-root), available on every communicator.
pub trait VectorCollectives: Communicator {
    /// Ring allgather of variable-length payload views; result indexed by
    /// rank. Zero-copy forwarding: each step hands the just-received view to
    /// the right neighbour, so a payload crosses the ring without ever being
    /// re-packed (the originator's region serves all `P − 1` deliveries).
    fn allgatherv_bufs(&self, data: MsgBuf) -> CommResult<Vec<MsgBuf>> {
        let p = self.size();
        let me = self.rank();
        let mut out: Vec<MsgBuf> = vec![MsgBuf::new(); p];
        if p == 1 {
            out[me] = data;
            return Ok(out);
        }
        out[me] = data.clone();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let mut carry = data;
        for s in 0..p - 1 {
            carry = self.sendrecv_buf(
                right,
                TAG_ALLGATHERV + s as Tag,
                carry,
                left,
                TAG_ALLGATHERV + s as Tag,
            )?;
            out[(me + p - s - 1) % p] = carry.clone();
        }
        Ok(out)
    }

    /// Ring allgather of variable-length byte payloads; result indexed by
    /// rank. The v-collective behind "share every rank's counts/metadata".
    /// Compat wrapper over [`VectorCollectives::allgatherv_bufs`].
    fn allgatherv_bytes(&self, data: &[u8]) -> CommResult<Vec<Vec<u8>>> {
        let bufs = self.allgatherv_bufs(MsgBuf::copy_from_slice(data))?;
        Ok(bufs.into_iter().map(MsgBuf::into_vec).collect())
    }

    /// Scatter per-rank payloads from `root`; non-roots pass `None`.
    /// Returns this rank's slice.
    fn scatterv_bytes(&self, root: usize, data: Option<&[Vec<u8>]>) -> CommResult<Vec<u8>> {
        let p = self.size();
        let me = self.rank();
        self.check_rank(root)?;
        if me == root {
            let data = data.ok_or(CommError::BadArgument("root must supply payloads"))?;
            if data.len() != p {
                return Err(CommError::BadArgument("scatterv needs one payload per rank"));
            }
            for (dst, payload) in data.iter().enumerate() {
                if dst != me {
                    self.send(dst, TAG_SCATTERV, payload)?;
                }
            }
            Ok(data[me].clone())
        } else {
            self.recv(root, TAG_SCATTERV)
        }
    }

    /// Reduce one `u64` to `root` with `op` (binomial tree); non-roots get
    /// `None`.
    fn reduce_u64(&self, root: usize, value: u64, op: crate::ReduceOp) -> CommResult<Option<u64>> {
        let p = self.size();
        let me = self.rank();
        self.check_rank(root)?;
        // Rotate so the root is virtual rank 0, then fold up a binomial tree.
        let vrank = (me + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                // Send to the parent and exit the tree.
                let parent = ((vrank - mask) + root) % p;
                self.send(parent, TAG_REDUCE, &acc.to_le_bytes())?;
                return Ok(None);
            }
            // Receive from the child, if it exists.
            let child_v = vrank + mask;
            if child_v < p {
                let got = self.recv((child_v + root) % p, TAG_REDUCE)?;
                acc = op.apply(acc, u64::from_le_bytes(got.try_into().expect("8-byte payload")));
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }
}

impl<C: Communicator + ?Sized> VectorCollectives for C {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReduceOp, ThreadComm};

    #[test]
    fn allgatherv_collects_ragged_payloads() {
        for p in [1usize, 2, 3, 5, 8] {
            let out = ThreadComm::run(p, |comm| {
                let me = comm.rank();
                let mine = vec![me as u8; me + 1];
                comm.allgatherv_bytes(&mine).unwrap()
            });
            for per_rank in out {
                for (src, payload) in per_rank.iter().enumerate() {
                    assert_eq!(payload, &vec![src as u8; src + 1]);
                }
            }
        }
    }

    #[test]
    fn scatterv_distributes_from_each_root() {
        let p = 5;
        for root in 0..p {
            let got = ThreadComm::run(p, move |comm| {
                let me = comm.rank();
                let data: Option<Vec<Vec<u8>>> = (me == root)
                    .then(|| (0..p).map(|d| vec![d as u8; d + 2]).collect());
                comm.scatterv_bytes(root, data.as_deref()).unwrap()
            });
            for (rank, payload) in got.into_iter().enumerate() {
                assert_eq!(payload, vec![rank as u8; rank + 2]);
            }
        }
    }

    #[test]
    fn scatterv_rejects_missing_or_ragged_root_data() {
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                assert!(comm.scatterv_bytes(0, None).is_err());
                let short = vec![vec![1u8]];
                assert!(comm.scatterv_bytes(0, Some(&short)).is_err());
                // Unblock rank 1 with a well-formed scatter.
                let ok = vec![vec![1u8], vec![2u8]];
                assert_eq!(comm.scatterv_bytes(0, Some(&ok)).unwrap(), vec![1]);
            } else {
                assert_eq!(comm.scatterv_bytes(0, None).unwrap(), vec![2]);
            }
        });
    }

    #[test]
    fn reduce_to_each_root() {
        for p in [1usize, 2, 3, 6, 9] {
            for root in [0, p - 1] {
                let out = ThreadComm::run(p, move |comm| {
                    comm.reduce_u64(root, comm.rank() as u64 + 1, ReduceOp::Sum).unwrap()
                });
                let expect = (p * (p + 1) / 2) as u64;
                for (rank, o) in out.into_iter().enumerate() {
                    if rank == root {
                        assert_eq!(o, Some(expect), "p={p} root={root}");
                    } else {
                        assert_eq!(o, None);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_max_matches_allreduce() {
        let p = 7;
        let out = ThreadComm::run(p, |comm| {
            let v = ((comm.rank() * 13) % 7) as u64;
            let red = comm.reduce_u64(2, v, ReduceOp::Max).unwrap();
            let all = comm.allreduce_u64(v, ReduceOp::Max).unwrap();
            (red, all)
        });
        for (rank, (red, all)) in out.into_iter().enumerate() {
            if rank == 2 {
                assert_eq!(red, Some(all));
            }
        }
    }
}
