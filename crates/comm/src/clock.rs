//! The wall-clock anchor for [`crate::Communicator::now`] /
//! [`crate::Communicator::sleep`].
//!
//! Every time-dependent code path in this workspace (deadline receives,
//! ARQ retransmission timers, injected stalls) reads time through the
//! `Communicator` trait rather than `std::time` directly, so a backend can
//! substitute a *virtual* clock (see [`crate::SimComm`]) and make timeouts
//! fire deterministically. This module is the one sanctioned place where the
//! real-thread backends touch `Instant::now` / `thread::sleep` — the
//! `no-adhoc-sleep` lint in `bruck-check` bans `thread::sleep` everywhere
//! else in `bruck-comm`/`bruck-core`.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Process-wide epoch: the first call pins it, every later call measures
/// against it. Using a shared epoch makes `now()` values from different
/// communicators in one process comparable (they are all "time since the
/// process first asked").
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic wall-clock time since the process epoch.
pub(crate) fn wall_now() -> Duration {
    epoch().elapsed()
}

/// Real suspension of the calling thread for `d`.
pub(crate) fn wall_sleep(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_now_is_monotone() {
        let a = wall_now();
        let b = wall_now();
        assert!(b >= a);
    }

    #[test]
    fn wall_sleep_advances_wall_now() {
        let a = wall_now();
        wall_sleep(Duration::from_millis(2));
        assert!(wall_now() >= a + Duration::from_millis(2));
    }
}
