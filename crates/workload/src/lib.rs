//! # bruck-workload — evaluation workload generators
//!
//! Reproduces the block-size distributions used in the paper's evaluation
//! (§4): every rank owns `P` data blocks whose byte sizes are drawn from one
//! of the following schemes, all parameterized by the *maximum block size* `N`:
//!
//! * [`Distribution::Uniform`] — continuous uniform on `[0, N]` (§4.1; mean `N/2`).
//! * [`Distribution::Windowed`] — uniform on `[(100−r)% · N, N]` (§4.2
//!   sensitivity analysis; the paper writes these as `(100−r)-r`, e.g. `50-50`).
//! * [`Distribution::Normal`] — Gaussian windowed to `(−3σ, +3σ)` and mapped
//!   onto `[0, N]` (§4.3; mean `N/2`, σ = `N/6`).
//! * [`Distribution::PowerLaw`] — exponential/power-law decay with a
//!   configurable base (§4.3 evaluates bases 0.99 and a steeper one).
//!
//! Generators are deterministic given a seed, per-rank independent (rank `r`
//! derives its stream from `(seed, r)`), and produce either one rank's row
//! ([`rank_block_sizes`]) or a full `P×P` [`SizeMatrix`] with
//! `matrix[src][dst]` = bytes sent from `src` to `dst`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod distribution;
mod matrix;
mod rng;
mod stats;

pub use distribution::{rank_block_sizes, Distribution};
pub use matrix::SizeMatrix;
pub use rng::{splitmix64, SplitMix64};
pub use stats::{histogram, DistStats};
