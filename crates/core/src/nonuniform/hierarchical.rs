//! Hierarchical (leader-based) `alltoallv` — the related-work baseline of
//! §6 (Jackson & Booth's *planned AlltoAllv*, Plummer & Refson's group-leader
//! scheme): partition the ranks into groups, funnel each group's traffic
//! through its leader, and run the all-to-all among leaders only.
//!
//! Three phases:
//! 1. **Gather** — every member ships its counts row and packed send data to
//!    its group leader (tag `0x500`).
//! 2. **Leader exchange** — leaders exchange, pairwise, a size matrix plus
//!    the blocks destined for each other's members (tag `0x501`).
//! 3. **Scatter** — each leader reassembles every member's incoming blocks
//!    in global source order and ships them down (tag `0x502`).
//!
//! This reduces the number of ranks on the network from `P` to `P/G` at the
//! cost of funneling all bytes through leaders twice — effective for
//! congested short-message exchanges on shared-memory nodes, poor for large
//! loads (the trade-off §6 describes).

use bruck_comm::{CommError, CommResult, Communicator, MsgBuf};

use super::validate_v;
use crate::common::{HIER_GATHER_TAG, HIER_LEADER_TAG, HIER_SCATTER_TAG};

/// Group size used by the [`super::AlltoallvAlgorithm::Hierarchical`]
/// dispatcher (≈ ranks per node in the paper's related-work setting).
pub const DEFAULT_GROUP_SIZE: usize = 8;

#[inline]
fn group_of(rank: usize, group: usize) -> usize {
    rank / group
}

#[inline]
fn leader_of(rank: usize, group: usize) -> usize {
    group_of(rank, group) * group
}

#[inline]
fn group_members(g: usize, group: usize, p: usize) -> std::ops::Range<usize> {
    (g * group)..((g + 1) * group).min(p)
}

/// Hierarchical `alltoallv` with explicit group size (`group >= 1`;
/// `group = 1` degenerates to a leaders-only pairwise exchange, i.e. plain
/// spread-out).
#[allow(clippy::too_many_arguments)]
pub fn hierarchical_alltoallv<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
    group: usize,
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();
    if group == 0 {
        return Err(CommError::BadArgument("group size must be at least 1"));
    }
    let my_group = group_of(me, group);
    let my_leader = leader_of(me, group);
    let n_groups = p.div_ceil(group);

    // ---- Phase 1: gather at leaders ------------------------------------
    if me != my_leader {
        let mut msg = Vec::with_capacity(8 * p + sendcounts.iter().sum::<usize>());
        for &c in sendcounts {
            msg.extend_from_slice(&(c as u64).to_le_bytes());
        }
        for dst in 0..p {
            msg.extend_from_slice(&sendbuf[sdispls[dst]..sdispls[dst] + sendcounts[dst]]);
        }
        comm.send_buf(my_leader, HIER_GATHER_TAG, MsgBuf::from_vec(msg))?;
        // ---- Phase 3 (member side): receive own blocks in src order ----
        let flat = comm.recv_buf(my_leader, HIER_SCATTER_TAG)?;
        let mut at = 0;
        for src in 0..p {
            let want = recvcounts[src];
            recvbuf[rdispls[src]..rdispls[src] + want].copy_from_slice(&flat[at..at + want]);
            at += want;
        }
        if at != flat.len() {
            return Err(CommError::BadArgument("scatter payload length mismatch"));
        }
        return Ok(());
    }

    // Leader: collect every member's counts row and packed data. Each
    // member's data stays a view of its gather message — never re-copied.
    let members: Vec<usize> = group_members(my_group, group, p).collect();
    let mut member_counts: Vec<Vec<usize>> = Vec::with_capacity(members.len());
    let mut member_data: Vec<MsgBuf> = Vec::with_capacity(members.len());
    for &m in &members {
        if m == me {
            let mut packed = Vec::with_capacity(sendcounts.iter().sum());
            for dst in 0..p {
                packed.extend_from_slice(&sendbuf[sdispls[dst]..sdispls[dst] + sendcounts[dst]]);
            }
            member_counts.push(sendcounts.to_vec());
            member_data.push(MsgBuf::from_vec(packed));
        } else {
            let msg = comm.recv_buf(m, HIER_GATHER_TAG)?;
            if msg.len() < 8 * p {
                return Err(CommError::BadArgument("gather payload too short"));
            }
            let counts: Vec<usize> = msg[..8 * p]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte count")) as usize)
                .collect();
            member_counts.push(counts);
            member_data.push(msg.slice(8 * p..));
        }
    }
    // Packed offset of member i's block for global destination `dst`.
    let member_displ = |i: usize, dst: usize| -> usize {
        member_counts[i][..dst].iter().sum()
    };

    // ---- Phase 2: leader pairwise exchange -----------------------------
    // Outgoing to leader h: [u32 sizes (s asc, d asc)][blocks in that order].
    for off in 1..n_groups {
        let h = (my_group + off) % n_groups;
        let dst_members: Vec<usize> = group_members(h, group, p).collect();
        let mut msg = Vec::new();
        for (i, _) in members.iter().enumerate() {
            for &d in &dst_members {
                let sz = member_counts[i][d] as u32;
                msg.extend_from_slice(&sz.to_le_bytes());
            }
        }
        for (i, _) in members.iter().enumerate() {
            for &d in &dst_members {
                let at = member_displ(i, d);
                msg.extend_from_slice(&member_data[i][at..at + member_counts[i][d]]);
            }
        }
        comm.isend_buf(h * group, HIER_LEADER_TAG, MsgBuf::from_vec(msg))?;
    }
    // Incoming: per source group, the (s, d) size matrix and blocks.
    // incoming[src_rank][local_dst_index] = a view of the leader message.
    let mut incoming: Vec<Vec<MsgBuf>> = vec![Vec::new(); p];
    for off in 1..n_groups {
        let h = (my_group + n_groups - off) % n_groups;
        let src_members: Vec<usize> = group_members(h, group, p).collect();
        let msg = comm.recv_buf(h * group, HIER_LEADER_TAG)?;
        let header = src_members.len() * members.len() * 4;
        if msg.len() < header {
            return Err(CommError::BadArgument("leader payload too short"));
        }
        let mut sizes = msg[..header]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte size")) as usize);
        let mut at = header;
        for &s in &src_members {
            let mut per_dst = Vec::with_capacity(members.len());
            for _ in 0..members.len() {
                let sz = sizes.next().expect("size matrix entry");
                per_dst.push(msg.slice(at..at + sz));
                at += sz;
            }
            incoming[s] = per_dst;
        }
        if at != msg.len() {
            return Err(CommError::BadArgument("leader payload length mismatch"));
        }
    }
    // Local group's own blocks never cross the leader network.
    for (i, &s) in members.iter().enumerate() {
        let per_dst = members
            .iter()
            .map(|&d| {
                let at = member_displ(i, d);
                member_data[i].slice(at..at + member_counts[i][d])
            })
            .collect();
        incoming[s] = per_dst;
    }

    // ---- Phase 3: scatter to members (and deliver own) -----------------
    for (di, &d) in members.iter().enumerate() {
        if d == me {
            for (src, per_dst) in incoming.iter().enumerate() {
                let block = &per_dst[di];
                recvbuf[rdispls[src]..rdispls[src] + block.len()].copy_from_slice(block);
            }
        } else {
            let mut flat = Vec::new();
            for per_dst in &incoming {
                flat.extend_from_slice(&per_dst[di]);
            }
            comm.send_buf(d, HIER_SCATTER_TAG, MsgBuf::from_vec(flat))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check_matrix, TEST_SIZES};
    use super::*;
    use bruck_comm::ThreadComm;
    use bruck_workload::{Distribution, SizeMatrix};

    fn run_with_group(m: &SizeMatrix, group: usize) {
        let p = m.p();
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let (sendbuf, sendcounts, sdispls) = super::super::testutil::build_send(me, m);
            let recvcounts = m.recvcounts(me);
            let rdispls = crate::packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            hierarchical_alltoallv(
                comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls, group,
            )
            .unwrap();
            super::super::testutil::check_recv(me, m, &recvbuf, &rdispls);
        });
    }

    #[test]
    fn correct_across_group_sizes_and_p() {
        for p in TEST_SIZES {
            for group in [1usize, 2, 3, 4, 8, 16] {
                let m = SizeMatrix::generate(Distribution::Uniform, (p * 31 + group) as u64, p, 40);
                run_with_group(&m, group);
            }
        }
    }

    #[test]
    fn group_larger_than_p_is_single_leader() {
        let m = SizeMatrix::generate(Distribution::Normal, 5, 6, 64);
        run_with_group(&m, 100);
    }

    #[test]
    fn default_dispatch_is_correct() {
        for p in [4usize, 12, 17] {
            let m = SizeMatrix::generate(Distribution::Uniform, p as u64, p, 32);
            run_and_check_matrix(super::super::AlltoallvAlgorithm::Hierarchical, &m);
        }
    }

    #[test]
    fn zero_blocks_everywhere() {
        run_with_group(&SizeMatrix::uniform(9, 0), 3);
    }

    #[test]
    fn group_helpers() {
        assert_eq!(leader_of(5, 4), 4);
        assert_eq!(leader_of(3, 4), 0);
        assert_eq!(group_members(1, 4, 10).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        assert_eq!(group_members(2, 4, 10).collect::<Vec<_>>(), vec![8, 9]);
    }
}
