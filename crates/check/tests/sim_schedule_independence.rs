//! Property: every algorithm in the dispatch enum is schedule-independent.
//!
//! Each `AlltoallvAlgorithm` runs under the deterministic simulator across
//! 16 different schedule seeds; every rank's received bytes must be
//! identical across all of them. Any dependence on message arrival order,
//! probe timing, or rank interleaving shows up as a byte diff with the
//! failing seed in the assertion message — replayable via the recorded
//! trace.

use bruck_comm::{Communicator, SimComm};
use bruck_core::{
    alltoallv, configurable_alltoallv_general, packed_displs, AlltoallvAlgorithm, EngineConfig,
    EngineTopology, IntermediateLayout, PaddingRule,
};
use bruck_workload::{Distribution, SizeMatrix};

const SCHED_SEEDS: std::ops::Range<u64> = 0..16;

/// One simulated exchange: returns every rank's recv buffer, and checks the
/// closed-form pattern so a wrong-but-stable result cannot slip through.
fn exchange(algo: AlltoallvAlgorithm, m: &SizeMatrix, sched_seed: u64) -> Vec<Vec<u8>> {
    let p = m.p();
    let run = SimComm::run(p, sched_seed, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
        for (i, b) in sendbuf.iter_mut().enumerate() {
            *b = (me.wrapping_mul(151) ^ i.wrapping_mul(29)) as u8;
        }
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
            .unwrap();
        for src in 0..p {
            let sender_displs = packed_displs(&m.sendcounts(src));
            for i in 0..recvcounts[src] {
                let expect = (src.wrapping_mul(151) ^ (sender_displs[me] + i).wrapping_mul(29)) as u8;
                assert_eq!(
                    recvbuf[rdispls[src] + i],
                    expect,
                    "{algo:?} sched_seed={sched_seed} src={src} i={i}"
                );
            }
        }
        recvbuf
    });
    run.results
}

#[test]
fn every_algorithm_delivers_identical_bytes_across_16_schedules() {
    let p = 5;
    let m = SizeMatrix::generate(Distribution::Normal, 0xA11, p, 32);
    for algo in AlltoallvAlgorithm::ALL {
        let baseline = exchange(algo, &m, SCHED_SEEDS.start);
        for seed in SCHED_SEEDS.start + 1..SCHED_SEEDS.end {
            let got = exchange(algo, &m, seed);
            assert_eq!(
                got, baseline,
                "{algo:?}: recv bytes differ between sched seeds {} and {seed}",
                SCHED_SEEDS.start
            );
        }
    }
}

/// Like [`exchange`], but through the engine's generalized machinery (no
/// snap-to-variant dispatch), so off-point knob combinations are swept too.
fn exchange_engine(cfg: &EngineConfig, m: &SizeMatrix, sched_seed: u64) -> Vec<Vec<u8>> {
    let p = m.p();
    let run = SimComm::run(p, sched_seed, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
        for (i, b) in sendbuf.iter_mut().enumerate() {
            *b = (me.wrapping_mul(151) ^ i.wrapping_mul(29)) as u8;
        }
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        configurable_alltoallv_general(
            comm, cfg, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
        )
        .unwrap();
        for src in 0..p {
            let sender_displs = packed_displs(&m.sendcounts(src));
            for i in 0..recvcounts[src] {
                let expect =
                    (src.wrapping_mul(151) ^ (sender_displs[me] + i).wrapping_mul(29)) as u8;
                assert_eq!(
                    recvbuf[rdispls[src] + i],
                    expect,
                    "{} sched_seed={sched_seed} src={src} i={i}",
                    cfg.key()
                );
            }
        }
        recvbuf
    });
    run.results
}

/// Every engine config — the nine named points plus off-point product-space
/// members — is schedule-independent across the same 16-seed sweep.
#[test]
fn every_engine_config_delivers_identical_bytes_across_16_schedules() {
    let p = 5;
    let m = SizeMatrix::generate(Distribution::Normal, 0xC33, p, 32);
    let mut configs: Vec<EngineConfig> =
        EngineConfig::named_points().iter().map(|(cfg, _)| *cfg).collect();
    configs.extend([
        EngineConfig { radix: 4, ..EngineConfig::as_two_phase() },
        EngineConfig { radix: 3, ..EngineConfig::as_sloav() },
        EngineConfig { throttle_window: Some(2), ..EngineConfig::as_spread_out() },
        EngineConfig {
            topology: EngineTopology::Bruck,
            radix: 2,
            throttle_window: None,
            padding: PaddingRule::Threshold(64),
            layout: IntermediateLayout::Monolithic,
            two_phase_split: true,
        },
    ]);
    for cfg in configs {
        let baseline = exchange_engine(&cfg, &m, SCHED_SEEDS.start);
        for seed in SCHED_SEEDS.start + 1..SCHED_SEEDS.end {
            assert_eq!(
                exchange_engine(&cfg, &m, seed),
                baseline,
                "{}: recv bytes differ between sched seeds {} and {seed}",
                cfg.key(),
                SCHED_SEEDS.start
            );
        }
    }
}

/// The skewed distribution exercises the zero-block and uneven-window edge
/// cases of every algorithm under the same 16-schedule sweep.
#[test]
fn every_algorithm_is_schedule_independent_under_skew() {
    let p = 5;
    let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 0xB22, p, 40);
    for algo in AlltoallvAlgorithm::ALL {
        let baseline = exchange(algo, &m, SCHED_SEEDS.start);
        for seed in SCHED_SEEDS.start + 1..SCHED_SEEDS.end {
            assert_eq!(
                exchange(algo, &m, seed),
                baseline,
                "{algo:?}: skewed recv bytes differ at sched seed {seed}"
            );
        }
    }
}
