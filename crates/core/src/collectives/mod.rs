//! The wider collective family on the verified substrate: non-uniform
//! `allgatherv`, vector `reduce_scatter`, and vector `allreduce`, each with
//! multiple schedules — ring and Bruck distance-doubling, pairwise exchange
//! and recursive halving/doubling, plus NCCL-style PAT (parallel aggregated
//! trees, arXiv 2506.20252) for all-gather and reduce-scatter.
//!
//! ## Contracts
//!
//! * [`allgatherv`] — rank `i` contributes `counts[i]` bytes; every rank
//!   ends with every contribution at `recvbuf[displs[i]..][..counts[i]]`.
//!   Like `MPI_Allgatherv`, `counts`/`displs` are known on every rank.
//! * [`reduce_scatter`] — every rank holds a `Σ counts` element input
//!   vector; rank `i` ends with the element-wise reduction of segment `i`
//!   (`counts[i]` elements) over all ranks' inputs.
//! * [`allreduce`] — every rank holds an equal-length vector; all ranks end
//!   with its element-wise reduction, in place.
//!
//! Reductions are element-wise [`ReduceOp`] over `u64` — associative and
//! commutative (wrapping sum), so every schedule produces byte-identical
//! results regardless of arrival order.
//!
//! ## Tags and spans
//!
//! Each schedule owns a tag block in `common` (0x0800..0x0FFF) and emits
//! one probe span per wire step, so the conformance gauntlet pins message
//! counts, byte volumes, and phase counts against `bruck-model`'s closed
//! forms exactly. Dispatch goes through the algorithm enums here — the
//! `no-direct-variant-call` lint rule holds every other crate to it.

mod allgatherv;
mod allreduce;
mod reduce_scatter;
mod pat;
mod reference;

pub use reference::{
    pattern_byte, pattern_u64, reference_allgatherv, reference_allreduce,
    reference_reduce_scatter,
};

use std::time::Duration;

use bruck_comm::{CommError, CommResult, Communicator, DeadlineComm, ReduceOp};

/// Allgatherv schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllgathervAlgorithm {
    /// `P − 1` neighbor hops, each block forwarded zero-copy.
    Ring,
    /// Bruck distance-doubling: ⌈log₂ P⌉ steps, runs of blocks aggregated.
    Bruck,
    /// PAT: one descending-bit binomial tree per source, phases aggregated.
    Pat,
}

impl AllgathervAlgorithm {
    /// Every schedule, cheapest-per-step first.
    pub const ALL: [AllgathervAlgorithm; 3] =
        [AllgathervAlgorithm::Ring, AllgathervAlgorithm::Bruck, AllgathervAlgorithm::Pat];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AllgathervAlgorithm::Ring => "Ring",
            AllgathervAlgorithm::Bruck => "Bruck doubling",
            AllgathervAlgorithm::Pat => "PAT all-gather",
        }
    }
}

/// Reduce-scatter schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceScatterAlgorithm {
    /// All-pairs exchange: each rank mails every peer its segment directly.
    Pairwise,
    /// Recursive halving over a power-of-two core, remainder ranks folded.
    RecursiveHalving,
    /// PAT: one ascending-bit reduction tree per destination, aggregated.
    Pat,
}

impl ReduceScatterAlgorithm {
    /// Every schedule.
    pub const ALL: [ReduceScatterAlgorithm; 3] = [
        ReduceScatterAlgorithm::Pairwise,
        ReduceScatterAlgorithm::RecursiveHalving,
        ReduceScatterAlgorithm::Pat,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ReduceScatterAlgorithm::Pairwise => "Pairwise",
            ReduceScatterAlgorithm::RecursiveHalving => "Recursive halving",
            ReduceScatterAlgorithm::Pat => "PAT reduce-scatter",
        }
    }
}

/// Allreduce schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllreduceAlgorithm {
    /// Recursive doubling on whole vectors — α-optimal, best for small
    /// messages.
    RecursiveDoubling,
    /// Rabenseifner composition: recursive-halving reduce_scatter of near
    /// equal pieces, then Bruck allgatherv — β-optimal for large vectors.
    ReduceScatterAllgather,
}

impl AllreduceAlgorithm {
    /// Every schedule.
    pub const ALL: [AllreduceAlgorithm; 2] = [
        AllreduceAlgorithm::RecursiveDoubling,
        AllreduceAlgorithm::ReduceScatterAllgather,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AllreduceAlgorithm::RecursiveDoubling => "Recursive doubling",
            AllreduceAlgorithm::ReduceScatterAllgather => "Reduce-scatter + allgather",
        }
    }
}

/// Non-uniform all-gather: rank `i` contributes `sendbuf` (`counts[i]`
/// bytes); every rank ends with contribution `i` at
/// `recvbuf[displs[i]..][..counts[i]]`.
pub fn allgatherv<C: Communicator + ?Sized>(
    algo: AllgathervAlgorithm,
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    counts: &[usize],
    displs: &[usize],
) -> CommResult<()> {
    validate_gv(comm, sendbuf, recvbuf, counts, displs)?;
    match algo {
        AllgathervAlgorithm::Ring => {
            allgatherv::allgatherv_ring(comm, sendbuf, recvbuf, counts, displs)
        }
        AllgathervAlgorithm::Bruck => {
            allgatherv::allgatherv_bruck(comm, sendbuf, recvbuf, counts, displs)
        }
        AllgathervAlgorithm::Pat => {
            pat::pat_allgatherv(comm, sendbuf, recvbuf, counts, displs)
        }
    }
}

/// Vector reduce-scatter: `sendbuf` holds `Σ counts` elements on every
/// rank; `recvbuf` (length `counts[me]`) receives the element-wise `op`
/// reduction of segment `me` over all ranks.
pub fn reduce_scatter<C: Communicator + ?Sized>(
    algo: ReduceScatterAlgorithm,
    comm: &C,
    sendbuf: &[u64],
    recvbuf: &mut [u64],
    counts: &[usize],
    op: ReduceOp,
) -> CommResult<()> {
    validate_rs(comm, sendbuf, recvbuf, counts)?;
    match algo {
        ReduceScatterAlgorithm::Pairwise => {
            reduce_scatter::reduce_scatter_pairwise(comm, sendbuf, recvbuf, counts, op)
        }
        ReduceScatterAlgorithm::RecursiveHalving => {
            reduce_scatter::reduce_scatter_halving(comm, sendbuf, recvbuf, counts, op)
        }
        ReduceScatterAlgorithm::Pat => {
            pat::pat_reduce_scatter(comm, sendbuf, recvbuf, counts, op)
        }
    }
}

/// Vector allreduce, in place: every rank's `buf` (equal length everywhere)
/// becomes the element-wise `op` reduction over all ranks.
pub fn allreduce<C: Communicator + ?Sized>(
    algo: AllreduceAlgorithm,
    comm: &C,
    buf: &mut [u64],
    op: ReduceOp,
) -> CommResult<()> {
    match algo {
        AllreduceAlgorithm::RecursiveDoubling => {
            allreduce::allreduce_doubling(comm, buf, op)
        }
        AllreduceAlgorithm::ReduceScatterAllgather => {
            allreduce::allreduce_rs_ag(comm, buf, op)
        }
    }
}

/// How a deadline-bounded collective attempt ended.
///
/// The typed partial outcome the chaos gauntlet asserts on: a scripted
/// crash in the world must surface here as `Aborted` with the typed fault
/// error, never as a hang, a panic, or a silently wrong buffer.
#[derive(Debug)]
pub enum CollectiveOutcome<T> {
    /// The collective ran to completion within the deadline.
    Complete(T),
    /// A typed fault (peer death or deadline expiry) ended the attempt;
    /// the operation made no completion claim and its output buffers are
    /// unspecified.
    Aborted {
        /// The typed fault that ended the attempt.
        error: CommError,
    },
}

impl<T> CollectiveOutcome<T> {
    /// Did the attempt complete?
    pub fn is_complete(&self) -> bool {
        matches!(self, CollectiveOutcome::Complete(_))
    }
}

/// Run a collective closure under a deadline, mapping *typed* fault errors
/// ([`CommError::Timeout`], [`CommError::RankFailed`]) to a
/// [`CollectiveOutcome::Aborted`] instead of an `Err`.
///
/// Anything else — bad arguments, truncation, divergence — stays an error:
/// those are bugs, not faults, and the chaos harness fails the cell on them.
pub fn collective_with_deadline<C, T, F>(
    comm: &C,
    deadline: Duration,
    f: F,
) -> CommResult<CollectiveOutcome<T>>
where
    C: Communicator + ?Sized,
    F: FnOnce(&DeadlineComm<'_, C>) -> CommResult<T>,
{
    let dc = DeadlineComm::new(comm, deadline);
    match f(&dc) {
        Ok(v) => Ok(CollectiveOutcome::Complete(v)),
        Err(error @ (CommError::Timeout { .. } | CommError::RankFailed { .. })) => {
            Ok(CollectiveOutcome::Aborted { error })
        }
        Err(e) => Err(e),
    }
}

/// Validate an allgatherv argument set.
fn validate_gv<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &[u8],
    counts: &[usize],
    displs: &[usize],
) -> CommResult<()> {
    let p = comm.size();
    if counts.len() != p || displs.len() != p {
        return Err(CommError::BadArgument("counts/displs must have length P"));
    }
    if sendbuf.len() != counts[comm.rank()] {
        return Err(CommError::BadArgument("sendbuf length must equal counts[rank]"));
    }
    for i in 0..p {
        if displs[i] + counts[i] > recvbuf.len() {
            return Err(CommError::BadArgument("recv slot out of bounds"));
        }
    }
    Ok(())
}

/// Validate a reduce_scatter argument set.
fn validate_rs<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u64],
    recvbuf: &[u64],
    counts: &[usize],
) -> CommResult<()> {
    let p = comm.size();
    if counts.len() != p {
        return Err(CommError::BadArgument("counts must have length P"));
    }
    if sendbuf.len() != counts.iter().sum::<usize>() {
        return Err(CommError::BadArgument("sendbuf length must equal sum of counts"));
    }
    if recvbuf.len() != counts[comm.rank()] {
        return Err(CommError::BadArgument("recvbuf length must equal counts[rank]"));
    }
    Ok(())
}

/// Little-endian wire encoding of a `u64` vector.
pub(crate) fn u64s_to_bytes(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a little-endian `u64` vector; errors on a length that is not a
/// multiple of 8 (a framing bug, surfaced typed so the chaos stack sees it).
pub(crate) fn bytes_to_u64s(bytes: &[u8]) -> CommResult<Vec<u64>> {
    if bytes.len() % 8 != 0 {
        return Err(CommError::BadArgument("reduce payload not a multiple of 8 bytes"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            u64::from_le_bytes(w)
        })
        .collect())
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::packed_displs;

    /// Deterministic non-uniform per-rank counts, including zeros.
    pub fn gv_counts(p: usize, seed: u64) -> Vec<usize> {
        (0..p)
            .map(|i| {
                let x = (seed.wrapping_mul(31).wrapping_add(i as u64 * 7)) % 13;
                if (i as u64 + seed) % 4 == 0 {
                    0
                } else {
                    x as usize + 1
                }
            })
            .collect()
    }

    /// Rank `r`'s allgatherv contribution bytes.
    pub fn gv_input(r: usize, len: usize) -> Vec<u8> {
        (0..len).map(|i| super::reference::pattern_byte(r, i)).collect()
    }

    /// Rank `r`'s reduce-family input vector of `len` elements.
    pub fn rs_input(r: usize, len: usize) -> Vec<u64> {
        (0..len).map(|i| super::reference::pattern_u64(r, i)).collect()
    }

    /// Run one allgatherv schedule on ThreadComm and check it against the
    /// local reference.
    pub fn run_gv(algo: AllgathervAlgorithm, counts: &[usize]) {
        let p = counts.len();
        let displs = packed_displs(counts);
        let inputs: Vec<Vec<u8>> = (0..p).map(|r| gv_input(r, counts[r])).collect();
        let want = reference_allgatherv(&inputs);
        let counts = counts.to_vec();
        let displs2 = displs.clone();
        let inputs2 = inputs.clone();
        let results = bruck_comm::ThreadComm::run(p, move |comm| {
            let me = comm.rank();
            let mut recvbuf = vec![0u8; counts.iter().sum()];
            allgatherv(algo, comm, &inputs2[me], &mut recvbuf, &counts, &displs2).unwrap();
            recvbuf
        });
        for (r, got) in results.iter().enumerate() {
            assert_eq!(got, &want, "{} rank {r} p={p}", algo.name());
        }
    }

    /// Run one reduce_scatter schedule on ThreadComm and check it against
    /// the local reference.
    pub fn run_rs(algo: ReduceScatterAlgorithm, counts: &[usize], op: ReduceOp) {
        let p = counts.len();
        let total: usize = counts.iter().sum();
        let inputs: Vec<Vec<u64>> = (0..p).map(|r| rs_input(r, total)).collect();
        let want = reference_reduce_scatter(&inputs, counts, op);
        let counts = counts.to_vec();
        let inputs2 = inputs.clone();
        let results = bruck_comm::ThreadComm::run(p, move |comm| {
            let me = comm.rank();
            let mut recvbuf = vec![0u64; counts[me]];
            reduce_scatter(algo, comm, &inputs2[me], &mut recvbuf, &counts, op).unwrap();
            recvbuf
        });
        for (r, got) in results.iter().enumerate() {
            assert_eq!(got, &want[r], "{} rank {r} p={p} {op:?}", algo.name());
        }
    }

    /// Run one allreduce schedule on ThreadComm and check it against the
    /// local reference.
    pub fn run_ar(algo: AllreduceAlgorithm, p: usize, n: usize, op: ReduceOp) {
        let inputs: Vec<Vec<u64>> = (0..p).map(|r| rs_input(r, n)).collect();
        let want = reference_allreduce(&inputs, op);
        let inputs2 = inputs.clone();
        let results = bruck_comm::ThreadComm::run(p, move |comm| {
            let mut buf = inputs2[comm.rank()].clone();
            allreduce(algo, comm, &mut buf, op).unwrap();
            buf
        });
        for (r, got) in results.iter().enumerate() {
            assert_eq!(got, &want, "{} rank {r} p={p} n={n} {op:?}", algo.name());
        }
    }

    /// World sizes every schedule must survive.
    pub const SIZES: [usize; 8] = [1, 2, 3, 4, 5, 8, 12, 16];
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_comm::ThreadComm;

    #[test]
    fn allgatherv_rejects_bad_arguments() {
        ThreadComm::run(2, |comm| {
            let mut recv = vec![0u8; 4];
            // counts too short.
            assert!(allgatherv(
                AllgathervAlgorithm::Ring,
                comm,
                &[1u8],
                &mut recv,
                &[1],
                &[0]
            )
            .is_err());
            // sendbuf length mismatch.
            assert!(allgatherv(
                AllgathervAlgorithm::Ring,
                comm,
                &[1u8, 2],
                &mut recv,
                &[1, 1],
                &[0, 1]
            )
            .is_err());
            // recv slot out of bounds.
            assert!(allgatherv(
                AllgathervAlgorithm::Ring,
                comm,
                &[1u8],
                &mut recv,
                &[1, 1],
                &[0, 4]
            )
            .is_err());
        });
    }

    #[test]
    fn reduce_scatter_rejects_bad_arguments() {
        ThreadComm::run(2, |comm| {
            let send = vec![0u64; 3];
            let mut recv = vec![0u64; 1];
            // counts sum mismatch.
            assert!(reduce_scatter(
                ReduceScatterAlgorithm::Pairwise,
                comm,
                &send,
                &mut recv,
                &[1, 1],
                ReduceOp::Sum
            )
            .is_err());
            // recvbuf length mismatch (wrong on every rank, so no rank
            // proceeds into the wire schedule).
            let mut recv_long = vec![0u64; 5];
            assert!(reduce_scatter(
                ReduceScatterAlgorithm::Pairwise,
                comm,
                &send,
                &mut recv_long,
                &[2, 1],
                ReduceOp::Sum
            )
            .is_err());
        });
    }

    #[test]
    fn u64_wire_round_trips() {
        let vals = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&vals)).unwrap(), vals);
        assert!(bytes_to_u64s(&[1, 2, 3]).is_err());
    }

    #[test]
    fn deadline_wrapper_passes_results_through() {
        ThreadComm::run(3, |comm| {
            let out = collective_with_deadline(comm, Duration::from_secs(5), |dc| {
                let mut recv = vec![0u8; 3];
                allgatherv(
                    AllgathervAlgorithm::Bruck,
                    dc,
                    &[comm.rank() as u8],
                    &mut recv,
                    &[1, 1, 1],
                    &[0, 1, 2],
                )?;
                Ok(recv)
            })
            .unwrap();
            match out {
                CollectiveOutcome::Complete(buf) => assert_eq!(buf, vec![0, 1, 2]),
                CollectiveOutcome::Aborted { error } => panic!("aborted: {error}"),
            }
        });
    }
}
