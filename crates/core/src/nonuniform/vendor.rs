//! The stand-in for the vendor-optimized `MPI_Alltoallv`.
//!
//! Cray's implementation is closed source, but the paper notes (§1) that
//! MPICH-family libraries implement `MPI_Alltoallv` "using only variants of
//! the Spread-out algorithm". MPICH's production variant throttles the number
//! of outstanding pairs to a window to avoid swamping the receive side; we
//! reproduce that: the `P − 1` pairwise exchanges proceed in windows of
//! [`VENDOR_WINDOW`] outstanding sends/receives.

use bruck_comm::{CommResult, Communicator, MsgBuf};

use super::validate_v;
use crate::common::{add_mod, sub_mod, SPREAD_TAG};
use crate::probe::span;

/// Outstanding-request window (MPICH's `MPIR_CVAR_ALLTOALL_THROTTLE`-style
/// limit; 32 is the MPICH default).
pub const VENDOR_WINDOW: usize = 32;

/// Throttled spread-out `alltoallv` — the `MPI_Alltoallv` baseline of every
/// figure in the paper.
#[allow(clippy::too_many_arguments)]
pub fn vendor_alltoallv<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);
    if p == 1 {
        return Ok(());
    }

    // One pack copy; every windowed send is a disjoint slice of the region.
    let packed = MsgBuf::copy_from_slice(sendbuf);
    let mut next = 1usize;
    while next < p {
        let _probe = span("vendor.window");
        let batch_end = (next + VENDOR_WINDOW).min(p);
        for i in next..batch_end {
            let dest = add_mod(me, i, p);
            comm.isend_buf(
                dest,
                SPREAD_TAG,
                packed.slice(sdispls[dest]..sdispls[dest] + sendcounts[dest]),
            )?;
        }
        for i in next..batch_end {
            let src = sub_mod(me, i, p);
            let n = comm.recv_into(
                src,
                SPREAD_TAG,
                &mut recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]],
            )?;
            debug_assert_eq!(n, recvcounts[src], "peer sent unexpected block size");
        }
        next = batch_end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallvAlgorithm::Vendor;

    #[test]
    fn correct_for_all_communicator_sizes() {
        for p in TEST_SIZES {
            run_and_check(Vendor, p, 48, 0xFACE);
        }
    }

    #[test]
    fn correct_beyond_the_window() {
        // P > window exercises the batching loop.
        run_and_check(Vendor, 40, 16, 0xFEED);
    }
}
