//! Block-size distributions (§4.1–§4.3 of the paper).
//!
//! Sizes are *keyed*: [`Distribution::block_size`] is a pure O(1) function of
//! `(seed, src, dst)`, so the cost model can evaluate exact per-step traffic
//! at `P = 32768` without materializing a `P×P` matrix. Row sampling is
//! defined in terms of the keyed function.

/// A block-size distribution scheme. All schemes are parameterized at sample
/// time by the maximum block size `N` (bytes), matching the paper's sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Continuous uniform on `[0, N]` — §4.1. Mean block size `N/2`.
    Uniform,
    /// Uniform on `[(100 − r)% · N, N]` — §4.2 sensitivity analysis.
    /// `r = 100` degenerates to [`Distribution::Uniform`]; `r = 0` makes every
    /// block exactly `N` bytes.
    Windowed {
        /// Window width percentage `r ∈ [0, 100]`.
        r: u32,
    },
    /// Gaussian with mean `N/2`, σ = `N/6`, windowed to `(−3σ, +3σ)` (i.e.
    /// `[0, N]`) — §4.3. Out-of-window draws are re-sampled.
    Normal,
    /// Power-law (exponential) decay: the rank's `P` blocks take sizes
    /// `N · baseʲ` for `j = 0..P`, assigned to destinations by a keyed
    /// pseudorandom permutation — §4.3. The paper evaluates a base of 0.99
    /// and a second, heavier variant; we use 0.999 for the latter
    /// (see DESIGN.md).
    PowerLaw {
        /// Decay base in `(0, 1)`.
        base: f64,
    },
    /// Destination-hotspot imbalance: one destination rank in every
    /// `spacing` receives full-`N` blocks while all others receive
    /// `N / damping` uniform blocks — the "degree of imbalance" axis the
    /// paper's abstract sweeps, in its incast form.
    Hotspot {
        /// Every `spacing`-th destination is hot (≥ 1).
        spacing: u32,
        /// Cold destinations draw from `[0, N / damping]` (≥ 1).
        damping: u32,
    },
}

impl Distribution {
    /// The steeper power-law variant evaluated in the paper's Figure 10.
    pub const POWER_LAW_STEEP: Distribution = Distribution::PowerLaw { base: 0.99 };
    /// The heavier power-law variant (larger total volume).
    pub const POWER_LAW_HEAVY: Distribution = Distribution::PowerLaw { base: 0.999 };

    /// Expected block size in bytes for maximum size `n_max` and `p` blocks.
    ///
    /// Used by the analytic cost model; exact for `Uniform`/`Windowed`,
    /// the ±3σ window makes `Normal` effectively exact at `n_max/2`, and
    /// `PowerLaw` follows the geometric series sum.
    pub fn mean_size(&self, n_max: usize, p: usize) -> f64 {
        let n = n_max as f64;
        match *self {
            Distribution::Uniform => n / 2.0,
            Distribution::Windowed { r } => {
                let lo = n * (100 - r.min(100)) as f64 / 100.0;
                (lo + n) / 2.0
            }
            Distribution::Normal => n / 2.0,
            Distribution::PowerLaw { base } => {
                if p == 0 {
                    0.0
                } else {
                    n * (1.0 - base.powi(p as i32)) / ((1.0 - base) * p as f64)
                }
            }
            Distribution::Hotspot { spacing, damping } => {
                let spacing = f64::from(spacing.max(1));
                let cold_mean = n / (2.0 * f64::from(damping.max(1)));
                (n / 2.0) / spacing + cold_mean * (1.0 - 1.0 / spacing)
            }
        }
    }

    /// Short label used by the figure harnesses.
    pub fn label(&self) -> String {
        match *self {
            Distribution::Uniform => "uniform".into(),
            Distribution::Windowed { r } => format!("{}-{}", 100 - r.min(100), r.min(100)),
            Distribution::Normal => "normal".into(),
            Distribution::PowerLaw { base } => format!("powerlaw({base})"),
            Distribution::Hotspot { spacing, damping } => {
                format!("hotspot(1/{spacing}, /{damping})")
            }
        }
    }

    /// The exact byte size of the block rank `src` sends to rank `dst`, for a
    /// `p`-rank communicator and maximum block size `n_max`.
    ///
    /// Pure and O(1) in `(seed, src, dst)` (amortized O(1) for `Normal`'s
    /// rejection loop), deterministic across platforms.
    pub fn block_size(&self, seed: u64, src: usize, dst: usize, p: usize, n_max: usize) -> usize {
        debug_assert!(src < p && dst < p);
        match *self {
            Distribution::Uniform => {
                let u = unit_f64(mix3(seed, src as u64, dst as u64));
                (u * n_max as f64).round() as usize
            }
            Distribution::Windowed { r } => {
                let r = r.min(100);
                let lo = (n_max as f64 * (100 - r) as f64 / 100.0).round();
                let u = unit_f64(mix3(seed, src as u64, dst as u64));
                (lo + u * (n_max as f64 - lo)).round() as usize
            }
            Distribution::Normal => {
                let mean = n_max as f64 / 2.0;
                let sigma = n_max as f64 / 6.0;
                let mut ctr = 0u64;
                loop {
                    let x1 = mix3(seed ^ ctr.wrapping_mul(0xA24B_AED4_963E_E407), src as u64, dst as u64);
                    let x2 = splitmix64(x1);
                    let z = box_muller(unit_open_f64(x1), unit_f64(x2));
                    if z.abs() <= 3.0 {
                        return (mean + sigma * z).round().clamp(0.0, n_max as f64) as usize;
                    }
                    ctr += 1;
                }
            }
            Distribution::Hotspot { spacing, damping } => {
                let u = unit_f64(mix3(seed, src as u64, dst as u64));
                if dst as u32 % spacing.max(1) == 0 {
                    (u * n_max as f64).round() as usize
                } else {
                    (u * n_max as f64 / f64::from(damping.max(1))).round() as usize
                }
            }
            Distribution::PowerLaw { base } => {
                assert!(base > 0.0 && base < 1.0, "power-law base must be in (0, 1)");
                // Keyed pseudorandom permutation of destinations onto decay
                // positions: an affine bijection j = (a·dst + b) mod p with
                // gcd(a, p) = 1.
                let h = splitmix64(seed ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let (a, b) = affine_coeffs(h, p);
                let j = (a * dst + b) % p;
                (n_max as f64 * base.powi(j as i32)).round() as usize
            }
        }
    }

    /// Sample one rank's row of `p` destination block sizes with maximum
    /// `n_max`: `row[dst] = block_size(seed, rank, dst, p, n_max)`.
    pub fn sample_row(&self, seed: u64, rank: usize, p: usize, n_max: usize) -> Vec<usize> {
        (0..p).map(|dst| self.block_size(seed, rank, dst, p, n_max)).collect()
    }
}

/// Standalone form of [`Distribution::sample_row`].
pub fn rank_block_sizes(
    dist: Distribution,
    seed: u64,
    rank: usize,
    p: usize,
    n_max: usize,
) -> Vec<usize> {
    dist.sample_row(seed, rank, p, n_max)
}

/// Affine permutation coefficients for modulus `p`: `a` coprime to `p`,
/// arbitrary offset `b`.
fn affine_coeffs(h: u64, p: usize) -> (usize, usize) {
    let b = (splitmix64(h) % p.max(1) as u64) as usize;
    let mut a = (h % p.max(1) as u64) as usize | 1; // odd helps for even p
    if a == 0 {
        a = 1;
    }
    while gcd(a, p) != 1 {
        a += 2;
        if a >= p {
            a = 1;
        }
    }
    (a, b)
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

use crate::rng::splitmix64;

/// Mix three values into one well-distributed u64.
#[inline]
fn mix3(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(seed ^ a.wrapping_mul(0xD6E8_FEB8_6659_FD93)) ^ b.wrapping_mul(0xCA5A_8268_5916_3693))
}

/// Map a u64 to [0, 1].
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Map a u64 to (0, 1] (safe for `ln`).
#[inline]
fn unit_open_f64(x: u64) -> f64 {
    ((x >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// One standard-normal draw via Box–Muller from two uniforms.
#[inline]
fn box_muller(u1: f64, u2: f64) -> f64 {
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_row_is_bounded_and_deterministic() {
        let a = Distribution::Uniform.sample_row(42, 3, 100, 256);
        let b = Distribution::Uniform.sample_row(42, 3, 100, 256);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s <= 256));
        let c = Distribution::Uniform.sample_row(42, 4, 100, 256);
        assert_ne!(a, c, "different ranks must get independent rows");
    }

    #[test]
    fn block_size_is_consistent_with_rows() {
        for dist in [Distribution::Uniform, Distribution::Normal, Distribution::POWER_LAW_STEEP] {
            let row = dist.sample_row(9, 5, 64, 500);
            for (dst, &sz) in row.iter().enumerate() {
                assert_eq!(sz, dist.block_size(9, 5, dst, 64, 500));
            }
        }
    }

    #[test]
    fn uniform_mean_is_half_n() {
        let row = Distribution::Uniform.sample_row(7, 0, 20_000, 1000);
        let mean = row.iter().sum::<usize>() as f64 / row.len() as f64;
        assert!((mean - 500.0).abs() < 15.0, "mean {mean} too far from 500");
    }

    #[test]
    fn windowed_row_respects_window() {
        for r in [0u32, 20, 50, 80, 100] {
            let row = Distribution::Windowed { r }.sample_row(1, 0, 2000, 1000);
            let lo = (1000 * (100 - r) as usize) / 100;
            assert!(row.iter().all(|&s| s >= lo && s <= 1000), "r={r}");
        }
    }

    #[test]
    fn windowed_zero_is_constant_n() {
        let row = Distribution::Windowed { r: 0 }.sample_row(1, 5, 64, 512);
        assert!(row.iter().all(|&s| s == 512));
    }

    #[test]
    fn normal_row_statistics() {
        let row = Distribution::Normal.sample_row(3, 0, 50_000, 600);
        assert!(row.iter().all(|&s| s <= 600));
        let mean = row.iter().sum::<usize>() as f64 / row.len() as f64;
        assert!((mean - 300.0).abs() < 5.0, "mean {mean}");
        let var = row.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / row.len() as f64;
        let sigma = var.sqrt();
        assert!((sigma - 100.0).abs() < 5.0, "sigma {sigma}");
    }

    #[test]
    fn power_law_is_permuted_geometric_decay() {
        let p = 512;
        let row = Distribution::POWER_LAW_STEEP.sample_row(9, 2, p, 1024);
        let mut sorted = row.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let expect: Vec<usize> =
            (0..p).map(|j| (1024.0 * 0.99f64.powi(j as i32)).round() as usize).collect();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn power_law_permutations_differ_across_ranks() {
        let p = 128;
        let r0 = Distribution::POWER_LAW_STEEP.sample_row(9, 0, p, 1024);
        let r1 = Distribution::POWER_LAW_STEEP.sample_row(9, 1, p, 1024);
        assert_ne!(r0, r1);
    }

    #[test]
    fn power_law_total_tracks_geometric_sum() {
        // The paper: total per-process volume with base 0.99 is ~100·N;
        // the heavy variant is many times that.
        let p = 4096;
        let steep: usize = Distribution::POWER_LAW_STEEP.sample_row(1, 0, p, 1024).iter().sum();
        let heavy: usize = Distribution::POWER_LAW_HEAVY.sample_row(1, 0, p, 1024).iter().sum();
        assert!(steep < 110 * 1024, "steep total {steep}");
        assert!(heavy > 5 * steep, "heavy {heavy} vs steep {steep}");
    }

    #[test]
    fn mean_size_matches_samples() {
        let p = 20_000;
        for dist in [
            Distribution::Uniform,
            Distribution::Windowed { r: 30 },
            Distribution::Normal,
            Distribution::POWER_LAW_STEEP,
        ] {
            let row = dist.sample_row(11, 0, p, 800);
            let emp = row.iter().sum::<usize>() as f64 / p as f64;
            let model = dist.mean_size(800, p);
            assert!(
                (emp - model).abs() / model.max(1.0) < 0.05,
                "{}: empirical {emp} vs model {model}",
                dist.label()
            );
        }
    }

    #[test]
    fn hotspot_concentrates_on_spaced_destinations() {
        let dist = Distribution::Hotspot { spacing: 4, damping: 16 };
        let p = 4096;
        let row = dist.sample_row(3, 0, p, 1024);
        let hot: Vec<usize> = row.iter().copied().step_by(4).collect();
        let cold: Vec<usize> = row.iter().copied().skip(1).step_by(4).collect();
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        assert!(mean(&hot) > 10.0 * mean(&cold), "hot {} cold {}", mean(&hot), mean(&cold));
        assert!(row.iter().all(|&s| s <= 1024));
        // mean_size matches the sampled mean.
        let emp = mean(&row);
        let model = dist.mean_size(1024, p);
        assert!((emp - model).abs() / model < 0.05, "emp {emp} vs model {model}");
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(Distribution::Windowed { r: 50 }.label(), "50-50");
        assert_eq!(Distribution::Windowed { r: 80 }.label(), "20-80");
        assert_eq!(Distribution::Uniform.label(), "uniform");
        assert_eq!(Distribution::Hotspot { spacing: 8, damping: 32 }.label(), "hotspot(1/8, /32)");
    }

    #[test]
    fn affine_coeffs_always_coprime() {
        for p in [2usize, 3, 4, 6, 12, 17, 100, 4096] {
            for h in 0..50u64 {
                let (a, _) = affine_coeffs(splitmix64(h), p);
                assert_eq!(gcd(a, p), 1, "p={p} h={h} a={a}");
                // And the affine map is a bijection.
                let b = 3 % p;
                let mut seen = vec![false; p];
                for x in 0..p {
                    let y = (a * x + b) % p;
                    assert!(!seen[y]);
                    seen[y] = true;
                }
            }
        }
    }
}
