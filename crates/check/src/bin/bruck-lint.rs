//! Source-lint gate: scan workspace sources for banned patterns, modulo the
//! audited allowlist at `crates/check/lint-allow.txt`.
//!
//! Exit status 0 iff there are zero unallowlisted findings. `scripts/verify.sh`
//! runs this as a tier-1 stage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = bruck_check::lint::repo_root();
    let report = match bruck_check::lint::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bruck-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for warning in &report.warnings {
        eprintln!("warning: {warning}");
    }
    if report.is_clean() {
        println!(
            "bruck-lint: clean ({} audited finding(s) within allowlist budgets)",
            report.suppressed
        );
        ExitCode::SUCCESS
    } else {
        for finding in &report.violations {
            eprintln!("{finding}");
        }
        eprintln!("bruck-lint: {} unallowlisted finding(s)", report.violations.len());
        ExitCode::FAILURE
    }
}
