//! Stress and robustness tests: larger communicators, repeated exchanges,
//! concurrent independent worlds, and determinism across runs.

use bruck_comm::{Communicator, ExchangePlan, ThreadComm};
use bruck_core::{alltoallv, packed_displs, AlltoallvAlgorithm};
use bruck_workload::{Distribution, SizeMatrix};

/// P = 64 threads, every algorithm, one pass: the biggest smoke test.
#[test]
fn all_algorithms_at_p64() {
    let p = 64;
    let m = SizeMatrix::generate(Distribution::Uniform, 0x64, p, 48);
    for algo in [
        AlltoallvAlgorithm::SpreadOut,
        AlltoallvAlgorithm::Vendor,
        AlltoallvAlgorithm::PaddedBruck,
        AlltoallvAlgorithm::PaddedAlltoall,
        AlltoallvAlgorithm::TwoPhaseBruck,
        AlltoallvAlgorithm::Sloav,
        AlltoallvAlgorithm::Hierarchical,
        AlltoallvAlgorithm::RankaTwoStage,
    ] {
        run_and_verify(algo, &m);
    }
}

fn run_and_verify(algo: AlltoallvAlgorithm, m: &SizeMatrix) {
    let p = m.p();
    ThreadComm::run(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
        for (i, b) in sendbuf.iter_mut().enumerate() {
            *b = (me.wrapping_mul(37) ^ i) as u8;
        }
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
            .unwrap();
        for src in 0..p {
            for i in 0..recvcounts[src] {
                // Reconstruct the sender-side byte: block src→me starts at
                // sender's sdispls[me].
                let sender_counts = m.sendcounts(src);
                let sender_displs = packed_displs(&sender_counts);
                let expect = (src.wrapping_mul(37) ^ (sender_displs[me] + i)) as u8;
                assert_eq!(recvbuf[rdispls[src] + i], expect, "{algo:?} src={src} i={i}");
            }
        }
    });
}

/// Thousands of back-to-back exchanges reusing one plan: no tag leakage, no
/// mailbox growth, stable results.
#[test]
fn repeated_exchanges_are_stable() {
    let p = 8;
    let m = SizeMatrix::generate(Distribution::Normal, 5, p, 64);
    let world = bruck_comm::World::new(p);
    std::thread::scope(|scope| {
        for rank in 0..p {
            let world = std::sync::Arc::clone(&world);
            let m = &m;
            scope.spawn(move || {
                let comm = ThreadComm::new(world, rank);
                repeated_exchange_body(&comm, m);
            });
        }
    });
    // Only after every rank has finished is "no undelivered messages" a
    // stable property.
    assert_eq!(world.pending_messages(), 0);
}

fn repeated_exchange_body(comm: &ThreadComm, m: &SizeMatrix) {
    {
        let me = comm.rank();
        let plan = ExchangePlan::negotiate(comm, m.sendcounts(me)).unwrap();
        let sendbuf = vec![me as u8; plan.send_bytes()];
        let mut recvbuf = plan.alloc_recvbuf();
        let mut first: Option<Vec<u8>> = None;
        for _ in 0..200 {
            alltoallv(
                AlltoallvAlgorithm::TwoPhaseBruck,
                comm,
                &sendbuf,
                plan.sendcounts(),
                plan.sdispls(),
                &mut recvbuf,
                plan.recvcounts(),
                plan.rdispls(),
            )
            .unwrap();
            match &first {
                None => first = Some(recvbuf.clone()),
                Some(f) => assert_eq!(f, &recvbuf),
            }
        }
    }
}

/// Two independent worlds running different algorithms concurrently must not
/// interfere (separate mailboxes, no global state).
#[test]
fn concurrent_worlds_are_isolated() {
    let t1 = std::thread::spawn(|| {
        let m = SizeMatrix::generate(Distribution::Uniform, 1, 6, 32);
        for _ in 0..20 {
            run_and_verify(AlltoallvAlgorithm::TwoPhaseBruck, &m);
        }
    });
    let t2 = std::thread::spawn(|| {
        let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 2, 5, 64);
        for _ in 0..20 {
            run_and_verify(AlltoallvAlgorithm::Sloav, &m);
        }
    });
    t1.join().unwrap();
    t2.join().unwrap();
}

/// Interleaving two different algorithms on the same communicator (as the
/// BPRA applications do when switching per iteration) stays correct.
#[test]
fn alternating_algorithms_on_one_communicator() {
    let p = 10;
    let m = SizeMatrix::generate(Distribution::Uniform, 9, p, 40);
    ThreadComm::run(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf = vec![me as u8; sendcounts.iter().sum()];
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        let algos = [
            AlltoallvAlgorithm::TwoPhaseBruck,
            AlltoallvAlgorithm::Vendor,
            AlltoallvAlgorithm::PaddedBruck,
            AlltoallvAlgorithm::RankaTwoStage,
            AlltoallvAlgorithm::Hierarchical,
        ];
        for round in 0..25 {
            let algo = algos[round % algos.len()];
            recvbuf.fill(0);
            alltoallv(
                algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap();
            for src in 0..p {
                assert!(recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]]
                    .iter()
                    .all(|&b| b == src as u8));
            }
        }
    });
}

/// Extremely skewed loads: one rank floods, everyone else is silent.
#[test]
fn flood_from_one_rank() {
    let p = 12;
    let mut rows = vec![vec![0usize; p]; p];
    for (d, cell) in rows[5].iter_mut().enumerate() {
        *cell = 4000 + d;
    }
    let m = SizeMatrix::from_rows(rows);
    for algo in
        [AlltoallvAlgorithm::TwoPhaseBruck, AlltoallvAlgorithm::PaddedBruck, AlltoallvAlgorithm::Sloav]
    {
        run_and_verify(algo, &m);
    }
}

/// `recv_timeout` honors its deadline even while the mailbox is being
/// hammered by a full-matrix flood on other tags. Runs under the
/// deterministic simulator's virtual clock, so the timed receive must fire
/// at *exactly* the budget — no "generous CI slack" epsilon, no wall-clock
/// flakiness, and the whole 100 ms wait costs zero real time. Swept over
/// several schedule seeds to cover different flood interleavings.
#[test]
fn recv_timeout_holds_deadline_under_full_matrix_load() {
    use std::time::Duration;
    use bruck_comm::SimComm;
    let p = 16;
    let deadline = Duration::from_millis(100);
    for sched_seed in [1u64, 2, 3] {
        SimComm::run(p, sched_seed, move |comm| {
            let me = comm.rank();
            // Flood: everyone sends bursts to everyone on tag 1...
            for round in 0..20 {
                for dest in 0..p {
                    if dest != me {
                        comm.send(dest, 1, &[round as u8; 256]).unwrap();
                    }
                }
            }
            // ...while every rank waits on a tag nobody ever sends.
            let err = comm.recv_timeout((me + 1) % p, 77, deadline).unwrap_err();
            match err {
                bruck_comm::CommError::Timeout { src, tag, waited } => {
                    assert_eq!(src, (me + 1) % p);
                    assert_eq!(tag, 77);
                    assert_eq!(
                        waited, deadline,
                        "rank {me} seed {sched_seed}: virtual wait must equal the budget exactly"
                    );
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
            // Drain the flood so the world ends clean.
            for _ in 0..20 {
                for src in 0..p {
                    if src != me {
                        comm.recv(src, 1).unwrap();
                    }
                }
            }
        });
    }
}

/// End-to-end fault-injection determinism: the same seed must produce the
/// same per-rank fault sequence regardless of how the ranks interleave
/// (decisions are keyed on per-edge message indices, not arrival order).
/// Runs under the deterministic simulator, which makes the claim *provable*
/// rather than probabilistic: the OS is out of the loop entirely, and
/// sweeping the schedule seed exercises interleavings a wall-clock run
/// might never hit.
#[test]
fn fault_injection_is_deterministic_across_runs() {
    use bruck_comm::{FaultComm, FaultPlan, SimComm};
    let p = 4;
    let run_once = |seed: u64, sched_seed: u64| -> Vec<Vec<bruck_comm::FaultEvent>> {
        let run = SimComm::run(p, sched_seed, move |comm| {
            let plan = FaultPlan::new(seed).with_drop(0.2).with_duplicate(0.2).with_corrupt(0.2);
            let fc = FaultComm::new(comm, plan);
            let me = fc.rank();
            // Fixed traffic: every rank sends 25 messages to each peer, then
            // drains whatever was actually delivered (drop/duplicate change
            // delivery counts, so drain by probe, not by expected count).
            for i in 0..25u8 {
                for dest in 0..p {
                    if dest != me {
                        fc.send(dest, 3, &[i, me as u8]).unwrap();
                    }
                }
            }
            // Synchronize on the *underlying* comm (fault-free), then drain
            // whatever the faulty edges actually delivered: eager sends have
            // all landed before the barrier completes, so probe sees it all.
            comm.barrier().unwrap();
            for src in 0..p {
                while comm.probe(src, 3).unwrap().is_some() {
                    comm.recv(src, 3).unwrap();
                }
            }
            fc.log()
        });
        run.results
    };
    let a = run_once(0xFA, 1);
    let b = run_once(0xFA, 1);
    assert_eq!(a, b, "same seed and schedule must inject the identical fault sequence");
    // Stronger than the wall-clock version could ever assert: a *different
    // interleaving* still yields the identical fault log, because decisions
    // key on per-edge message indices.
    let c = run_once(0xFA, 2);
    assert_eq!(a, c, "fault decisions must be independent of the schedule");
    let d = run_once(0xFB, 1);
    assert_ne!(a, d, "different seeds must diverge");
}

/// Every algorithm remains correct under adversarial schedule perturbation.
#[test]
fn all_algorithms_survive_chaos() {
    use bruck_comm::ChaosComm;
    let p = 9;
    let m = SizeMatrix::generate(Distribution::Uniform, 0xC4A05, p, 48);
    for seed in 0..3u64 {
        for algo in [
            AlltoallvAlgorithm::SpreadOut,
            AlltoallvAlgorithm::Vendor,
            AlltoallvAlgorithm::PaddedBruck,
            AlltoallvAlgorithm::TwoPhaseBruck,
            AlltoallvAlgorithm::Sloav,
            AlltoallvAlgorithm::Hierarchical,
            AlltoallvAlgorithm::RankaTwoStage,
        ] {
            ThreadComm::run(p, |comm| {
                let chaos = ChaosComm::new(comm, seed);
                let me = chaos.rank();
                let sendcounts = m.sendcounts(me);
                let sdispls = packed_displs(&sendcounts);
                let sendbuf = vec![me as u8; sendcounts.iter().sum()];
                let recvcounts = m.recvcounts(me);
                let rdispls = packed_displs(&recvcounts);
                let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
                alltoallv(
                    algo, &chaos, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                    &rdispls,
                )
                .unwrap();
                for src in 0..p {
                    assert!(
                        recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]]
                            .iter()
                            .all(|&b| b == src as u8),
                        "{algo:?} seed {seed}"
                    );
                }
            });
        }
    }
}
