//! Uniform all-to-all (`MPI_Alltoall` signature): the Bruck variants surveyed
//! in §2 of the paper plus the linear-time baselines.
//!
//! All functions share the same contract: `sendbuf` and `recvbuf` are
//! contiguous `P × block` byte arrays; after the call, the `i`-th block of
//! `recvbuf` on rank `p` equals the `p`-th block of `sendbuf` on rank `i`.

mod basic;
mod modified;
mod reference;
mod spread_out;
mod zero_copy;
mod zero_rotation;

pub use basic::{basic_bruck, basic_bruck_dt, basic_bruck_timed};
pub use modified::{modified_bruck, modified_bruck_dt, modified_bruck_timed};
pub use reference::reference_alltoall;
pub use spread_out::spread_out_alltoall;
pub use zero_copy::zero_copy_bruck_dt;
pub use zero_rotation::{zero_rotation_bruck, zero_rotation_bruck_timed};

use bruck_comm::{CommError, CommResult, Communicator};

use crate::PhaseTimes;

/// The six Bruck variants of the paper's Figure 2, plus the baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlltoallAlgorithm {
    /// Three-phase store-and-forward Bruck with explicit `memcpy` packing.
    BasicBruck,
    /// Basic Bruck driven by derived datatypes.
    BasicBruckDt,
    /// Bruck without the final rotation, explicit packing.
    ModifiedBruck,
    /// Modified Bruck driven by derived datatypes.
    ModifiedBruckDt,
    /// Datatype-only variant that avoids the per-step local copy.
    ZeroCopyBruckDt,
    /// The paper's synthesis: neither rotation phase (explicit packing).
    ZeroRotationBruck,
    /// Linear-time non-blocking point-to-point exchange.
    SpreadOut,
    /// Naive pairwise oracle used by the test suite.
    Reference,
}

impl AlltoallAlgorithm {
    /// Every variant, in the order the paper's Figure 2 lists them.
    pub const ALL: [AlltoallAlgorithm; 8] = [
        AlltoallAlgorithm::BasicBruck,
        AlltoallAlgorithm::BasicBruckDt,
        AlltoallAlgorithm::ModifiedBruck,
        AlltoallAlgorithm::ModifiedBruckDt,
        AlltoallAlgorithm::ZeroCopyBruckDt,
        AlltoallAlgorithm::ZeroRotationBruck,
        AlltoallAlgorithm::SpreadOut,
        AlltoallAlgorithm::Reference,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AlltoallAlgorithm::BasicBruck => "BasicBruck",
            AlltoallAlgorithm::BasicBruckDt => "BasicBruck-dt",
            AlltoallAlgorithm::ModifiedBruck => "ModifiedBruck",
            AlltoallAlgorithm::ModifiedBruckDt => "ModifiedBruck-dt",
            AlltoallAlgorithm::ZeroCopyBruckDt => "ZeroCopyBruck-dt",
            AlltoallAlgorithm::ZeroRotationBruck => "ZeroRotationBruck",
            AlltoallAlgorithm::SpreadOut => "SpreadOut",
            AlltoallAlgorithm::Reference => "Reference",
        }
    }
}

/// Dispatch a uniform all-to-all by algorithm id.
pub fn alltoall<C: Communicator + ?Sized>(
    algo: AlltoallAlgorithm,
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    match algo {
        AlltoallAlgorithm::BasicBruck => basic_bruck(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::BasicBruckDt => basic_bruck_dt(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::ModifiedBruck => modified_bruck(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::ModifiedBruckDt => modified_bruck_dt(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::ZeroCopyBruckDt => zero_copy_bruck_dt(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::ZeroRotationBruck => zero_rotation_bruck(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::SpreadOut => spread_out_alltoall(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::Reference => reference_alltoall(comm, sendbuf, recvbuf, block),
    }
}

/// Dispatch with per-phase timing where the variant reports it (non-timed
/// variants report everything under `comm`).
pub fn alltoall_timed<C: Communicator + ?Sized>(
    algo: AlltoallAlgorithm,
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<PhaseTimes> {
    match algo {
        AlltoallAlgorithm::BasicBruck => basic_bruck_timed(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::ModifiedBruck => modified_bruck_timed(comm, sendbuf, recvbuf, block),
        AlltoallAlgorithm::ZeroRotationBruck => {
            zero_rotation_bruck_timed(comm, sendbuf, recvbuf, block)
        }
        other => {
            let mut t = PhaseTimes::default();
            crate::phases::timed(&mut t.comm, || alltoall(other, comm, sendbuf, recvbuf, block))?;
            Ok(t)
        }
    }
}

pub(crate) fn validate_uniform<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &[u8],
    block: usize,
) -> CommResult<usize> {
    let p = comm.size();
    let need = p.checked_mul(block).ok_or(CommError::BadArgument("P * block overflows"))?;
    if sendbuf.len() != need {
        return Err(CommError::BadArgument("sendbuf.len() != P * block"));
    }
    if recvbuf.len() != need {
        return Err(CommError::BadArgument("recvbuf.len() != P * block"));
    }
    Ok(p)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use bruck_comm::ThreadComm;

    /// Deterministic pattern byte for (source, destination, offset-in-block).
    pub fn pattern(src: usize, dst: usize, idx: usize) -> u8 {
        (src.wrapping_mul(131) ^ dst.wrapping_mul(31) ^ idx.wrapping_mul(7)) as u8
    }

    /// Fill rank `src`'s send buffer for `p` ranks with `block`-byte blocks.
    pub fn fill_sendbuf(src: usize, p: usize, block: usize) -> Vec<u8> {
        let mut buf = vec![0u8; p * block];
        for dst in 0..p {
            for idx in 0..block {
                buf[dst * block + idx] = pattern(src, dst, idx);
            }
        }
        buf
    }

    /// Assert the uniform all-to-all postcondition on rank `me`'s recv buffer.
    pub fn check_recvbuf(me: usize, p: usize, block: usize, recvbuf: &[u8]) {
        for src in 0..p {
            for idx in 0..block {
                assert_eq!(
                    recvbuf[src * block + idx],
                    pattern(src, me, idx),
                    "rank {me}: block from {src} at byte {idx}"
                );
            }
        }
    }

    /// Run `algo` on every rank of a `p`-rank communicator and check output.
    pub fn run_and_check(algo: AlltoallAlgorithm, p: usize, block: usize) {
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let sendbuf = fill_sendbuf(me, p, block);
            let mut recvbuf = vec![0u8; p * block];
            alltoall(algo, comm, &sendbuf, &mut recvbuf, block).unwrap();
            check_recvbuf(me, p, block, &recvbuf);
        });
    }

    /// The sizes every variant must survive: powers of two, odd, prime, one.
    pub const TEST_SIZES: [usize; 9] = [1, 2, 3, 4, 5, 8, 12, 16, 17];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatcher_rejects_bad_buffer_sizes() {
        bruck_comm::ThreadComm::run(2, |comm| {
            let sendbuf = vec![0u8; 7]; // not 2 * block
            let mut recvbuf = vec![0u8; 8];
            let err = alltoall(AlltoallAlgorithm::BasicBruck, comm, &sendbuf, &mut recvbuf, 4);
            assert!(err.is_err());
        });
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = AlltoallAlgorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AlltoallAlgorithm::ALL.len());
    }
}
