//! [`ThreadComm`]: the real, threaded backend.
//!
//! One OS thread per rank ("MPI everywhere": the paper maps one MPI rank per
//! core; we map one rank per thread). All ranks share a [`World`] holding the
//! per-rank mailboxes; a send is a queue push of a shared [`MsgBuf`] view into
//! the destination's mailbox — a reference-count bump, not a payload copy.

use std::sync::Arc;

use crate::mailbox::{Mailbox, StoreStats};
use crate::{CommError, CommResult, Communicator, MsgBuf, Tag};

/// Render a rank closure's panic payload for rank-attributed propagation.
pub(crate) fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared state of one communicator: the mailboxes of all ranks plus the
/// world-level message accounting.
pub struct World {
    mailboxes: Vec<Mailbox>,
    stats: Arc<StoreStats>,
}

impl World {
    /// Create a world for `size` ranks.
    pub fn new(size: usize) -> Arc<Self> {
        assert!(size > 0, "communicator must have at least one rank");
        let stats = StoreStats::new();
        Arc::new(World {
            mailboxes: (0..size).map(|_| Mailbox::with_stats(Arc::clone(&stats))).collect(),
            stats,
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.mailboxes.len()
    }

    /// Undelivered messages across all ranks (should be 0 after a well-formed
    /// SPMD region completes; used by leak tests).
    ///
    /// O(1): reads the shared atomic maintained on every deposit/pop, rather
    /// than sweeping P mailbox locks (which at P = 32k used to cost more than
    /// the run being checked).
    pub fn pending_messages(&self) -> usize {
        self.stats.pending()
    }

    /// Match-map keys with drained queues across all ranks (must always be 0;
    /// used by leak tests). O(1) shared-counter read; see
    /// [`World::dead_match_keys_scan`] for the structural audit.
    pub fn dead_match_keys(&self) -> usize {
        self.stats.dead_keys()
    }

    /// Total messages ever deposited in this world (throughput accounting).
    pub fn total_messages(&self) -> usize {
        self.stats.deposited()
    }

    /// O(P) structural sweep counting undelivered messages directly in the
    /// match maps. Cross-checks [`World::pending_messages`] in tests; prefer
    /// the O(1) form everywhere else.
    pub fn pending_messages_scan(&self) -> usize {
        self.mailboxes.iter().map(Mailbox::pending).sum()
    }

    /// O(P) structural sweep counting drained-but-unremoved match keys.
    /// Cross-checks [`World::dead_match_keys`] in tests.
    pub fn dead_match_keys_scan(&self) -> usize {
        self.mailboxes.iter().map(Mailbox::dead_keys).sum()
    }
}

/// One rank's handle onto a [`World`]. Cheap to clone-construct per thread.
pub struct ThreadComm {
    world: Arc<World>,
    rank: usize,
}

impl ThreadComm {
    /// A handle for `rank` in `world`.
    pub fn new(world: Arc<World>, rank: usize) -> Self {
        assert!(rank < world.size(), "rank {rank} out of range");
        ThreadComm { world, rank }
    }

    /// Run an SPMD region: spawn `size` threads, each executing `f` with its
    /// own rank's communicator, and return the per-rank results in rank order.
    ///
    /// This is the moral equivalent of `mpiexec -n <size>`. Threads get a
    /// modest stack (2 MiB) so that runs with hundreds of ranks stay cheap.
    ///
    /// # Panics
    /// Propagates a panic from any rank — after *all* threads are joined, and
    /// with the failing rank's id prefixed to the message (`rank <i>
    /// panicked: …`), because at hundreds of ranks a bare join error is
    /// undebuggable.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&ThreadComm) -> T + Sync,
    {
        Self::run_with_stack(size, 2 << 20, f)
    }

    /// [`ThreadComm::run`] with an explicit per-rank stack size in bytes.
    pub fn run_with_stack<T, F>(size: usize, stack: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&ThreadComm) -> T + Sync,
    {
        let world = World::new(size);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let world = Arc::clone(&world);
                    std::thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .stack_size(stack)
                        .spawn_scoped(scope, move || {
                            let comm = ThreadComm::new(world, rank);
                            f(&comm)
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            // Join *every* thread before propagating any panic: unwinding
            // out of the scope with panicked-but-unjoined threads would turn
            // one rank's bug into a double panic (process abort).
            let outcomes: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let mut results = Vec::with_capacity(size);
            for (rank, outcome) in outcomes.into_iter().enumerate() {
                match outcome {
                    Ok(v) => results.push(v),
                    Err(payload) => {
                        panic!("rank {rank} panicked: {}", describe_panic(payload.as_ref()))
                    }
                }
            }
            results
        })
    }

    /// The shared world (for diagnostics).
    pub fn world(&self) -> &World {
        &self.world
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.size()
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.check_rank(dest)?;
        self.world.mailboxes[dest].push(self.rank, tag, buf);
        Ok(())
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.check_rank(src)?;
        Ok(self.world.mailboxes[self.rank].pop(src, tag))
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        self.check_rank(src)?;
        // pop_bounded checks the length under the mailbox lock *before*
        // consuming, so a Truncated error leaves the message at the front of
        // its queue and a retry with a bigger buffer still sees it.
        match self.world.mailboxes[self.rank].pop_bounded(src, tag, buf.len()) {
            Ok(msg) => {
                buf[..msg.len()].copy_from_slice(&msg);
                Ok(msg.len())
            }
            Err(message_len) => {
                Err(CommError::Truncated { message_len, buffer_len: buf.len() })
            }
        }
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.check_rank(src)?;
        Ok(self.world.mailboxes[self.rank].probe(src, tag))
    }

    fn recv_buf_timeout(
        &self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> CommResult<MsgBuf> {
        self.check_rank(src)?;
        let start = std::time::Instant::now();
        // pop_timeout parks on the mailbox condvar (no polling), waking on
        // arrival or deadline — this is the override the trait docs promise.
        match self.world.mailboxes[self.rank].pop_timeout(src, tag, timeout) {
            Some(msg) => Ok(msg),
            None => Err(CommError::Timeout { src, tag, waited: start.elapsed() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn ring_pass_all_sizes() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            let results = ThreadComm::run(p, |comm| {
                let me = comm.rank();
                let right = (me + 1) % comm.size();
                let left = (me + comm.size() - 1) % comm.size();
                comm.send(right, 5, &[me as u8]).unwrap();
                comm.recv(left, 5).unwrap()[0] as usize
            });
            for (me, got) in results.iter().enumerate() {
                assert_eq!(*got, (me + p - 1) % p);
            }
        }
    }

    #[test]
    fn self_send_works() {
        let r = ThreadComm::run(3, |comm| {
            comm.send(comm.rank(), 9, &[comm.rank() as u8 + 10]).unwrap();
            comm.recv(comm.rank(), 9).unwrap()[0]
        });
        assert_eq!(r, vec![10, 11, 12]);
    }

    #[test]
    fn send_buf_transfers_the_view_without_copying() {
        let ptrs = ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                let region = MsgBuf::from_vec((0u8..64).collect());
                let ptr = region.as_slice().as_ptr() as usize;
                comm.send_buf(1, 0, region.slice(16..48)).unwrap();
                (ptr, 0)
            } else {
                let got = comm.recv_buf(0, 0).unwrap();
                assert_eq!(got, (16u8..48).collect::<Vec<u8>>());
                (0, got.as_slice().as_ptr() as usize)
            }
        });
        // The receiver's view aliases the sender's packed region.
        assert_eq!(ptrs[0].0 + 16, ptrs[1].1);
    }

    #[test]
    fn truncated_recv_is_non_destructive() {
        // Regression test: recv_into used to pop-then-error, silently
        // dropping the message it claimed to leave queued.
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &(0u8..16).collect::<Vec<u8>>()).unwrap();
            } else {
                let mut small = [0u8; 4];
                let err = comm.recv_into(0, 0, &mut small).unwrap_err();
                assert_eq!(err, CommError::Truncated { message_len: 16, buffer_len: 4 });
                // The message must still be there: retry with room succeeds.
                let mut big = [0u8; 16];
                let n = comm.recv_into(0, 0, &mut big).unwrap();
                assert_eq!(n, 16);
                assert_eq!(big.to_vec(), (0u8..16).collect::<Vec<u8>>());
                assert_eq!(comm.world().pending_messages(), 0);
            }
        });
    }

    #[test]
    fn invalid_rank_errors() {
        ThreadComm::run(2, |comm| {
            assert!(matches!(comm.send(5, 0, &[]), Err(CommError::InvalidRank { rank: 5, size: 2 })));
            assert!(matches!(comm.irecv(9, 0), Err(CommError::InvalidRank { rank: 9, size: 2 })));
        });
    }

    #[test]
    fn recv_timeout_errors_then_delivers() {
        use std::time::Duration;
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                // Nothing sent yet: a typed Timeout naming (src, tag, waited).
                let err = comm.recv_timeout(1, 9, Duration::from_millis(20)).unwrap_err();
                match err {
                    CommError::Timeout { src: 1, tag: 9, waited } => {
                        assert!(waited >= Duration::from_millis(20));
                    }
                    other => panic!("expected Timeout, got {other:?}"),
                }
                comm.send(1, 1, &[0]).unwrap(); // release rank 1
                let got = comm.recv_timeout(1, 9, Duration::from_secs(5)).unwrap();
                assert_eq!(got, vec![42]);
            } else {
                comm.recv(0, 1).unwrap();
                comm.send(0, 9, &[42]).unwrap();
            }
        });
    }

    #[test]
    fn barrier_all_sizes() {
        for p in [1usize, 2, 3, 4, 7, 16, 33] {
            ThreadComm::run(p, |comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
            });
        }
    }

    #[test]
    fn allreduce_max_min_sum() {
        for p in [1usize, 2, 3, 5, 8, 17] {
            let maxes = ThreadComm::run(p, |comm| {
                comm.allreduce_u64((comm.rank() as u64 + 3) * 7, ReduceOp::Max).unwrap()
            });
            assert!(maxes.iter().all(|&m| m == (p as u64 + 2) * 7));
            let mins =
                ThreadComm::run(p, |comm| comm.allreduce_u64(comm.rank() as u64 + 3, ReduceOp::Min).unwrap());
            assert!(mins.iter().all(|&m| m == 3));
            let sums =
                ThreadComm::run(p, |comm| comm.allreduce_u64(comm.rank() as u64, ReduceOp::Sum).unwrap());
            let expect = (p as u64 * (p as u64 - 1)) / 2;
            assert!(sums.iter().all(|&s| s == expect));
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        for p in [1usize, 2, 3, 6, 9] {
            let all = ThreadComm::run(p, |comm| comm.allgather_u64(comm.rank() as u64 * 100).unwrap());
            let expect: Vec<u64> = (0..p as u64).map(|r| r * 100).collect();
            for got in all {
                assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn gather_bytes_at_each_root() {
        let p = 5;
        for root in 0..p {
            let out = ThreadComm::run(p, move |comm| {
                let payload = vec![comm.rank() as u8; comm.rank() + 1];
                comm.gather_bytes(root, &payload).unwrap()
            });
            for (rank, o) in out.into_iter().enumerate() {
                if rank == root {
                    let gathered = o.expect("root gets data");
                    for (src, msg) in gathered.iter().enumerate() {
                        assert_eq!(msg, &vec![src as u8; src + 1]);
                    }
                } else {
                    assert!(o.is_none());
                }
            }
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for p in [1usize, 2, 3, 5, 8, 12] {
            for root in [0, p / 2, p - 1] {
                let out = ThreadComm::run(p, move |comm| {
                    let data = if comm.rank() == root { vec![7u8, 8, 9] } else { vec![] };
                    comm.bcast_bytes(root, &data).unwrap()
                });
                assert!(out.iter().all(|v| v == &[7u8, 8, 9]));
            }
        }
    }

    #[test]
    fn alltoall_counts_is_transpose() {
        for p in [1usize, 2, 3, 4, 7, 16] {
            let out = ThreadComm::run(p, |comm| {
                let me = comm.rank();
                // sendcounts[d] encodes (me, d) so we can check the transpose.
                let counts: Vec<usize> = (0..p).map(|d| me * 1000 + d).collect();
                comm.alltoall_counts(&counts).unwrap()
            });
            for (me, got) in out.iter().enumerate() {
                for (src, &c) in got.iter().enumerate() {
                    assert_eq!(c, src * 1000 + me, "p={p} me={me} src={src}");
                }
            }
        }
    }

    #[test]
    fn nonovertaking_same_tag() {
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u8 {
                    comm.send(1, 3, &[i]).unwrap();
                }
            } else {
                for i in 0..100u8 {
                    assert_eq!(comm.recv(0, 3).unwrap(), vec![i]);
                }
            }
        });
    }

    #[test]
    fn no_leaked_messages_after_collectives() {
        let world = World::new(6);
        std::thread::scope(|scope| {
            for rank in 0..6 {
                let world = Arc::clone(&world);
                scope.spawn(move || {
                    let comm = ThreadComm::new(world, rank);
                    comm.barrier().unwrap();
                    comm.allreduce_u64(comm.rank() as u64, ReduceOp::Sum).unwrap();
                    comm.allgather_u64(1).unwrap();
                    comm.barrier().unwrap();
                });
            }
        });
        // Every message sent by the collectives must have been consumed.
        assert_eq!(world.pending_messages(), 0);
        assert_eq!(world.dead_match_keys(), 0);
        // The O(1) counters agree with the O(P) structural sweeps.
        assert_eq!(world.pending_messages_scan(), 0);
        assert_eq!(world.dead_match_keys_scan(), 0);
        assert!(world.total_messages() > 0, "collectives must have moved messages");
    }

    #[test]
    fn atomic_counters_match_structural_scan_mid_flight() {
        // Deposit without receiving: the cheap counters and the structural
        // sweeps must agree on the in-flight message count.
        let world = World::new(4);
        std::thread::scope(|scope| {
            for rank in 0..4 {
                let world = Arc::clone(&world);
                scope.spawn(move || {
                    let comm = ThreadComm::new(world, rank);
                    for dst in 0..4 {
                        comm.send(dst, 7, &[rank as u8]).unwrap();
                    }
                });
            }
        });
        assert_eq!(world.pending_messages(), 16);
        assert_eq!(world.pending_messages_scan(), 16);
        assert_eq!(world.total_messages(), 16);
        assert_eq!(world.dead_match_keys(), 0);
        assert_eq!(world.dead_match_keys_scan(), 0);
    }

    #[test]
    fn rank_panic_propagates_with_rank_id() {
        let caught = std::panic::catch_unwind(|| {
            ThreadComm::run(4, |comm| {
                if comm.rank() == 2 {
                    panic!("injected bug");
                }
                // Other ranks return immediately; run must join them all
                // before propagating rank 2's panic.
                comm.rank()
            })
        });
        let payload = caught.expect_err("rank 2 panicked");
        let msg = describe_panic(payload.as_ref());
        assert!(msg.contains("rank 2 panicked"), "missing rank id: {msg}");
        assert!(msg.contains("injected bug"), "missing original message: {msg}");
    }
}
