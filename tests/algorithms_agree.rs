//! Property tests: every non-uniform algorithm computes exactly the same
//! exchange as the pairwise reference oracle, over randomized size matrices
//! (including zeros, skew, and non-power-of-two communicators), and every
//! uniform variant agrees with its oracle too.
//!
//! Seeded-random (SplitMix64) rather than `proptest`-driven: the workspace
//! builds hermetically with zero external crates, so each property runs a
//! fixed number of deterministic random cases instead of shrinking searches.
//!
//! Two transport-level invariants ride along with the agreement checks:
//! - **No leaks**: after every algorithm completes on every rank, the world
//!   holds zero undelivered messages and zero drained-but-unremoved match
//!   keys.
//! - **Zero-copy data phase**: every data-phase send (tag below
//!   [`bruck_comm::RESERVED_TAG_BASE`]) goes through the `MsgBuf` path —
//!   no per-message payload copy on the send side; packing regions are the
//!   only copies.

use std::sync::Arc;

use bruck_comm::{Communicator, CountingComm, ThreadComm, World, RESERVED_TAG_BASE};
use bruck_core::{alltoall, alltoallv, packed_displs, AlltoallAlgorithm, AlltoallvAlgorithm};
use bruck_workload::{SizeMatrix, SplitMix64};

const CASES: u64 = 24;

/// A random square size matrix with arbitrary (possibly zero) block sizes.
fn random_matrix(rng: &mut SplitMix64) -> SizeMatrix {
    let p = rng.next_range(2, 12) as usize;
    let rows: Vec<Vec<usize>> =
        (0..p).map(|_| (0..p).map(|_| rng.next_usize(200)).collect()).collect();
    SizeMatrix::from_rows(rows)
}

/// Pattern byte for (src, dst, idx): distinct across blocks.
fn pat(src: usize, dst: usize, idx: usize) -> u8 {
    (src.wrapping_mul(101) ^ dst.wrapping_mul(17) ^ idx) as u8
}

/// Run one algorithm over the matrix on an explicit `World` (so the caller
/// can inspect transport state after the run); return each rank's receive
/// buffer.
fn run(algo: AlltoallvAlgorithm, m: &SizeMatrix) -> Vec<Vec<u8>> {
    let p = m.p();
    let world = World::new(p);
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(p);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let world = Arc::clone(&world);
                s.spawn(move || {
                    let comm = ThreadComm::new(world, rank);
                    let me = comm.rank();
                    let sendcounts = m.sendcounts(me);
                    let sdispls = packed_displs(&sendcounts);
                    let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
                    for dst in 0..p {
                        for idx in 0..sendcounts[dst] {
                            sendbuf[sdispls[dst] + idx] = pat(me, dst, idx);
                        }
                    }
                    let recvcounts = m.recvcounts(me);
                    let rdispls = packed_displs(&recvcounts);
                    let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
                    alltoallv(
                        algo, &comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                        &rdispls,
                    )
                    .unwrap();
                    recvbuf
                })
            })
            .collect();
        out.extend(handles.into_iter().map(|h| h.join().expect("rank panicked")));
    });
    // World-level leak check: every message delivered, every drained
    // match-queue key removed.
    assert_eq!(world.pending_messages(), 0, "{}: leaked messages", algo.name());
    assert_eq!(world.dead_match_keys(), 0, "{}: leaked match keys", algo.name());
    out
}

/// All eight real algorithms agree with the reference on random inputs.
#[test]
fn all_nonuniform_algorithms_agree() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA9EE ^ case);
        let m = random_matrix(&mut rng);
        let expect = run(AlltoallvAlgorithm::Reference, &m);
        for algo in [
            AlltoallvAlgorithm::SpreadOut,
            AlltoallvAlgorithm::Vendor,
            AlltoallvAlgorithm::PaddedBruck,
            AlltoallvAlgorithm::PaddedAlltoall,
            AlltoallvAlgorithm::TwoPhaseBruck,
            AlltoallvAlgorithm::Sloav,
            AlltoallvAlgorithm::Hierarchical,
            AlltoallvAlgorithm::RankaTwoStage,
        ] {
            let got = run(algo, &m);
            assert_eq!(got, expect, "case {case}: {} disagrees with reference", algo.name());
        }
    }
}

/// All uniform variants agree with the uniform reference.
#[test]
fn all_uniform_algorithms_agree() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x0F12 ^ case);
        let p = rng.next_range(2, 14) as usize;
        let n = rng.next_usize(48);
        let run_u = |algo: AlltoallAlgorithm| -> Vec<Vec<u8>> {
            ThreadComm::run(p, |comm| {
                let me = comm.rank();
                let mut sendbuf = vec![0u8; p * n];
                for dst in 0..p {
                    for idx in 0..n {
                        sendbuf[dst * n + idx] = pat(me, dst, idx);
                    }
                }
                let mut recvbuf = vec![0u8; p * n];
                alltoall(algo, comm, &sendbuf, &mut recvbuf, n).unwrap();
                recvbuf
            })
        };
        let expect = run_u(AlltoallAlgorithm::Reference);
        for algo in [
            AlltoallAlgorithm::BasicBruck,
            AlltoallAlgorithm::BasicBruckDt,
            AlltoallAlgorithm::ModifiedBruck,
            AlltoallAlgorithm::ModifiedBruckDt,
            AlltoallAlgorithm::ZeroCopyBruckDt,
            AlltoallAlgorithm::ZeroRotationBruck,
            AlltoallAlgorithm::SpreadOut,
        ] {
            let got = run_u(algo);
            assert_eq!(got, expect, "case {case}: {} disagrees with reference", algo.name());
        }
    }
}

/// Non-uniform algorithms degenerate correctly to the uniform case.
#[test]
fn nonuniform_handles_uniform_matrices() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1D30 ^ case);
        let p = rng.next_range(2, 10) as usize;
        let n = rng.next_usize(64);
        let m = SizeMatrix::uniform(p, n);
        let expect = run(AlltoallvAlgorithm::Reference, &m);
        let got = run(AlltoallvAlgorithm::TwoPhaseBruck, &m);
        assert_eq!(got, expect, "case {case}");
    }
}

/// The zero-copy guarantee: for every algorithm, every data-phase send (all
/// tags below the reserved collective range) travels as a `MsgBuf` view —
/// the transport records no send-side payload copy. The per-step/per-region
/// packs are the only copies, which is exactly the paper's "pack once"
/// model.
#[test]
fn data_phase_sends_are_zero_copy_for_every_algorithm() {
    let m = SizeMatrix::generate(bruck_workload::Distribution::Uniform, 7, 12, 96);
    let p = m.p();
    for algo in AlltoallvAlgorithm::ALL {
        let logs = ThreadComm::run(p, |comm| {
            let counting = CountingComm::new(comm);
            let me = counting.rank();
            let sendcounts = m.sendcounts(me);
            let sdispls = packed_displs(&sendcounts);
            let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
            for dst in 0..p {
                for idx in 0..sendcounts[dst] {
                    sendbuf[sdispls[dst] + idx] = pat(me, dst, idx);
                }
            }
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            alltoallv(
                algo, &counting, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                &rdispls,
            )
            .unwrap();
            counting.log()
        });
        let mut data_sends = 0usize;
        for log in &logs {
            for rec in log {
                if rec.tag < RESERVED_TAG_BASE {
                    data_sends += 1;
                    assert!(
                        !rec.copied,
                        "{}: data-phase send (tag {:#x}, {} bytes) copied its payload",
                        algo.name(),
                        rec.tag,
                        rec.len
                    );
                }
            }
        }
        assert!(data_sends > 0, "{}: expected data-phase traffic", algo.name());
    }
}
