//! A flow-insensitive points-to analysis (Andersen-style, copy edges) on the
//! distributed Datalog engine — a concrete instance of the paper's §5.2
//! program-analysis workload family, with real analysis semantics rather
//! than a synthetic load schedule:
//!
//! ```text
//! pts(V, O) :- new(V, O).           % allocation sites
//! pts(D, O) :- assign(D, S), pts(S, O).   % copy propagation
//! ```
//!
//! Fixpoint depth equals the longest copy chain; fact volume grows with the
//! density of copy edges — the same many-iterations / varying-load profile
//! that makes algorithm choice matter in Figure 12.

use std::collections::HashSet;

use bruck_comm::{CommResult, Communicator};
use bruck_core::AlltoallvAlgorithm;

use crate::datalog::{evaluate, AtomPat, Program, Rule, Term};
use crate::{DatalogResult, Tuple};

/// Relation ids of the points-to program.
pub const REL_NEW: usize = 0;
/// `assign(dst, src)` copy edges.
pub const REL_ASSIGN: usize = 1;
/// The derived `pts(var, obj)` relation.
pub const REL_PTS: usize = 2;

/// The two-rule Andersen program.
pub fn points_to_program() -> Program {
    let v = Term::Var;
    Program {
        relations: 3,
        rules: vec![
            Rule::copy_rule(AtomPat::new(REL_PTS, v(0), v(1)), AtomPat::new(REL_NEW, v(0), v(1))),
            Rule::join_rule(
                AtomPat::new(REL_PTS, v(0), v(2)),
                AtomPat::new(REL_ASSIGN, v(0), v(1)),
                AtomPat::new(REL_PTS, v(1), v(2)),
            ),
        ],
    }
}

/// A synthetic input "program": allocation facts and copy edges.
#[derive(Debug, Clone, Default)]
pub struct PointsToInput {
    /// `new(v, o)` facts.
    pub news: Vec<Tuple>,
    /// `assign(dst, src)` facts.
    pub assigns: Vec<Tuple>,
}

impl PointsToInput {
    /// Generate a synthetic program: `chains` copy chains of length
    /// `chain_len`, each rooted at `roots` allocation sites, plus `merges`
    /// random cross-chain copies. Deterministic in `seed`.
    pub fn generate(chains: usize, chain_len: usize, roots: usize, merges: usize, seed: u64) -> Self {
        let mut input = PointsToInput::default();
        let var = |c: usize, i: usize| (c * (chain_len + 1) + i) as u64;
        let mut h = seed;
        let mut next = move || {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            h
        };
        for c in 0..chains {
            for r in 0..roots {
                input.news.push((var(c, 0), (c * roots + r) as u64 + 1_000_000));
            }
            for i in 0..chain_len {
                // assign(next, prev): objects flow down the chain.
                input.assigns.push((var(c, i + 1), var(c, i)));
            }
        }
        for _ in 0..merges {
            let c1 = next() as usize % chains.max(1);
            let c2 = next() as usize % chains.max(1);
            let i1 = next() as usize % (chain_len + 1);
            let i2 = next() as usize % (chain_len + 1);
            if var(c1, i1) != var(c2, i2) {
                input.assigns.push((var(c1, i1), var(c2, i2)));
            }
        }
        input
    }

    /// Facts in engine order (`[new, assign, pts]`).
    pub fn facts(&self) -> Vec<Vec<Tuple>> {
        vec![self.news.clone(), self.assigns.clone(), Vec::new()]
    }
}

/// Run the analysis distributed; `algo` picks the per-iteration all-to-all.
pub fn points_to_analysis<C: Communicator + ?Sized>(
    comm: &C,
    algo: AlltoallvAlgorithm,
    input: &PointsToInput,
) -> CommResult<DatalogResult> {
    evaluate(comm, algo, &points_to_program(), &input.facts())
}

/// Sequential oracle: naive worklist evaluation.
pub fn sequential_points_to(input: &PointsToInput) -> HashSet<Tuple> {
    let mut pts: HashSet<Tuple> = input.news.iter().copied().collect();
    loop {
        let mut added = false;
        let snapshot: Vec<Tuple> = pts.iter().copied().collect();
        for &(d, s) in &input.assigns {
            for &(v, o) in &snapshot {
                if v == s && pts.insert((d, o)) {
                    added = true;
                }
            }
        }
        if !added {
            return pts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_comm::ThreadComm;

    #[test]
    fn tiny_program_by_hand() {
        // x = new A; y = x; z = y;  → all three point to A.
        let input = PointsToInput {
            news: vec![(1, 100)],
            assigns: vec![(2, 1), (3, 2)],
        };
        let expect = sequential_points_to(&input);
        assert_eq!(expect.len(), 3);
        let results = ThreadComm::run(3, move |comm| {
            let r = points_to_analysis(comm, AlltoallvAlgorithm::TwoPhaseBruck, &input).unwrap();
            (r.total_facts[REL_PTS], r.local[REL_PTS].iter().copied().collect::<Vec<_>>())
        });
        assert!(results.iter().all(|(t, _)| *t == 3));
        let mut all: Vec<Tuple> = results.into_iter().flat_map(|(_, l)| l).collect();
        all.sort_unstable();
        let mut want: Vec<Tuple> = expect.into_iter().collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn generated_programs_match_oracle() {
        for (chains, len, roots, merges) in [(2usize, 8usize, 2usize, 3usize), (4, 5, 1, 6)] {
            let input = PointsToInput::generate(chains, len, roots, merges, 42);
            let expect = sequential_points_to(&input);
            for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
                let inp = input.clone();
                let totals = ThreadComm::run(4, move |comm| {
                    points_to_analysis(comm, algo, &inp).unwrap().total_facts[REL_PTS]
                });
                assert!(
                    totals.iter().all(|&t| t == expect.len() as u64),
                    "{algo:?}: {totals:?} vs {}",
                    expect.len()
                );
            }
        }
    }

    #[test]
    fn iteration_depth_tracks_chain_length() {
        let shallow = PointsToInput::generate(6, 3, 1, 0, 1);
        let deep = PointsToInput::generate(1, 30, 1, 0, 1);
        let iters = |input: PointsToInput| {
            ThreadComm::run(3, move |comm| {
                points_to_analysis(comm, AlltoallvAlgorithm::Vendor, &input).unwrap().iterations
            })
            .remove(0)
        };
        assert!(iters(deep) > 3 * iters(shallow));
    }

    #[test]
    fn per_iteration_stats_available_for_fig12_style_plots() {
        let input = PointsToInput::generate(3, 10, 2, 4, 7);
        let results = ThreadComm::run(4, move |comm| {
            points_to_analysis(comm, AlltoallvAlgorithm::TwoPhaseBruck, &input).unwrap()
        });
        let r = &results[0];
        assert_eq!(r.per_iteration.len(), r.iterations);
        assert!(r.per_iteration.iter().any(|i| i.exchange.n_max > 0));
    }
}
