//! # bruck-comm — a threaded, MPI-like message-passing runtime
//!
//! This crate is the substrate beneath the all-to-all algorithms in
//! `bruck-core`. It provides exactly the slice of MPI the HPDC '22 paper
//! *Optimizing the Bruck Algorithm for Non-uniform All-to-all Communication*
//! relies on:
//!
//! * **SPMD ranks** — [`ThreadComm::run`] plays the role of `mpiexec -n P`,
//!   mapping one rank to one OS thread ("MPI everywhere").
//! * **Tagged point-to-point** — eager [`Communicator::send`] /
//!   blocking [`Communicator::recv`] with `(source, tag)` matching and MPI's
//!   non-overtaking guarantee, plus `isend`/`irecv`/`sendrecv` forms.
//! * **Collectives** — dissemination [`Communicator::barrier`], recursive-
//!   doubling [`Communicator::allreduce_u64`], ring
//!   [`Communicator::allgather_u64`], binomial [`Communicator::bcast_bytes`],
//!   and the counts handshake [`Communicator::alltoall_counts`] — all built
//!   from point-to-point as default trait methods, so every backend shares
//!   the exact same message schedule.
//! * **Instrumentation** — [`CountingComm`] logs every outgoing message; the
//!   cost model in `bruck-model` is validated against these logs. [`TraceComm`]
//!   records full vector-clocked schedules for `bruck-check`'s protocol
//!   analysis passes.
//! * **Fault tolerance** — [`FaultComm`] injects seeded message drop /
//!   duplication / corruption / delay and scripted rank stall / crash;
//!   [`ReliableComm`] repairs a lossy transport back to exactly-once in-order
//!   delivery (sequence numbers + checksums + ack/retry with bounded
//!   backoff); [`DeadlineComm`] bounds every blocking receive by a shared
//!   wall-clock budget, surfacing [`CommError::Timeout`] /
//!   [`CommError::RankFailed`] for graceful-degradation drivers.
//! * **Deterministic simulation** — [`SimComm`] runs the same unmodified
//!   algorithms under a seeded cooperative scheduler with a virtual clock:
//!   one runnable rank at a time, recorded/replayable schedules
//!   ([`ScheduleTrace`]), proved deadlocks instead of hangs, and
//!   delta-debugging minimization of failing schedules ([`shrink_choices`]).
//! * **Event-driven scale-out** — [`EventComm`] multiplexes many lightweight
//!   rank tasks over a fixed pool of worker OS threads (run-to-block +
//!   log-replay suspension), so the full algorithm suite executes at
//!   P = 32,768 ranks on a handful of threads, with a virtual clock, proved
//!   deadlocks, and scheduler telemetry ([`EventReport`]).
//!
//! ## Example
//!
//! ```
//! use bruck_comm::{Communicator, ReduceOp, ThreadComm};
//!
//! let sums = ThreadComm::run(4, |comm| {
//!     comm.allreduce_u64(comm.rank() as u64, ReduceOp::Sum).unwrap()
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

#![deny(missing_docs)]

mod chaos;
mod clock;
mod communicator;
mod counting;
mod deadline;
mod error;
mod event;
mod fault;
mod mailbox;
mod metered;
mod msgbuf;
mod agree;
mod detect;
mod plan;
mod reliable;
mod reduce;
mod retry;
mod runtime;
mod sim;
mod subcomm;
mod thread_comm;
mod trace;
mod vector;

pub use chaos::ChaosComm;
pub use communicator::{Communicator, RecvReq, RESERVED_TAG_BASE};
pub use counting::{CommStats, CopyStats, CountingComm, SentRecord};
pub use deadline::DeadlineComm;
pub use error::{CommError, CommResult};
pub use event::EventComm;
pub use fault::{EdgeFaults, FaultComm, FaultEvent, FaultKind, FaultPlan, ScriptedFault};
pub use metered::{
    ChannelTotals, Histogram, MeteredComm, Metrics, PeerCounters, TagCounters, HIST_BUCKETS,
};
pub use msgbuf::MsgBuf;
pub use agree::{agree_survivors, AgreeConfig, AgreeOutcome};
pub use detect::{detect_failures, DetectorConfig, Suspicion};
pub use plan::ExchangePlan;
pub use reliable::{ReliableComm, ReliableConfig};
pub use reduce::ReduceOp;
pub use retry::RetryPolicy;
pub use runtime::{
    AuditEvent, AuditKind, EventReport, EventRun, EventStep, EventVerifyOpts, EventWorld,
    WakeSource,
};
pub use sim::{
    shrink_choices, ScheduleTrace, SimComm, SimConfig, SimOp, SimReport, SimRun, SimStep,
    SimWorld,
};
pub use subcomm::{ShrinkComm, SubComm, SUBCOMM_MAX_TAG};
pub use thread_comm::{ThreadComm, World};
pub use trace::{
    BlockedOn, Event, EventKind, MsgRecord, Schedule, TraceComm, TraceState, VectorClock,
};
pub use vector::VectorCollectives;

/// Message tag. Algorithms in this workspace tag data messages with their
/// communication-step index; tags at or above [`RESERVED_TAG_BASE`] are
/// reserved for the built-in collectives.
pub type Tag = u32;
