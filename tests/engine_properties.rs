//! Property tests over the engine's knob space: **any** valid
//! [`EngineConfig`] — not just the nine named points — must deliver the
//! right bytes on a seeded workload, conserve bytes globally, and stay
//! inside its tag block.
//!
//! A deterministic xorshift generator drives the sweep (the workspace is
//! std-only, so this is proptest-shaped without the dependency): each
//! iteration draws a config, a world size, and a distribution, runs the
//! generalized engine under [`MeteredComm`] on `ThreadComm`, and checks
//!
//! 1. every rank's receive buffer equals the pairwise reference expectation,
//! 2. world-total logical sent bytes == world-total logical received bytes,
//! 3. every logical tag with traffic lies in the config's allowed tag set.

use std::collections::BTreeSet;

use bruck_comm::{Communicator, MeteredComm, Metrics, ThreadComm, RESERVED_TAG_BASE};
use bruck_core::common::{
    data_tag, meta_tag, uniform_step_tag, HIER_GATHER_TAG, HIER_LEADER_TAG, HIER_SCATTER_TAG,
    RANKA_STAGE1_TAG, RANKA_STAGE2_TAG, SPREAD_TAG,
};
use bruck_core::{
    configurable_alltoallv_general, packed_displs, EngineConfig, EngineTopology,
    IntermediateLayout, PaddingRule,
};
use bruck_workload::{Distribution, SizeMatrix};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Draw an arbitrary *valid* config (validate() must accept everything this
/// produces; the engine must then deliver correct bytes for all of them).
fn arb_config(rng: &mut Rng) -> EngineConfig {
    let topology = match rng.below(5) {
        0 => EngineTopology::Oracle,
        1 => EngineTopology::Direct,
        2 => EngineTopology::Bruck,
        3 => EngineTopology::Leader { group: 1 + rng.below(6) as usize },
        _ => EngineTopology::TwoStage,
    };
    let padding = match rng.below(3) {
        0 => PaddingRule::Never,
        1 => PaddingRule::Always,
        _ => PaddingRule::Threshold(rng.below(96) as usize),
    };
    EngineConfig {
        topology,
        radix: 2 + rng.below(4) as usize,
        throttle_window: match rng.below(3) {
            0 => None,
            _ => Some(1 + rng.below(12) as usize),
        },
        padding,
        layout: if rng.below(2) == 0 {
            IntermediateLayout::Monolithic
        } else {
            IntermediateLayout::BlockViews
        },
        two_phase_split: rng.below(2) == 0,
    }
}

fn pat(src: usize, dst: usize, idx: usize) -> u8 {
    (src.wrapping_mul(131) ^ dst.wrapping_mul(23) ^ idx.wrapping_mul(7)) as u8
}

/// Number of point-to-point steps the radix-r Bruck schedule takes for `p`
/// ranks — the tag budget per tag block (mirrors `radix_schedule`).
fn bruck_steps(p: usize, radix: usize) -> u32 {
    let mut steps = 0u32;
    let mut weight = 1usize;
    while weight < p {
        for d in 1..radix {
            if d * weight >= p {
                break;
            }
            steps += 1;
        }
        weight *= radix;
    }
    steps.max(1)
}

/// The set of logical tags `cfg` is allowed to touch at world size `p`.
/// Padding can route a Bruck topology onto the uniform-step block, so a
/// `Threshold` rule admits both blocks.
fn allowed_tags(cfg: &EngineConfig, p: usize) -> BTreeSet<u32> {
    let mut tags = BTreeSet::new();
    match cfg.topology {
        EngineTopology::Oracle => {
            tags.insert(SPREAD_TAG);
        }
        EngineTopology::Direct => {
            tags.insert(SPREAD_TAG);
        }
        EngineTopology::TwoStage => {
            tags.insert(RANKA_STAGE1_TAG);
            tags.insert(RANKA_STAGE2_TAG);
        }
        EngineTopology::Leader { .. } => {
            tags.insert(HIER_GATHER_TAG);
            tags.insert(HIER_LEADER_TAG);
            tags.insert(HIER_SCATTER_TAG);
        }
        EngineTopology::Bruck => {
            let steps = bruck_steps(p, cfg.radix);
            let padded_possible = !matches!(cfg.padding, PaddingRule::Never);
            let unpadded_possible = !matches!(cfg.padding, PaddingRule::Always);
            for k in 0..steps {
                if padded_possible {
                    tags.insert(uniform_step_tag(k));
                }
                if unpadded_possible {
                    tags.insert(meta_tag(k));
                    tags.insert(data_tag(k));
                }
            }
        }
    }
    tags
}

/// One world run: returns (per-rank recvbuf, per-rank metrics).
fn run_world(cfg: EngineConfig, m: &SizeMatrix) -> Vec<(Vec<u8>, Metrics)> {
    let p = m.p();
    ThreadComm::run(p, move |comm| {
        let metered = MeteredComm::with_key(comm, cfg.key());
        let me = metered.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
        for dst in 0..p {
            for idx in 0..sendcounts[dst] {
                sendbuf[sdispls[dst] + idx] = pat(me, dst, idx);
            }
        }
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        configurable_alltoallv_general(
            &metered, &cfg, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
        )
        .unwrap_or_else(|e| panic!("rank {me}: engine {} failed: {e}", cfg.key()));
        (recvbuf, metered.metrics())
    })
}

/// Check one world's results against the three properties.
fn check_world(cfg: &EngineConfig, m: &SizeMatrix, results: &[(Vec<u8>, Metrics)]) {
    let p = m.p();
    let key = cfg.key();

    // Property 1: pairwise reference delivery.
    for (me, (recvbuf, _)) in results.iter().enumerate() {
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        for src in 0..p {
            for idx in 0..recvcounts[src] {
                assert_eq!(
                    recvbuf[rdispls[src] + idx],
                    pat(src, me, idx),
                    "{key}: rank {me} block from {src} byte {idx} (P={p})"
                );
            }
        }
    }

    // Property 2: global byte conservation on the logical channel.
    let sent: u64 = results.iter().map(|(_, mm)| mm.logical.sent_bytes).sum();
    let recv: u64 = results.iter().map(|(_, mm)| mm.logical.recv_bytes).sum();
    assert_eq!(sent, recv, "{key}: logical bytes not conserved (P={p})");
    let sent_msgs: u64 = results.iter().map(|(_, mm)| mm.logical.sent_msgs).sum();
    let recv_msgs: u64 = results.iter().map(|(_, mm)| mm.logical.recv_msgs).sum();
    assert_eq!(sent_msgs, recv_msgs, "{key}: logical messages not conserved (P={p})");

    // Property 3: traffic stays inside the config's tag block.
    let allowed = allowed_tags(cfg, p);
    for (me, (_, mm)) in results.iter().enumerate() {
        for (&tag, counter) in &mm.per_tag_sent {
            // Reserved tags carry collective (allreduce) traffic shared by
            // every topology; the tag-block property is about logical tags.
            if tag < RESERVED_TAG_BASE && counter.msgs > 0 {
                assert!(
                    allowed.contains(&tag),
                    "{key}: rank {me} sent on unexpected tag {tag:#x} (P={p}); allowed: \
                     {allowed:x?}"
                );
            }
        }
        assert!(
            mm.consistency_errors().is_empty(),
            "{key}: rank {me} metered consistency errors: {:?}",
            mm.consistency_errors()
        );
    }
}

#[test]
fn any_valid_config_delivers_conserves_and_stays_in_tag_block() {
    let mut rng = Rng(0xB1C0_55ED_DEAD_BEEF);
    let dists = [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::POWER_LAW_STEEP,
        Distribution::Hotspot { spacing: 4, damping: 8 },
    ];
    for iter in 0..40 {
        let cfg = arb_config(&mut rng);
        cfg.validate().unwrap_or_else(|e| panic!("iter {iter}: arb config invalid: {e}"));
        let p = 2 + rng.below(9) as usize;
        let dist = dists[rng.below(dists.len() as u64) as usize];
        let n_cap = 1 + rng.below(64) as usize;
        let m = SizeMatrix::generate(dist, 0xA5A5 + iter as u64, p, n_cap);
        let results = run_world(cfg, &m);
        check_world(&cfg, &m, &results);
    }
}

#[test]
fn named_points_satisfy_the_properties_too() {
    // The nine named points are members of the same space; run them through
    // the identical property harness on a fixed workload.
    let m = SizeMatrix::generate(Distribution::Normal, 0x0F1CE, 7, 48);
    for (cfg, _) in EngineConfig::named_points() {
        let results = run_world(cfg, &m);
        check_world(&cfg, &m, &results);
    }
}

#[test]
fn degenerate_worlds_hold_for_every_topology() {
    // P = 1 and P = 2 exercise the self-copy and single-partner paths of
    // every topology; a zero matrix exercises the n_max == 0 early returns.
    let mut rng = Rng(0x5EED_0001);
    for p in [1usize, 2] {
        for _ in 0..8 {
            let cfg = arb_config(&mut rng);
            let m = SizeMatrix::generate(Distribution::Uniform, 7 + p as u64, p, 16);
            let results = run_world(cfg, &m);
            check_world(&cfg, &m, &results);
        }
    }
    let zero = SizeMatrix::uniform(6, 0);
    for _ in 0..8 {
        let cfg = arb_config(&mut rng);
        let results = run_world(cfg, &zero);
        check_world(&cfg, &zero, &results);
    }
}
