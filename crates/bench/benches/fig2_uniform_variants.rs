//! Bench for Figure 2: the six uniform Bruck variants, measured on the real
//! threaded runtime (N = 32 bytes, as in the paper). Std-only harness.

use std::time::{Duration, Instant};

use bruck_bench::harness::BenchGroup;
use bruck_comm::{Communicator, ThreadComm};
use bruck_core::{alltoall, AlltoallAlgorithm};

fn run_iters(algo: AlltoallAlgorithm, p: usize, block: usize, iters: u64) -> Duration {
    let per_rank = ThreadComm::run(p, |comm| {
        let sendbuf: Vec<u8> = (0..p * block).map(|i| i as u8).collect();
        let mut recvbuf = vec![0u8; p * block];
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            alltoall(algo, comm, &sendbuf, &mut recvbuf, block).unwrap();
        }
        start.elapsed()
    });
    per_rank.into_iter().max().unwrap()
}

fn main() {
    let block = 32;
    for p in [16usize, 64] {
        let mut group = BenchGroup::new(format!("fig2_uniform_p{p}"));
        group.sample_size(10);
        for algo in [
            AlltoallAlgorithm::BasicBruck,
            AlltoallAlgorithm::BasicBruckDt,
            AlltoallAlgorithm::ModifiedBruck,
            AlltoallAlgorithm::ModifiedBruckDt,
            AlltoallAlgorithm::ZeroCopyBruckDt,
            AlltoallAlgorithm::ZeroRotationBruck,
            AlltoallAlgorithm::SpreadOut,
        ] {
            group.bench_custom(algo.name(), |iters| run_iters(algo, p, block, iters));
        }
        group.finish();
    }
}
