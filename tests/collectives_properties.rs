//! Property sweep for the collective family: seeded arbitrary non-uniform
//! counts — including zero-sized segments, all-zero worlds, and the
//! single-rank degenerate — checked against the defining equations:
//!
//! * allgatherv == concatenation of every rank's contribution;
//! * allreduce == the sequential element-wise fold of every rank's vector;
//! * reduce_scatter's segments partition the reduced vector: concatenating
//!   every rank's output segment reproduces the full allreduce.

use bruck_comm::{Communicator, ReduceOp, ThreadComm};
use bruck_core::{
    allgatherv, allreduce, packed_displs, pattern_byte, pattern_u64, reduce_scatter,
    reference_allgatherv, reference_allreduce, AllgathervAlgorithm, AllreduceAlgorithm,
    ReduceScatterAlgorithm,
};

/// splitmix64 — deterministic, seed-stirred count generation.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Arbitrary non-uniform counts: ~1/3 of ranks get zero-sized segments.
fn arbitrary_counts(p: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    (0..p)
        .map(|_| {
            let x = splitmix(&mut state);
            if x % 3 == 0 {
                0
            } else {
                (x % 11) as usize + 1
            }
        })
        .collect()
}

/// The sweep grid: every world size (incl. the single-rank degenerate) ×
/// several seeds, plus hand-picked edge count vectors.
fn sweep_counts() -> Vec<Vec<usize>> {
    let mut cases = Vec::new();
    for p in [1usize, 2, 3, 4, 5, 7, 8, 11, 16] {
        for seed in [1u64, 2, 3] {
            cases.push(arbitrary_counts(p, seed));
        }
    }
    // Edges: all-zero world, single non-empty rank, heavily skewed.
    cases.push(vec![0; 6]);
    cases.push(vec![0, 0, 9, 0, 0]);
    cases.push(vec![40, 1, 1, 1]);
    cases.push(vec![3]);
    cases.push(vec![0]);
    cases
}

#[test]
fn allgatherv_equals_concatenation() {
    for counts in sweep_counts() {
        let p = counts.len();
        let inputs: Vec<Vec<u8>> =
            (0..p).map(|r| (0..counts[r]).map(|i| pattern_byte(r, i)).collect()).collect();
        let want = reference_allgatherv(&inputs);
        for algo in AllgathervAlgorithm::ALL {
            let c = counts.clone();
            let ins = inputs.clone();
            let results = ThreadComm::run(p, move |comm| {
                let me = comm.rank();
                let displs = packed_displs(&c);
                let mut recvbuf = vec![0u8; c.iter().sum()];
                allgatherv(algo, comm, &ins[me], &mut recvbuf, &c, &displs).unwrap();
                recvbuf
            });
            for (r, got) in results.iter().enumerate() {
                assert_eq!(got, &want, "{} rank {r} counts {counts:?}", algo.name());
            }
        }
    }
}

#[test]
fn allreduce_equals_sequential_fold() {
    for counts in sweep_counts() {
        // Reuse the count vectors as (p, n) shapes: n = Σ counts.
        let p = counts.len();
        let n: usize = counts.iter().sum();
        let inputs: Vec<Vec<u64>> =
            (0..p).map(|r| (0..n).map(|i| pattern_u64(r, i)).collect()).collect();
        for op in ReduceOp::ALL {
            let want = reference_allreduce(&inputs, op);
            for algo in AllreduceAlgorithm::ALL {
                let ins = inputs.clone();
                let results = ThreadComm::run(p, move |comm| {
                    let mut buf = ins[comm.rank()].clone();
                    allreduce(algo, comm, &mut buf, op).unwrap();
                    buf
                });
                for (r, got) in results.iter().enumerate() {
                    assert_eq!(got, &want, "{} rank {r} p={p} n={n} {op:?}", algo.name());
                }
            }
        }
    }
}

#[test]
fn reduce_scatter_segments_partition_the_reduced_vector() {
    for counts in sweep_counts() {
        let p = counts.len();
        let total: usize = counts.iter().sum();
        let inputs: Vec<Vec<u64>> =
            (0..p).map(|r| (0..total).map(|i| pattern_u64(r, i)).collect()).collect();
        for op in ReduceOp::ALL {
            let reduced = reference_allreduce(&inputs, op);
            for algo in ReduceScatterAlgorithm::ALL {
                let c = counts.clone();
                let ins = inputs.clone();
                let results = ThreadComm::run(p, move |comm| {
                    let me = comm.rank();
                    let mut recvbuf = vec![0u64; c[me]];
                    reduce_scatter(algo, comm, &ins[me], &mut recvbuf, &c, op).unwrap();
                    recvbuf
                });
                // Segment lengths match counts, and their concatenation in
                // rank order is exactly the full reduction — a partition.
                let mut glued = Vec::with_capacity(total);
                for (r, seg) in results.iter().enumerate() {
                    assert_eq!(seg.len(), counts[r], "{} rank {r}", algo.name());
                    glued.extend_from_slice(seg);
                }
                assert_eq!(glued, reduced, "{} counts {counts:?} {op:?}", algo.name());
            }
        }
    }
}
