//! Synthetic graph generators standing in for the paper's SuiteSparse inputs
//! (DESIGN.md §1): what matters for Figure 11 is the *per-iteration all-to-all
//! load profile*, which is set by graph depth vs. breadth.

use crate::Tuple;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// *Graph 1*-like: deep and narrow. Several long chains with sparse random
/// forward shortcuts and light branching — the closure converges only after
/// ~`chain_len` iterations, each producing a modest number of new paths
/// (small per-iteration `N`, the regime where two-phase Bruck wins).
pub fn graph1_like(chains: usize, chain_len: usize, shortcuts: usize, seed: u64) -> Vec<Tuple> {
    let mut edges = Vec::with_capacity(chains * chain_len + shortcuts);
    let stride = chain_len as u64 + 1;
    for c in 0..chains as u64 {
        let base = c * stride;
        for i in 0..chain_len as u64 {
            edges.push((base + i, base + i + 1));
        }
    }
    // Forward shortcuts within a chain (keep the graph acyclic and deep).
    for s in 0..shortcuts as u64 {
        let h = splitmix64(seed ^ s.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let c = h % chains as u64;
        let span = chain_len as u64;
        let from = splitmix64(h) % span;
        let jump = 2 + splitmix64(h ^ 1) % 8; // short hops preserve depth
        let to = (from + jump).min(span);
        if to > from {
            edges.push((c * stride + from, c * stride + to));
        }
    }
    edges
}

/// *Graph 2*-like: shallow and bushy. A uniform random directed graph whose
/// diameter is ~log(n) — the closure converges in a handful of iterations,
/// each flooding the all-to-all with an order of magnitude more new paths
/// (large per-iteration `N`, where the Bruck family loses; §5.1's diverging
/// result).
pub fn graph2_like(vertices: usize, edges: usize, seed: u64) -> Vec<Tuple> {
    let n = vertices as u64;
    let mut out = Vec::with_capacity(edges);
    let mut i = 0u64;
    while out.len() < edges {
        let h = splitmix64(seed ^ i.wrapping_mul(0x9E6D_62D0_6F6A_9A9B));
        let a = h % n;
        let b = splitmix64(h) % n;
        if a != b {
            out.push((a, b));
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential_closure;

    #[test]
    fn graph1_is_deterministic_and_acyclic_shaped() {
        let a = graph1_like(4, 20, 10, 7);
        let b = graph1_like(4, 20, 10, 7);
        assert_eq!(a, b);
        // All edges point forward (acyclic).
        assert!(a.iter().all(|&(x, y)| y > x));
        assert!(a.len() >= 4 * 20);
    }

    #[test]
    fn graph2_is_deterministic_without_self_loops() {
        let a = graph2_like(50, 200, 3);
        assert_eq!(a, graph2_like(50, 200, 3));
        assert_eq!(a.len(), 200);
        assert!(a.iter().all(|&(x, y)| x != y && x < 50 && y < 50));
    }

    #[test]
    fn depth_profiles_differ_as_in_the_paper() {
        // Count semi-naive iterations (= longest-path depth) for both shapes.
        let deep = graph1_like(2, 40, 6, 1);
        let bushy = graph2_like(60, 240, 1);
        let depth = |edges: &[Tuple]| {
            let index: crate::Relation = edges.iter().copied().collect();
            let mut closure: crate::Relation = edges.iter().copied().collect();
            let mut delta: Vec<Tuple> = edges.to_vec();
            let mut iters = 0usize;
            while !delta.is_empty() && iters < 1000 {
                let mut next = Vec::new();
                index.join_on_first(&delta, |x, _y, z| next.push((x, z)));
                delta.clear();
                for t in next {
                    if closure.insert(t) {
                        delta.push(t);
                    }
                }
                iters += 1;
            }
            iters
        };
        let d1 = depth(&deep);
        let d2 = depth(&bushy);
        assert!(d1 > 3 * d2, "deep graph {d1} iters vs bushy {d2} iters");
    }

    #[test]
    fn per_iteration_load_is_larger_for_graph2() {
        // Paths-per-iteration (the all-to-all load) must be much higher for
        // the bushy graph — the cause of Figure 11's diverging result.
        let deep = graph1_like(2, 40, 6, 1);
        let bushy = graph2_like(60, 240, 1);
        let paths_per_iter = |edges: &[Tuple]| {
            let c = sequential_closure(edges);
            let index: crate::Relation = edges.iter().copied().collect();
            let mut closure: crate::Relation = edges.iter().copied().collect();
            let mut delta: Vec<Tuple> = edges.to_vec();
            let mut iters = 0usize;
            while !delta.is_empty() && iters < 1000 {
                let mut next = Vec::new();
                index.join_on_first(&delta, |x, _y, z| next.push((x, z)));
                delta.clear();
                for t in next {
                    if closure.insert(t) {
                        delta.push(t);
                    }
                }
                iters += 1;
            }
            c.len() as f64 / iters as f64
        };
        assert!(paths_per_iter(&bushy) > 5.0 * paths_per_iter(&deep));
    }
}
