//! Bench for the §5 applications (Figures 11 and 12): transitive closure
//! and the kCFA-like iterated exchange, vendor vs two-phase Bruck.
//! Std-only harness.

use bruck_bench::harness::BenchGroup;
use bruck_bpra::{
    connected_components, datalog_evaluate, graph1_like, graph2_like, kcfa_like_run,
    points_to_analysis, transitive_closure, KcfaConfig, PointsToInput,
};
use bruck_comm::ThreadComm;
use bruck_core::AlltoallvAlgorithm;

const ALGOS: [AlltoallvAlgorithm; 2] =
    [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck];

fn bench_transitive_closure() {
    let p = 8;
    let graph1 = graph1_like(4, 60, 24, 7);
    let graph2 = graph2_like(160, 640, 7);
    for (edges, label) in [(graph1, "graph1_deep"), (graph2, "graph2_bushy")] {
        let mut group = BenchGroup::new(format!("fig11_tc_{label}"));
        group.sample_size(10);
        for algo in ALGOS {
            let edges = edges.clone();
            group.bench(algo.name(), || {
                let e = edges.clone();
                ThreadComm::run(p, move |comm| {
                    transitive_closure(comm, algo, &e).unwrap().total_paths
                });
            });
        }
        group.finish();
    }
}

fn bench_kcfa_like() {
    let p = 8;
    let cfg = KcfaConfig { iterations: 40, base_facts: 16, seed: 7 };
    let mut group = BenchGroup::new("fig12_kcfa_like");
    group.sample_size(10);
    for algo in ALGOS {
        group.bench(algo.name(), || {
            ThreadComm::run(p, move |comm| {
                kcfa_like_run(comm, algo, &cfg).unwrap().facts_received
            });
        });
    }
    group.finish();
}

fn bench_connected_components() {
    let p = 8;
    let edges = graph2_like(300, 900, 3);
    let mut group = BenchGroup::new("cc_label_propagation");
    group.sample_size(10);
    for algo in ALGOS {
        let edges = edges.clone();
        group.bench(algo.name(), || {
            let e = edges.clone();
            ThreadComm::run(p, move |comm| {
                connected_components(comm, algo, &e).unwrap().components
            });
        });
    }
    group.finish();
}

fn bench_points_to() {
    let p = 8;
    let input = PointsToInput::generate(6, 20, 2, 12, 3);
    let mut group = BenchGroup::new("points_to_analysis");
    group.sample_size(10);
    for algo in ALGOS {
        let input = input.clone();
        group.bench(algo.name(), || {
            let inp = input.clone();
            ThreadComm::run(p, move |comm| {
                points_to_analysis(comm, algo, &inp).unwrap().total_facts[2]
            });
        });
    }
    group.finish();
}

fn bench_datalog_tc() {
    use bruck_bpra::{AtomPat, Program, Rule, Term};
    let p = 8;
    let edges = graph1_like(3, 40, 16, 5);
    let program = Program {
        relations: 2,
        rules: vec![
            Rule::copy_rule(
                AtomPat::new(1, Term::Var(0), Term::Var(1)),
                AtomPat::new(0, Term::Var(0), Term::Var(1)),
            ),
            Rule::join_rule(
                AtomPat::new(1, Term::Var(0), Term::Var(2)),
                AtomPat::new(1, Term::Var(0), Term::Var(1)),
                AtomPat::new(0, Term::Var(1), Term::Var(2)),
            ),
        ],
    };
    let mut group = BenchGroup::new("datalog_engine_tc");
    group.sample_size(10);
    for algo in ALGOS {
        let program = program.clone();
        let edges = edges.clone();
        group.bench(algo.name(), || {
            let program = program.clone();
            let facts = vec![edges.clone(), Vec::new()];
            ThreadComm::run(p, move |comm| {
                datalog_evaluate(comm, algo, &program, &facts).unwrap().total_facts[1]
            });
        });
    }
    group.finish();
}

fn main() {
    bench_transitive_closure();
    bench_kcfa_like();
    bench_connected_components();
    bench_points_to();
    bench_datalog_tc();
}
