//! Bench for Figure 6's real-execution companion: the non-uniform
//! algorithms across block sizes on the threaded runtime. Std-only harness.

use std::time::{Duration, Instant};

use bruck_bench::harness::BenchGroup;
use bruck_comm::{Communicator, ThreadComm};
use bruck_core::{alltoallv, packed_displs, AlltoallvAlgorithm};
use bruck_workload::{Distribution, SizeMatrix};

fn run_iters(algo: AlltoallvAlgorithm, m: &SizeMatrix, iters: u64) -> Duration {
    let p = m.p();
    let per_rank = ThreadComm::run(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf: Vec<u8> = (0..sendcounts.iter().sum()).map(|i| i as u8).collect();
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            alltoallv(
                algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap();
        }
        start.elapsed()
    });
    per_rank.into_iter().max().unwrap()
}

fn main() {
    let p = 32;
    for n in [16usize, 256, 2048] {
        let m = SizeMatrix::generate(Distribution::Uniform, 2022, p, n);
        let mut group = BenchGroup::new(format!("fig6_p{p}_n{n}"));
        group.sample_size(10);
        for algo in [
            AlltoallvAlgorithm::SpreadOut,
            AlltoallvAlgorithm::Vendor,
            AlltoallvAlgorithm::PaddedBruck,
            AlltoallvAlgorithm::PaddedAlltoall,
            AlltoallvAlgorithm::TwoPhaseBruck,
            AlltoallvAlgorithm::Sloav,
        ] {
            group.bench_custom(algo.name(), |iters| run_iters(algo, &m, iters));
        }
        group.finish();
    }
}
