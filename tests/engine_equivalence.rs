//! The differential test gauntlet: the configurable engine at each named
//! config point must be **byte-identical** and **schedule-count-identical**
//! to the legacy variant it subsumes.
//!
//! Three layers of evidence, per (algorithm × distribution × world size):
//!
//! 1. **Metered differential on ThreadComm** — legacy variant and
//!    `configurable_alltoallv_general` (no snapping) run back-to-back under
//!    separate [`MeteredComm`]s: receive buffers, per-tag send counters
//!    (messages *and* bytes), per-peer counters, and both channel totals
//!    (logical + reserved, i.e. allreduce traffic) must agree exactly.
//! 2. **Closed-form schedule counts** — the general engine's per-tag metered
//!    counts must equal `bruck-model`'s byte-exact trace predictions
//!    ([`nonuniform_trace`]), the same oracle `tests/trace_validation.rs`
//!    holds the legacy variants to. Equality against the *model*, not just
//!    the sibling implementation, is what makes the engine's schedule
//!    provably the paper's.
//! 3. **Cross-backend byte identity** — legacy vs general receive buffers on
//!    [`SimComm`] (two schedule seeds) and [`EventComm`].
//!
//! The snap path itself (`configurable_alltoallv`) is covered by the engine
//! unit tests; everything here exercises the generalized machinery.

use std::collections::BTreeMap;

use bruck_comm::{Communicator, EventComm, MeteredComm, Metrics, SimComm, ThreadComm};
use bruck_core::{
    alltoallv, configurable_alltoallv_general, packed_displs, AlltoallvAlgorithm, EngineConfig,
};
use bruck_model::{nonuniform_trace, MatrixSource, NonuniformAlgo, RankSample};
use bruck_workload::{Distribution, SizeMatrix};

/// Pattern byte for (src, dst, idx), distinct across blocks.
fn pat(src: usize, dst: usize, idx: usize) -> u8 {
    (src.wrapping_mul(131) ^ dst.wrapping_mul(23) ^ idx.wrapping_mul(7)) as u8
}

/// Build rank `me`'s packed send triple for `m`.
fn send_side(me: usize, m: &SizeMatrix) -> (Vec<u8>, Vec<usize>, Vec<usize>) {
    let sendcounts = m.sendcounts(me);
    let sdispls = packed_displs(&sendcounts);
    let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
    for dst in 0..m.p() {
        for idx in 0..sendcounts[dst] {
            sendbuf[sdispls[dst] + idx] = pat(me, dst, idx);
        }
    }
    (sendbuf, sendcounts, sdispls)
}

/// Run the legacy variant on `comm`; return the receive buffer.
fn run_legacy<C: Communicator + ?Sized>(
    comm: &C,
    algo: AlltoallvAlgorithm,
    m: &SizeMatrix,
) -> Vec<u8> {
    let me = comm.rank();
    let (sendbuf, sendcounts, sdispls) = send_side(me, m);
    let recvcounts = m.recvcounts(me);
    let rdispls = packed_displs(&recvcounts);
    let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
    alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
        .unwrap_or_else(|e| panic!("rank {me}: legacy {} failed: {e}", algo.name()));
    recvbuf
}

/// Run the generalized engine (no snapping) on `comm`; return the receive
/// buffer.
fn run_general<C: Communicator + ?Sized>(
    comm: &C,
    cfg: &EngineConfig,
    m: &SizeMatrix,
) -> Vec<u8> {
    let me = comm.rank();
    let (sendbuf, sendcounts, sdispls) = send_side(me, m);
    let recvcounts = m.recvcounts(me);
    let rdispls = packed_displs(&recvcounts);
    let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
    configurable_alltoallv_general(
        comm, cfg, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
    )
    .unwrap_or_else(|e| panic!("rank {me}: engine {} failed: {e}", cfg.key()));
    recvbuf
}

/// The schedule-relevant projection of a metrics snapshot: everything
/// deterministic under scheduling (counts and bytes, no in-flight gauges or
/// wait histograms).
#[derive(Debug, PartialEq)]
struct Schedule {
    logical: (u64, u64, u64, u64),
    reserved: (u64, u64, u64, u64),
    per_peer: Vec<(u64, u64, u64, u64)>,
    per_tag_sent: BTreeMap<u32, (u64, u64)>,
}

fn schedule_of(m: &Metrics) -> Schedule {
    Schedule {
        logical: (m.logical.sent_msgs, m.logical.sent_bytes, m.logical.recv_msgs, m.logical.recv_bytes),
        reserved: (m.reserved.sent_msgs, m.reserved.sent_bytes, m.reserved.recv_msgs, m.reserved.recv_bytes),
        per_peer: m
            .per_peer
            .iter()
            .map(|c| (c.sent_msgs, c.sent_bytes, c.recv_msgs, c.recv_bytes))
            .collect(),
        per_tag_sent: m.per_tag_sent.iter().map(|(&t, c)| (t, (c.msgs, c.bytes))).collect(),
    }
}

/// The named points paired with the model's trace generators (Reference has
/// no model counterpart — the engine maps it to the same oracle function, so
/// only byte identity applies there).
const MODELED_PAIRS: [(AlltoallvAlgorithm, NonuniformAlgo); 8] = [
    (AlltoallvAlgorithm::SpreadOut, NonuniformAlgo::SpreadOut),
    (AlltoallvAlgorithm::Vendor, NonuniformAlgo::Vendor),
    (AlltoallvAlgorithm::PaddedBruck, NonuniformAlgo::PaddedBruck),
    (AlltoallvAlgorithm::PaddedAlltoall, NonuniformAlgo::PaddedAlltoall),
    (AlltoallvAlgorithm::TwoPhaseBruck, NonuniformAlgo::TwoPhaseBruck),
    (AlltoallvAlgorithm::Sloav, NonuniformAlgo::Sloav),
    (AlltoallvAlgorithm::Hierarchical, NonuniformAlgo::Hierarchical),
    (AlltoallvAlgorithm::RankaTwoStage, NonuniformAlgo::RankaTwoStage),
];

const DISTS: [Distribution; 3] =
    [Distribution::Uniform, Distribution::Normal, Distribution::POWER_LAW_STEEP];

/// Layer 1: metered differential for one cell. Returns the general engine's
/// per-rank metrics for layer 2's closed-form check.
fn metered_cell(algo: AlltoallvAlgorithm, m: &SizeMatrix) -> Vec<Metrics> {
    let cfg = EngineConfig::for_algorithm(algo);
    let p = m.p();
    let results = ThreadComm::run(p, |comm| {
        let legacy_meter = MeteredComm::new(comm);
        let legacy_recv = run_legacy(&legacy_meter, algo, m);
        let general_meter = MeteredComm::with_key(comm, cfg.key());
        let general_recv = run_general(&general_meter, &cfg, m);
        (legacy_recv, general_recv, legacy_meter.metrics(), general_meter.metrics())
    });
    let mut general_metrics = Vec::with_capacity(p);
    for (rank, (legacy_recv, general_recv, legacy, general)) in results.into_iter().enumerate() {
        assert_eq!(
            legacy_recv,
            general_recv,
            "{} rank {rank}: receive buffers diverge (P={p})",
            algo.name()
        );
        assert_eq!(
            schedule_of(&legacy),
            schedule_of(&general),
            "{} rank {rank}: wire schedules diverge (P={p})",
            algo.name()
        );
        assert!(general.consistency_errors().is_empty(), "{:?}", general.consistency_errors());
        assert_eq!(general.key.as_deref(), Some(cfg.key().as_str()));
        general_metrics.push(general);
    }
    general_metrics
}

/// Algorithms whose traces are *message-exact* (one modeled message per
/// real message). The hierarchical and Ranka traces aggregate fan-out
/// rounds into single loads — their per-tag **bytes** are still exact, and
/// layer 1 already proves engine↔legacy message-count identity for them.
fn trace_is_message_exact(algo: NonuniformAlgo) -> bool {
    !matches!(algo, NonuniformAlgo::Hierarchical | NonuniformAlgo::RankaTwoStage)
}

/// Layer 2: the general engine's metered per-tag counts must equal the
/// model's closed-form trace for the algorithm it claims to reproduce.
fn check_against_model(model_algo: NonuniformAlgo, m: &SizeMatrix, metrics: &[Metrics]) {
    let p = m.p();
    let trace = nonuniform_trace(model_algo, &MatrixSource(m), &RankSample::all(p));
    let wire_tags = trace.wire_tags();
    for (rank, mm) in metrics.iter().enumerate() {
        for &tag in &wire_tags {
            let sent = mm.sent_for_tag(tag);
            if trace_is_message_exact(model_algo) {
                assert_eq!(
                    trace.msgs_for_tag(rank, tag),
                    Some(sent.msgs),
                    "{}: rank {rank} tag {tag:#x} message count (P={p})",
                    model_algo.name()
                );
            }
            assert_eq!(
                trace.bytes_for_tag(rank, tag),
                Some(sent.bytes),
                "{}: rank {rank} tag {tag:#x} bytes (P={p})",
                model_algo.name()
            );
        }
        // No traffic outside the model's schedule: every metered logical tag
        // must be one the trace predicts.
        for (&tag, c) in &mm.per_tag_sent {
            if tag < bruck_comm::RESERVED_TAG_BASE && c.msgs > 0 {
                assert!(
                    wire_tags.contains(&tag),
                    "{}: rank {rank} sent on unmodeled tag {tag:#x}",
                    model_algo.name()
                );
            }
        }
    }
}

#[test]
fn engine_matches_legacy_and_model_on_thread_comm() {
    for p in [5usize, 8, 12] {
        for (di, dist) in DISTS.iter().enumerate() {
            let m = SizeMatrix::generate(*dist, 0x9E00 + (di * 31 + p) as u64, p, 48);
            // Reference: byte + schedule identity only (no model trace).
            metered_cell(AlltoallvAlgorithm::Reference, &m);
            for (algo, model_algo) in MODELED_PAIRS {
                let metrics = metered_cell(algo, &m);
                check_against_model(model_algo, &m, &metrics);
            }
        }
    }
}

#[test]
fn engine_matches_legacy_with_empty_and_skewed_blocks() {
    // Degenerate shapes: all-zero, single nonzero block, heavy skew.
    let zero = SizeMatrix::uniform(8, 0);
    let mut single = vec![vec![0usize; 8]; 8];
    single[2][5] = 40;
    let single = SizeMatrix::from_rows(single);
    let skew: Vec<Vec<usize>> = (0..9)
        .map(|src| (0..9).map(|dst| if dst == (src + 3) % 9 { 512 } else { 1 }).collect())
        .collect();
    let skew = SizeMatrix::from_rows(skew);
    for m in [&zero, &single, &skew] {
        metered_cell(AlltoallvAlgorithm::Reference, m);
        for (algo, model_algo) in MODELED_PAIRS {
            let metrics = metered_cell(algo, m);
            // The implementations short-circuit all sends when the global
            // maximum block is zero; the trace models the full schedule
            // (zero-byte messages). Legacy↔engine identity is still asserted
            // above; skip only the trace comparison for the all-zero matrix.
            if m.global_max() > 0 {
                check_against_model(model_algo, m, &metrics);
            }
        }
    }
}

#[test]
fn engine_byte_identical_on_sim_comm_across_seeds() {
    for p in [5usize, 8] {
        let m = SizeMatrix::generate(Distribution::Normal, 0x51D0 + p as u64, p, 32);
        for (cfg, algo) in EngineConfig::named_points() {
            for seed in [1u64, 0xFEED] {
                let legacy = SimComm::run(p, seed, |comm| run_legacy(comm, algo, &m)).results;
                let general = SimComm::run(p, seed, |comm| run_general(comm, &cfg, &m)).results;
                assert_eq!(
                    legacy,
                    general,
                    "{} vs {} on SimComm seed {seed} (P={p})",
                    algo.name(),
                    cfg.key()
                );
            }
        }
    }
}

#[test]
fn engine_byte_identical_on_event_comm() {
    let p = 12;
    let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 0xE7E7, p, 40);
    for (cfg, algo) in EngineConfig::named_points() {
        let legacy = EventComm::run_pooled(p, 3, |comm| run_legacy(comm, algo, &m));
        let general = EventComm::run_pooled(p, 3, |comm| run_general(comm, &cfg, &m));
        assert_eq!(legacy, general, "{} vs {} on EventComm (P={p})", algo.name(), cfg.key());
    }
}
