//! Traces for the radix-r generalizations in `bruck-core::radix`.
//!
//! Same byte-exactness contract as the binary generators: validated against
//! `CountingComm` logs of the real radix implementations.

use crate::source::SizeSource;
use crate::trace::{CommTrace, RankLoad, Step, StepKind};
use crate::tracegen::collective_step;
use crate::RankSample;

/// The radix-r schedule: `(step_index, weight, digit)` in execution order —
/// mirrors `bruck_core::radix_schedule` (checked by integration test).
pub fn radix_schedule(p: usize, radix: usize) -> Vec<(u32, usize, usize)> {
    assert!(radix >= 2, "radix must be at least 2");
    let mut steps = Vec::new();
    let mut weight = 1usize;
    let mut idx = 0u32;
    while weight < p {
        for d in 1..radix {
            if d * weight < p {
                steps.push((idx, weight, d));
                idx += 1;
            }
        }
        weight *= radix;
    }
    steps
}

#[inline]
fn digit(i: usize, weight: usize, radix: usize) -> usize {
    (i / weight) % radix
}

fn step_count(p: usize, weight: usize, d: usize, radix: usize) -> u64 {
    (1..p).filter(|&i| digit(i, weight, radix) == d).count() as u64
}

/// Exact bytes rank `q` sends at sub-step `(weight, d)` of a radix-`r`
/// two-phase Bruck: a block with relative index `i` has, before this
/// sub-step, absorbed exactly its lower-weight digit hops (`i mod weight`).
fn radix_step_bytes<S: SizeSource + ?Sized>(
    s: &S,
    q: usize,
    weight: usize,
    d: usize,
    radix: usize,
) -> u64 {
    let p = s.p();
    let mut total = 0u64;
    for i in (1..p).filter(|&i| digit(i, weight, radix) == d) {
        let src = (q + (i % weight)) % p;
        let dst = (src + p - i) % p;
        total += s.size(src, dst) as u64;
    }
    total
}

/// Trace of the radix-`r` Zero Rotation Bruck (uniform, `n`-byte blocks).
pub fn zero_rotation_radix_trace(
    p: usize,
    n: usize,
    radix: usize,
    sample: &RankSample,
) -> CommTrace {
    let mut steps = vec![local_index_step(p, sample)];
    for (idx, weight, d) in radix_schedule(p, radix) {
        let bytes = step_count(p, weight, d, radix) * n as u64;
        let load = RankLoad {
            seq_msgs: 1,
            bytes_out: bytes,
            bytes_in: bytes,
            copy_bytes: 2 * bytes,
            ..Default::default()
        };
        steps.push(Step {
            kind: StepKind::UniformData(idx),
            loads: sample.ranks().iter().map(|&r| (r, load)).collect(),
        });
    }
    CommTrace { p, steps }
}

fn local_index_step(p: usize, sample: &RankSample) -> Step {
    Step {
        kind: StepKind::Local,
        loads: sample
            .ranks()
            .iter()
            .map(|&r| (r, RankLoad { copy_bytes: 8 * p as u64, ..Default::default() }))
            .collect(),
    }
}

/// Trace of the radix-`r` two-phase Bruck over a size source.
pub fn two_phase_radix_trace<S: SizeSource + ?Sized>(
    source: &S,
    radix: usize,
    sample: &RankSample,
) -> CommTrace {
    let p = source.p();
    let mut steps = Vec::new();
    if p <= 1 {
        return CommTrace { p, steps };
    }
    steps.push(collective_step(p, sample));
    for (idx, weight, d) in radix_schedule(p, radix) {
        let count = step_count(p, weight, d, radix);
        let meta = RankLoad {
            seq_msgs: 1,
            bytes_out: 4 * count,
            bytes_in: 4 * count,
            ..Default::default()
        };
        steps.push(Step {
            kind: StepKind::Meta(idx),
            loads: sample.ranks().iter().map(|&r| (r, meta)).collect(),
        });
        let loads = sample
            .ranks()
            .iter()
            .map(|&q| {
                let out = radix_step_bytes(source, q, weight, d, radix);
                let peer = (q + d * weight) % p;
                let inb = radix_step_bytes(source, peer, weight, d, radix);
                (
                    q,
                    RankLoad {
                        seq_msgs: 1,
                        bytes_out: out,
                        bytes_in: inb,
                        copy_bytes: out + inb,
                        ..Default::default()
                    },
                )
            })
            .collect();
        steps.push(Step { kind: StepKind::Data(idx), loads });
    }
    CommTrace { p, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistSource, MachineModel, NonuniformAlgo, UniformAlgo};
    use bruck_workload::Distribution;

    #[test]
    fn radix_two_traces_equal_binary_traces() {
        let p = 16;
        let sample = RankSample::all(p);
        let r2 = zero_rotation_radix_trace(p, 32, 2, &sample);
        let bin = crate::uniform_trace(UniformAlgo::ZeroRotationBruck, p, 32, &sample);
        assert_eq!(r2, bin);

        let s = DistSource::new(Distribution::Uniform, 3, p, 64);
        let t2 = two_phase_radix_trace(&s, 2, &sample);
        let tb = crate::nonuniform_trace(NonuniformAlgo::TwoPhaseBruck, &s, &sample);
        assert_eq!(t2, tb);
    }

    #[test]
    fn radix_conserves_total_data_bytes() {
        // Over all sub-steps, a block is transmitted once per non-zero digit
        // of its offset, whatever the radix.
        let p = 27;
        let s = DistSource::new(Distribution::Uniform, 5, p, 80);
        for radix in [2usize, 3, 4, 9] {
            let t = two_phase_radix_trace(&s, radix, &RankSample::all(p));
            let data: u64 = t
                .steps
                .iter()
                .filter(|st| matches!(st.kind, StepKind::Data(_)))
                .flat_map(|st| st.loads.iter().map(|(_, l)| l.bytes_out))
                .sum();
            let mut expect = 0u64;
            for src in 0..p {
                for dst in 0..p {
                    let mut i = (src + p - dst) % p;
                    let mut hops = 0u64;
                    while i > 0 {
                        if i % radix != 0 {
                            hops += 1;
                        }
                        i /= radix;
                    }
                    expect += (s.size(src, dst) as u64) * hops;
                }
            }
            assert_eq!(data, expect, "radix {radix}");
        }
    }

    #[test]
    fn higher_radix_trades_latency_for_bandwidth() {
        // More sub-steps (latency), less forwarded data (bandwidth).
        let p = 4096;
        let s = DistSource::new(Distribution::Uniform, 7, p, 512);
        let sample = RankSample::auto(p);
        let t2 = two_phase_radix_trace(&s, 2, &sample);
        let t8 = two_phase_radix_trace(&s, 8, &sample);
        let msgs = |t: &CommTrace| t.steps.iter().filter(|s| s.kind.tag().is_some()).count();
        assert!(msgs(&t8) > msgs(&t2), "radix 8 must have more message rounds");
        assert!(
            t8.total_wire_bytes() < t2.total_wire_bytes(),
            "radix 8 must forward less data"
        );
        // Under a latency-heavy machine, radix 2 wins; the bandwidth saving
        // must show up for large blocks.
        let m = MachineModel::theta_like();
        let s_big = DistSource::new(Distribution::Uniform, 7, p, 4096);
        let big2 = two_phase_radix_trace(&s_big, 2, &sample).time(&m);
        let big8 = two_phase_radix_trace(&s_big, 8, &sample).time(&m);
        assert!(big8 < big2, "radix 8 should win at N=4096: {big8} vs {big2}");
        let s_small = DistSource::new(Distribution::Uniform, 7, p, 16);
        let small2 = two_phase_radix_trace(&s_small, 2, &sample).time(&m);
        let small8 = two_phase_radix_trace(&s_small, 8, &sample).time(&m);
        assert!(small2 < small8, "radix 2 should win at N=16: {small2} vs {small8}");
    }
}
