//! Pairwise oracle `alltoallv` used to validate every other variant.

use bruck_comm::{CommResult, Communicator, MsgBuf};

use super::validate_v;
use crate::common::{add_mod, sub_mod, SPREAD_TAG};

/// Blocking pairwise exchange, structurally unlike the Bruck family.
///
/// Zero-copy send path: the user's send buffer is packed once into a shared
/// region and each peer receives a disjoint slice of it — no per-message
/// allocation.
#[allow(clippy::too_many_arguments)]
pub fn reference_alltoallv<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);
    if p == 1 {
        return Ok(());
    }
    let packed = MsgBuf::copy_from_slice(sendbuf); // the one pack copy
    for i in 1..p {
        let dest = add_mod(me, i, p);
        let src = sub_mod(me, i, p);
        comm.send_buf(
            dest,
            SPREAD_TAG,
            packed.slice(sdispls[dest]..sdispls[dest] + sendcounts[dest]),
        )?;
        let n = comm.recv_into(
            src,
            SPREAD_TAG,
            &mut recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]],
        )?;
        debug_assert_eq!(n, recvcounts[src], "peer sent unexpected block size");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallvAlgorithm::Reference;

    #[test]
    fn correct_for_all_communicator_sizes() {
        for p in TEST_SIZES {
            run_and_check(Reference, p, 40, 0x1234);
        }
    }
}
