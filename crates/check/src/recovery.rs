//! The self-healing recovery matrix: scripted crash in every exchange phase
//! class × every `alltoallv` algorithm, under the deterministic simulator.
//!
//! Each cell runs a 5-rank `SimComm` world with a [`bruck_comm::FaultComm`]
//! scripting the victim rank to crash at an op count *calibrated* to land in
//! one of four phase classes — counts **negotiate**, **pack** (the
//! negotiate/data boundary), **data** (mid data movement), **unpack** (the
//! victim's last exchange op) — and drives
//! [`bruck_core::recovering_alltoallv`] through its full detect → agree →
//! shrink → retry cycle. Per cell the harness asserts:
//!
//! * **Typed endings** — the victim fails with a fault error; every survivor
//!   returns [`RecoveryOutcome::Recovered`] naming exactly the victim as
//!   evicted, on the dense survivor view.
//! * **Byte-correct on the survivor world** — every received block matches
//!   the closed-form [`crate::cells::pattern`] for its (survivor source,
//!   destination) pair, which is exactly what a fault-free direct run on the
//!   survivor set produces (the chaos and sim matrices prove that equality
//!   for healthy worlds; `direct_survivor_run_matches` re-proves it here).
//! * **Deterministic** — the cell is run twice with the same seed and the
//!   two runs must fold to byte-identical digests (outcomes, views, buffers,
//!   and virtual-time MTTR included).
//!
//! The virtual-time MTTR breakdown (detect / agree / repair / re-execute) of
//! the slowest survivor is reported per cell and can be emitted as line-JSON
//! (`bruck-chaos --recovery-smoke --out BENCH_PR8.json`) and regression
//! checked against a committed baseline (`--check-against`).

use std::time::Duration;

use bruck_comm::{
    CommError, Communicator, DeadlineComm, ExchangePlan, FaultComm, FaultPlan, ShrinkComm,
    SimComm, SimConfig,
};
use bruck_core::{
    recovering_alltoallv, resilient_alltoallv, AlltoallvAlgorithm, Mttr, RecoveringConfig,
    RecoveryOutcome, ResilientConfig,
};
use bruck_workload::{Distribution, SizeMatrix};

use crate::cells::{digest_rank_buf, mix, pattern, pattern_send_side};

/// Which exchange phase the scripted crash is calibrated to land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseClass {
    /// Mid counts-handshake: the plan itself is the casualty.
    Negotiate,
    /// The negotiate/data boundary: the victim dies on its first data op.
    Pack,
    /// Mid data movement: survivors hold partial, asymmetric data.
    Data,
    /// The victim's last exchange op: survivors may already be lossless and
    /// must still re-execute on the shrunken view (commit needs the full
    /// view to confirm clean).
    Unpack,
}

impl PhaseClass {
    /// All four classes, in exchange order.
    pub const ALL: [PhaseClass; 4] =
        [PhaseClass::Negotiate, PhaseClass::Pack, PhaseClass::Data, PhaseClass::Unpack];

    /// Display name for cell labels.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseClass::Negotiate => "negotiate",
            PhaseClass::Pack => "pack",
            PhaseClass::Data => "data",
            PhaseClass::Unpack => "unpack",
        }
    }
}

/// The recovering-exchange budgets every cell runs under: tight enough that
/// a whole cell is a few hundred simulated milliseconds, with the detector
/// and agreement windows derived from the abort skew
/// ([`RecoveringConfig::with_derived_windows`]).
pub fn recovery_config(algorithm: AlltoallvAlgorithm) -> RecoveringConfig {
    RecoveringConfig {
        resilient: ResilientConfig {
            algorithm,
            deadline: Duration::from_millis(600),
            commit_timeout: Duration::from_millis(200),
            peer_timeout: Duration::from_millis(300),
            epoch: 0,
        },
        negotiate_timeout: Duration::from_millis(400),
        ..RecoveringConfig::default()
    }
    .with_derived_windows()
}

/// Virtual-time MTTR of one cell's slowest survivor, plus retry shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellMttr {
    /// The slowest survivor's breakdown.
    pub mttr: Mttr,
    /// Recovery cycles that survivor went through.
    pub cycles: u32,
    /// Exchange attempts it used (first try included).
    pub attempts: u32,
}

/// One recovery cell's outcome.
#[derive(Debug)]
pub struct RecoveryCellReport {
    /// `algorithm/phase/seed` label.
    pub label: String,
    /// Violation description, if the cell failed.
    pub violation: Option<String>,
    /// Digest over outcomes, views, buffers, and MTTR (equal across the two
    /// same-seed runs when the cell passed).
    pub digest: u64,
    /// Slowest-survivor MTTR (absent if the cell failed before extraction).
    pub mttr: Option<CellMttr>,
    /// The calibrated crash op count.
    pub crash_after_ops: u64,
}

/// Calibrate the victim's op counts on a healthy same-seed world: returns
/// `(negotiate_ops, exchange_ops)` — the victim's [`FaultComm::ops`] counter
/// right after plan negotiation and right after the full exchange. The
/// calibration replays the exact op sequence of `recovering_alltoallv`'s
/// first attempt (same epoch, same wrappers), so a crash threshold placed
/// between those marks lands inside the intended phase.
pub fn calibrate_phases(
    algorithm: AlltoallvAlgorithm,
    matrix: &SizeMatrix,
    victim: usize,
    seed: u64,
) -> Result<(u64, u64), String> {
    let p = matrix.p();
    let cfg = recovery_config(algorithm);
    let m = matrix.clone();
    let report = SimComm::try_run(p, &SimConfig::from_seed(seed), move |comm| {
        let fc = FaultComm::new(comm, FaultPlan::new(seed));
        let me = fc.rank();
        let (sendcounts, _sdispls, sendbuf) = pattern_send_side(&m, me);
        let view: Vec<usize> = (0..p).collect();
        let sc = ShrinkComm::new(&fc, view, cfg.epoch)?;
        let dc = DeadlineComm::new(&sc, cfg.negotiate_timeout);
        let plan = ExchangePlan::negotiate_isolated(&dc, sendcounts, cfg.epoch)?;
        let negotiate_ops = fc.ops();
        let mut recvbuf = plan.alloc_recvbuf();
        resilient_alltoallv(
            &ResilientConfig { epoch: cfg.epoch, ..cfg.resilient },
            &sc,
            &sendbuf,
            plan.sendcounts(),
            plan.sdispls(),
            &mut recvbuf,
            plan.recvcounts(),
            plan.rdispls(),
        )?;
        Ok::<(u64, u64), CommError>((negotiate_ops, fc.ops()))
    });
    match report.outcomes.get(victim) {
        Some(Ok(Ok(marks))) => Ok(*marks),
        Some(Ok(Err(e))) => Err(format!("calibration comm error: {e}")),
        Some(Err(p)) => Err(format!("calibration panic: {p}")),
        None => Err("victim out of range".to_string()),
    }
}

/// Map a phase class to a crash threshold given the calibration marks.
pub fn crash_point(phase: PhaseClass, negotiate_ops: u64, exchange_ops: u64) -> u64 {
    match phase {
        PhaseClass::Negotiate => (negotiate_ops / 2).max(1),
        PhaseClass::Pack => negotiate_ops,
        PhaseClass::Data => negotiate_ops + (exchange_ops.saturating_sub(negotiate_ops)) / 2,
        PhaseClass::Unpack => exchange_ops.saturating_sub(1),
    }
}

type RankOutcome = Result<
    (Vec<u8>, Vec<usize>, Vec<usize>, Vec<usize>, RecoveryOutcome),
    CommError,
>;

fn run_world(
    algorithm: AlltoallvAlgorithm,
    matrix: &SizeMatrix,
    victim: usize,
    after_ops: u64,
    seed: u64,
) -> Vec<Result<RankOutcome, String>> {
    let p = matrix.p();
    let cfg = recovery_config(algorithm);
    let m = matrix.clone();
    let report = SimComm::try_run(p, &SimConfig::from_seed(seed), move |comm| {
        let fc = FaultComm::new(comm, FaultPlan::new(seed).with_crash(victim, after_ops));
        let me = fc.rank();
        let (sendcounts, _sdispls, sendbuf) = pattern_send_side(&m, me);
        let view: Vec<usize> = (0..p).collect();
        recovering_alltoallv(&cfg, &fc, &view, &sendcounts, &sendbuf).map(|rec| {
            (rec.recvbuf, rec.recvcounts, rec.rdispls, rec.view, rec.outcome)
        })
    });
    report.outcomes
}

/// Fold one world's outcomes into an order-sensitive digest.
fn digest_world(outcomes: &[Result<RankOutcome, String>]) -> u64 {
    let mut d = 0xD1_6E57u64;
    for (rank, out) in outcomes.iter().enumerate() {
        d = mix(d ^ rank as u64);
        match out {
            Err(_) => d = mix(d ^ 1),
            Ok(Err(e)) => {
                d = mix(d ^ 2);
                for b in e.to_string().bytes() {
                    d = mix(d ^ b as u64);
                }
            }
            Ok(Ok((recvbuf, recvcounts, _rdispls, view, outcome))) => {
                d = mix(d ^ 3);
                d = digest_rank_buf(d, rank, recvbuf);
                for &c in recvcounts {
                    d = mix(d ^ c as u64);
                }
                for &v in view {
                    d = mix(d ^ v as u64);
                }
                match outcome {
                    RecoveryOutcome::Complete => d = mix(d ^ 10),
                    RecoveryOutcome::Recovered { evicted, cycles, attempts, mttr } => {
                        d = mix(d ^ 11);
                        for &e in evicted {
                            d = mix(d ^ e as u64);
                        }
                        d = mix(d ^ *cycles as u64);
                        d = mix(d ^ *attempts as u64);
                        for t in
                            [mttr.detect, mttr.agree, mttr.repair, mttr.reexecute]
                        {
                            d = mix(d ^ t.as_nanos() as u64);
                        }
                    }
                }
            }
        }
    }
    d
}

/// Check one world against the recovery contract; returns the slowest
/// survivor's MTTR on success.
fn check_world(
    matrix: &SizeMatrix,
    victim: usize,
    outcomes: &[Result<RankOutcome, String>],
) -> Result<CellMttr, String> {
    let p = matrix.p();
    let survivors: Vec<usize> = (0..p).filter(|&r| r != victim).collect();
    let mut slowest: Option<CellMttr> = None;
    for (rank, out) in outcomes.iter().enumerate() {
        let res = match out {
            Ok(r) => r,
            Err(panic) => return Err(format!("rank {rank} panicked: {panic}")),
        };
        if rank == victim {
            match res {
                Err(CommError::RankFailed { .. } | CommError::Timeout { .. }) => {}
                other => return Err(format!("victim must fail typed, got {other:?}")),
            }
            continue;
        }
        let (recvbuf, recvcounts, rdispls, view, outcome) = match res {
            Ok(r) => r,
            Err(e) => return Err(format!("survivor {rank} failed: {e}")),
        };
        if view != &survivors {
            return Err(format!("survivor {rank}: view {view:?}, want {survivors:?}"));
        }
        let cm = match outcome {
            RecoveryOutcome::Recovered { evicted, cycles, attempts, mttr } => {
                if evicted != &[victim] {
                    return Err(format!("survivor {rank}: evicted {evicted:?}"));
                }
                CellMttr { mttr: *mttr, cycles: *cycles, attempts: *attempts }
            }
            RecoveryOutcome::Complete => {
                return Err(format!("survivor {rank}: Complete despite scripted crash"));
            }
        };
        if slowest.map_or(true, |s| cm.mttr.total() > s.mttr.total()) {
            slowest = Some(cm);
        }
        // Byte-correctness on the shrunken view: block j must be exactly
        // what parent rank view[j] sends rank `rank` in a fault-free world.
        for (j, &src) in view.iter().enumerate() {
            let want_len = matrix.get(src, rank);
            if recvcounts[j] != want_len {
                return Err(format!(
                    "survivor {rank}: block from {src} has {} bytes, want {want_len}",
                    recvcounts[j]
                ));
            }
            for idx in 0..want_len {
                let got = recvbuf[rdispls[j] + idx];
                let want = pattern(src, rank, idx);
                if got != want {
                    return Err(format!(
                        "survivor {rank}: SILENT CORRUPTION in block from {src} \
                         byte {idx}: got {got}, want {want}"
                    ));
                }
            }
        }
    }
    slowest.ok_or_else(|| "no survivor produced an outcome".to_string())
}

/// Run one (algorithm, phase class, seed) recovery cell: calibrate, run
/// twice, check the contract and digest equality.
pub fn run_recovery_cell(
    algorithm: AlltoallvAlgorithm,
    phase: PhaseClass,
    p: usize,
    victim: usize,
    n_max: usize,
    seed: u64,
) -> RecoveryCellReport {
    let label = format!("{}/{}/seed{}", algorithm.name(), phase.name(), seed);
    let matrix = SizeMatrix::generate(Distribution::Uniform, seed, p, n_max);
    let (neg, ex) = match calibrate_phases(algorithm, &matrix, victim, seed) {
        Ok(marks) => marks,
        Err(e) => {
            return RecoveryCellReport {
                label,
                violation: Some(e),
                digest: 0,
                mttr: None,
                crash_after_ops: 0,
            }
        }
    };
    let after_ops = crash_point(phase, neg, ex);
    let first = run_world(algorithm, &matrix, victim, after_ops, seed);
    let second = run_world(algorithm, &matrix, victim, after_ops, seed);
    let digest = digest_world(&first);
    let mut violation = None;
    let mut mttr = None;
    match check_world(&matrix, victim, &first) {
        Ok(cm) => mttr = Some(cm),
        Err(e) => violation = Some(e),
    }
    if violation.is_none() && digest != digest_world(&second) {
        violation =
            Some("NONDETERMINISM: same seed produced different digests".to_string());
    }
    RecoveryCellReport { label, violation, digest, mttr, crash_after_ops: after_ops }
}

/// Matrix configuration for [`run_recovery_matrix`].
pub struct RecoveryMatrixConfig {
    /// World size (the victim is evicted from it).
    pub p: usize,
    /// The scripted-to-crash rank.
    pub victim: usize,
    /// Largest per-pair block size in the generated workload.
    pub n_max: usize,
    /// Workload/schedule/fault seed.
    pub seed: u64,
    /// Algorithms to sweep.
    pub algorithms: Vec<AlltoallvAlgorithm>,
}

impl Default for RecoveryMatrixConfig {
    fn default() -> Self {
        RecoveryMatrixConfig {
            p: 5,
            victim: 2,
            n_max: 24,
            seed: 1,
            algorithms: AlltoallvAlgorithm::ALL.to_vec(),
        }
    }
}

/// Run every algorithm × phase-class cell.
pub fn run_recovery_matrix(
    cfg: &RecoveryMatrixConfig,
    mut progress: impl FnMut(&RecoveryCellReport),
) -> Vec<RecoveryCellReport> {
    let mut reports = Vec::new();
    for &algorithm in &cfg.algorithms {
        for phase in PhaseClass::ALL {
            let r = run_recovery_cell(algorithm, phase, cfg.p, cfg.victim, cfg.n_max, cfg.seed);
            progress(&r);
            reports.push(r);
        }
    }
    reports
}

/// Render one passing cell as a `BENCH_PR8.json` line.
pub fn bench_json_line(r: &RecoveryCellReport) -> Option<String> {
    let cm = r.mttr?;
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    Some(format!(
        "{{\"cell\":\"{}\",\"mttr_total_ms\":{:.3},\"detect_ms\":{:.3},\
         \"agree_ms\":{:.3},\"repair_ms\":{:.3},\"reexecute_ms\":{:.3},\
         \"cycles\":{},\"attempts\":{},\"crash_after_ops\":{}}}",
        r.label,
        ms(cm.mttr.total()),
        ms(cm.mttr.detect),
        ms(cm.mttr.agree),
        ms(cm.mttr.repair),
        ms(cm.mttr.reexecute),
        cm.cycles,
        cm.attempts,
        r.crash_after_ops,
    ))
}

/// Pull a numeric field out of a line-JSON record (same minimal convention
/// as bruck-bench's `scale` reader — the check crate keeps its own copy so
/// the bench binary stays independent of it).
pub fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Find the baseline line for `cell` in a committed BENCH_PR8.json body.
pub fn find_cell_line<'a>(body: &'a str, cell: &str) -> Option<&'a str> {
    let pat = format!("\"cell\":\"{cell}\"");
    body.lines().find(|l| l.contains(&pat))
}

/// Compare fresh MTTRs against a committed baseline. Virtual-time MTTR is
/// deterministic for a fixed build, so drift means the protocol changed:
/// ratios past `1.6×` (either way) are advisory, past `8×` fatal. Returns
/// `(advisories, fatals)`.
pub fn check_against_baseline(
    baseline: &str,
    reports: &[RecoveryCellReport],
) -> (Vec<String>, Vec<String>) {
    let mut advisories = Vec::new();
    let mut fatals = Vec::new();
    for r in reports {
        let Some(cm) = r.mttr else { continue };
        let new_ms = cm.mttr.total().as_secs_f64() * 1e3;
        let Some(line) = find_cell_line(baseline, &r.label) else {
            advisories.push(format!("{}: no baseline entry", r.label));
            continue;
        };
        let Some(old_ms) = field_f64(line, "mttr_total_ms") else {
            advisories.push(format!("{}: baseline entry unreadable", r.label));
            continue;
        };
        if old_ms <= 0.0 || new_ms <= 0.0 {
            continue;
        }
        let ratio = if new_ms > old_ms { new_ms / old_ms } else { old_ms / new_ms };
        if ratio > 8.0 {
            fatals.push(format!(
                "{}: MTTR {new_ms:.1}ms vs baseline {old_ms:.1}ms ({ratio:.1}x)",
                r.label
            ));
        } else if ratio > 1.6 {
            advisories.push(format!(
                "{}: MTTR {new_ms:.1}ms vs baseline {old_ms:.1}ms ({ratio:.1}x)",
                r.label
            ));
        }
    }
    (advisories, fatals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_core::packed_displs;

    #[test]
    fn calibration_marks_are_ordered() {
        let m = SizeMatrix::generate(Distribution::Uniform, 1, 5, 24);
        let (neg, ex) =
            calibrate_phases(AlltoallvAlgorithm::TwoPhaseBruck, &m, 2, 1).unwrap();
        assert!(neg > 0, "negotiation moves messages");
        assert!(ex > neg, "the exchange moves more");
        let points: Vec<u64> =
            PhaseClass::ALL.iter().map(|&ph| crash_point(ph, neg, ex)).collect();
        for w in points.windows(2) {
            assert!(w[0] <= w[1], "phase crash points are ordered: {points:?}");
        }
    }

    #[test]
    fn data_crash_cell_recovers_byte_correct_and_deterministic() {
        let r = run_recovery_cell(AlltoallvAlgorithm::TwoPhaseBruck, PhaseClass::Data, 5, 2, 24, 1);
        assert!(r.violation.is_none(), "{:?}", r.violation);
        let cm = r.mttr.expect("survivor MTTR extracted");
        assert!(cm.cycles >= 1);
        assert!(cm.mttr.total() > Duration::ZERO);
    }

    #[test]
    fn negotiate_crash_cell_recovers() {
        let r = run_recovery_cell(
            AlltoallvAlgorithm::SpreadOut,
            PhaseClass::Negotiate,
            5,
            2,
            24,
            3,
        );
        assert!(r.violation.is_none(), "{:?}", r.violation);
    }

    #[test]
    fn direct_survivor_run_matches_recovered_buffers() {
        // The cell checks bytes against the closed-form pattern; this test
        // closes the loop by running an actual fault-free exchange on the
        // survivor world and comparing buffers block by block.
        let p = 5;
        let victim = 2usize;
        let seed = 1u64;
        let matrix = SizeMatrix::generate(Distribution::Uniform, seed, p, 24);
        let (neg, ex) =
            calibrate_phases(AlltoallvAlgorithm::TwoPhaseBruck, &matrix, victim, seed).unwrap();
        let after = crash_point(PhaseClass::Data, neg, ex);
        let recovered = run_world(AlltoallvAlgorithm::TwoPhaseBruck, &matrix, victim, after, seed);

        let survivors: Vec<usize> = (0..p).filter(|&r| r != victim).collect();
        // Direct run: survivor s at dense position j exchanges the same
        // blocks the recovered world settled on.
        let m = matrix.clone();
        let sv = survivors.clone();
        let direct = SimComm::try_run(survivors.len(), &SimConfig::from_seed(seed), move |comm| {
            let me = sv[comm.rank()];
            let sendcounts: Vec<usize> = sv.iter().map(|&d| m.get(me, d)).collect();
            let sdispls = packed_displs(&sendcounts);
            let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
            for (j, &dst) in sv.iter().enumerate() {
                for idx in 0..sendcounts[j] {
                    sendbuf[sdispls[j] + idx] = pattern(me, dst, idx);
                }
            }
            let recvcounts: Vec<usize> = sv.iter().map(|&s| m.get(s, me)).collect();
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            bruck_core::two_phase_bruck(
                comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap();
            recvbuf
        });
        for (j, &rank) in survivors.iter().enumerate() {
            let rec = recovered[rank].as_ref().unwrap().as_ref().unwrap();
            let want = direct.outcomes[j].as_ref().unwrap();
            assert_eq!(&rec.0, want, "rank {rank}: recovered buffer == direct survivor run");
        }
    }

    #[test]
    fn bench_line_roundtrips_through_the_reader() {
        let r = RecoveryCellReport {
            label: "TwoPhaseBruck/data/seed1".to_string(),
            violation: None,
            digest: 7,
            mttr: Some(CellMttr {
                mttr: Mttr {
                    detect: Duration::from_millis(120),
                    agree: Duration::from_millis(80),
                    repair: Duration::from_micros(500),
                    reexecute: Duration::from_millis(40),
                },
                cycles: 1,
                attempts: 2,
            }),
            crash_after_ops: 33,
        };
        let line = bench_json_line(&r).unwrap();
        assert_eq!(field_f64(&line, "detect_ms"), Some(120.0));
        assert_eq!(field_f64(&line, "cycles"), Some(1.0));
        assert!(find_cell_line(&line, "TwoPhaseBruck/data/seed1").is_some());
        let (adv, fatal) = check_against_baseline(&line, &[r]);
        assert!(adv.is_empty() && fatal.is_empty(), "{adv:?} {fatal:?}");
    }
}
