//! Self-healing fixpoints: the BPRA tenant of the multi-epoch recovery
//! stack.
//!
//! [`crate::transitive_closure`] assumes the world never changes: a crashed
//! rank turns every later exchange and allreduce into a hang or a hole. This
//! module runs the same semi-naive fixpoint *recoverably*:
//!
//! * [`exchange_tuples_recovering`] routes one iteration's tuples through
//!   [`bruck_core::recovering_alltoallv`] — detect → agree → shrink → retry
//!   — and reports the (possibly shrunken) survivor view alongside the
//!   received tuples.
//! * [`recovering_closure`] drives whole fixpoint **epochs**: it runs the
//!   ordinary iteration loop on the current view, and whenever an exchange
//!   shrinks the view, it re-shards by the new dense world and restarts the
//!   fixpoint from the input edges. Because every rank holds the full edge
//!   list (the paper's replicated-input convention), a restart loses no
//!   information: the final closure on the shrunken world is byte-identical
//!   to a fault-free run on that world.
//!
//! The driver deliberately issues **no raw collectives**. A plain allreduce
//! faults asymmetrically under a crash — some ranks get their reduction,
//! others time out — and ranks that take different control-flow branches
//! drift to different epochs, whose detect/agree tags never meet again. So
//! the per-iteration termination votes ride the recovering exchange itself
//! as *control tuples* (reserved keys [`u64::MAX`] and `u64::MAX - 1`
//! carrying the sender's new-fact count and running closure size): every
//! decision a rank makes is derived either from the agreed survivor set or
//! from data all survivors received identically, so the whole group stays
//! in epoch lockstep by construction.
//!
//! All waiting is on the trait clock, so an entire crash-and-recover run is
//! deterministic and replayable under `bruck_comm::SimComm`.

use std::time::Duration;

use bruck_comm::{CommError, CommResult, Communicator};
use bruck_core::{recovering_alltoallv, Recovery, RecoveringConfig, RecoveryOutcome};

use crate::{decode_all, encode_into, owner, Relation, Tuple};

/// Reserved tuple key: the sender's per-iteration new-fact count. Each rank
/// appends one `(CTRL_DELTA, delta.len())` to every outbox, so each member
/// receives exactly `p` of them; their sum is the global new-fact count.
const CTRL_DELTA: u64 = u64::MAX;

/// Reserved tuple key: the sender's running closure size, summed the same
/// way. When the global delta hits zero the closure is already final, so
/// the totals that rode the same exchange are the final path count.
const CTRL_TOTAL: u64 = u64::MAX - 1;

/// Route `outboxes[i]` to view member `view[i]` with full detect → agree →
/// shrink → retry recovery. Returns the received tuples and the
/// [`Recovery`] record; when `recovery.view` differs from `view`, the
/// received tuples were routed under the *old* ownership and the caller
/// must re-shard (see [`recovering_closure`]).
pub fn exchange_tuples_recovering<C: Communicator + ?Sized>(
    comm: &C,
    cfg: &RecoveringConfig,
    view: &[usize],
    outboxes: &[Vec<Tuple>],
) -> CommResult<(Vec<Tuple>, Recovery)> {
    if outboxes.len() != view.len() {
        return Err(CommError::BadArgument("one outbox per view member"));
    }
    let sendcounts: Vec<usize> =
        outboxes.iter().map(|b| b.len() * crate::TUPLE_BYTES).collect();
    let mut sendbuf = Vec::with_capacity(sendcounts.iter().sum());
    for b in outboxes {
        for &t in b {
            encode_into(t, &mut sendbuf);
        }
    }
    let recovery = recovering_alltoallv(cfg, comm, view, &sendcounts, &sendbuf)?;
    let tuples = decode_all(&recovery.recvbuf);
    Ok((tuples, recovery))
}

/// Result of a [`recovering_closure`] run (per surviving rank).
#[derive(Debug)]
pub struct RecoveringTcResult {
    /// Fixpoint iterations of the final, successful epoch (including the
    /// terminal one whose exchange carried only zero control counts).
    pub iterations: usize,
    /// Fixpoint epochs executed: 1 means no membership change was needed.
    pub epochs: u32,
    /// Total paths in the closure over the final view, globally.
    pub total_paths: u64,
    /// This rank's shard of the closure, hash-partitioned by the *dense*
    /// numbering of the final view.
    pub local_paths: Relation,
    /// The final survivor view (sorted parent ranks).
    pub view: Vec<usize>,
    /// Parent ranks evicted across the run, ascending.
    pub evicted: Vec<usize>,
    /// Total detect → agree → repair → re-execute time across all recovery
    /// cycles, on the trait clock.
    pub recovery_time: Duration,
}

/// Transitive closure that survives rank failures: semi-naive fixpoint
/// epochs over a shrinking survivor view. Every rank passes the same full
/// edge list; node ids `>= u64::MAX - 1` are reserved for control tuples.
/// Crashed or evicted ranks get a typed error; survivors return the closure
/// over the final view. See the [module docs](self).
pub fn recovering_closure<C: Communicator + ?Sized>(
    comm: &C,
    cfg: &RecoveringConfig,
    edges: &[Tuple],
) -> CommResult<RecoveringTcResult> {
    let me = comm.rank();
    let p0 = comm.size();
    if edges.iter().any(|e| e.0 >= CTRL_TOTAL || e.1 >= CTRL_TOTAL) {
        return Err(CommError::BadArgument("node ids >= u64::MAX - 1 are reserved"));
    }
    let mut view: Vec<usize> = (0..p0).collect();
    let mut next_epoch = cfg.epoch;
    let mut epochs = 0u32;
    let mut recovery_time = Duration::ZERO;

    // Each epoch restart is triggered by an agreed view change, which
    // strictly shrinks the view; the cap only guards against a bug looping
    // on a spurious restart.
    let max_epochs = (p0 as u32) * 2;

    'epoch: loop {
        epochs += 1;
        if epochs > max_epochs {
            return Err(CommError::Timeout { src: me, tag: 0, waited: recovery_time });
        }
        let p = view.len();
        let me_pos = view
            .iter()
            .position(|&r| r == me)
            .ok_or(CommError::BadArgument("caller evicted from its own view"))?;

        // Re-shard the replicated inputs by the dense world.
        let my_edges: Relation =
            edges.iter().copied().filter(|e| owner(e.0, p) == me_pos).collect();
        let mut local_paths: Relation =
            edges.iter().copied().filter(|e| owner(e.1, p) == me_pos).collect();
        let mut delta: Vec<Tuple> = local_paths.iter().copied().collect();

        let mut iterations = 0usize;
        loop {
            let mut outboxes: Vec<Vec<Tuple>> = vec![Vec::new(); p];
            my_edges.join_on_first(&delta, |x, _y, z| outboxes[owner(z, p)].push((x, z)));
            // Termination votes piggyback on the exchange (module docs):
            // every member receives exactly `p` of each control key and
            // sums them, so all survivors see the same global counts and
            // take the same branch — no collectives, no epoch drift.
            for b in outboxes.iter_mut() {
                b.push((CTRL_DELTA, delta.len() as u64));
                b.push((CTRL_TOTAL, local_paths.len() as u64));
            }

            let ecfg = RecoveringConfig { epoch: next_epoch, ..*cfg };
            next_epoch = next_epoch.wrapping_add(cfg.retry.attempts());
            let (received, rec) = exchange_tuples_recovering(comm, &ecfg, &view, &outboxes)?;
            if let RecoveryOutcome::Recovered { mttr, .. } = &rec.outcome {
                recovery_time += mttr.total();
            }
            if rec.view != view {
                // Membership changed mid-iteration: the tuples we just
                // received were routed by the old ownership. Adopt the
                // survivor view and restart the fixpoint on it.
                view = rec.view;
                continue 'epoch;
            }
            iterations += 1;

            let mut global_delta = 0u64;
            let mut global_total = 0u64;
            delta.clear();
            for t in received {
                match t.0 {
                    CTRL_DELTA => global_delta += t.1,
                    CTRL_TOTAL => global_total += t.1,
                    _ => {
                        if local_paths.insert(t) {
                            delta.push(t);
                        }
                    }
                }
            }
            if global_delta == 0 {
                // Every delta was empty, so every data outbox was empty and
                // the totals that rode this exchange are final.
                let evicted: Vec<usize> =
                    (0..p0).filter(|r| view.binary_search(r).is_err()).collect();
                return Ok(RecoveringTcResult {
                    iterations,
                    epochs,
                    total_paths: global_total,
                    local_paths,
                    view,
                    evicted,
                    recovery_time,
                });
            }
        }
    }
}

/// Re-establish an agreed membership after a faulted collective or other
/// asymmetric failure: a zero-payload recovering exchange runs the full
/// detect → agree → shrink cycle and returns the agreed survivor view plus
/// the recovery time spent (zero when the view was already healthy).
/// [`recovering_closure`] avoids needing this by construction; tenants that
/// still issue raw collectives can call it when one faults.
pub fn heal_membership<C: Communicator + ?Sized>(
    comm: &C,
    cfg: &RecoveringConfig,
    view: &[usize],
) -> CommResult<(Vec<usize>, Duration)> {
    let zero = vec![0usize; view.len()];
    let rec = recovering_alltoallv(cfg, comm, view, &zero, &[])?;
    let spent = match &rec.outcome {
        RecoveryOutcome::Recovered { mttr, .. } => mttr.total(),
        RecoveryOutcome::Complete => Duration::ZERO,
    };
    Ok((rec.view, spent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential_closure;
    use bruck_comm::{FaultComm, FaultPlan, SimComm, SimConfig};
    use bruck_core::{AlltoallvAlgorithm, ResilientConfig};

    fn chain(n: u64) -> Vec<Tuple> {
        (0..n).map(|i| (i, i + 1)).collect()
    }

    fn sim_cfg() -> RecoveringConfig {
        RecoveringConfig {
            resilient: ResilientConfig {
                algorithm: AlltoallvAlgorithm::TwoPhaseBruck,
                deadline: Duration::from_millis(600),
                commit_timeout: Duration::from_millis(200),
                peer_timeout: Duration::from_millis(300),
                epoch: 0,
            },
            ..RecoveringConfig::default()
        }
        .with_derived_windows()
    }

    #[test]
    fn healthy_closure_matches_the_plain_driver() {
        let edges = chain(6);
        let expect = sequential_closure(&edges);
        let report = SimComm::try_run(4, &SimConfig::from_seed(5), move |comm| {
            recovering_closure(comm, &sim_cfg(), &chain(6))
        });
        let mut all: Vec<Tuple> = Vec::new();
        for out in &report.outcomes {
            let r = out.as_ref().expect("no panic").as_ref().unwrap();
            assert_eq!(r.epochs, 1);
            assert_eq!(r.view, vec![0, 1, 2, 3]);
            assert!(r.evicted.is_empty());
            assert_eq!(r.total_paths, expect.len() as u64);
            all.extend(r.local_paths.iter().copied());
        }
        all.sort_unstable();
        let mut want: Vec<Tuple> = expect.iter().copied().collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn crash_mid_fixpoint_restarts_on_the_survivor_world() {
        // Rank 2 dies during the epoch-0 exchanges; survivors must converge
        // to the exact closure a fault-free run on the survivor world
        // produces (inputs are replicated, so nothing is lost).
        let p = 5;
        let dead = 2usize;
        let edges = chain(7);
        let expect = sequential_closure(&edges);
        let report = SimComm::try_run(p, &SimConfig::from_seed(13), move |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(6).with_crash(dead, 25));
            recovering_closure(&fc, &sim_cfg(), &chain(7))
        });
        let survivors: Vec<usize> = (0..p).filter(|&r| r != dead).collect();
        let mut all: Vec<Tuple> = Vec::new();
        for (rank, out) in report.outcomes.iter().enumerate() {
            let res = out.as_ref().expect("no panic");
            if rank == dead {
                assert!(res.is_err(), "dead rank must error, got {res:?}");
                continue;
            }
            let r = res.as_ref().unwrap();
            assert_eq!(r.view, survivors, "rank {rank}");
            assert_eq!(r.evicted, vec![dead], "rank {rank}");
            assert!(r.epochs >= 2, "rank {rank}: a restart must have happened");
            assert!(r.recovery_time > Duration::ZERO, "rank {rank}");
            assert_eq!(r.total_paths, expect.len() as u64, "rank {rank}");
            all.extend(r.local_paths.iter().copied());
        }
        all.sort_unstable();
        let mut want: Vec<Tuple> = expect.iter().copied().collect();
        want.sort_unstable();
        assert_eq!(all, want, "survivor shards must union to the full closure");
        // Shards must follow the dense numbering of the survivor world.
        for (rank, out) in report.outcomes.iter().enumerate() {
            if rank == dead {
                continue;
            }
            let r = out.as_ref().unwrap().as_ref().unwrap();
            let me_pos = survivors.iter().position(|&s| s == rank).unwrap();
            assert!(
                r.local_paths.iter().all(|t| owner(t.1, survivors.len()) == me_pos),
                "rank {rank}: shard keyed by dense survivor rank"
            );
        }
    }

    #[test]
    fn zero_payload_heal_shrinks_the_view() {
        // Exercise the heal path directly: rank 1 is already dead when the
        // heal runs, so the zero-payload exchange must evict it.
        let p = 4;
        let report = SimComm::try_run(p, &SimConfig::from_seed(2), move |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(3).with_crash(1, 0));
            let view: Vec<usize> = (0..p).collect();
            heal_membership(&fc, &sim_cfg(), &view)
        });
        for (rank, out) in report.outcomes.iter().enumerate() {
            let res = out.as_ref().expect("no panic");
            if rank == 1 {
                assert!(res.is_err());
            } else {
                let (got, _spent) = res.as_ref().unwrap();
                assert_eq!(got, &vec![0, 2, 3], "rank {rank}");
            }
        }
    }
}
