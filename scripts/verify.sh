#!/bin/sh
# Offline build + test gate. The workspace is hermetic (zero external
# crates), so this must pass with no network access from a fresh checkout.
set -eu
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true
cargo build --workspace --release
cargo test --workspace -q
