//! Basic Bruck (§2.1): initial rotation, log(P) steps, final rotation.

use bruck_comm::{CommResult, Communicator};
use bruck_datatype::IndexedBlocks;

use super::validate_uniform;
use crate::common::{add_mod, ceil_log2, step_rel_indices, sub_mod, uniform_step_tag};
use crate::phases::{timed, PhaseTimes};
use crate::probe::span;

/// Basic Bruck with explicit `memcpy` buffer management.
pub fn basic_bruck<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    basic_bruck_timed(comm, sendbuf, recvbuf, block).map(drop)
}

/// [`basic_bruck`] with per-phase wall-clock breakdown (Figure 2b).
pub fn basic_bruck_timed<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<PhaseTimes> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();
    let mut t = PhaseTimes::default();

    // Phase 1 — local rotation: R[i] = S[(p + i) % P].
    timed(&mut t.setup, || {
        let _probe = span("basic.rotate");
        for i in 0..p {
            let src = add_mod(me, i, p) * block;
            recvbuf[i * block..(i + 1) * block].copy_from_slice(&sendbuf[src..src + block]);
        }
    });

    // Phase 2 — log(P) exchange steps over the offset bits.
    timed(&mut t.comm, || -> CommResult<()> {
        let mut wire = Vec::new();
        for k in 0..ceil_log2(p) {
            let _probe = span("basic.step");
            let hop = 1usize << k;
            let dest = add_mod(me, hop, p);
            let src = sub_mod(me, hop, p);
            wire.clear();
            for i in step_rel_indices(p, k) {
                wire.extend_from_slice(&recvbuf[i * block..(i + 1) * block]);
            }
            let got = comm.sendrecv(dest, uniform_step_tag(k), &wire, src, uniform_step_tag(k))?;
            debug_assert_eq!(got.len(), wire.len(), "peers exchange equal step volumes");
            let mut at = 0;
            for i in step_rel_indices(p, k) {
                recvbuf[i * block..(i + 1) * block].copy_from_slice(&got[at..at + block]);
                at += block;
            }
        }
        Ok(())
    })?;

    // Phase 3 — final inverse rotation: R'[i] = R[(p − i) % P].
    timed(&mut t.finalize, || {
        let _probe = span("basic.final_rotate");
        let staged = recvbuf.to_vec();
        for i in 0..p {
            let from = sub_mod(me, i, p) * block;
            recvbuf[i * block..(i + 1) * block].copy_from_slice(&staged[from..from + block]);
        }
    });
    Ok(t)
}

/// Basic Bruck where each step's non-contiguous blocks are described by a
/// derived datatype ([`IndexedBlocks`]) instead of hand-packed (`BasicBruck-dt`
/// in Figure 2).
pub fn basic_bruck_dt<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();

    for i in 0..p {
        let src = add_mod(me, i, p) * block;
        recvbuf[i * block..(i + 1) * block].copy_from_slice(&sendbuf[src..src + block]);
    }

    for k in 0..ceil_log2(p) {
        let hop = 1usize << k;
        let dest = add_mod(me, hop, p);
        let src = sub_mod(me, hop, p);
        // The same layout describes both what we gather to send and where the
        // received blocks scatter (indices are symmetric between the peers).
        let layout = IndexedBlocks::new(
            step_rel_indices(p, k).map(|i| (i * block, block)).collect(),
        )
        .expect("in-bounds step layout");
        let mut wire = vec![0u8; layout.packed_len()];
        layout.pack_into(recvbuf, &mut wire).expect("pack step blocks");
        let got = comm.sendrecv(dest, uniform_step_tag(k), &wire, src, uniform_step_tag(k))?;
        layout.unpack_from(&got, recvbuf).expect("unpack step blocks");
    }

    let staged = recvbuf.to_vec();
    for i in 0..p {
        let from = sub_mod(me, i, p) * block;
        recvbuf[i * block..(i + 1) * block].copy_from_slice(&staged[from..from + block]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallAlgorithm;

    #[test]
    fn basic_bruck_correct_for_all_sizes() {
        for p in TEST_SIZES {
            run_and_check(AlltoallAlgorithm::BasicBruck, p, 3);
        }
    }

    #[test]
    fn basic_bruck_dt_correct_for_all_sizes() {
        for p in TEST_SIZES {
            run_and_check(AlltoallAlgorithm::BasicBruckDt, p, 5);
        }
    }

    #[test]
    fn zero_block_size_is_a_noop() {
        run_and_check(AlltoallAlgorithm::BasicBruck, 4, 0);
    }

    #[test]
    fn large_blocks() {
        run_and_check(AlltoallAlgorithm::BasicBruck, 8, 257);
    }
}
