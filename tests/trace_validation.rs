//! The model↔implementation bridge (DESIGN.md §3, "validation bridges").
//!
//! For every algorithm, run the real implementation from `bruck-core` under
//! `CountingComm` and assert that the byte-exact trace from `bruck-model`
//! predicts, for every rank and every wire tag (= communication step),
//! exactly the bytes the real code put on the wire. This is what licenses
//! trusting the model's predictions at `P = 32768`.

use bruck_comm::{Communicator, CountingComm, SentRecord, ThreadComm, RESERVED_TAG_BASE};
use bruck_core::{alltoall, alltoallv, packed_displs, AlltoallAlgorithm, AlltoallvAlgorithm};
use bruck_model::{
    nonuniform_trace, uniform_trace, MatrixSource, NonuniformAlgo, RankSample, UniformAlgo,
};
use bruck_workload::{Distribution, SizeMatrix};

/// (core algorithm, model trace generator) pairs — non-uniform.
const NONUNIFORM_PAIRS: [(AlltoallvAlgorithm, NonuniformAlgo); 8] = [
    (AlltoallvAlgorithm::SpreadOut, NonuniformAlgo::SpreadOut),
    (AlltoallvAlgorithm::Vendor, NonuniformAlgo::Vendor),
    (AlltoallvAlgorithm::PaddedBruck, NonuniformAlgo::PaddedBruck),
    (AlltoallvAlgorithm::PaddedAlltoall, NonuniformAlgo::PaddedAlltoall),
    (AlltoallvAlgorithm::TwoPhaseBruck, NonuniformAlgo::TwoPhaseBruck),
    (AlltoallvAlgorithm::Sloav, NonuniformAlgo::Sloav),
    (AlltoallvAlgorithm::Hierarchical, NonuniformAlgo::Hierarchical),
    (AlltoallvAlgorithm::RankaTwoStage, NonuniformAlgo::RankaTwoStage),
];

/// (core algorithm, model trace generator) pairs — uniform.
const UNIFORM_PAIRS: [(AlltoallAlgorithm, UniformAlgo); 7] = [
    (AlltoallAlgorithm::BasicBruck, UniformAlgo::BasicBruck),
    (AlltoallAlgorithm::BasicBruckDt, UniformAlgo::BasicBruckDt),
    (AlltoallAlgorithm::ModifiedBruck, UniformAlgo::ModifiedBruck),
    (AlltoallAlgorithm::ModifiedBruckDt, UniformAlgo::ModifiedBruckDt),
    (AlltoallAlgorithm::ZeroCopyBruckDt, UniformAlgo::ZeroCopyBruckDt),
    (AlltoallAlgorithm::ZeroRotationBruck, UniformAlgo::ZeroRotationBruck),
    (AlltoallAlgorithm::SpreadOut, UniformAlgo::SpreadOut),
];

/// Sum of logged bytes for one wire tag.
fn logged_bytes(log: &[SentRecord], tag: u32) -> u64 {
    log.iter().filter(|r| r.tag == tag).map(|r| r.len as u64).sum()
}

/// Sum of logged bytes for all algorithm (non-collective) tags.
fn logged_wire_bytes(log: &[SentRecord]) -> u64 {
    log.iter().filter(|r| r.tag < RESERVED_TAG_BASE).map(|r| r.len as u64).sum()
}

fn check_nonuniform(core_algo: AlltoallvAlgorithm, model_algo: NonuniformAlgo, m: &SizeMatrix) {
    let p = m.p();
    let trace = nonuniform_trace(model_algo, &MatrixSource(m), &RankSample::all(p));
    let logs: Vec<Vec<SentRecord>> = ThreadComm::run(p, |comm| {
        let counting = CountingComm::new(comm);
        let me = counting.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf = vec![0xABu8; sendcounts.iter().sum()];
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        alltoallv(
            core_algo, &counting, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
            &rdispls,
        )
        .unwrap();
        counting.log()
    });
    for (rank, log) in logs.iter().enumerate() {
        for tag in trace.wire_tags() {
            assert_eq!(
                trace.bytes_for_tag(rank, tag),
                Some(logged_bytes(log, tag)),
                "{}: rank {rank}, tag {tag:#x}, P={p}",
                model_algo.name()
            );
        }
        assert_eq!(
            trace.wire_bytes_out(rank),
            Some(logged_wire_bytes(log)),
            "{}: rank {rank} total, P={p}",
            model_algo.name()
        );
    }
}

#[test]
fn nonuniform_traces_predict_real_wire_bytes_exactly() {
    for p in [2usize, 4, 5, 8, 12, 16, 32] {
        let m = SizeMatrix::generate(Distribution::Uniform, 0xAA55 + p as u64, p, 64);
        for (core_algo, model_algo) in NONUNIFORM_PAIRS {
            check_nonuniform(core_algo, model_algo, &m);
        }
    }
}

#[test]
fn nonuniform_traces_hold_for_skewed_distributions() {
    for dist in [Distribution::Normal, Distribution::POWER_LAW_STEEP, Distribution::Windowed { r: 25 }] {
        let m = SizeMatrix::generate(dist, 7, 12, 96);
        for (core_algo, model_algo) in NONUNIFORM_PAIRS {
            check_nonuniform(core_algo, model_algo, &m);
        }
    }
}

#[test]
fn nonuniform_traces_hold_with_empty_blocks() {
    // Rows with zeros exercise zero-length wire segments.
    let mut rows = vec![vec![0usize; 8]; 8];
    rows[1][6] = 33;
    rows[6][1] = 7;
    rows[3][3] = 12; // self block only
    let m = SizeMatrix::from_rows(rows);
    for (core_algo, model_algo) in NONUNIFORM_PAIRS {
        check_nonuniform(core_algo, model_algo, &m);
    }
}

#[test]
fn uniform_traces_predict_real_wire_bytes_exactly() {
    for p in [2usize, 4, 7, 8, 12, 16] {
        for n in [1usize, 32] {
            let trace_sample = RankSample::all(p);
            for (core_algo, model_algo) in UNIFORM_PAIRS {
                let trace = uniform_trace(model_algo, p, n, &trace_sample);
                let logs: Vec<Vec<SentRecord>> = ThreadComm::run(p, |comm| {
                    let counting = CountingComm::new(comm);
                    let sendbuf = vec![0x5Au8; p * n];
                    let mut recvbuf = vec![0u8; p * n];
                    alltoall(core_algo, &counting, &sendbuf, &mut recvbuf, n).unwrap();
                    counting.log()
                });
                for (rank, log) in logs.iter().enumerate() {
                    for tag in trace.wire_tags() {
                        assert_eq!(
                            trace.bytes_for_tag(rank, tag),
                            Some(logged_bytes(log, tag)),
                            "{}: rank {rank}, tag {tag:#x}, P={p}, n={n}",
                            model_algo.name()
                        );
                    }
                    assert_eq!(
                        trace.wire_bytes_out(rank),
                        Some(logged_wire_bytes(log)),
                        "{}: rank {rank} total, P={p}, n={n}",
                        model_algo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn message_counts_match_trace_structure() {
    // Each tagged step is exactly one message per rank for the Bruck family.
    let p = 8;
    let m = SizeMatrix::generate(Distribution::Uniform, 3, p, 40);
    let logs: Vec<Vec<SentRecord>> = ThreadComm::run(p, |comm| {
        let counting = CountingComm::new(comm);
        let me = counting.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf = vec![0u8; sendcounts.iter().sum()];
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        alltoallv(
            AlltoallvAlgorithm::TwoPhaseBruck, &counting, &sendbuf, &sendcounts, &sdispls,
            &mut recvbuf, &recvcounts, &rdispls,
        )
        .unwrap();
        counting.log()
    });
    for log in &logs {
        // log2(8) = 3 steps × (1 meta + 1 data) — plus the allreduce
        // (reserved tags).
        let algo_msgs = log.iter().filter(|r| r.tag < RESERVED_TAG_BASE).count();
        assert_eq!(algo_msgs, 6);
    }
}
