//! Quickstart: a non-uniform all-to-all with two-phase Bruck in ~30 lines.
//!
//! Run with: `cargo run --example quickstart`

use bruck_comm::{Communicator, ThreadComm};
use bruck_core::{packed_displs, two_phase_bruck};

fn main() {
    const P: usize = 8;

    // `ThreadComm::run` is our `mpiexec -n 8`: one rank per thread.
    ThreadComm::run(P, |comm| {
        let me = comm.rank();

        // Rank p sends (p + dst + 1) bytes of value p to every rank dst —
        // a simple non-uniform workload.
        let sendcounts: Vec<usize> = (0..P).map(|dst| me + dst + 1).collect();
        let sdispls = packed_displs(&sendcounts);
        let sendbuf = vec![me as u8; sendcounts.iter().sum()];

        // As with MPI_Alltoallv, the receiver knows its counts: from src we
        // get (src + me + 1) bytes. (Use `comm.alltoall_counts` when counts
        // are not known a priori.)
        let recvcounts: Vec<usize> = (0..P).map(|src| src + me + 1).collect();
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];

        two_phase_bruck(
            comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
        )
        .expect("exchange failed");

        // Verify: the block from src is recvcounts[src] bytes of value src.
        for src in 0..P {
            let block = &recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]];
            assert!(block.iter().all(|&b| b == src as u8));
        }
        if me == 0 {
            println!("rank 0 received blocks of sizes {recvcounts:?} — all verified ✓");
        }
    });

    println!("two-phase Bruck all-to-all across {P} ranks: OK");
}
