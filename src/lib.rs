//! # ruck — non-uniform all-to-all communication with optimized Bruck algorithms
//!
//! Facade crate re-exporting the full workspace API. See the individual crates:
//! [`bruck_comm`], [`bruck_datatype`], [`bruck_core`], [`bruck_workload`],
//! [`bruck_model`], [`bruck_bpra`].

pub use bruck_bpra as bpra;
pub use bruck_comm as comm;
pub use bruck_core as core;
pub use bruck_datatype as datatype;
pub use bruck_model as model;
pub use bruck_workload as workload;
