//! A small Datalog surface syntax for the distributed engine.
//!
//! ```text
//! % transitive closure
//! edge(1, 2). edge(2, 3).
//! path(X, Y) :- edge(X, Y).
//! path(X, Z) :- path(X, Y), edge(Y, Z).
//! ```
//!
//! Conventions: identifiers starting with an uppercase letter (or `_`) are
//! variables; integers and lowercase identifiers are constants (lowercase
//! symbols are interned to dense `u64` ids); `%` starts a line comment.
//! Relations are binary, registered in order of first appearance.

use std::collections::HashMap;
use std::fmt;

use crate::datalog::{AtomPat, Program, Rule, Term};
use crate::Tuple;

/// A parse failure with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed program: the rule set, initial facts, and the name tables.
#[derive(Debug, Clone)]
pub struct ParsedProgram {
    /// The validated rule set.
    pub program: Program,
    /// Relation names by [`crate::datalog::RelId`].
    pub rel_names: Vec<String>,
    /// Interned symbolic constants by id (numeric constants are themselves).
    pub symbols: Vec<String>,
    /// Ground facts per relation, ready for [`crate::datalog_evaluate`].
    pub facts: Vec<Vec<Tuple>>,
}

impl ParsedProgram {
    /// The relation id for `name`, if declared.
    pub fn rel(&self, name: &str) -> Option<usize> {
        self.rel_names.iter().position(|n| n == name)
    }
}

/// Symbolic constants are interned above this offset so they can never
/// collide with small numeric literals.
pub const SYMBOL_BASE: u64 = 1 << 48;

/// A parsed clause: a rule, or a ground fact `(relation, tuple)`.
type Clause = (Option<Rule>, Option<(usize, Tuple)>);

struct Token {
    line: usize,
    text: String,
}

fn tokenize(src: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for (li, line) in src.lines().enumerate() {
        let line_no = li + 1;
        let code = line.split('%').next().unwrap_or("");
        let mut chars = code.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
            } else if c.is_alphanumeric() || c == '_' {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token { line: line_no, text: word });
            } else if c == ':' {
                chars.next();
                if chars.peek() == Some(&'-') {
                    chars.next();
                    out.push(Token { line: line_no, text: ":-".into() });
                } else {
                    out.push(Token { line: line_no, text: ":".into() });
                }
            } else {
                chars.next();
                out.push(Token { line: line_no, text: c.to_string() });
            }
        }
    }
    out
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
    rels: Vec<String>,
    symbols: Vec<String>,
    symbol_ids: HashMap<String, u64>,
    vars: HashMap<String, u32>,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let line = self.tokens.get(self.at.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line);
        Err(ParseError { line, message: message.into() })
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.at).map(|t| t.text.as_str())
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.at);
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == what => {
                self.at += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.to_string();
                self.err(format!("expected '{what}', found '{t}'"))
            }
            None => self.err(format!("expected '{what}', found end of input")),
        }
    }

    fn rel_id(&mut self, name: &str) -> usize {
        if let Some(i) = self.rels.iter().position(|r| r == name) {
            i
        } else {
            self.rels.push(name.to_string());
            self.rels.len() - 1
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let Some(tok) = self.next() else {
            return self.err("expected a term, found end of input");
        };
        let text = tok.text.clone();
        let first = text.chars().next().expect("tokens are non-empty");
        if first.is_ascii_digit() {
            match text.parse::<u64>() {
                Ok(v) if v < SYMBOL_BASE => Ok(Term::Const(v)),
                Ok(_) => self.err(format!("numeric constant '{text}' exceeds {SYMBOL_BASE}")),
                Err(_) => self.err(format!("malformed number '{text}'")),
            }
        } else if first.is_uppercase() || first == '_' {
            let n = self.vars.len() as u32;
            Ok(Term::Var(*self.vars.entry(text).or_insert(n)))
        } else if first.is_lowercase() {
            let id = if let Some(&id) = self.symbol_ids.get(&text) {
                id
            } else {
                let id = SYMBOL_BASE + self.symbols.len() as u64;
                self.symbols.push(text.clone());
                self.symbol_ids.insert(text, id);
                id
            };
            Ok(Term::Const(id))
        } else {
            self.err(format!("expected a term, found '{text}'"))
        }
    }

    fn atom(&mut self) -> Result<AtomPat, ParseError> {
        let Some(tok) = self.next() else {
            return self.err("expected a relation name, found end of input");
        };
        let name = tok.text.clone();
        let first = name.chars().next().expect("tokens are non-empty");
        if !first.is_lowercase() {
            return self.err(format!("relation names must start lowercase: '{name}'"));
        }
        let rel = self.rel_id(&name);
        self.expect("(")?;
        let a = self.term()?;
        self.expect(",")?;
        let b = self.term()?;
        self.expect(")")?;
        Ok(AtomPat { rel, a, b })
    }

    /// One clause: `atom.` (fact) or `atom :- atom (, atom)? .` (rule).
    fn clause(&mut self) -> Result<Clause, ParseError> {
        self.vars.clear();
        let head = self.atom()?;
        match self.peek() {
            Some(".") => {
                self.at += 1;
                match (head.a, head.b) {
                    (Term::Const(x), Term::Const(y)) => Ok((None, Some((head.rel, (x, y))))),
                    _ => self.err("facts must be ground (no variables)"),
                }
            }
            Some(":-") => {
                self.at += 1;
                let b0 = self.atom()?;
                let mut body = vec![b0];
                if self.peek() == Some(",") {
                    self.at += 1;
                    body.push(self.atom()?);
                }
                self.expect(".")?;
                Ok((Some(Rule { head, body }), None))
            }
            Some(other) => {
                let other = other.to_string();
                self.err(format!("expected '.' or ':-', found '{other}'"))
            }
            None => self.err("expected '.' or ':-', found end of input"),
        }
    }
}

/// Parse a program. Fails with line-level diagnostics on syntax errors and
/// runs [`Program::validate`] on the result.
pub fn parse_program(src: &str) -> Result<ParsedProgram, ParseError> {
    let mut parser = Parser {
        tokens: tokenize(src),
        at: 0,
        rels: Vec::new(),
        symbols: Vec::new(),
        symbol_ids: HashMap::new(),
        vars: HashMap::new(),
    };
    let mut rules = Vec::new();
    let mut facts_raw: Vec<(usize, Tuple)> = Vec::new();
    while parser.peek().is_some() {
        let (rule, fact) = parser.clause()?;
        if let Some(r) = rule {
            rules.push(r);
        }
        if let Some(f) = fact {
            facts_raw.push(f);
        }
    }
    let relations = parser.rels.len();
    let program = Program { relations, rules };
    if let Err(msg) = program.validate() {
        return Err(ParseError { line: 0, message: msg });
    }
    let mut facts = vec![Vec::new(); relations];
    for (rel, t) in facts_raw {
        facts[rel].push(t);
    }
    Ok(ParsedProgram { program, rel_names: parser.rels, symbols: parser.symbols, facts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datalog_evaluate, sequential_closure};
    use bruck_comm::ThreadComm;
    use bruck_core::AlltoallvAlgorithm;

    const TC_SRC: &str = "
        % transitive closure over a small chain with a shortcut
        edge(0, 1). edge(1, 2). edge(2, 3). edge(0, 2).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
    ";

    #[test]
    fn parses_tc_and_evaluates_to_the_closure() {
        let parsed = parse_program(TC_SRC).unwrap();
        assert_eq!(parsed.rel_names, vec!["edge", "path"]);
        assert_eq!(parsed.facts[parsed.rel("edge").unwrap()].len(), 4);
        let expect = sequential_closure(&parsed.facts[0]);

        let program = parsed.program.clone();
        let facts = parsed.facts.clone();
        let totals = ThreadComm::run(4, move |comm| {
            datalog_evaluate(comm, AlltoallvAlgorithm::TwoPhaseBruck, &program, &facts)
                .unwrap()
                .total_facts[1]
        });
        assert!(totals.iter().all(|&t| t == expect.len() as u64));
    }

    #[test]
    fn symbols_are_interned_consistently() {
        let parsed = parse_program(
            "likes(alice, bob). likes(bob, alice). friends(X, Y) :- likes(X, Y), likes(Y, X).",
        )
        .unwrap();
        assert_eq!(parsed.symbols, vec!["alice", "bob"]);
        let alice = SYMBOL_BASE;
        let bob = SYMBOL_BASE + 1;
        assert_eq!(parsed.facts[0], vec![(alice, bob), (bob, alice)]);
    }

    #[test]
    fn variables_are_rule_scoped() {
        let parsed = parse_program(
            "a(1, 2). b(X, Y) :- a(X, Y). c(X, Y) :- b(X, Y).",
        )
        .unwrap();
        // Both rules use X/Y but validate independently.
        assert_eq!(parsed.program.rules.len(), 2);
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let parsed = parse_program("% nothing\n  e(1,2).% trailing\n\n p(X,Y):-e(X,Y).").unwrap();
        assert_eq!(parsed.rel_names, vec!["e", "p"]);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_program("e(1, 2).\np(X Y) :- e(X, Y).").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected ','"), "{}", err.message);

        let err = parse_program("e(X, 2).").unwrap_err();
        assert!(err.message.contains("ground"), "{}", err.message);

        let err = parse_program("P(1, 2).").unwrap_err();
        assert!(err.message.contains("lowercase"), "{}", err.message);

        let err = parse_program("e(1, 2). p(X, Z) :- e(X, Y), e(Q, Z).").unwrap_err();
        assert!(err.message.contains("shared"), "{}", err.message);
    }

    #[test]
    fn underscore_and_upper_are_variables() {
        let parsed = parse_program("e(1, 2). any(X, X) :- e(X, _ignored).").unwrap();
        let rule = &parsed.program.rules[0];
        assert!(matches!(rule.body[0].b, Term::Var(_)));
    }
}
