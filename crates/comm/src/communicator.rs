//! The [`Communicator`] trait: the narrow waist every algorithm is written
//! against.
//!
//! A communicator gives a rank its identity (`rank`, `size`), tagged eager
//! point-to-point transfers, and a small set of collectives implemented as
//! default methods on top of point-to-point (so every backend — real threads,
//! instrumented wrappers — gets them for free, with identical message
//! schedules, which is what lets the cost model in `bruck-model` price them).
//!
//! The *primitive* transfer operations move [`MsgBuf`] views
//! ([`Communicator::send_buf`] / [`Communicator::recv_buf`]): handing a
//! message to the runtime is a reference-count bump, never a payload copy.
//! The `&[u8]`/`Vec<u8>` forms ([`Communicator::send`],
//! [`Communicator::recv`], …) are thin compat wrappers that pack into /
//! unpack out of a `MsgBuf` — one copy on send, usually zero on receive.

use crate::{CommError, CommResult, MsgBuf, ReduceOp, Tag};

/// Tags at or above this value are reserved for the collectives implemented
/// in this crate. User code (including the Bruck algorithms) must stay below.
pub const RESERVED_TAG_BASE: Tag = 0x4000_0000;

const TAG_BARRIER: Tag = RESERVED_TAG_BASE;
const TAG_ALLREDUCE: Tag = RESERVED_TAG_BASE + 1;
const TAG_ALLGATHER: Tag = RESERVED_TAG_BASE + 2;
const TAG_GATHER: Tag = RESERVED_TAG_BASE + 3;
const TAG_ALLTOALL_COUNTS: Tag = RESERVED_TAG_BASE + 4;
const TAG_BCAST: Tag = RESERVED_TAG_BASE + 5;

/// A posted receive. The eager runtime matches lazily: the handle simply
/// records what to match, and completion happens in [`Communicator::wait_into`]
/// (or [`Communicator::wait`]). Sends complete immediately under the eager
/// protocol, so no send handle is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvReq {
    /// Source rank this receive matches.
    pub src: usize,
    /// Tag this receive matches.
    pub tag: Tag,
}

/// SPMD communicator: every rank of the program holds one, all methods are
/// called collectively or pairwise exactly as in MPI.
pub trait Communicator: Sync {
    /// This process's rank in `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Eager zero-copy send: deposits the [`MsgBuf`] view at the destination
    /// and returns immediately. The payload is shared, not copied — the
    /// backing region lives until the receiver consumes the message.
    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()>;

    /// Blocking zero-copy receive of the oldest message matching
    /// `(src, tag)`: returns the sender's view, payload shared rather than
    /// copied.
    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf>;

    /// Blocking receive into a caller buffer; returns the message length.
    ///
    /// Errors with [`CommError::Truncated`] if `buf` is too small; the
    /// message is left un-consumed in that case so the caller can retry.
    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize>;

    /// Length of the next matching message, if one has already arrived.
    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>>;

    // ------------------------------------------------------------------
    // The clock: every time-dependent path in the workspace reads time
    // through these two methods so a backend can substitute virtual time.
    // ------------------------------------------------------------------

    /// Current time on this communicator's clock, as elapsed time since an
    /// arbitrary fixed epoch. Values are only meaningful relative to each
    /// other (`later - earlier` = elapsed time).
    ///
    /// Real-thread backends report monotonic wall-clock time; the
    /// deterministic simulator ([`crate::SimComm`]) reports its virtual
    /// clock, which advances only when every rank is blocked. Wrappers must
    /// forward to their inner communicator so a whole stack shares one time
    /// axis.
    fn now(&self) -> std::time::Duration {
        crate::clock::wall_now()
    }

    /// Suspend the calling rank for `d` on this communicator's clock.
    ///
    /// Real-thread backends sleep the OS thread; the simulator parks the
    /// rank until the virtual clock reaches `now() + d` (which costs zero
    /// wall-clock time). Like [`Communicator::now`], wrappers forward this.
    fn sleep(&self, d: std::time::Duration) {
        crate::clock::wall_sleep(d)
    }

    /// Eager send of a borrowed slice: compat wrapper over
    /// [`Communicator::send_buf`] that packs `data` into a fresh region
    /// (exactly one copy).
    fn send(&self, dest: usize, tag: Tag, data: &[u8]) -> CommResult<()> {
        self.send_buf(dest, tag, MsgBuf::copy_from_slice(data))
    }

    /// Blocking receive returning an owned `Vec<u8>`: compat wrapper over
    /// [`Communicator::recv_buf`] (zero-copy when the received view is the
    /// whole region, which is the common case).
    fn recv(&self, src: usize, tag: Tag) -> CommResult<Vec<u8>> {
        Ok(self.recv_buf(src, tag)?.into_vec())
    }

    /// Non-blocking send. Under the eager protocol this is identical to
    /// [`Communicator::send`]; it exists so algorithms read like their MPI
    /// counterparts (`MPI_Isend` + waitall).
    fn isend(&self, dest: usize, tag: Tag, data: &[u8]) -> CommResult<()> {
        self.send(dest, tag, data)
    }

    /// Non-blocking zero-copy send (same eager identity as
    /// [`Communicator::isend`]).
    fn isend_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.send_buf(dest, tag, buf)
    }

    /// Post a receive for `(src, tag)`; complete it with
    /// [`Communicator::wait_into`] or [`Communicator::wait`].
    fn irecv(&self, src: usize, tag: Tag) -> CommResult<RecvReq> {
        let size = self.size();
        if src >= size {
            return Err(CommError::InvalidRank { rank: src, size });
        }
        Ok(RecvReq { src, tag })
    }

    /// Complete a posted receive into a caller buffer.
    fn wait_into(&self, req: RecvReq, buf: &mut [u8]) -> CommResult<usize> {
        self.recv_into(req.src, req.tag, buf)
    }

    /// Complete a posted receive, returning an owned payload.
    fn wait(&self, req: RecvReq) -> CommResult<Vec<u8>> {
        self.recv(req.src, req.tag)
    }

    /// Complete a posted receive, returning the shared view.
    fn wait_buf(&self, req: RecvReq) -> CommResult<MsgBuf> {
        self.recv_buf(req.src, req.tag)
    }

    // ------------------------------------------------------------------
    // Deadline-aware receives (fault detection).
    // ------------------------------------------------------------------

    /// Zero-copy receive with a deadline: [`CommError::Timeout`] if no
    /// matching message arrives within `timeout`.
    ///
    /// The default implementation polls [`Communicator::probe`] against the
    /// communicator's own clock ([`Communicator::now`] /
    /// [`Communicator::sleep`]) — correct on any backend, including under
    /// virtual time, but backends with a parked-wait primitive (the threaded
    /// mailbox's condition variable, the simulator's scheduler) override it.
    /// Wrappers should forward to their inner communicator so the efficient
    /// implementation is reached.
    fn recv_buf_timeout(
        &self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> CommResult<MsgBuf> {
        // Poll quantum for the fallback loop: long enough that a virtual
        // clock makes progress per iteration, short enough to stay
        // responsive on a wall clock.
        const POLL: std::time::Duration = std::time::Duration::from_micros(20);
        let start = self.now();
        loop {
            if self.probe(src, tag)?.is_some() {
                return self.recv_buf(src, tag);
            }
            let waited = self.now().saturating_sub(start);
            if waited >= timeout {
                return Err(CommError::Timeout { src, tag, waited });
            }
            self.sleep(POLL.min(timeout - waited));
        }
    }

    /// [`Communicator::recv_buf_timeout`] returning an owned `Vec<u8>`.
    fn recv_timeout(
        &self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> CommResult<Vec<u8>> {
        Ok(self.recv_buf_timeout(src, tag, timeout)?.into_vec())
    }

    /// Complete a posted receive with a deadline ([`CommError::Timeout`] on
    /// expiry, like [`Communicator::recv_buf_timeout`]).
    fn wait_buf_timeout(&self, req: RecvReq, timeout: std::time::Duration) -> CommResult<MsgBuf> {
        self.recv_buf_timeout(req.src, req.tag, timeout)
    }

    /// [`Communicator::wait_buf_timeout`] returning an owned `Vec<u8>`.
    fn wait_timeout(&self, req: RecvReq, timeout: std::time::Duration) -> CommResult<Vec<u8>> {
        self.recv_timeout(req.src, req.tag, timeout)
    }

    /// Combined send-then-receive (deadlock-free under the eager protocol),
    /// the workhorse of every Bruck communication step.
    fn sendrecv(
        &self,
        dest: usize,
        send_tag: Tag,
        data: &[u8],
        src: usize,
        recv_tag: Tag,
    ) -> CommResult<Vec<u8>> {
        self.send(dest, send_tag, data)?;
        self.recv(src, recv_tag)
    }

    /// Zero-copy [`Communicator::sendrecv`]: hands off one view, receives
    /// another, no payload copies in the runtime.
    fn sendrecv_buf(
        &self,
        dest: usize,
        send_tag: Tag,
        buf: MsgBuf,
        src: usize,
        recv_tag: Tag,
    ) -> CommResult<MsgBuf> {
        self.send_buf(dest, send_tag, buf)?;
        self.recv_buf(src, recv_tag)
    }

    /// [`Communicator::sendrecv`] into a caller buffer; returns received length.
    fn sendrecv_into(
        &self,
        dest: usize,
        send_tag: Tag,
        data: &[u8],
        src: usize,
        recv_tag: Tag,
        rbuf: &mut [u8],
    ) -> CommResult<usize> {
        self.send(dest, send_tag, data)?;
        self.recv_into(src, recv_tag, rbuf)
    }

    // ------------------------------------------------------------------
    // Collectives (default, point-to-point based — identical schedules on
    // every backend).
    // ------------------------------------------------------------------

    /// Dissemination barrier: ⌈log₂ P⌉ rounds of empty messages.
    fn barrier(&self) -> CommResult<()> {
        let p = self.size();
        let me = self.rank();
        let mut dist = 1;
        let mut round: Tag = 0;
        while dist < p {
            let to = (me + dist) % p;
            let from = (me + p - dist % p) % p;
            // MsgBuf::new() shares one static empty region: a barrier round
            // allocates nothing.
            self.send_buf(to, TAG_BARRIER + round, MsgBuf::new())?;
            self.recv_buf(from, TAG_BARRIER + round)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// All-reduce of a single `u64` (recursive doubling with the standard
    /// fold-in of the non-power-of-two remainder ranks).
    fn allreduce_u64(&self, value: u64, op: ReduceOp) -> CommResult<u64> {
        let p = self.size();
        let me = self.rank();
        if p == 1 {
            return Ok(value);
        }
        let m = p.next_power_of_two() >> if p.is_power_of_two() { 0 } else { 1 };
        let rem = p - m; // ranks m..p fold into ranks 0..rem
        let mut acc = value;
        if me >= m {
            self.send(me - m, TAG_ALLREDUCE, &acc.to_le_bytes())?;
            let out = self.recv(me - m, TAG_ALLREDUCE + 1)?;
            return Ok(u64::from_le_bytes(out.try_into().expect("8-byte reduce payload")));
        }
        if me < rem {
            let folded = self.recv(me + m, TAG_ALLREDUCE)?;
            acc = op.apply(acc, u64::from_le_bytes(folded.try_into().expect("8-byte reduce payload")));
        }
        let mut dist = 1;
        let mut round: Tag = 2;
        while dist < m {
            let partner = me ^ dist;
            let got = self.sendrecv(
                partner,
                TAG_ALLREDUCE + round,
                &acc.to_le_bytes(),
                partner,
                TAG_ALLREDUCE + round,
            )?;
            acc = op.apply(acc, u64::from_le_bytes(got.try_into().expect("8-byte reduce payload")));
            dist <<= 1;
            round += 1;
        }
        if me < rem {
            self.send(me + m, TAG_ALLREDUCE + 1, &acc.to_le_bytes())?;
        }
        Ok(acc)
    }

    /// Ring allgather of one `u64` per rank; result is indexed by rank.
    fn allgather_u64(&self, value: u64) -> CommResult<Vec<u64>> {
        let p = self.size();
        let me = self.rank();
        let mut out = vec![0u64; p];
        out[me] = value;
        if p == 1 {
            return Ok(out);
        }
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        // At step s we forward the value that originated at (me - s) mod p.
        let mut carry = value;
        for s in 0..p - 1 {
            let got = self.sendrecv(
                right,
                TAG_ALLGATHER + s as Tag,
                &carry.to_le_bytes(),
                left,
                TAG_ALLGATHER + s as Tag,
            )?;
            carry = u64::from_le_bytes(got.try_into().expect("8-byte allgather payload"));
            out[(me + p - s - 1) % p] = carry;
        }
        Ok(out)
    }

    /// Gather variable-length byte payloads at `root`; non-roots get `None`.
    fn gather_bytes(&self, root: usize, data: &[u8]) -> CommResult<Option<Vec<Vec<u8>>>> {
        let p = self.size();
        let me = self.rank();
        if root >= p {
            return Err(CommError::InvalidRank { rank: root, size: p });
        }
        if me == root {
            let mut out = vec![Vec::new(); p];
            out[me] = data.to_vec();
            for (src, slot) in out.iter_mut().enumerate() {
                if src != me {
                    *slot = self.recv(src, TAG_GATHER)?;
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, TAG_GATHER, data)?;
            Ok(None)
        }
    }

    /// Broadcast variable-length bytes from `root` (binomial tree).
    ///
    /// Zero-copy fan-out: interior ranks forward the *received view* to every
    /// child, so one packed region at the root serves all `P − 1` deliveries.
    fn bcast_bytes(&self, root: usize, data: &[u8]) -> CommResult<Vec<u8>> {
        let p = self.size();
        let me = self.rank();
        if root >= p {
            return Err(CommError::InvalidRank { rank: root, size: p });
        }
        if p == 1 {
            return Ok(data.to_vec());
        }
        // Work in a rotated space where the root is rank 0.
        let vrank = (me + p - root) % p;
        let mut payload = if me == root { MsgBuf::copy_from_slice(data) } else { MsgBuf::new() };
        let mut mask = 1usize;
        while mask < p {
            mask <<= 1;
        }
        mask >>= 1;
        // Receive from the parent first (unless root)...
        if vrank != 0 {
            let lowest = 1usize << vrank.trailing_zeros();
            let parent = (vrank - lowest + root) % p;
            payload = self.recv_buf(parent, TAG_BCAST)?;
        }
        // ...then fan out to children.
        let lowest = if vrank == 0 { mask << 1 } else { 1usize << vrank.trailing_zeros() };
        let mut child_bit = lowest >> 1;
        while child_bit > 0 {
            let child_v = vrank + child_bit;
            if child_v < p {
                self.send_buf((child_v + root) % p, TAG_BCAST, payload.clone())?;
            }
            child_bit >>= 1;
        }
        Ok(payload.into_vec())
    }

    /// The "counts handshake" of every `alltoallv`: each rank learns how many
    /// bytes it will receive from every other rank. Pairwise exchange.
    fn alltoall_counts(&self, sendcounts: &[usize]) -> CommResult<Vec<usize>> {
        let p = self.size();
        let me = self.rank();
        if sendcounts.len() != p {
            return Err(CommError::BadArgument("sendcounts.len() != size"));
        }
        let mut recvcounts = vec![0usize; p];
        recvcounts[me] = sendcounts[me];
        for i in 1..p {
            let dest = (me + i) % p;
            let src = (me + p - i) % p;
            let got = self.sendrecv(
                dest,
                TAG_ALLTOALL_COUNTS,
                &(sendcounts[dest] as u64).to_le_bytes(),
                src,
                TAG_ALLTOALL_COUNTS,
            )?;
            recvcounts[src] = u64::from_le_bytes(got.try_into().expect("8-byte count payload")) as usize;
        }
        Ok(recvcounts)
    }

    /// Validate a rank argument.
    fn check_rank(&self, rank: usize) -> CommResult<()> {
        if rank >= self.size() {
            Err(CommError::InvalidRank { rank, size: self.size() })
        } else {
            Ok(())
        }
    }
}
