//! The `bruck-chaos` soak harness: algorithm × fault-plan matrix under a
//! wall-clock bound, asserting the crash-only property.
//!
//! For every cell (algorithm, fault plan, seed) the harness runs a full
//! non-uniform exchange on a fresh threaded world with the fault stack
//! layered as production would: [`bruck_comm::FaultComm`] injecting the
//! plan's faults, [`bruck_comm::ReliableComm`] repairing the transport, and
//! [`bruck_core::resilient_alltoallv`] degrading gracefully. It then asserts,
//! per rank:
//!
//! * **Never hang** — the whole cell runs under a watchdog; a cell that
//!   exceeds its wall-clock bound fails (the worker is left to the OS — with
//!   a rank deadlocked there is nothing safe to join).
//! * **Never silent corruption** — every receive-buffer block the outcome
//!   does *not* name as a hole must be byte-identical to the fault-free
//!   pattern; errors must be the typed fault errors.
//! * **Completion where promised** — plans without a crashed rank must end
//!   lossless on every rank (the reliable layer's job); crash plans must end
//!   with the dead rank failing typed and every survivor bounded.
//! * **Never meter drift** — every cell runs with a [`bruck_comm::MeteredComm`]
//!   layered over the reliable transport; a rank whose counter snapshot fails
//!   its internal consistency checks fails the cell, so the observability
//!   layer is proven drift-free under the full fault battery.
//!
//! Determinism is checked by re-running selected cells with the identical
//! seed and comparing verdicts and completed buffers. (Fault *decisions* are
//! seed-deterministic by construction — see `fault.rs` — but outcome shapes
//! on crash cells may differ across interleavings; verdicts must not.)

use std::sync::mpsc;
use std::time::{Duration, Instant};

use bruck_comm::{
    CommError, Communicator, FaultComm, FaultPlan, MeteredComm, ReduceOp, ReliableComm,
    ReliableConfig, ThreadComm,
};
use bruck_core::{
    allgatherv, allreduce, collective_with_deadline, packed_displs, pattern_byte, pattern_u64,
    reduce_scatter, reference_allgatherv, reference_allreduce, reference_reduce_scatter,
    resilient_alltoallv, AllgathervAlgorithm, AllreduceAlgorithm, AlltoallvAlgorithm,
    CollectiveOutcome, ExchangeOutcome, ReduceScatterAlgorithm, ResilientConfig,
};
use bruck_workload::{Distribution, SizeMatrix};

use crate::cells::{check_block, pattern_send_side};

/// What a fault plan entitles us to demand of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// No rank is scripted to die: every rank must finish lossless.
    MustComplete,
    /// A rank is scripted to crash: the dead rank must fail typed; survivors
    /// must finish bounded with holes at most naming dead ranks' blocks.
    MayDegrade {
        /// The scripted-to-crash rank.
        dead: usize,
    },
}

/// A named fault plan plus what it entitles the harness to assert.
pub struct PlannedFaults {
    /// Display name for reports.
    pub name: &'static str,
    /// The injection plan.
    pub plan: FaultPlan,
    /// The verdict contract for this plan.
    pub expect: Expectation,
}

/// The standard plan battery for a world of `p` ranks at `seed`.
///
/// Rates are chosen so that non-crash plans stay comfortably inside the
/// reliable layer's retry budget (see [`reliable_config`]): the probability
/// of a message exhausting 13 attempts at these rates is < 1e-6.
pub fn plan_battery(p: usize, seed: u64) -> Vec<PlannedFaults> {
    let mut plans = vec![
        PlannedFaults {
            name: "clean",
            plan: FaultPlan::new(seed),
            expect: Expectation::MustComplete,
        },
        PlannedFaults {
            name: "drop",
            plan: FaultPlan::new(seed).with_drop(0.08),
            expect: Expectation::MustComplete,
        },
        PlannedFaults {
            name: "duplicate",
            plan: FaultPlan::new(seed).with_duplicate(0.12),
            expect: Expectation::MustComplete,
        },
        PlannedFaults {
            name: "corrupt",
            plan: FaultPlan::new(seed).with_corrupt(0.08),
            expect: Expectation::MustComplete,
        },
        PlannedFaults {
            name: "lossy",
            plan: FaultPlan::new(seed)
                .with_drop(0.05)
                .with_duplicate(0.05)
                .with_corrupt(0.04)
                .with_delay(0.2, 48),
            expect: Expectation::MustComplete,
        },
    ];
    if p > 1 {
        plans.push(PlannedFaults {
            name: "stall",
            plan: FaultPlan::new(seed).with_stall(1 % p, 3, 120),
            expect: Expectation::MustComplete,
        });
        plans.push(PlannedFaults {
            name: "crash",
            plan: FaultPlan::new(seed).with_crash(p - 1, 4),
            expect: Expectation::MayDegrade { dead: p - 1 },
        });
    }
    plans
}

/// Retry policy used by every cell: tight timeouts (the threaded transport
/// delivers in microseconds; retransmissions are triggered by injected
/// faults, not latency) with a budget deep enough that exhaustion on a live
/// edge is out of reach.
pub fn reliable_config() -> ReliableConfig {
    ReliableConfig {
        ack_timeout: Duration::from_millis(15),
        max_retries: 12,
        backoff_cap: Duration::from_millis(120),
    }
}

fn resilient_config(algorithm: AlltoallvAlgorithm) -> ResilientConfig {
    ResilientConfig {
        algorithm,
        deadline: Duration::from_secs(4),
        commit_timeout: Duration::from_millis(700),
        peer_timeout: Duration::from_millis(900),
        epoch: 0,
    }
}

/// How one rank ended, reduced to what determinism may compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankVerdict {
    /// Lossless finish with a byte-correct buffer (buffer retained).
    Lossless(Vec<u8>),
    /// Degraded finish; holes verified, hole list retained.
    Holes(Vec<usize>),
    /// Typed fault error (the crash-only permitted failure).
    TypedError(String),
}

/// One cell's outcome: per-rank verdicts, or a crash-only violation.
#[derive(Debug)]
pub struct CellReport {
    /// `algorithm/plan/seed` label.
    pub label: String,
    /// Violation description, if the cell failed.
    pub violation: Option<String>,
    /// Wall-clock the cell took.
    pub elapsed: Duration,
    /// Per-rank verdicts (empty on watchdog timeout).
    pub verdicts: Vec<RankVerdict>,
}

/// Run one (algorithm, plan, seed) cell under `wall_bound`.
///
/// `p`/`n_max` shape the workload; the fault plan is applied beneath a
/// reliable layer and the resilient driver, and the crash-only assertions
/// from the [module docs](self) are checked on every rank.
pub fn run_cell(
    algorithm: AlltoallvAlgorithm,
    p: usize,
    n_max: usize,
    planned: &PlannedFaults,
    seed: u64,
    wall_bound: Duration,
) -> CellReport {
    let label = format!("{}/{}/seed{}", algorithm.name(), planned.name, seed);
    let start = Instant::now();
    let matrix = SizeMatrix::generate(Distribution::Uniform, seed, p, n_max);
    let plan = planned.plan.clone();
    let expect = planned.expect;

    let (tx, rx) = mpsc::channel();
    let m = matrix.clone();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(move || run_world(algorithm, &m, &plan))
            .map_err(|_| "worker panicked".to_string());
        // The watchdog may have given up; a dead receiver is fine.
        let _ = tx.send(result);
    });

    let per_rank = match rx.recv_timeout(wall_bound) {
        Ok(Ok(r)) => r,
        Ok(Err(e)) => {
            return CellReport {
                label,
                violation: Some(e),
                elapsed: start.elapsed(),
                verdicts: Vec::new(),
            }
        }
        Err(_) => {
            return CellReport {
                label,
                violation: Some(format!("HANG: exceeded wall bound {wall_bound:?}")),
                elapsed: start.elapsed(),
                verdicts: Vec::new(),
            }
        }
    };

    let mut violation = None;
    let mut verdicts = Vec::with_capacity(p);
    for (me, (outcome, recvbuf, drift)) in per_rank.into_iter().enumerate() {
        if let Some(err) = drift.first() {
            violation.get_or_insert(format!("rank {me}: METERING DRIFT: {err}"));
        }
        match classify_rank(me, &matrix, outcome, recvbuf, expect) {
            Ok(v) => verdicts.push(v),
            Err(e) => {
                violation.get_or_insert(format!("rank {me}: {e}"));
                verdicts.push(RankVerdict::TypedError("violation".to_string()));
            }
        }
    }
    if violation.is_none() {
        if let Err(e) = check_world_shape(&verdicts, expect) {
            violation = Some(e);
        }
    }
    CellReport { label, violation, elapsed: start.elapsed(), verdicts }
}

type RankResult =
    (Result<ExchangeOutcome, bruck_comm::CommError>, Vec<u8>, Vec<String>);

/// Execute the exchange on a fresh world; returns per-rank (outcome, buffer,
/// meter consistency errors).
fn run_world(
    algorithm: AlltoallvAlgorithm,
    matrix: &SizeMatrix,
    plan: &FaultPlan,
) -> Vec<RankResult> {
    let p = matrix.p();
    let m = matrix.clone();
    let plan = plan.clone();
    ThreadComm::run(p, move |comm| {
        let fc = FaultComm::new(comm, plan.clone());
        let rc = ReliableComm::with_config(&fc, reliable_config());
        // Meter the logical channel (above the ARQ, so retransmissions are
        // invisible) and prove it never drifts under injected faults.
        let mc = MeteredComm::new(&rc);
        let me = mc.rank();
        let (sendcounts, sdispls, sendbuf) = pattern_send_side(&m, me);
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        let outcome = resilient_alltoallv(
            &resilient_config(algorithm),
            &mc,
            &sendbuf,
            &sendcounts,
            &sdispls,
            &mut recvbuf,
            &recvcounts,
            &rdispls,
        );
        // Service peers' retransmissions before leaving so a lost ack near
        // the end cannot strand a survivor in its retry loop.
        let _ = rc.quiesce(Duration::from_millis(150), Duration::from_secs(2));
        (outcome, recvbuf, mc.metrics().consistency_errors())
    })
}

/// Verify one rank's outcome against the crash-only contract.
fn classify_rank(
    me: usize,
    matrix: &SizeMatrix,
    outcome: Result<ExchangeOutcome, bruck_comm::CommError>,
    recvbuf: Vec<u8>,
    expect: Expectation,
) -> Result<RankVerdict, String> {
    let p = matrix.p();
    let rdispls = packed_displs(&matrix.recvcounts(me));
    let check_src = |src: usize, recvbuf: &[u8]| -> Result<(), String> {
        match check_block(matrix, me, src, &rdispls, recvbuf) {
            Some(mm) => Err(format!(
                "SILENT CORRUPTION: block from {src} byte {}: got {}, want {}",
                mm.idx, mm.got, mm.want
            )),
            None => Ok(()),
        }
    };
    match outcome {
        Ok(out) if out.is_lossless() => {
            for src in 0..p {
                check_src(src, &recvbuf)?;
            }
            Ok(RankVerdict::Lossless(recvbuf))
        }
        Ok(ExchangeOutcome::Partial { report, .. }) => {
            if let Expectation::MustComplete = expect {
                return Err(format!("holes {:?} under a must-complete plan", report.missing_sources));
            }
            for src in (0..p).filter(|s| !report.missing_sources.contains(s)) {
                check_src(src, &recvbuf)?;
            }
            Ok(RankVerdict::Holes(report.missing_sources))
        }
        Ok(_) => unreachable!("lossless outcomes are handled above"),
        Err(
            e @ (bruck_comm::CommError::Timeout { .. } | bruck_comm::CommError::RankFailed { .. }),
        ) => {
            if let Expectation::MustComplete = expect {
                return Err(format!("typed error {e} under a must-complete plan"));
            }
            Ok(RankVerdict::TypedError(e.to_string()))
        }
        Err(e) => Err(format!("non-fault error {e}")),
    }
}

/// Cross-rank shape checks that single-rank classification cannot see.
fn check_world_shape(verdicts: &[RankVerdict], expect: Expectation) -> Result<(), String> {
    match expect {
        Expectation::MustComplete => Ok(()), // all-lossless already enforced per rank
        Expectation::MayDegrade { dead } => {
            // The dead rank must not claim a lossless world-view...
            if matches!(verdicts.get(dead), Some(RankVerdict::Lossless(_))) {
                // (possible only if it crashed after its last op — the crash
                // op count is chosen low enough that this means a bug)
                return Err(format!("scripted-dead rank {dead} reported lossless"));
            }
            // ...and at least one survivor must have produced a usable result.
            let usable = verdicts
                .iter()
                .enumerate()
                .any(|(r, v)| r != dead && !matches!(v, RankVerdict::TypedError(_)));
            if !usable {
                return Err("no survivor produced a usable outcome".to_string());
            }
            Ok(())
        }
    }
}

/// Matrix configuration for [`run_matrix`].
pub struct ChaosConfig {
    /// World sizes to sweep.
    pub sizes: Vec<usize>,
    /// Fault seeds to sweep ([`seeds_from_env`] honors `BRUCK_CHAOS_SEEDS`).
    pub seeds: Vec<u64>,
    /// Algorithms to sweep.
    pub algorithms: Vec<AlltoallvAlgorithm>,
    /// Largest per-pair block size in the generated workload.
    pub n_max: usize,
    /// Watchdog bound per cell.
    pub cell_wall_bound: Duration,
    /// Re-run each `clean`/`lossy` cell with the same seed and require
    /// identical verdicts and bytes (fault-sequence determinism, end to end).
    pub rerun_determinism: bool,
}

impl ChaosConfig {
    /// The CI-sized matrix (`bruck-chaos --smoke`): 2 algorithms × full plan
    /// battery × the given seeds, ~half a minute.
    pub fn smoke(seeds: Vec<u64>) -> Self {
        ChaosConfig {
            sizes: vec![5],
            seeds,
            algorithms: vec![AlltoallvAlgorithm::TwoPhaseBruck, AlltoallvAlgorithm::SpreadOut],
            n_max: 48,
            cell_wall_bound: Duration::from_secs(60),
            rerun_determinism: true,
        }
    }

    /// The soak-sized matrix (`bruck-chaos` without `--smoke`).
    pub fn full(seeds: Vec<u64>) -> Self {
        ChaosConfig {
            sizes: vec![4, 7],
            seeds,
            algorithms: vec![
                AlltoallvAlgorithm::TwoPhaseBruck,
                AlltoallvAlgorithm::PaddedBruck,
                AlltoallvAlgorithm::SpreadOut,
                AlltoallvAlgorithm::Vendor,
            ],
            n_max: 96,
            cell_wall_bound: Duration::from_secs(120),
            rerun_determinism: true,
        }
    }
}

/// Seeds from `BRUCK_CHAOS_SEEDS` (comma-separated), or the defaults.
pub fn seeds_from_env(default: &[u64]) -> Vec<u64> {
    match std::env::var("BRUCK_CHAOS_SEEDS") {
        Ok(s) => {
            let parsed: Vec<u64> =
                s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// Run the whole matrix; returns reports (one per cell, plus determinism
/// re-run cells labelled `…/rerun`).
pub fn run_matrix(cfg: &ChaosConfig, mut progress: impl FnMut(&CellReport)) -> Vec<CellReport> {
    let mut reports = Vec::new();
    for &p in &cfg.sizes {
        for &seed in &cfg.seeds {
            for planned in plan_battery(p, seed) {
                for &algorithm in &cfg.algorithms {
                    let report =
                        run_cell(algorithm, p, cfg.n_max, &planned, seed, cfg.cell_wall_bound);
                    let deterministic_plan = matches!(planned.name, "clean" | "lossy");
                    let check_rerun = cfg.rerun_determinism
                        && deterministic_plan
                        && report.violation.is_none();
                    progress(&report);
                    if check_rerun {
                        let mut rerun =
                            run_cell(algorithm, p, cfg.n_max, &planned, seed, cfg.cell_wall_bound);
                        rerun.label.push_str("/rerun");
                        if rerun.violation.is_none() && rerun.verdicts != report.verdicts {
                            rerun.violation = Some(
                                "NONDETERMINISM: same seed produced different verdicts".to_string(),
                            );
                        }
                        progress(&rerun);
                        reports.push(report);
                        reports.push(rerun);
                    } else {
                        reports.push(report);
                    }
                }
            }
        }
    }
    reports
}

/// Plan names the collective battery sweeps: the clean path, the full
/// repairable fault mix, and the scripted crash — one representative of each
/// contract class in [`plan_battery`].
pub const COLL_PLAN_NAMES: [&str; 3] = ["clean", "lossy", "crash"];

/// Non-uniform per-rank counts (with zeros) for the collective chaos cells.
fn coll_counts(p: usize, seed: u64) -> Vec<usize> {
    (0..p)
        .map(|i| {
            let x = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            if x % 4 == 0 {
                0
            } else {
                (x % 9) as usize + 1
            }
        })
        .collect()
}

/// Expected output bytes for one rank of a collective chaos cell.
fn coll_expected(schedule: &str, p: usize, me: usize, counts: &[usize]) -> Vec<u8> {
    let total: usize = counts.iter().sum();
    match schedule {
        "agv/ring" | "agv/bruck" | "agv/pat" => {
            let inputs: Vec<Vec<u8>> =
                (0..p).map(|r| (0..counts[r]).map(|i| pattern_byte(r, i)).collect()).collect();
            reference_allgatherv(&inputs)
        }
        "rs/pairwise" | "rs/halving" | "rs/pat" => {
            let inputs: Vec<Vec<u64>> =
                (0..p).map(|r| (0..total).map(|i| pattern_u64(r, i)).collect()).collect();
            let segs = reference_reduce_scatter(&inputs, counts, ReduceOp::Sum);
            segs[me].iter().flat_map(|v| v.to_le_bytes()).collect()
        }
        _ => {
            let inputs: Vec<Vec<u64>> =
                (0..p).map(|r| (0..total).map(|i| pattern_u64(r, i)).collect()).collect();
            reference_allreduce(&inputs, ReduceOp::Sum)
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect()
        }
    }
}

type CollRankResult = (Result<CollectiveOutcome<Vec<u8>>, CommError>, Vec<String>);

/// Execute one collective schedule on a fresh faulted world. Every rank runs
/// under [`collective_with_deadline`], so a scripted crash surfaces as a
/// typed [`CollectiveOutcome::Aborted`] — never a hang or a panic.
fn run_coll_world(schedule: &'static str, p: usize, seed: u64, plan: &FaultPlan) -> Vec<CollRankResult> {
    let counts = coll_counts(p, seed);
    let total: usize = counts.iter().sum();
    let plan = plan.clone();
    ThreadComm::run(p, move |comm| {
        let fc = FaultComm::new(comm, plan.clone());
        let rc = ReliableComm::with_config(&fc, reliable_config());
        let mc = MeteredComm::new(&rc);
        let me = mc.rank();
        let counts = counts.clone();
        let outcome = collective_with_deadline(&mc, Duration::from_secs(4), |dc| {
            match schedule {
                "agv/ring" | "agv/bruck" | "agv/pat" => {
                    let algo = match schedule {
                        "agv/ring" => AllgathervAlgorithm::Ring,
                        "agv/bruck" => AllgathervAlgorithm::Bruck,
                        _ => AllgathervAlgorithm::Pat,
                    };
                    let input: Vec<u8> = (0..counts[me]).map(|i| pattern_byte(me, i)).collect();
                    let displs = packed_displs(&counts);
                    let mut recvbuf = vec![0u8; total];
                    allgatherv(algo, dc, &input, &mut recvbuf, &counts, &displs)?;
                    Ok(recvbuf)
                }
                "rs/pairwise" | "rs/halving" | "rs/pat" => {
                    let algo = match schedule {
                        "rs/pairwise" => ReduceScatterAlgorithm::Pairwise,
                        "rs/halving" => ReduceScatterAlgorithm::RecursiveHalving,
                        _ => ReduceScatterAlgorithm::Pat,
                    };
                    let input: Vec<u64> = (0..total).map(|i| pattern_u64(me, i)).collect();
                    let mut recvbuf = vec![0u64; counts[me]];
                    reduce_scatter(algo, dc, &input, &mut recvbuf, &counts, ReduceOp::Sum)?;
                    Ok(recvbuf.iter().flat_map(|v| v.to_le_bytes()).collect())
                }
                _ => {
                    let algo = match schedule {
                        "ar/doubling" => AllreduceAlgorithm::RecursiveDoubling,
                        _ => AllreduceAlgorithm::ReduceScatterAllgather,
                    };
                    let mut buf: Vec<u64> = (0..total).map(|i| pattern_u64(me, i)).collect();
                    allreduce(algo, dc, &mut buf, ReduceOp::Sum)?;
                    Ok(buf.iter().flat_map(|v| v.to_le_bytes()).collect())
                }
            }
        });
        let _ = rc.quiesce(Duration::from_millis(150), Duration::from_secs(2));
        (outcome, mc.metrics().consistency_errors())
    })
}

/// Run one collective chaos cell: `schedule` under `planned` faults, the
/// crash-only contract asserted per rank.
///
/// * **MustComplete plans** — every rank must end [`CollectiveOutcome::Complete`]
///   with reference-exact bytes: the reliable layer repaired every injected
///   fault and the collective delivered exactly-once semantics.
/// * **Crash plans** — every rank must end either `Complete` with exact bytes
///   (the crash landed after its part of the schedule) or `Aborted` with the
///   typed fault error. Never a hang, a panic, a non-fault error, or a
///   `Complete` with wrong bytes.
pub fn run_coll_cell(
    schedule: &'static str,
    p: usize,
    planned: &PlannedFaults,
    seed: u64,
    wall_bound: Duration,
) -> CellReport {
    let label = format!("coll/{schedule}/{}/seed{seed}", planned.name);
    let start = Instant::now();
    let plan = planned.plan.clone();
    let expect = planned.expect;

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(move || run_coll_world(schedule, p, seed, &plan))
            .map_err(|_| "worker panicked".to_string());
        let _ = tx.send(result);
    });

    let per_rank = match rx.recv_timeout(wall_bound) {
        Ok(Ok(r)) => r,
        Ok(Err(e)) => {
            return CellReport {
                label,
                violation: Some(e),
                elapsed: start.elapsed(),
                verdicts: Vec::new(),
            }
        }
        Err(_) => {
            return CellReport {
                label,
                violation: Some(format!("HANG: exceeded wall bound {wall_bound:?}")),
                elapsed: start.elapsed(),
                verdicts: Vec::new(),
            }
        }
    };

    let counts = coll_counts(p, seed);
    let mut violation = None;
    let mut verdicts = Vec::with_capacity(p);
    for (me, (outcome, drift)) in per_rank.into_iter().enumerate() {
        if let Some(err) = drift.first() {
            violation.get_or_insert(format!("rank {me}: METERING DRIFT: {err}"));
        }
        match outcome {
            Ok(CollectiveOutcome::Complete(bytes)) => {
                if bytes == coll_expected(schedule, p, me, &counts) {
                    verdicts.push(RankVerdict::Lossless(bytes));
                } else {
                    violation.get_or_insert(format!(
                        "rank {me}: SILENT CORRUPTION: completed with wrong bytes"
                    ));
                    verdicts.push(RankVerdict::TypedError("violation".to_string()));
                }
            }
            Ok(CollectiveOutcome::Aborted { error }) => {
                if let Expectation::MustComplete = expect {
                    violation.get_or_insert(format!(
                        "rank {me}: aborted ({error}) under a must-complete plan"
                    ));
                }
                verdicts.push(RankVerdict::TypedError(error.to_string()));
            }
            Err(e) => {
                violation.get_or_insert(format!("rank {me}: non-fault error {e}"));
                verdicts.push(RankVerdict::TypedError("violation".to_string()));
            }
        }
    }
    CellReport { label, violation, elapsed: start.elapsed(), verdicts }
}

/// The collective-family schedules the chaos battery sweeps (label-stable,
/// mirrors `sim_matrix::COLL_SCHEDULES`).
pub const COLL_SCHEDULES: [&str; 8] = crate::sim_matrix::COLL_SCHEDULES;

/// Run every collective schedule against each plan in [`COLL_PLAN_NAMES`]
/// for every seed. Reports are shaped like [`run_matrix`]'s so the
/// `bruck-chaos` binary prints them identically.
pub fn run_coll_battery(
    p: usize,
    seeds: &[u64],
    wall_bound: Duration,
    mut progress: impl FnMut(&CellReport),
) -> Vec<CellReport> {
    let mut reports = Vec::new();
    for &seed in seeds {
        let battery = plan_battery(p, seed);
        for planned in battery.iter().filter(|f| COLL_PLAN_NAMES.contains(&f.name)) {
            for schedule in COLL_SCHEDULES {
                let report = run_coll_cell(schedule, p, planned, seed, wall_bound);
                progress(&report);
                reports.push(report);
            }
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_passes() {
        let battery = plan_battery(4, 1);
        let clean = &battery[0];
        assert_eq!(clean.name, "clean");
        let r = run_cell(
            AlltoallvAlgorithm::TwoPhaseBruck,
            4,
            32,
            clean,
            1,
            Duration::from_secs(30),
        );
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.verdicts.iter().all(|v| matches!(v, RankVerdict::Lossless(_))));
    }

    #[test]
    fn crash_cell_degrades_within_bounds() {
        let battery = plan_battery(4, 2);
        let crash = battery.iter().find(|f| f.name == "crash").expect("battery has crash");
        let r = run_cell(
            AlltoallvAlgorithm::TwoPhaseBruck,
            4,
            32,
            crash,
            2,
            Duration::from_secs(45),
        );
        assert!(r.violation.is_none(), "{:?}", r.violation);
        // The scripted-dead rank must be a typed error.
        assert!(matches!(r.verdicts[3], RankVerdict::TypedError(_)));
    }

    #[test]
    fn collective_clean_cell_completes_exactly_once() {
        let battery = plan_battery(5, 1);
        let clean = &battery[0];
        assert_eq!(clean.name, "clean");
        let r = run_coll_cell("agv/bruck", 5, clean, 1, Duration::from_secs(30));
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.verdicts.iter().all(|v| matches!(v, RankVerdict::Lossless(_))));
    }

    #[test]
    fn collective_crash_cell_yields_typed_outcomes() {
        let battery = plan_battery(5, 2);
        let crash = battery.iter().find(|f| f.name == "crash").expect("battery has crash");
        let r = run_coll_cell("agv/bruck", 5, crash, 2, Duration::from_secs(45));
        assert!(r.violation.is_none(), "{:?}", r.violation);
        // The scripted-dead rank crashes mid-schedule (4 fault-level ops is
        // less than one doubling step's send+ack+recv+ack) and must abort
        // with the typed fault error, not hang or complete.
        assert!(matches!(r.verdicts[4], RankVerdict::TypedError(_)));
    }

    #[test]
    fn seeds_env_parsing_falls_back() {
        // Not set in the test environment (cargo does not set it).
        let v = seeds_from_env(&[9, 10]);
        if std::env::var("BRUCK_CHAOS_SEEDS").is_err() {
            assert_eq!(v, vec![9, 10]);
        }
    }
}
