//! The program-analysis-style iterated workload (§5.2, Figure 12).
//!
//! The paper drives 4,300 non-uniform all-to-all exchanges from a kCFA-8
//! analysis whose per-iteration fact volume is spiky and heavy-tailed: most
//! iterations generate small maximum block sizes (`N < 1000` bytes) with
//! occasional order-of-magnitude bursts. The kCFA input generator is not
//! available, so we reproduce exactly that *load schedule* (DESIGN.md §1):
//! each iteration, every rank produces a pseudo-random number of facts routed
//! by hash ownership, with the per-iteration volume following a spiky
//! multiplier series.

use bruck_comm::{CommResult, Communicator};
use bruck_core::AlltoallvAlgorithm;

use crate::{exchange_tuples, owner, ExchangeStats, Tuple};

/// Configuration of a kCFA-like run.
#[derive(Debug, Clone, Copy)]
pub struct KcfaConfig {
    /// Number of fixpoint iterations (the paper's run took 4,300).
    pub iterations: usize,
    /// Baseline facts produced per rank per iteration.
    pub base_facts: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for KcfaConfig {
    fn default() -> Self {
        KcfaConfig { iterations: 200, base_facts: 8, seed: 0xCFA8 }
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The spiky volume multiplier of iteration `iter`: mostly 1–4×, with a
/// 1-in-16 chance of a 10–40× burst (Figure 12's N spikes).
pub fn volume_multiplier(seed: u64, iter: usize) -> usize {
    let h = splitmix64(seed ^ (iter as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    let base = 1 + (h % 4) as usize;
    if h.is_multiple_of(16) {
        base * (10 + (splitmix64(h) % 30) as usize)
    } else {
        base
    }
}

/// How many facts `rank` produces at iteration `iter`.
pub fn facts_at(cfg: &KcfaConfig, rank: usize, iter: usize) -> usize {
    let m = volume_multiplier(cfg.seed, iter);
    let jitter =
        splitmix64(cfg.seed ^ (rank as u64) << 32 ^ iter as u64) % (cfg.base_facts as u64 + 1);
    cfg.base_facts * m + jitter as usize
}

/// Result of a kCFA-like run.
#[derive(Debug)]
pub struct KcfaResult {
    /// Per-iteration exchange stats (comm time + the `N` series of Fig. 12).
    pub per_iteration: Vec<ExchangeStats>,
    /// Facts this rank received over the whole run.
    pub facts_received: u64,
}

/// Run the iterated exchange with the chosen all-to-all algorithm.
pub fn kcfa_like_run<C: Communicator + ?Sized>(
    comm: &C,
    algo: AlltoallvAlgorithm,
    cfg: &KcfaConfig,
) -> CommResult<KcfaResult> {
    let p = comm.size();
    let me = comm.rank();
    let mut per_iteration = Vec::with_capacity(cfg.iterations);
    let mut facts_received = 0u64;
    for iter in 0..cfg.iterations {
        let count = facts_at(cfg, me, iter);
        let mut outboxes: Vec<Vec<Tuple>> = vec![Vec::new(); p];
        for i in 0..count {
            let h = splitmix64(cfg.seed ^ (iter as u64) << 40 ^ (me as u64) << 20 ^ i as u64);
            let fact: Tuple = (h, splitmix64(h));
            outboxes[owner(fact.0, p)].push(fact);
        }
        let (received, stats) = exchange_tuples(comm, algo, &outboxes)?;
        facts_received += received.len() as u64;
        per_iteration.push(stats);
    }
    Ok(KcfaResult { per_iteration, facts_received })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_comm::{ReduceOp, ThreadComm};

    #[test]
    fn volume_schedule_is_spiky_and_heavy_tailed() {
        let vols: Vec<usize> = (0..2000).map(|i| volume_multiplier(1, i)).collect();
        let max = *vols.iter().max().unwrap();
        let median = {
            let mut v = vols.clone();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(max >= 10 * median, "max {max} vs median {median}");
        // The majority of iterations are small — Figure 12's key property.
        let small = vols.iter().filter(|&&v| v <= 4).count();
        assert!(small * 10 >= vols.len() * 8, "{small}/{} small iterations", vols.len());
    }

    #[test]
    fn runs_converge_and_count_facts_consistently() {
        let cfg = KcfaConfig { iterations: 25, base_facts: 4, seed: 9 };
        for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
            let results = ThreadComm::run(4, move |comm| {
                let r = kcfa_like_run(comm, algo, &cfg).unwrap();
                let total = comm.allreduce_u64(r.facts_received, ReduceOp::Sum).unwrap();
                (r, total)
            });
            // Every fact produced is received exactly once, so the global
            // received count equals the globally produced count.
            let produced: u64 = (0..4)
                .flat_map(|rank| (0..25).map(move |it| facts_at(&cfg, rank, it) as u64))
                .sum();
            for (r, total) in &results {
                assert_eq!(*total, produced, "algo {algo:?}");
                assert_eq!(r.per_iteration.len(), 25);
            }
        }
    }

    #[test]
    fn n_series_is_identical_across_algorithms() {
        // The workload (and so the N series of Figure 12) is algorithm-
        // independent; only comm time differs.
        let cfg = KcfaConfig { iterations: 15, base_facts: 6, seed: 4 };
        let n_of = |algo| {
            ThreadComm::run(3, move |comm| {
                kcfa_like_run(comm, algo, &cfg)
                    .unwrap()
                    .per_iteration
                    .iter()
                    .map(|s| s.n_max)
                    .collect::<Vec<_>>()
            })
            .remove(0)
        };
        assert_eq!(n_of(AlltoallvAlgorithm::Vendor), n_of(AlltoallvAlgorithm::TwoPhaseBruck));
    }
}
