//! Communication traces: the per-step, per-rank traffic of an algorithm run,
//! and their evaluation under a [`MachineModel`](crate::MachineModel).
//!
//! A trace is generated without moving any payload (see
//! [`crate::nonuniform_trace`]) but is *byte-exact*: integration tests assert
//! that the bytes each step says a rank sends equal what the real
//! implementation in `bruck-core` sends under a `CountingComm`.

use crate::MachineModel;

/// What a step is, which also determines the wire tag the real implementation
/// uses for it (the bridge to `CountingComm` validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Uniform Bruck data exchange of step `k` (tag `0x100 + k`).
    UniformData(u32),
    /// Non-uniform metadata exchange of step `k` (tag `0x200 + k`).
    Meta(u32),
    /// Non-uniform data exchange of step `k` (tag `0x300 + k`).
    Data(u32),
    /// All-pairs point-to-point phase (tag `0x400`). `throttled` selects the
    /// windowed (vendor) vs unthrottled (spread-out) injection overhead.
    Pairwise {
        /// Windowed outstanding requests (vendor-style) or not.
        throttled: bool,
    },
    /// Hierarchical member→leader gather (tag `0x500`).
    HierGather,
    /// Hierarchical leader↔leader exchange (tag `0x501`).
    HierLeader,
    /// Hierarchical leader→member scatter (tag `0x502`).
    HierScatter,
    /// Ranka two-stage piece scatter (tag `0x600`).
    RankaStage1,
    /// Ranka two-stage forwarding (tag `0x601`).
    RankaStage2,
    /// A collective prologue (allreduce of the maximum block size); uses
    /// reserved tags and is skipped by byte validation.
    Collective,
    /// One wire step of the wider collective family (allgatherv /
    /// reduce_scatter / allreduce / PAT, tag block `0x0800..0x0FFF`). The
    /// tag is carried explicitly — see [`crate::collective`] for the
    /// per-schedule closed forms. `pairwise` selects the contended all-pairs
    /// bandwidth, as [`StepKind::Pairwise`] does for alltoallv.
    Coll {
        /// The wire tag `bruck-core` sends this step's traffic under.
        tag: u32,
        /// All-pairs contention (the pairwise-exchange reduce_scatter).
        pairwise: bool,
    },
    /// Pure local work (rotation, padding, scan) — no wire traffic.
    Local,
}

impl StepKind {
    /// The wire tag this step's traffic is sent under in `bruck-core`,
    /// if it has one.
    pub fn tag(&self) -> Option<u32> {
        match *self {
            StepKind::UniformData(k) => Some(0x0100 + k),
            StepKind::Meta(k) => Some(0x0200 + k),
            StepKind::Data(k) => Some(0x0300 + k),
            StepKind::Pairwise { .. } => Some(0x0400),
            StepKind::HierGather => Some(0x0500),
            StepKind::HierLeader => Some(0x0501),
            StepKind::HierScatter => Some(0x0502),
            StepKind::RankaStage1 => Some(0x0600),
            StepKind::RankaStage2 => Some(0x0601),
            StepKind::Coll { tag, .. } => Some(tag),
            StepKind::Collective | StepKind::Local => None,
        }
    }
}

/// One rank's traffic in one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankLoad {
    /// Messages whose latency serializes (blocking sendrecv rounds).
    pub seq_msgs: u32,
    /// Messages overlapped with each other (non-blocking), paying only the
    /// injection overhead each.
    pub ov_msgs: u32,
    /// Payload bytes sent by this rank in this step.
    pub bytes_out: u64,
    /// Payload bytes received by this rank in this step.
    pub bytes_in: u64,
    /// Local bytes copied (pack + unpack + rotations + padding + scans).
    pub copy_bytes: u64,
    /// Blocks walked by the datatype engine (`-dt` variants only).
    pub dt_blocks: u32,
}

/// One synchronized step: the loads of the (sampled) ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The step's kind (and wire tag).
    pub kind: StepKind,
    /// `(rank, load)` for each evaluated rank. For `P` beyond the sampling
    /// threshold this covers a deterministic subset (see
    /// [`crate::RankSample`]); step time is the max over the covered ranks.
    pub loads: Vec<(usize, RankLoad)>,
}

impl Step {
    /// Step completion time: slowest covered rank.
    pub fn time(&self, m: &MachineModel, p: usize) -> f64 {
        self.loads.iter().map(|(_, l)| rank_time(m, self.kind, l, p)).fold(0.0, f64::max)
    }

    /// The load recorded for `rank`, if covered.
    pub fn load_of(&self, rank: usize) -> Option<&RankLoad> {
        self.loads.iter().find(|(r, _)| *r == rank).map(|(_, l)| l)
    }
}

/// Time one rank spends in one step.
fn rank_time(m: &MachineModel, kind: StepKind, l: &RankLoad, p: usize) -> f64 {
    let beta = match kind {
        // All-pairs patterns contend; the leader exchange is all-pairs over
        // the (much smaller) leader set.
        StepKind::Pairwise { .. }
        | StepKind::Coll { pairwise: true, .. }
        | StepKind::HierLeader
        | StepKind::RankaStage1
        | StepKind::RankaStage2 => m.beta_pair,
        _ => m.beta,
    };
    let inject = match kind {
        StepKind::Pairwise { throttled: false } => m.inject_unthrottled,
        _ => m.inject,
    };
    f64::from(l.seq_msgs) * m.alpha(p)
        + f64::from(l.ov_msgs) * inject
        + beta * l.bytes_out.max(l.bytes_in) as f64
        + m.gamma * l.copy_bytes as f64
        + m.dt_block * f64::from(l.dt_blocks)
}

/// A full algorithm run: ordered steps over a `P`-rank communicator.
#[derive(Debug, Clone, PartialEq)]
pub struct CommTrace {
    /// Communicator size.
    pub p: usize,
    /// Steps in execution order.
    pub steps: Vec<Step>,
}

impl CommTrace {
    /// Predicted wall-clock time of the whole exchange.
    pub fn time(&self, m: &MachineModel) -> f64 {
        self.steps.iter().map(|s| s.time(m, self.p)).sum()
    }

    /// Total wire bytes `rank` sends across all tagged steps (excludes the
    /// collective prologue, matching a tag-filtered `CountingComm` log).
    pub fn wire_bytes_out(&self, rank: usize) -> Option<u64> {
        let mut total = 0u64;
        for step in &self.steps {
            if step.kind.tag().is_none() {
                continue;
            }
            total += step.load_of(rank)?.bytes_out;
        }
        Some(total)
    }

    /// Bytes `rank` sends under wire tag `tag` (for per-step validation).
    pub fn bytes_for_tag(&self, rank: usize, tag: u32) -> Option<u64> {
        let mut total = 0u64;
        let mut seen = false;
        for step in &self.steps {
            if step.kind.tag() == Some(tag) {
                total += step.load_of(rank)?.bytes_out;
                seen = true;
            }
        }
        seen.then_some(total)
    }

    /// Messages `rank` sends under wire tag `tag` (sequential + overlapped),
    /// for conformance checks against a metered communicator.
    pub fn msgs_for_tag(&self, rank: usize, tag: u32) -> Option<u64> {
        let mut total = 0u64;
        let mut seen = false;
        for step in &self.steps {
            if step.kind.tag() == Some(tag) {
                let load = step.load_of(rank)?;
                total += u64::from(load.seq_msgs) + u64::from(load.ov_msgs);
                seen = true;
            }
        }
        seen.then_some(total)
    }

    /// Every wire tag appearing in the trace, in step order (deduplicated).
    pub fn wire_tags(&self) -> Vec<u32> {
        let mut tags = Vec::new();
        for step in &self.steps {
            if let Some(t) = step.kind.tag() {
                if !tags.contains(&t) {
                    tags.push(t);
                }
            }
        }
        tags
    }

    /// Total predicted wire traffic of the covered ranks (diagnostics).
    pub fn total_wire_bytes(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.kind.tag().is_some())
            .flat_map(|s| s.loads.iter().map(|(_, l)| l.bytes_out))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_load(bytes: u64) -> RankLoad {
        RankLoad { seq_msgs: 1, bytes_out: bytes, bytes_in: bytes, ..Default::default() }
    }

    #[test]
    fn step_time_is_max_over_ranks() {
        let m = MachineModel::theta_like();
        let step = Step {
            kind: StepKind::Data(0),
            loads: vec![(0, mk_load(100)), (1, mk_load(10_000)), (2, mk_load(5))],
        };
        let solo = Step { kind: StepKind::Data(0), loads: vec![(1, mk_load(10_000))] };
        assert_eq!(step.time(&m, 4), solo.time(&m, 4));
    }

    #[test]
    fn trace_time_sums_steps() {
        let m = MachineModel::theta_like();
        let s1 = Step { kind: StepKind::Data(0), loads: vec![(0, mk_load(100))] };
        let s2 = Step { kind: StepKind::Data(1), loads: vec![(0, mk_load(200))] };
        let t = CommTrace { p: 2, steps: vec![s1.clone(), s2.clone()] };
        assert!((t.time(&m) - (s1.time(&m, 2) + s2.time(&m, 2))).abs() < 1e-15);
    }

    #[test]
    fn pairwise_uses_contended_beta() {
        let m = MachineModel::theta_like();
        let load = RankLoad { bytes_out: 1 << 20, bytes_in: 1 << 20, ..Default::default() };
        let bruck = Step { kind: StepKind::Data(0), loads: vec![(0, load)] };
        let pair = Step { kind: StepKind::Pairwise { throttled: true }, loads: vec![(0, load)] };
        assert!(pair.time(&m, 64) > bruck.time(&m, 64));
    }

    #[test]
    fn tags_match_core_conventions() {
        assert_eq!(StepKind::UniformData(3).tag(), Some(0x103));
        assert_eq!(StepKind::Meta(0).tag(), Some(0x200));
        assert_eq!(StepKind::Data(7).tag(), Some(0x307));
        assert_eq!(StepKind::Pairwise { throttled: true }.tag(), Some(0x400));
        assert_eq!(StepKind::Local.tag(), None);
        assert_eq!(StepKind::Collective.tag(), None);
    }

    #[test]
    fn bytes_for_tag_filters_by_step() {
        let t = CommTrace {
            p: 2,
            steps: vec![
                Step { kind: StepKind::Meta(0), loads: vec![(0, mk_load(8))] },
                Step { kind: StepKind::Data(0), loads: vec![(0, mk_load(64))] },
                Step { kind: StepKind::Local, loads: vec![(0, RankLoad::default())] },
            ],
        };
        assert_eq!(t.bytes_for_tag(0, 0x200), Some(8));
        assert_eq!(t.bytes_for_tag(0, 0x300), Some(64));
        assert_eq!(t.bytes_for_tag(0, 0x999), None);
        assert_eq!(t.wire_bytes_out(0), Some(72));
        assert_eq!(t.wire_bytes_out(1), None, "rank 1 not covered");
        assert_eq!(t.wire_tags(), vec![0x200, 0x300]);
    }

    #[test]
    fn msgs_for_tag_counts_both_message_classes() {
        let pair = RankLoad { seq_msgs: 1, ov_msgs: 3, bytes_out: 16, ..Default::default() };
        let t = CommTrace {
            p: 2,
            steps: vec![
                Step { kind: StepKind::Data(0), loads: vec![(0, mk_load(64))] },
                Step { kind: StepKind::Data(1), loads: vec![(0, mk_load(64))] },
                Step { kind: StepKind::Pairwise { throttled: false }, loads: vec![(0, pair)] },
                Step { kind: StepKind::Local, loads: vec![(0, RankLoad::default())] },
            ],
        };
        assert_eq!(t.msgs_for_tag(0, 0x300), Some(1));
        assert_eq!(t.msgs_for_tag(0, 0x301), Some(1));
        assert_eq!(t.msgs_for_tag(0, 0x400), Some(4), "seq + overlapped");
        assert_eq!(t.msgs_for_tag(0, 0x999), None);
        assert_eq!(t.msgs_for_tag(1, 0x300), None, "rank 1 not covered");
    }
}
