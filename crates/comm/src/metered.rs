//! [`MeteredComm`]: per-peer, per-tag traffic metering with latency and size
//! histograms — the measurement half of the `bruck-probe` observability
//! layer (DESIGN.md §10).
//!
//! The wrapper records, per rank:
//!
//! * **per-peer counters** (messages and bytes, both directions) for the
//!   *logical* channel — tags below [`RESERVED_TAG_BASE`], i.e. algorithm
//!   traffic;
//! * **channel totals** for the logical channel and the *reserved* channel
//!   (built-in collectives and wrapper-internal protocols such as the
//!   `ReliableComm` ARQ frames) separately;
//! * **max in-flight** high-water marks: sends posted minus receives
//!   completed, tracked per peer and per channel. Under the eager protocol
//!   this distinguishes spread-out's `P − 1` burst from Bruck's
//!   sendrecv-paced 1 and the vendor window's cap;
//! * **per-tag send counters** — the exact quantity the conformance suite
//!   compares against `bruck-model` trace predictions;
//! * a **receive-wait histogram** (nanoseconds, log₂ buckets) over every
//!   successful blocking receive, and a **sent-size histogram** (bytes) over
//!   logical sends.
//!
//! ## Retransmit-aware accounting
//!
//! Counting is *positional*: a meter sees exactly the traffic crossing its
//! own layer of the stack. Stacked **above** [`crate::ReliableComm`] it sees
//! each logical message exactly once — the ARQ retries below it are
//! invisible, so logical counts match the fault-free prediction even on a
//! lossy transport. Stacked **below** `ReliableComm` (above the faulty
//! transport) it sees only reserved-tag ARQ frames, retransmits included,
//! and its logical channel stays empty. Composing one meter in each position
//! yields logical vs. wire accounting with no double counting; the ARQ
//! regression test in this module pins that contract down.
//!
//! Zero overhead when absent: metering costs one mutex round-trip per
//! operation *only when the wrapper is in the stack*; un-wrapped
//! communicators are untouched (the disabled path of `bruck-probe` spans is
//! handled in `bruck-core`).

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::{CommResult, Communicator, MsgBuf, RecvReq, Tag, RESERVED_TAG_BASE};

/// Number of log₂ buckets in a [`Histogram`]. Bucket 0 holds zeros; bucket
/// `b ≥ 1` holds values in `[2^(b−1), 2^b)`; the last bucket absorbs
/// everything larger.
pub const HIST_BUCKETS: usize = 32;

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[0]` counts zeros; `buckets[b]` counts values in
    /// `[2^(b−1), 2^b)`, with the final bucket open-ended.
    pub buckets: [u64; HIST_BUCKETS],
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (saturating).
    pub sum: u64,
    /// Largest recorded sample (0 if none).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b.min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Mean of the recorded samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Message/byte counters for one peer on the logical channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerCounters {
    /// Messages sent to this peer.
    pub sent_msgs: u64,
    /// Bytes sent to this peer.
    pub sent_bytes: u64,
    /// Messages received from this peer.
    pub recv_msgs: u64,
    /// Bytes received from this peer.
    pub recv_bytes: u64,
    /// High-water mark of sends-posted minus receives-completed with this
    /// peer (never below 0).
    pub max_in_flight: u64,
}

/// Aggregate counters for one channel (logical or reserved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelTotals {
    /// Messages sent on this channel.
    pub sent_msgs: u64,
    /// Bytes sent on this channel.
    pub sent_bytes: u64,
    /// Messages received on this channel.
    pub recv_msgs: u64,
    /// Bytes received on this channel.
    pub recv_bytes: u64,
    /// High-water mark of sends-posted minus receives-completed on this
    /// channel.
    pub max_in_flight: u64,
}

/// Send-side counters for one tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagCounters {
    /// Messages sent with this tag.
    pub msgs: u64,
    /// Bytes sent with this tag.
    pub bytes: u64,
}

/// A consistent snapshot of everything a [`MeteredComm`] has recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Rank of the metered communicator.
    pub rank: usize,
    /// World size of the metered communicator.
    pub size: usize,
    /// Totals for algorithm traffic (tags below [`RESERVED_TAG_BASE`]).
    pub logical: ChannelTotals,
    /// Totals for reserved-tag traffic (collectives, wrapper protocols).
    pub reserved: ChannelTotals,
    /// Logical-channel counters indexed by peer rank (`len == size`).
    pub per_peer: Vec<PeerCounters>,
    /// Send-side counters per tag, both channels.
    pub per_tag_sent: BTreeMap<Tag, TagCounters>,
    /// Wait times of successful blocking receives, in nanoseconds.
    pub recv_wait_ns: Histogram,
    /// Payload sizes of logical-channel sends, in bytes.
    pub sent_sizes: Histogram,
    /// Measurement identity stamped by [`MeteredComm::with_key`]; `None`
    /// for unkeyed meters.
    pub key: Option<String>,
}

impl Metrics {
    /// Send-side counters for `tag` (zeros if never used).
    pub fn sent_for_tag(&self, tag: Tag) -> TagCounters {
        self.per_tag_sent.get(&tag).copied().unwrap_or_default()
    }

    /// Internal-consistency violations (empty means the snapshot is
    /// self-consistent). The chaos harness runs this after every soak cell
    /// to prove the meter itself never drifts.
    pub fn consistency_errors(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.per_peer.len() != self.size {
            errs.push(format!(
                "per_peer len {} != world size {}",
                self.per_peer.len(),
                self.size
            ));
            return errs;
        }
        let sum =
            |f: fn(&PeerCounters) -> u64| -> u64 { self.per_peer.iter().map(f).sum::<u64>() };
        let checks = [
            ("peer sent msgs", sum(|p| p.sent_msgs), self.logical.sent_msgs),
            ("peer sent bytes", sum(|p| p.sent_bytes), self.logical.sent_bytes),
            ("peer recv msgs", sum(|p| p.recv_msgs), self.logical.recv_msgs),
            ("peer recv bytes", sum(|p| p.recv_bytes), self.logical.recv_bytes),
        ];
        for (what, got, want) in checks {
            if got != want {
                errs.push(format!("{what}: per-peer sum {got} != channel total {want}"));
            }
        }
        let (mut lm, mut lb, mut rm, mut rb) = (0u64, 0u64, 0u64, 0u64);
        for (tag, c) in &self.per_tag_sent {
            if *tag < RESERVED_TAG_BASE {
                lm += c.msgs;
                lb += c.bytes;
            } else {
                rm += c.msgs;
                rb += c.bytes;
            }
        }
        if (lm, lb) != (self.logical.sent_msgs, self.logical.sent_bytes) {
            errs.push(format!(
                "logical per-tag sums ({lm} msgs, {lb} B) != totals ({} msgs, {} B)",
                self.logical.sent_msgs, self.logical.sent_bytes
            ));
        }
        if (rm, rb) != (self.reserved.sent_msgs, self.reserved.sent_bytes) {
            errs.push(format!(
                "reserved per-tag sums ({rm} msgs, {rb} B) != totals ({} msgs, {} B)",
                self.reserved.sent_msgs, self.reserved.sent_bytes
            ));
        }
        if self.sent_sizes.count != self.logical.sent_msgs {
            errs.push(format!(
                "sent-size histogram count {} != logical sent msgs {}",
                self.sent_sizes.count, self.logical.sent_msgs
            ));
        }
        if self.sent_sizes.sum != self.logical.sent_bytes {
            errs.push(format!(
                "sent-size histogram sum {} != logical sent bytes {}",
                self.sent_sizes.sum, self.logical.sent_bytes
            ));
        }
        if self.recv_wait_ns.count != self.logical.recv_msgs + self.reserved.recv_msgs {
            errs.push(format!(
                "recv-wait histogram count {} != total received msgs {}",
                self.recv_wait_ns.count,
                self.logical.recv_msgs + self.reserved.recv_msgs
            ));
        }
        errs
    }
}

/// Outstanding-message gauge with a high-water mark.
#[derive(Debug, Clone, Copy, Default)]
struct Flight {
    outstanding: i64,
    high: i64,
}

impl Flight {
    fn on_send(&mut self) {
        self.outstanding += 1;
        self.high = self.high.max(self.outstanding);
    }

    fn on_recv(&mut self) {
        self.outstanding -= 1;
    }

    fn high_water(&self) -> u64 {
        self.high.max(0) as u64
    }
}

#[derive(Debug, Default)]
struct MeterState {
    logical: ChannelTotals,
    reserved: ChannelTotals,
    per_peer: Vec<PeerCounters>,
    peer_flight: Vec<Flight>,
    logical_flight: Flight,
    reserved_flight: Flight,
    per_tag_sent: BTreeMap<Tag, TagCounters>,
    recv_wait_ns: Histogram,
    sent_sizes: Histogram,
}

impl MeterState {
    fn sized(p: usize) -> Self {
        MeterState {
            per_peer: vec![PeerCounters::default(); p],
            peer_flight: vec![Flight::default(); p],
            ..MeterState::default()
        }
    }
}

/// Traffic-metering wrapper around any [`Communicator`]. See the
/// [module docs](self) for what is recorded and for the positional
/// (logical vs. wire) accounting contract under `ReliableComm`.
///
/// Self-sends that cross the `Communicator` interface are counted like any
/// other message: the meter observes interface traffic, not network links.
pub struct MeteredComm<'a, C: Communicator + ?Sized> {
    inner: &'a C,
    key: Option<String>,
    state: Mutex<MeterState>,
}

impl<'a, C: Communicator + ?Sized> MeteredComm<'a, C> {
    /// Wrap `inner`, starting all counters at zero.
    pub fn new(inner: &'a C) -> Self {
        MeteredComm { inner, key: None, state: Mutex::new(MeterState::sized(inner.size())) }
    }

    /// Wrap `inner` and stamp every [`Metrics`] snapshot with `key` — the
    /// measurement identity (e.g. a tuning key like `p=8 density=500
    /// dist=uniform config=bruck:…`) that downstream consumers such as the
    /// auto-tuner use to attribute samples without a side channel.
    pub fn with_key(inner: &'a C, key: impl Into<String>) -> Self {
        MeteredComm {
            inner,
            key: Some(key.into()),
            state: Mutex::new(MeterState::sized(inner.size())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MeterState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot every counter and histogram recorded so far.
    pub fn metrics(&self) -> Metrics {
        let s = self.lock();
        let mut per_peer = s.per_peer.clone();
        for (c, f) in per_peer.iter_mut().zip(&s.peer_flight) {
            c.max_in_flight = f.high_water();
        }
        let mut logical = s.logical;
        logical.max_in_flight = s.logical_flight.high_water();
        let mut reserved = s.reserved;
        reserved.max_in_flight = s.reserved_flight.high_water();
        Metrics {
            rank: self.inner.rank(),
            size: self.inner.size(),
            logical,
            reserved,
            per_peer,
            per_tag_sent: s.per_tag_sent.clone(),
            recv_wait_ns: s.recv_wait_ns.clone(),
            sent_sizes: s.sent_sizes.clone(),
            key: self.key.clone(),
        }
    }

    /// Zero every counter and histogram (in-flight gauges included).
    pub fn reset(&self) {
        let p = self.inner.size();
        *self.lock() = MeterState::sized(p);
    }

    fn note_send(&self, dest: usize, tag: Tag, len: usize) {
        let mut s = self.lock();
        let entry = s.per_tag_sent.entry(tag).or_default();
        entry.msgs += 1;
        entry.bytes += len as u64;
        if tag < RESERVED_TAG_BASE {
            s.logical.sent_msgs += 1;
            s.logical.sent_bytes += len as u64;
            s.sent_sizes.record(len as u64);
            s.logical_flight.on_send();
            if let Some(c) = s.per_peer.get_mut(dest) {
                c.sent_msgs += 1;
                c.sent_bytes += len as u64;
            }
            if let Some(f) = s.peer_flight.get_mut(dest) {
                f.on_send();
            }
        } else {
            s.reserved.sent_msgs += 1;
            s.reserved.sent_bytes += len as u64;
            s.reserved_flight.on_send();
        }
    }

    fn note_recv(&self, src: usize, tag: Tag, len: usize, waited: Duration) {
        let mut s = self.lock();
        s.recv_wait_ns.record(waited.as_nanos().min(u128::from(u64::MAX)) as u64);
        if tag < RESERVED_TAG_BASE {
            s.logical.recv_msgs += 1;
            s.logical.recv_bytes += len as u64;
            s.logical_flight.on_recv();
            if let Some(c) = s.per_peer.get_mut(src) {
                c.recv_msgs += 1;
                c.recv_bytes += len as u64;
            }
            if let Some(f) = s.peer_flight.get_mut(src) {
                f.on_recv();
            }
        } else {
            s.reserved.recv_msgs += 1;
            s.reserved.recv_bytes += len as u64;
            s.reserved_flight.on_recv();
        }
    }
}

impl<C: Communicator + ?Sized> Communicator for MeteredComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now(&self) -> std::time::Duration {
        self.inner.now()
    }

    fn sleep(&self, d: std::time::Duration) {
        self.inner.sleep(d)
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        let len = buf.len();
        self.inner.send_buf(dest, tag, buf)?;
        self.note_send(dest, tag, len);
        Ok(())
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        let start = Instant::now();
        let msg = self.inner.recv_buf(src, tag)?;
        self.note_recv(src, tag, msg.len(), start.elapsed());
        Ok(msg)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        let start = Instant::now();
        let len = self.inner.recv_into(src, tag, buf)?;
        self.note_recv(src, tag, len, start.elapsed());
        Ok(len)
    }

    fn recv_buf_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> CommResult<MsgBuf> {
        // Forward so the backend's parked-wait implementation is reached;
        // only successful receives are recorded.
        let start = Instant::now();
        let msg = self.inner.recv_buf_timeout(src, tag, timeout)?;
        self.note_recv(src, tag, msg.len(), start.elapsed());
        Ok(msg)
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.inner.probe(src, tag)
    }

    fn irecv(&self, src: usize, tag: Tag) -> CommResult<RecvReq> {
        // Completion funnels back through our overridden recv_* methods via
        // the wait_* defaults, so posted receives are still metered.
        self.inner.irecv(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultComm, FaultPlan, ReliableComm, ReliableConfig, ThreadComm};

    #[test]
    fn counts_messages_bytes_and_tags_exactly() {
        let metrics = ThreadComm::run(2, |comm| {
            let mc = MeteredComm::new(comm);
            let me = mc.rank();
            let peer = 1 - me;
            mc.send(peer, 7, &[1, 2, 3]).unwrap();
            mc.send(peer, 9, &[4, 5, 6, 7, 8]).unwrap();
            assert_eq!(mc.recv(peer, 7).unwrap().len(), 3);
            assert_eq!(mc.recv(peer, 9).unwrap().len(), 5);
            mc.metrics()
        });
        for (me, m) in metrics.iter().enumerate() {
            let peer = 1 - me;
            assert_eq!(m.logical.sent_msgs, 2);
            assert_eq!(m.logical.sent_bytes, 8);
            assert_eq!(m.logical.recv_msgs, 2);
            assert_eq!(m.logical.recv_bytes, 8);
            assert_eq!(m.per_peer[peer].sent_msgs, 2);
            assert_eq!(m.per_peer[peer].recv_bytes, 8);
            assert_eq!(m.per_peer[me].sent_msgs, 0);
            assert_eq!(m.sent_for_tag(7), TagCounters { msgs: 1, bytes: 3 });
            assert_eq!(m.sent_for_tag(9), TagCounters { msgs: 1, bytes: 5 });
            assert_eq!(m.reserved.sent_msgs, 0);
            assert!(m.consistency_errors().is_empty(), "{:?}", m.consistency_errors());
        }
    }

    #[test]
    fn in_flight_high_water_sees_send_bursts() {
        let metrics = ThreadComm::run(2, |comm| {
            let mc = MeteredComm::new(comm);
            let me = mc.rank();
            let peer = 1 - me;
            // Burst three sends before draining: the gauge must hit 3.
            for i in 0..3u8 {
                mc.send(peer, 5, &[i]).unwrap();
            }
            for _ in 0..3 {
                mc.recv(peer, 5).unwrap();
            }
            mc.metrics()
        });
        for m in &metrics {
            assert_eq!(m.logical.max_in_flight, 3);
            assert_eq!(m.per_peer[1 - m.rank].max_in_flight, 3);
        }
    }

    #[test]
    fn collectives_land_on_the_reserved_channel_only() {
        let metrics = ThreadComm::run(4, |comm| {
            let mc = MeteredComm::new(comm);
            mc.barrier().unwrap();
            let sum = mc.allreduce_u64(1, crate::ReduceOp::Sum).unwrap();
            assert_eq!(sum, 4);
            mc.metrics()
        });
        for m in &metrics {
            assert_eq!(m.logical.sent_msgs, 0, "no algorithm traffic expected");
            assert!(m.reserved.sent_msgs > 0);
            assert_eq!(m.reserved.sent_msgs, m.reserved.recv_msgs);
            assert!(m.consistency_errors().is_empty(), "{:?}", m.consistency_errors());
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        ThreadComm::run(2, |comm| {
            let mc = MeteredComm::new(comm);
            let peer = 1 - mc.rank();
            mc.send(peer, 3, &[0; 16]).unwrap();
            mc.recv(peer, 3).unwrap();
            mc.reset();
            let m = mc.metrics();
            assert_eq!(m.logical, ChannelTotals::default());
            assert_eq!(m.recv_wait_ns.count, 0);
            assert!(m.per_tag_sent.is_empty());
        });
    }

    /// The ARQ regression test: a meter above `ReliableComm` counts each
    /// logical message exactly once even when the transport drops frames and
    /// the ARQ retransmits; a meter below it sees only reserved-tag wire
    /// frames (retransmits included) and zero logical traffic.
    #[test]
    fn arq_retransmits_never_double_count_logical_traffic() {
        let p = 3;
        let rounds = 6usize;
        let payload = 32usize;
        let results = ThreadComm::run(p, move |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(0xA41).with_drop(0.25));
            let wire = MeteredComm::new(&fc);
            let rc = ReliableComm::with_config(
                &wire,
                ReliableConfig {
                    ack_timeout: Duration::from_millis(10),
                    max_retries: 10,
                    backoff_cap: Duration::from_millis(80),
                },
            );
            let app = MeteredComm::new(&rc);
            let me = app.rank();
            let dest = (me + 1) % p;
            let src = (me + p - 1) % p;
            for r in 0..rounds {
                app.send(dest, r as Tag, &vec![r as u8; payload]).unwrap();
                let got = app.recv(src, r as Tag).unwrap();
                assert_eq!(got.len(), payload);
            }
            rc.quiesce(Duration::from_millis(100), Duration::from_secs(2)).unwrap();
            (app.metrics(), wire.metrics())
        });
        for (app, wire) in &results {
            // Above the ARQ: exact fault-free logical accounting.
            assert_eq!(app.logical.sent_msgs, rounds as u64);
            assert_eq!(app.logical.sent_bytes, (rounds * payload) as u64);
            assert_eq!(app.logical.recv_msgs, rounds as u64);
            assert_eq!(app.logical.recv_bytes, (rounds * payload) as u64);
            assert_eq!(app.reserved.sent_msgs, 0, "no collectives were used");
            // Below the ARQ: only reserved-tag frames, logical channel empty.
            assert_eq!(wire.logical.sent_msgs, 0, "ARQ must not leak logical tags");
            assert!(
                wire.reserved.sent_msgs >= app.logical.sent_msgs,
                "each logical message needs at least one wire frame"
            );
            assert!(app.consistency_errors().is_empty(), "{:?}", app.consistency_errors());
            assert!(wire.consistency_errors().is_empty(), "{:?}", wire.consistency_errors());
        }
        // The lossy plan actually exercised retransmission somewhere.
        let total_wire: u64 = results.iter().map(|(_, w)| w.reserved.sent_msgs).sum();
        let total_app: u64 = results.iter().map(|(a, _)| a.logical.sent_msgs).sum();
        // Every data frame is acked, so even fault-free wire traffic is
        // 2× logical; drops push it strictly higher.
        assert!(total_wire > 2 * total_app, "drop plan should force retransmits");
    }

    #[test]
    fn key_is_stamped_on_snapshots_and_survives_reset() {
        ThreadComm::run(2, |comm| {
            let plain = MeteredComm::new(comm);
            assert_eq!(plain.metrics().key, None);
            let keyed = MeteredComm::with_key(comm, "p=2 config=oracle");
            assert_eq!(keyed.metrics().key.as_deref(), Some("p=2 config=oracle"));
            // reset() zeros counters but keeps the measurement identity.
            keyed.reset();
            assert_eq!(keyed.metrics().key.as_deref(), Some("p=2 config=oracle"));
        });
    }

    #[test]
    fn histogram_buckets_cover_the_samples() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 7, 1 << 20, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 2); // the ones
        assert_eq!(h.buckets[3], 1); // 7 ∈ [4, 8)
        assert_eq!(h.buckets[21], 1); // 2^20 ∈ [2^20, 2^21)
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1); // clamped
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }
}
