//! Radix-r Bruck: the tunable generalization of the log₂-step algorithms.
//!
//! Bruck's original formulation [9] supports an arbitrary radix `r`: offsets
//! are written in base `r`, and phase `k` performs up to `r − 1` sub-steps —
//! one per non-zero digit value `d`, moving every block whose `k`-th base-`r`
//! digit equals `d` by `d·rᵏ` ranks at once. The number of communication
//! steps grows to `(r−1)·⌈log_r P⌉` while each block is forwarded only
//! `⌈log_r P⌉` times, so the radix dials the latency↔bandwidth trade-off the
//! paper's §3.3 model describes (`r = 2` is the classic algorithm; `r = P`
//! degenerates to spread-out). The paper's conclusion calls for exactly this
//! kind of tunability ("a more rigorous performance model"); we implement it
//! for both the uniform Zero Rotation Bruck and the non-uniform two-phase
//! Bruck, and the bench suite ablates the radix.

use bruck_comm::{CommResult, Communicator, MsgBuf};

use crate::common::{add_mod, rotation_index, sub_mod, uniform_step_tag};
use crate::uniform::validate_uniform;

/// The `k`-th base-`r` digit of `i`.
#[inline]
pub fn radix_digit(i: usize, weight: usize, radix: usize) -> usize {
    (i / weight) % radix
}

/// The sub-steps of a radix-`r` schedule over `p` ranks: `(step_index,
/// weight, digit)` triples in execution order. `step_index` is globally
/// unique and doubles as the wire-tag offset.
pub fn radix_schedule(p: usize, radix: usize) -> Vec<(u32, usize, usize)> {
    assert!(radix >= 2, "radix must be at least 2");
    let mut steps = Vec::new();
    let mut weight = 1usize;
    let mut idx = 0u32;
    while weight < p {
        for d in 1..radix {
            if d * weight < p {
                steps.push((idx, weight, d));
                idx += 1;
            }
        }
        weight *= radix;
    }
    steps
}

/// Relative indices transmitted at sub-step `(weight, d)`: all `i ∈ (0, P)`
/// whose digit at `weight` equals `d`.
#[inline]
pub fn radix_step_rel_indices(
    p: usize,
    weight: usize,
    d: usize,
    radix: usize,
) -> impl Iterator<Item = usize> {
    (1..p).filter(move |&i| radix_digit(i, weight, radix) == d)
}

/// Radix-`r` Zero Rotation Bruck (uniform all-to-all). `radix = 2` computes
/// exactly what [`crate::zero_rotation_bruck`] computes.
pub fn zero_rotation_bruck_radix<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
    radix: usize,
) -> CommResult<()> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();
    let rot = rotation_index(me, p);
    let mut received = vec![false; p];

    for (idx, weight, d) in radix_schedule(p, radix) {
        let hop = (d * weight) % p;
        let dest = sub_mod(me, hop, p);
        let src = add_mod(me, hop, p);
        let mut wire = Vec::new();
        for i in radix_step_rel_indices(p, weight, d, radix) {
            let abs = add_mod(i, me, p);
            let from = if received[abs] {
                &recvbuf[abs * block..(abs + 1) * block]
            } else {
                let orig = rot[abs] * block;
                &sendbuf[orig..orig + block]
            };
            wire.extend_from_slice(from);
        }
        let got = comm.sendrecv_buf(
            dest,
            uniform_step_tag(idx),
            MsgBuf::from_vec(wire),
            src,
            uniform_step_tag(idx),
        )?;
        let mut at = 0;
        for i in radix_step_rel_indices(p, weight, d, radix) {
            let abs = add_mod(i, me, p);
            recvbuf[abs * block..(abs + 1) * block].copy_from_slice(&got[at..at + block]);
            received[abs] = true;
            at += block;
        }
    }
    recvbuf[me * block..(me + 1) * block].copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
    Ok(())
}

/// Radix-`r` two-phase Bruck (non-uniform all-to-all). `radix = 2` computes
/// exactly what [`crate::two_phase_bruck`] computes, with the same wire tags.
/// A shim over the configurable engine's monolithic Bruck loop (split
/// metadata/data coupling) — the engine owns the generalized machinery.
#[allow(clippy::too_many_arguments)]
pub fn two_phase_bruck_radix<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
    radix: usize,
) -> CommResult<()> {
    crate::nonuniform::engine::bruck_monolithic(
        comm, radix, true, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonuniform::testutil as nu;
    use crate::uniform::testutil as ut;
    use bruck_comm::ThreadComm;
    use bruck_workload::{Distribution, SizeMatrix};

    #[test]
    fn schedule_covers_every_offset_exactly_by_its_digits() {
        for p in [2usize, 3, 8, 12, 16, 27, 31] {
            for radix in [2usize, 3, 4, 8] {
                for i in 1..p {
                    let mut moved = 0usize;
                    for (_, weight, d) in radix_schedule(p, radix) {
                        if radix_digit(i, weight, radix) == d {
                            moved += d * weight;
                        }
                    }
                    assert_eq!(moved, i, "p={p} radix={radix} offset {i}");
                }
            }
        }
    }

    #[test]
    fn radix_two_schedule_matches_binary_steps() {
        let p = 16;
        let steps = radix_schedule(p, 2);
        assert_eq!(steps.len(), 4);
        for (k, (idx, weight, d)) in steps.iter().enumerate() {
            assert_eq!(*idx, k as u32);
            assert_eq!(*weight, 1 << k);
            assert_eq!(*d, 1);
        }
    }

    #[test]
    fn step_count_grows_with_radix_but_forwarding_shrinks() {
        let p = 256;
        assert_eq!(radix_schedule(p, 2).len(), 8); // log2(256)
        assert_eq!(radix_schedule(p, 4).len(), 12); // 3 digits × 4 phases
        assert_eq!(radix_schedule(p, 16).len(), 30); // 15 digits × 2 phases
        // Max forwards per block = number of phases.
        let phases = |r: usize| {
            radix_schedule(p, r).iter().map(|(_, w, _)| w).collect::<std::collections::HashSet<_>>().len()
        };
        assert_eq!(phases(2), 8);
        assert_eq!(phases(4), 4);
        assert_eq!(phases(16), 2);
    }

    #[test]
    fn uniform_radix_correct_for_many_radices_and_sizes() {
        for p in [2usize, 3, 5, 8, 12, 16, 17, 27] {
            for radix in [2usize, 3, 4, 7, 16] {
                ThreadComm::run(p, |comm| {
                    let me = comm.rank();
                    let sendbuf = ut::fill_sendbuf(me, p, 4);
                    let mut recvbuf = vec![0u8; p * 4];
                    zero_rotation_bruck_radix(comm, &sendbuf, &mut recvbuf, 4, radix).unwrap();
                    ut::check_recvbuf(me, p, 4, &recvbuf);
                });
            }
        }
    }

    #[test]
    fn uniform_radix_two_equals_plain_zero_rotation() {
        let p = 12;
        let block = 5;
        let outs = ThreadComm::run(p, |comm| {
            let sendbuf = ut::fill_sendbuf(comm.rank(), p, block);
            let mut a = vec![0u8; p * block];
            let mut b = vec![0u8; p * block];
            zero_rotation_bruck_radix(comm, &sendbuf, &mut a, block, 2).unwrap();
            crate::zero_rotation_bruck(comm, &sendbuf, &mut b, block).unwrap();
            (a, b)
        });
        for (a, b) in outs {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn two_phase_radix_correct_for_many_radices() {
        for radix in [2usize, 3, 4, 8] {
            for p in [3usize, 8, 12, 16] {
                let m = SizeMatrix::generate(Distribution::Uniform, 31 + radix as u64, p, 48);
                ThreadComm::run(p, |comm| {
                    let me = comm.rank();
                    let (sendbuf, sendcounts, sdispls) = nu::build_send(me, &m);
                    let recvcounts = m.recvcounts(me);
                    let rdispls = crate::packed_displs(&recvcounts);
                    let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
                    two_phase_bruck_radix(
                        comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                        &rdispls, radix,
                    )
                    .unwrap();
                    nu::check_recv(me, &m, &recvbuf, &rdispls);
                });
            }
        }
    }

    #[test]
    fn two_phase_radix_handles_skew_and_zeros() {
        let mut rows = vec![vec![0usize; 9]; 9];
        rows[1][6] = 100;
        rows[4][4] = 7;
        rows[8][0] = 1;
        let m = SizeMatrix::from_rows(rows);
        for radix in [3usize, 9] {
            ThreadComm::run(9, |comm| {
                let me = comm.rank();
                let (sendbuf, sendcounts, sdispls) = nu::build_send(me, &m);
                let recvcounts = m.recvcounts(me);
                let rdispls = crate::packed_displs(&recvcounts);
                let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
                two_phase_bruck_radix(
                    comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
                    radix,
                )
                .unwrap();
                nu::check_recv(me, &m, &recvbuf, &rdispls);
            });
        }
    }

    #[test]
    fn radix_p_degenerates_to_single_phase() {
        // radix ≥ P: one phase, every block moves directly — spread-out-like.
        let p = 8;
        let sched = radix_schedule(p, p);
        assert_eq!(sched.len(), p - 1);
        assert!(sched.iter().all(|&(_, w, _)| w == 1));
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let sendbuf = ut::fill_sendbuf(me, p, 3);
            let mut recvbuf = vec![0u8; p * 3];
            zero_rotation_bruck_radix(comm, &sendbuf, &mut recvbuf, 3, p).unwrap();
            ut::check_recvbuf(me, p, 3, &recvbuf);
        });
    }
}
