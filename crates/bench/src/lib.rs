//! # bruck-bench — measurement harness shared by the figure binary and the
//! `[[bench]]` targets (all driven by the std-only [`harness`] module).
//!
//! Two measurement paths, per DESIGN.md:
//! * **Real execution** ([`time_alltoallv`], [`time_alltoall`]) — the actual
//!   `bruck-core` implementations on a threaded communicator, P ≤ a few
//!   hundred, timed like the paper (median of repeated iterations, max across
//!   ranks per iteration).
//! * **Model prediction** — `bruck-model` trace sweeps up to P = 32768
//!   (driven from `src/bin/figures.rs`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod harness;

use std::time::Instant;

use bruck_comm::{Communicator, ThreadComm};
use bruck_core::{alltoall, alltoallv, packed_displs, AlltoallAlgorithm, AlltoallvAlgorithm};
use bruck_workload::SizeMatrix;

/// Median of a sample (not-NaN f64s).
pub fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Median absolute deviation — the error bar the paper plots (its ref. 24).
pub fn mad(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    let med = median(&mut v);
    let mut dev: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&mut dev)
}

/// Time a non-uniform all-to-all on a real threaded communicator.
///
/// Runs `iters` timed iterations (after one warm-up); each iteration's time
/// is the maximum across ranks (barrier-aligned), and the reported value is
/// the median across iterations — the paper's §2.2 methodology.
pub fn time_alltoallv(algo: AlltoallvAlgorithm, m: &SizeMatrix, iters: usize) -> f64 {
    let p = m.p();
    let per_rank: Vec<Vec<f64>> = ThreadComm::run(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf: Vec<u8> = (0..sendcounts.iter().sum()).map(|i| i as u8).collect();
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        let mut times = Vec::with_capacity(iters);
        for it in 0..=iters {
            comm.barrier().unwrap();
            let start = Instant::now();
            alltoallv(
                algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap();
            if it > 0 {
                times.push(start.elapsed().as_secs_f64());
            }
        }
        times
    });
    per_iter_median(&per_rank)
}

/// Time a uniform all-to-all the same way.
pub fn time_alltoall(algo: AlltoallAlgorithm, p: usize, block: usize, iters: usize) -> f64 {
    let per_rank: Vec<Vec<f64>> = ThreadComm::run(p, |comm| {
        let sendbuf: Vec<u8> = (0..p * block).map(|i| i as u8).collect();
        let mut recvbuf = vec![0u8; p * block];
        let mut times = Vec::with_capacity(iters);
        for it in 0..=iters {
            comm.barrier().unwrap();
            let start = Instant::now();
            alltoall(algo, comm, &sendbuf, &mut recvbuf, block).unwrap();
            if it > 0 {
                times.push(start.elapsed().as_secs_f64());
            }
        }
        times
    });
    per_iter_median(&per_rank)
}

/// Median over iterations of (max over ranks per iteration).
fn per_iter_median(per_rank: &[Vec<f64>]) -> f64 {
    let iters = per_rank[0].len();
    let mut per_iter: Vec<f64> = (0..iters)
        .map(|i| per_rank.iter().map(|r| r[i]).fold(0.0f64, f64::max))
        .collect();
    median(&mut per_iter)
}

/// One labelled series of (x, seconds) points for table rendering.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (matches the paper's figure legends).
    pub label: String,
    /// y-values, aligned with the table's x-axis.
    pub ys: Vec<f64>,
}

/// Render series as an aligned text table, x down the side, one column per
/// series — the textual equivalent of one subplot.
pub fn print_table(title: &str, x_name: &str, xs: &[usize], series: &[Series], unit: &str) {
    println!("\n== {title} ==");
    print!("{x_name:>10}");
    for s in series {
        print!(" | {:>18}", s.label);
    }
    println!(" ({unit})");
    println!("{}", "-".repeat(11 + series.len() * 21));
    for (i, &x) in xs.iter().enumerate() {
        print!("{x:>10}");
        for s in series {
            let y = s.ys.get(i).copied().unwrap_or(f64::NAN);
            print!(" | {:>18.4}", y);
        }
        println!();
    }
}

/// Format seconds as milliseconds for tables.
pub fn to_ms(seconds: f64) -> f64 {
    seconds * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_workload::Distribution;

    #[test]
    fn median_and_mad() {
        let mut xs = [5.0, 1.0, 3.0];
        assert_eq!(median(&mut xs), 3.0);
        let mut even = [1.0, 2.0, 3.0, 10.0];
        assert_eq!(median(&mut even), 2.5);
        assert_eq!(mad(&[1.0, 1.0, 1.0]), 0.0);
        assert!(mad(&[1.0, 2.0, 9.0]) > 0.0);
    }

    #[test]
    fn real_timing_runs_and_is_positive() {
        let m = SizeMatrix::generate(Distribution::Uniform, 1, 8, 64);
        for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
            let t = time_alltoallv(algo, &m, 3);
            assert!(t > 0.0 && t < 5.0, "{algo:?}: {t}");
        }
        let t = time_alltoall(AlltoallAlgorithm::ZeroRotationBruck, 8, 32, 3);
        assert!(t > 0.0 && t < 5.0);
    }
}
