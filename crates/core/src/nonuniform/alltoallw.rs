//! `MPI_Alltoallw`-style exchange over derived datatypes — the extension the
//! paper lists as unexplored ("we have also not explored the applicability
//! of our techniques for mixed datatypes, as used by MPI_Alltoallw", §1).
//!
//! Each peer's block is described by an [`IndexedBlocks`] layout instead of a
//! `(count, displacement)` pair: `send_layouts[i]` gathers the bytes destined
//! to rank `i` out of `sendbuf`, and `recv_layouts[i]` scatters the block
//! arriving from rank `i` into `recvbuf`. The exchange itself is two-phase
//! Bruck over the packed representations, so all of the paper's non-uniform
//! machinery (metadata coupling, monolithic working buffer, zero rotations)
//! carries over unchanged.

use bruck_comm::{CommError, CommResult, Communicator};
use bruck_datatype::IndexedBlocks;

use super::packed_displs;
use crate::nonuniform::{alltoallv, AlltoallvAlgorithm};

/// Non-uniform all-to-all where every block is a derived-datatype layout.
///
/// Contract: `send_layouts[i].packed_len()` on rank `p` must equal
/// `recv_layouts[p].packed_len()` on rank `i` (the `MPI_Alltoallw`
/// sizes-match rule).
pub fn alltoallw<C: Communicator + ?Sized>(
    algo: AlltoallvAlgorithm,
    comm: &C,
    sendbuf: &[u8],
    send_layouts: &[IndexedBlocks],
    recvbuf: &mut [u8],
    recv_layouts: &[IndexedBlocks],
) -> CommResult<()> {
    let p = comm.size();
    if send_layouts.len() != p || recv_layouts.len() != p {
        return Err(CommError::BadArgument("one layout per rank required"));
    }

    // Gather every outgoing block into a packed staging buffer.
    let sendcounts: Vec<usize> = send_layouts.iter().map(IndexedBlocks::packed_len).collect();
    let sdispls = packed_displs(&sendcounts);
    let mut packed_send = vec![0u8; sendcounts.iter().sum()];
    for (i, layout) in send_layouts.iter().enumerate() {
        layout
            .pack_into(sendbuf, &mut packed_send[sdispls[i]..sdispls[i] + sendcounts[i]])
            .map_err(|_| CommError::BadArgument("send layout out of bounds"))?;
    }

    let recvcounts: Vec<usize> = recv_layouts.iter().map(IndexedBlocks::packed_len).collect();
    let rdispls = packed_displs(&recvcounts);
    let mut packed_recv = vec![0u8; recvcounts.iter().sum()];

    alltoallv(
        algo, comm, &packed_send, &sendcounts, &sdispls, &mut packed_recv, &recvcounts, &rdispls,
    )?;

    // Scatter each received block through its layout.
    for (i, layout) in recv_layouts.iter().enumerate() {
        layout
            .unpack_from(&packed_recv[rdispls[i]..rdispls[i] + recvcounts[i]], recvbuf)
            .map_err(|_| CommError::BadArgument("recv layout out of bounds"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_comm::ThreadComm;

    /// Strided matrix exchange: rank p owns column p of a P×P byte matrix in
    /// row-major layout and sends each rank its row segment — the classic
    /// Alltoallw transpose-without-pack use case.
    #[test]
    fn strided_transpose_via_alltoallw() {
        let p = 6;
        for algo in [AlltoallvAlgorithm::TwoPhaseBruck, AlltoallvAlgorithm::Vendor] {
            ThreadComm::run(p, |comm| {
                let me = comm.rank();
                let cell = 4usize; // bytes per matrix cell
                // sendbuf: my row of the logical matrix, P cells.
                let sendbuf: Vec<u8> =
                    (0..p * cell).map(|i| (me * 31 + i / cell) as u8).collect();
                // To rank d: my cell d (contiguous within my row).
                let send_layouts: Vec<IndexedBlocks> = (0..p)
                    .map(|d| IndexedBlocks::new(vec![(d * cell, cell)]).unwrap())
                    .collect();
                // From rank s: its cell me, landing strided into my column
                // buffer at row s.
                let recv_layouts: Vec<IndexedBlocks> = (0..p)
                    .map(|s| IndexedBlocks::new(vec![(s * cell, cell)]).unwrap())
                    .collect();
                let mut recvbuf = vec![0u8; p * cell];
                alltoallw(algo, comm, &sendbuf, &send_layouts, &mut recvbuf, &recv_layouts)
                    .unwrap();
                for s in 0..p {
                    for b in 0..cell {
                        assert_eq!(recvbuf[s * cell + b], (s * 31 + me) as u8);
                    }
                }
            });
        }
    }

    /// Non-uniform, non-contiguous layouts on both sides.
    #[test]
    fn ragged_noncontiguous_layouts() {
        let p = 5;
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            // To rank d: (me + d + 1) bytes scattered across sendbuf as two
            // pieces.
            let region = 64usize;
            let sendbuf: Vec<u8> = (0..p * region).map(|i| (me * 7 + i) as u8).collect();
            let send_layouts: Vec<IndexedBlocks> = (0..p)
                .map(|d| {
                    let len = me + d + 1;
                    let head = len / 2;
                    IndexedBlocks::new(vec![
                        (d * region, head),
                        (d * region + 32, len - head),
                    ])
                    .unwrap()
                })
                .collect();
            // From rank s: (s + me + 1) bytes into a strided spot.
            let recv_layouts: Vec<IndexedBlocks> = (0..p)
                .map(|s| {
                    let len = s + me + 1;
                    IndexedBlocks::new(vec![(s * 32, len)]).unwrap()
                })
                .collect();
            let mut recvbuf = vec![0u8; p * 32];
            alltoallw(
                AlltoallvAlgorithm::TwoPhaseBruck,
                comm,
                &sendbuf,
                &send_layouts,
                &mut recvbuf,
                &recv_layouts,
            )
            .unwrap();
            // Verify against a manual pack of the sender-side bytes.
            for s in 0..p {
                let len = s + me + 1;
                let head = len / 2;
                let mut expect = Vec::new();
                for off in 0..head {
                    expect.push((s * 7 + me * region + off) as u8);
                }
                for off in 0..len - head {
                    expect.push((s * 7 + me * region + 32 + off) as u8);
                }
                assert_eq!(&recvbuf[s * 32..s * 32 + len], &expect[..], "from {s}");
            }
        });
    }

    #[test]
    fn rejects_wrong_layout_counts() {
        ThreadComm::run(2, |comm| {
            let layouts = vec![IndexedBlocks::contiguous(1)];
            let mut recv = vec![0u8; 2];
            let err =
                alltoallw(AlltoallvAlgorithm::Vendor, comm, &[0u8; 2], &layouts, &mut recv, &layouts);
            assert!(err.is_err());
        });
    }
}
