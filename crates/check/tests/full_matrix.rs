//! The acceptance gate as a test: the entire algorithm × workload matrix
//! must verify clean. Mirrors `cargo run -p bruck-check --bin bruck-check`.

#[test]
fn full_matrix_is_clean() {
    let reports = bruck_check::matrix::run_full_matrix();
    assert!(reports.len() > 250, "matrix shrank unexpectedly: {} cases", reports.len());
    let dirty: Vec<String> = reports
        .iter()
        .filter(|r| !r.is_clean())
        .map(|r| format!("{}: {:?}", r.name, r.findings))
        .collect();
    assert!(dirty.is_empty(), "matrix not clean:\n{}", dirty.join("\n"));
}
