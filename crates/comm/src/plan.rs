//! Planned exchanges: amortize the counts handshake across repeated
//! all-to-alls with a fixed (or slowly changing) load — the idea behind
//! Jackson & Booth's *planned AlltoAllv* (related work §6 of the paper), and
//! the natural API for fixpoint applications whose counts only change every
//! iteration.
//!
//! An [`ExchangePlan`] captures the `(sendcounts, recvcounts)` pair once;
//! [`ExchangePlan::displs`] are derived packed offsets. Executing the plan is
//! the caller's choice of algorithm (`bruck-core` takes the same arrays), so
//! this type is algorithm-agnostic and lives with the runtime.

use crate::{CommError, CommResult, Communicator};

/// A reusable non-uniform exchange plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangePlan {
    sendcounts: Vec<usize>,
    sdispls: Vec<usize>,
    recvcounts: Vec<usize>,
    rdispls: Vec<usize>,
}

/// Exclusive prefix sum with overflow checking: adversarial counts (e.g. two
/// `usize::MAX / 2` blocks) must surface as an error, not a wrapped
/// displacement that silently aliases earlier blocks.
fn packed(counts: &[usize]) -> CommResult<Vec<usize>> {
    let mut displs = Vec::with_capacity(counts.len());
    let mut at = 0usize;
    for &c in counts {
        displs.push(at);
        at = at
            .checked_add(c)
            .ok_or(CommError::BadArgument("displacement prefix sum overflows usize"))?;
    }
    Ok(displs)
}

impl ExchangePlan {
    /// Build a plan collectively: runs the counts handshake once so every
    /// rank learns its receive counts.
    pub fn negotiate<C: Communicator + ?Sized>(
        comm: &C,
        sendcounts: Vec<usize>,
    ) -> CommResult<Self> {
        if sendcounts.len() != comm.size() {
            return Err(CommError::BadArgument("sendcounts.len() != size"));
        }
        let recvcounts = comm.alltoall_counts(&sendcounts)?;
        Self::from_counts(sendcounts, recvcounts)
    }

    /// Build a plan from already-known counts (no communication). Errors if
    /// either packed layout's total size overflows `usize`.
    pub fn from_counts(sendcounts: Vec<usize>, recvcounts: Vec<usize>) -> CommResult<Self> {
        let sdispls = packed(&sendcounts)?;
        let rdispls = packed(&recvcounts)?;
        Ok(ExchangePlan { sendcounts, sdispls, recvcounts, rdispls })
    }

    /// Send counts per destination.
    pub fn sendcounts(&self) -> &[usize] {
        &self.sendcounts
    }

    /// Packed send displacements.
    pub fn sdispls(&self) -> &[usize] {
        &self.sdispls
    }

    /// Receive counts per source.
    pub fn recvcounts(&self) -> &[usize] {
        &self.recvcounts
    }

    /// Packed receive displacements.
    pub fn rdispls(&self) -> &[usize] {
        &self.rdispls
    }

    /// Total bytes this rank sends under the plan.
    pub fn send_bytes(&self) -> usize {
        self.sendcounts.iter().sum()
    }

    /// Total bytes this rank receives under the plan.
    pub fn recv_bytes(&self) -> usize {
        self.recvcounts.iter().sum()
    }

    /// Allocate a receive buffer sized for the plan.
    pub fn alloc_recvbuf(&self) -> Vec<u8> {
        vec![0u8; self.recv_bytes()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Communicator, ThreadComm};

    #[test]
    fn negotiate_learns_the_transpose() {
        let p = 5;
        let plans = ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let sendcounts: Vec<usize> = (0..p).map(|d| me * 10 + d).collect();
            ExchangePlan::negotiate(comm, sendcounts).unwrap()
        });
        for (me, plan) in plans.iter().enumerate() {
            for src in 0..p {
                assert_eq!(plan.recvcounts()[src], src * 10 + me);
            }
            assert_eq!(plan.sdispls()[0], 0);
            assert_eq!(plan.rdispls()[1], plan.recvcounts()[0]);
            assert_eq!(plan.recv_bytes(), plan.recvcounts().iter().sum::<usize>());
            assert_eq!(plan.alloc_recvbuf().len(), plan.recv_bytes());
        }
    }

    #[test]
    fn negotiate_rejects_wrong_length() {
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                assert!(ExchangePlan::negotiate(comm, vec![1, 2, 3]).is_err());
            }
            // Rank 1 takes the valid path so nothing is left hanging.
        });
    }

    #[test]
    fn from_counts_is_pure() {
        let plan = ExchangePlan::from_counts(vec![2, 0, 3], vec![1, 1, 1]).unwrap();
        assert_eq!(plan.sdispls(), &[0, 2, 2]);
        assert_eq!(plan.rdispls(), &[0, 1, 2]);
        assert_eq!(plan.send_bytes(), 5);
        assert_eq!(plan.recv_bytes(), 3);
    }

    #[test]
    fn displacement_invariants_hold() {
        // The invariants every consumer (bruck-core's validate_v, the
        // bruck-check layout pass) relies on: packed displacements start at
        // zero, advance by exactly the preceding count (so blocks are
        // adjacent and non-overlapping), and end at the total byte count.
        let sendcounts = vec![3usize, 0, 7, 1, 0, 5];
        let recvcounts = vec![2usize, 2, 2, 0, 9, 1];
        let plan = ExchangePlan::from_counts(sendcounts.clone(), recvcounts.clone()).unwrap();
        for (counts, displs, total) in [
            (&sendcounts, plan.sdispls(), plan.send_bytes()),
            (&recvcounts, plan.rdispls(), plan.recv_bytes()),
        ] {
            assert_eq!(displs[0], 0);
            for i in 1..counts.len() {
                assert_eq!(displs[i], displs[i - 1] + counts[i - 1], "block {i} adjacency");
            }
            assert_eq!(displs[counts.len() - 1] + counts[counts.len() - 1], total);
        }
    }

    #[test]
    fn overflowing_counts_are_rejected() {
        let huge = vec![usize::MAX / 2 + 1, usize::MAX / 2 + 1];
        assert!(ExchangePlan::from_counts(huge.clone(), vec![0, 0]).is_err());
        assert!(ExchangePlan::from_counts(vec![0, 0], huge).is_err());
        // A single maximal block is fine: the *sum past it* is what overflows.
        assert!(ExchangePlan::from_counts(vec![usize::MAX, 0], vec![0, 0]).is_ok());
        assert!(ExchangePlan::from_counts(vec![0, usize::MAX], vec![0, 0]).is_ok());
    }
}
