//! Layout combinators: build complex derived datatypes from simpler ones,
//! mirroring MPI's constructor family (`MPI_Type_contiguous`,
//! `MPI_Type_vector`, `MPI_Type_indexed`, `MPI_Type_create_struct`,
//! `MPI_Type_create_resized`), plus the coalescing optimization every real
//! datatype engine performs before committing a type.

use crate::{DatatypeError, IndexedBlocks};

impl IndexedBlocks {
    /// `count` repetitions of this layout, each shifted by `stride` bytes —
    /// `MPI_Type_contiguous`/`MPI_Type_hvector` over a derived type.
    pub fn repeat(&self, count: usize, stride: usize) -> Result<IndexedBlocks, DatatypeError> {
        let mut blocks = Vec::with_capacity(self.block_count() * count);
        for rep in 0..count {
            let base = rep
                .checked_mul(stride)
                .ok_or(DatatypeError::BadArgument("repeat stride overflows"))?;
            for &(d, l) in self.blocks() {
                blocks.push((
                    base.checked_add(d).ok_or(DatatypeError::BadArgument("repeat offset overflows"))?,
                    l,
                ));
            }
        }
        IndexedBlocks::new(blocks)
    }

    /// Concatenate layouts at explicit byte displacements —
    /// `MPI_Type_create_struct` over derived types.
    pub fn structure(parts: &[(usize, &IndexedBlocks)]) -> Result<IndexedBlocks, DatatypeError> {
        let mut blocks = Vec::new();
        for &(base, part) in parts {
            for &(d, l) in part.blocks() {
                blocks.push((
                    base.checked_add(d)
                        .ok_or(DatatypeError::BadArgument("struct offset overflows"))?,
                    l,
                ));
            }
        }
        IndexedBlocks::new(blocks)
    }

    /// Shift every block by `offset` bytes — the displacement part of
    /// `MPI_Type_create_resized`.
    pub fn shifted(&self, offset: usize) -> Result<IndexedBlocks, DatatypeError> {
        IndexedBlocks::new(
            self.blocks()
                .iter()
                .map(|&(d, l)| {
                    d.checked_add(offset)
                        .map(|nd| (nd, l))
                        .ok_or(DatatypeError::BadArgument("shift overflows"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        )
    }

    /// Merge adjacent and drop empty blocks without changing pack order —
    /// the *commit-time normalization* real MPI datatype engines apply.
    /// Packing through the normalized layout is byte-identical but walks
    /// fewer descriptors.
    pub fn normalized(&self) -> IndexedBlocks {
        let mut blocks: Vec<(usize, usize)> = Vec::with_capacity(self.block_count());
        for &(d, l) in self.blocks() {
            if l == 0 {
                continue;
            }
            if let Some(last) = blocks.last_mut() {
                if last.0 + last.1 == d {
                    last.1 += l;
                    continue;
                }
            }
            blocks.push((d, l));
        }
        IndexedBlocks::new(blocks).expect("normalization preserves validity")
    }

    /// True when the layout is one contiguous block starting at 0 — the fast
    /// path where a transfer needs no pack/unpack at all.
    pub fn is_contiguous(&self) -> bool {
        let n = self.normalized();
        matches!(n.blocks(), [] | [(0, _)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(blocks: &[(usize, usize)]) -> IndexedBlocks {
        IndexedBlocks::new(blocks.to_vec()).unwrap()
    }

    #[test]
    fn repeat_builds_vectors() {
        let base = ty(&[(0, 2)]);
        let v = base.repeat(3, 5).unwrap();
        assert_eq!(v.blocks(), &[(0, 2), (5, 2), (10, 2)]);
        assert_eq!(v.packed_len(), 6);
        // Equivalent to the direct strided constructor.
        assert_eq!(v, IndexedBlocks::strided(3, 2, 5).unwrap());
    }

    #[test]
    fn repeat_of_multi_block_layout() {
        let base = ty(&[(0, 1), (3, 1)]);
        let v = base.repeat(2, 8).unwrap();
        assert_eq!(v.blocks(), &[(0, 1), (3, 1), (8, 1), (11, 1)]);
    }

    #[test]
    fn structure_concatenates_at_offsets() {
        let a = ty(&[(0, 2)]);
        let b = ty(&[(1, 3)]);
        let s = IndexedBlocks::structure(&[(0, &a), (10, &b)]).unwrap();
        assert_eq!(s.blocks(), &[(0, 2), (11, 3)]);
        assert_eq!(s.packed_len(), 5);
    }

    #[test]
    fn shifted_moves_all_blocks() {
        let a = ty(&[(0, 2), (4, 1)]);
        let s = a.shifted(100).unwrap();
        assert_eq!(s.blocks(), &[(100, 2), (104, 1)]);
        assert_eq!(s.packed_len(), a.packed_len());
    }

    #[test]
    fn normalized_merges_adjacent_and_drops_empty() {
        let a = ty(&[(0, 2), (2, 3), (7, 0), (9, 1), (10, 2)]);
        let n = a.normalized();
        assert_eq!(n.blocks(), &[(0, 5), (9, 3)]);
        // Packing is unchanged.
        let src: Vec<u8> = (0..16).collect();
        assert_eq!(a.pack(&src).unwrap(), n.pack(&src).unwrap());
    }

    #[test]
    fn normalized_does_not_merge_out_of_order_blocks() {
        // (4,2) then (0,2): address-adjacent in reverse order must NOT merge
        // (pack order differs from address order).
        let a = ty(&[(4, 2), (0, 2)]);
        let n = a.normalized();
        assert_eq!(n.blocks(), &[(4, 2), (0, 2)]);
    }

    #[test]
    fn contiguity_detection() {
        assert!(ty(&[(0, 8)]).is_contiguous());
        assert!(ty(&[(0, 3), (3, 5)]).is_contiguous());
        assert!(ty(&[]).is_contiguous());
        assert!(ty(&[(0, 0), (0, 4)]).is_contiguous());
        assert!(!ty(&[(1, 4)]).is_contiguous());
        assert!(!ty(&[(0, 2), (3, 2)]).is_contiguous());
    }

    #[test]
    fn composed_roundtrip() {
        // struct(vector, shifted single) — pack/unpack roundtrips.
        let v = IndexedBlocks::strided(2, 3, 4).unwrap();
        let single = ty(&[(0, 2)]).shifted(1).unwrap();
        let s = IndexedBlocks::structure(&[(0, &v), (16, &single)]).unwrap();
        let src: Vec<u8> = (0..32).map(|i| i * 3).collect();
        let packed = s.pack(&src).unwrap();
        let mut dst = vec![0u8; 32];
        s.unpack_from(&packed, &mut dst).unwrap();
        for &(d, l) in s.blocks() {
            assert_eq!(&dst[d..d + l], &src[d..d + l]);
        }
    }
}
