//! Binary relation tuples and their wire encoding.

/// A binary relation tuple (the BPRA papers' relations are sets of arity-2
/// facts: graph edges, analysis facts).
pub type Tuple = (u64, u64);

/// Bytes per encoded tuple.
pub const TUPLE_BYTES: usize = 16;

/// Append a tuple's little-endian encoding to a byte buffer.
#[inline]
pub fn encode_into(t: Tuple, out: &mut Vec<u8>) {
    out.extend_from_slice(&t.0.to_le_bytes());
    out.extend_from_slice(&t.1.to_le_bytes());
}

/// Encode a slice of tuples.
pub fn encode_all(tuples: &[Tuple]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuples.len() * TUPLE_BYTES);
    for &t in tuples {
        encode_into(t, &mut out);
    }
    out
}

/// Decode a byte buffer produced by [`encode_all`].
///
/// # Panics
/// If the buffer length is not a multiple of [`TUPLE_BYTES`].
pub fn decode_all(bytes: &[u8]) -> Vec<Tuple> {
    assert!(bytes.len().is_multiple_of(TUPLE_BYTES), "truncated tuple buffer");
    bytes
        .chunks_exact(TUPLE_BYTES)
        .map(|c| {
            (
                u64::from_le_bytes(c[0..8].try_into().expect("8-byte field")),
                u64::from_le_bytes(c[8..16].try_into().expect("8-byte field")),
            )
        })
        .collect()
}

/// The rank that owns a value under hash partitioning (FNV-1a, stable across
/// platforms so distributed runs agree on ownership).
#[inline]
pub fn owner(value: u64, p: usize) -> usize {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in value.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    (h % p as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let tuples = vec![(0u64, 1u64), (u64::MAX, 42), (7, 7)];
        assert_eq!(decode_all(&encode_all(&tuples)), tuples);
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decode_all(&encode_all(&[])), Vec::<Tuple>::new());
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn decode_rejects_truncated() {
        decode_all(&[0u8; 15]);
    }

    #[test]
    fn owner_is_stable_and_in_range() {
        for p in [1usize, 2, 7, 64] {
            for v in [0u64, 1, 999, u64::MAX] {
                let o = owner(v, p);
                assert!(o < p);
                assert_eq!(o, owner(v, p), "deterministic");
            }
        }
    }

    #[test]
    fn owner_spreads_values() {
        let p = 16;
        let mut counts = vec![0usize; p];
        for v in 0..10_000u64 {
            counts[owner(v, p)] += 1;
        }
        // Roughly balanced: each bucket within 3x of the mean.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 200 && c < 1875, "bucket {i} holds {c}");
        }
    }
}
