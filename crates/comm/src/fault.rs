//! [`FaultComm`]: deterministic fault injection for testing recovery paths.
//!
//! Where [`crate::ChaosComm`] only perturbs *timing*, this wrapper perturbs
//! *delivery*: it drops, duplicates, corrupts, and delays messages, and can
//! stall or crash a whole rank, all according to a composable [`FaultPlan`].
//! Every decision is a pure function of `(seed, src, dest, per-edge message
//! index)` — never of wall-clock time or thread interleaving — so the same
//! plan injects the same fault sequence on every run, which is what makes
//! chaos soaks (`bruck-chaos`) reproducible and failures bisectable.
//!
//! The wrapper models a lossy *network*: faults apply to messages between
//! distinct ranks. Self-sends are process-local memory and pass through
//! unfaulted (local memory does not drop bytes).
//!
//! Recovery is someone else's job: layer [`crate::ReliableComm`] on top to
//! turn drop/duplicate/corrupt back into clean MPI semantics, and use the
//! deadline-aware receives to detect stalls and crashes.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use crate::chaos::splitmix;
use crate::{CommError, CommResult, Communicator, MsgBuf, RecvReq, Tag};

/// Per-edge fault probabilities. All probabilities are in `[0, 1]` and are
/// evaluated independently per message, in the order delay → drop → corrupt
/// → duplicate (a delayed message may still be dropped; a corrupted one may
/// still be duplicated — duplicates carry the same corruption).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EdgeFaults {
    /// Probability a message is silently discarded.
    pub drop: f64,
    /// Probability a delivered message is delivered twice.
    pub duplicate: f64,
    /// Probability one payload byte is flipped in transit (empty payloads
    /// cannot corrupt).
    pub corrupt: f64,
    /// Probability the send is delayed (spin-yields before delivery), which
    /// reorders it relative to concurrent senders.
    pub delay: f64,
    /// Maximum yield iterations for a delayed send.
    pub max_delay_spins: u32,
}

/// A one-shot fault scripted against a specific rank's operation counter
/// (send/receive data operations, counted per rank). "Rank 3 crashes before
/// its 5th communication op" is `Crash { rank: 3, after_ops: 4 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptedFault {
    /// The rank fails permanently once it has completed `after_ops` data
    /// operations: every subsequent operation returns
    /// [`CommError::RankFailed`] (the moral equivalent of the process dying).
    Crash {
        /// Rank that crashes.
        rank: usize,
        /// Data operations the rank completes before failing.
        after_ops: u64,
    },
    /// The rank sleeps once, at exactly its `after_ops`-th data operation —
    /// long enough to trip peers' deadlines without being dead.
    Stall {
        /// Rank that stalls.
        rank: usize,
        /// Data operation index at which the stall fires.
        after_ops: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
}

/// A composable, seeded description of what faults to inject.
///
/// Built with the `with_*` methods; consumed by [`FaultComm::new`]. The same
/// plan value injects the same fault sequence on every run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_edge: EdgeFaults,
    edges: Vec<((usize, usize), EdgeFaults)>,
    scripted: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed. Compose faults with `with_*`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, default_edge: EdgeFaults::default(), edges: Vec::new(), scripted: Vec::new() }
    }

    /// The seed all decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Set the default per-message drop probability on every edge.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.default_edge.drop = p.clamp(0.0, 1.0);
        self
    }

    /// Set the default per-message duplication probability on every edge.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.default_edge.duplicate = p.clamp(0.0, 1.0);
        self
    }

    /// Set the default per-message corruption probability on every edge.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.default_edge.corrupt = p.clamp(0.0, 1.0);
        self
    }

    /// Set the default per-message delay probability and magnitude.
    pub fn with_delay(mut self, p: f64, max_spins: u32) -> Self {
        self.default_edge.delay = p.clamp(0.0, 1.0);
        self.default_edge.max_delay_spins = max_spins;
        self
    }

    /// Override the fault probabilities of one directed edge `src → dest`
    /// (takes precedence over the defaults).
    pub fn with_edge(mut self, src: usize, dest: usize, faults: EdgeFaults) -> Self {
        self.edges.push(((src, dest), faults));
        self
    }

    /// Script `rank` to crash after completing `after_ops` data operations.
    pub fn with_crash(mut self, rank: usize, after_ops: u64) -> Self {
        self.scripted.push(ScriptedFault::Crash { rank, after_ops });
        self
    }

    /// Script `rank` to stall for `millis` at its `after_ops`-th data op.
    pub fn with_stall(mut self, rank: usize, after_ops: u64, millis: u64) -> Self {
        self.scripted.push(ScriptedFault::Stall { rank, after_ops, millis });
        self
    }

    /// The effective fault probabilities for the directed edge `src → dest`.
    pub fn edge(&self, src: usize, dest: usize) -> EdgeFaults {
        self.edges
            .iter()
            .rev() // later overrides win
            .find(|((s, d), _)| *s == src && *d == dest)
            .map(|(_, f)| *f)
            .unwrap_or(self.default_edge)
    }

    /// True if the plan injects nothing (useful as a matrix baseline).
    pub fn is_benign(&self) -> bool {
        self.edges.is_empty()
            && self.scripted.is_empty()
            && self.default_edge == EdgeFaults::default()
    }
}

/// What [`FaultComm`] did to one message (or one rank), recorded in the
/// injection log for determinism assertions and failure forensics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Message discarded.
    Dropped,
    /// Message delivered twice.
    Duplicated,
    /// One payload byte flipped.
    Corrupted,
    /// Send delayed by this many spin-yields.
    Delayed(u32),
    /// This rank crashed (scripted).
    Crashed,
    /// This rank stalled for this many milliseconds (scripted).
    Stalled(u64),
}

/// One injected fault: what happened, to which message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The fault injected.
    pub kind: FaultKind,
    /// Destination rank of the affected message (this rank for
    /// `Crashed`/`Stalled`).
    pub dest: usize,
    /// Tag of the affected message (0 for rank-level faults).
    pub tag: Tag,
    /// Per-edge message index of the affected message (0 for rank-level
    /// faults).
    pub edge_msg: u64,
}

#[derive(Default)]
struct FaultState {
    /// Data operations performed by this rank (sends + receives).
    ops: u64,
    /// Messages sent per destination (the per-edge index fault draws key on).
    edge_msgs: BTreeMap<usize, u64>,
    /// Scripted stalls already fired (index into the plan's scripted list).
    fired: Vec<usize>,
    crashed: bool,
    log: Vec<FaultEvent>,
}

/// A fault-injecting wrapper around any [`Communicator`]. One wrapper per
/// rank, like [`crate::ChaosComm`]; all ranks should be given the same
/// [`FaultPlan`] value.
pub struct FaultComm<'a, C: Communicator + ?Sized> {
    inner: &'a C,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

/// Uniform `[0, 1)` from a `u64` (53-bit mantissa path).
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / 9007199254740992.0)
}

impl<'a, C: Communicator + ?Sized> FaultComm<'a, C> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: &'a C, plan: FaultPlan) -> Self {
        FaultComm { inner, plan, state: Mutex::new(FaultState::default()) }
    }

    /// The injection log so far, in this rank's program order. Per-edge
    /// subsequences are identical across runs with the same plan.
    pub fn log(&self) -> Vec<FaultEvent> {
        self.lock().log.clone()
    }

    /// Has this rank crashed (scripted)?
    pub fn is_crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Data-plane operations completed so far on this rank — the counter
    /// scripted faults key on. Run a scenario once fault-free and read this
    /// to calibrate `after_ops` thresholds that land a crash inside a
    /// specific protocol phase.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The per-message decision key: a pure function of the plan seed and the
    /// message's (src, dest, per-edge index) coordinates. `salt` separates
    /// the independent draws made about one message.
    fn draw(&self, dest: usize, n: u64, salt: u64) -> f64 {
        let mut k = splitmix(self.plan.seed ^ (self.inner.rank() as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        k = splitmix(k ^ (dest as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        k = splitmix(k ^ n.wrapping_mul(0x3C79_AC49_2BA7_B653));
        u01(splitmix(k ^ salt))
    }

    /// Account one data-plane operation: fail if crashed, fire scripted
    /// faults whose op threshold this operation crosses.
    fn data_op(&self) -> CommResult<()> {
        let me = self.inner.rank();
        let mut stall: Option<u64> = None;
        {
            let mut s = self.lock();
            if s.crashed {
                return Err(CommError::RankFailed { rank: me });
            }
            let k = s.ops;
            s.ops += 1;
            for (idx, f) in self.plan.scripted.iter().enumerate() {
                match *f {
                    ScriptedFault::Crash { rank, after_ops } if rank == me && k >= after_ops => {
                        s.crashed = true;
                        s.log.push(FaultEvent { kind: FaultKind::Crashed, dest: me, tag: 0, edge_msg: 0 });
                        return Err(CommError::RankFailed { rank: me });
                    }
                    ScriptedFault::Stall { rank, after_ops, millis }
                        if rank == me && k == after_ops && !s.fired.contains(&idx) =>
                    {
                        s.fired.push(idx);
                        s.log.push(FaultEvent {
                            kind: FaultKind::Stalled(millis),
                            dest: me,
                            tag: 0,
                            edge_msg: 0,
                        });
                        stall = Some(millis);
                    }
                    _ => {}
                }
            }
        }
        if let Some(millis) = stall {
            // Sleep outside the lock: a stalled rank must not block its own
            // mailbox bookkeeping (or the log readers). Taken on the inner
            // communicator's clock, so a stall under the deterministic
            // simulator costs virtual time, not wall-clock time.
            self.inner.sleep(Duration::from_millis(millis));
        }
        Ok(())
    }

    fn log_event(&self, kind: FaultKind, dest: usize, tag: Tag, edge_msg: u64) {
        self.lock().log.push(FaultEvent { kind, dest, tag, edge_msg });
    }
}

impl<C: Communicator + ?Sized> Communicator for FaultComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.data_op()?;
        let me = self.inner.rank();
        if dest == me {
            // Self-sends are process-local memory, not network traffic.
            return self.inner.send_buf(dest, tag, buf);
        }
        let n = {
            let mut s = self.lock();
            let counter = s.edge_msgs.entry(dest).or_insert(0);
            let n = *counter;
            *counter += 1;
            n
        };
        let faults = self.plan.edge(me, dest);

        if faults.delay > 0.0 && self.draw(dest, n, 1) < faults.delay {
            let spins =
                (self.draw(dest, n, 2) * f64::from(faults.max_delay_spins.max(1))) as u32 + 1;
            self.log_event(FaultKind::Delayed(spins), dest, tag, n);
            for _ in 0..spins {
                std::thread::yield_now();
            }
        }
        if faults.drop > 0.0 && self.draw(dest, n, 3) < faults.drop {
            self.log_event(FaultKind::Dropped, dest, tag, n);
            return Ok(());
        }
        let wire = if faults.corrupt > 0.0 && !buf.is_empty() && self.draw(dest, n, 4) < faults.corrupt
        {
            let x = splitmix(self.plan.seed ^ n.wrapping_mul(0x5851_F42D_4C95_7F2D));
            let mut bytes = buf.as_slice().to_vec();
            let idx = (x as usize) % bytes.len();
            bytes[idx] ^= ((x >> 17) as u8) | 1; // always a real flip
            self.log_event(FaultKind::Corrupted, dest, tag, n);
            MsgBuf::from_vec(bytes)
        } else {
            buf
        };
        self.inner.send_buf(dest, tag, wire.clone())?;
        if faults.duplicate > 0.0 && self.draw(dest, n, 5) < faults.duplicate {
            self.log_event(FaultKind::Duplicated, dest, tag, n);
            self.inner.send_buf(dest, tag, wire)?;
        }
        Ok(())
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.data_op()?;
        self.inner.recv_buf(src, tag)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        self.data_op()?;
        self.inner.recv_into(src, tag, buf)
    }

    fn recv_buf_timeout(
        &self,
        src: usize,
        tag: Tag,
        timeout: Duration,
    ) -> CommResult<MsgBuf> {
        self.data_op()?;
        self.inner.recv_buf_timeout(src, tag, timeout)
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        // Probes are control-plane: no op accounting (recovery layers poll
        // them at arbitrary rates), but a crashed rank stays crashed.
        if self.lock().crashed {
            return Err(CommError::RankFailed { rank: self.inner.rank() });
        }
        self.inner.probe(src, tag)
    }

    fn now(&self) -> Duration {
        self.inner.now()
    }

    fn sleep(&self, d: Duration) {
        self.inner.sleep(d)
    }

    fn irecv(&self, src: usize, tag: Tag) -> CommResult<RecvReq> {
        if self.lock().crashed {
            return Err(CommError::RankFailed { rank: self.inner.rank() });
        }
        self.inner.irecv(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadComm;

    /// A fixed deterministic per-rank op sequence: every rank sends `k`
    /// messages to every other rank, then drains what actually arrived.
    fn scripted_traffic(comm: &FaultComm<'_, ThreadComm>, k: usize) -> Vec<FaultEvent> {
        let p = comm.size();
        let me = comm.rank();
        for round in 0..k {
            for dest in 0..p {
                if dest != me {
                    let _ = comm.send_buf(dest, 1, MsgBuf::copy_from_slice(&[round as u8; 8]));
                }
            }
        }
        comm.barrier_best_effort();
        comm.log()
    }

    impl FaultComm<'_, ThreadComm> {
        /// Drain every arrived message so worlds end clean (drops mean the
        /// count is unknown; consume whatever is present).
        fn barrier_best_effort(&self) {
            std::thread::sleep(Duration::from_millis(50));
            let me = self.inner.rank();
            for src in 0..self.inner.size() {
                if src == me {
                    continue;
                }
                while self.inner.probe(src, 1).unwrap().is_some() {
                    self.inner.recv_buf(src, 1).unwrap();
                }
            }
        }
    }

    #[test]
    fn same_seed_injects_the_same_fault_sequence() {
        // The determinism contract, in the spirit of
        // `shared_wrapper_advances_the_stream_atomically`: two runs under the
        // same plan produce identical per-rank injection logs, regardless of
        // how the OS interleaved the threads.
        let plan = FaultPlan::new(0xFA17)
            .with_drop(0.2)
            .with_duplicate(0.15)
            .with_corrupt(0.1)
            .with_delay(0.3, 32);
        let run = |plan: FaultPlan| {
            ThreadComm::run(5, move |comm| {
                let fc = FaultComm::new(comm, plan.clone());
                scripted_traffic(&fc, 40)
            })
        };
        let first = run(plan.clone());
        let second = run(plan);
        assert_eq!(first, second, "fault injection must be a pure function of the seed");
        // And the plan is actually injecting: every fault kind appears.
        let all: Vec<FaultKind> = first.iter().flatten().map(|e| e.kind).collect();
        for kind in [FaultKind::Dropped, FaultKind::Duplicated, FaultKind::Corrupted] {
            assert!(all.iter().any(|k| *k == kind), "expected some {kind:?} events");
        }
    }

    #[test]
    fn different_seeds_inject_different_sequences() {
        let mk = |seed| {
            ThreadComm::run(4, move |comm| {
                let fc = FaultComm::new(comm, FaultPlan::new(seed).with_drop(0.3));
                scripted_traffic(&fc, 30)
            })
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn crashed_rank_fails_every_subsequent_op() {
        ThreadComm::run(3, |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(0).with_crash(1, 2));
            let me = fc.rank();
            if me == 1 {
                // Two ops succeed, the third (and all after) fail.
                fc.send_buf(0, 1, MsgBuf::new()).unwrap();
                fc.send_buf(2, 1, MsgBuf::new()).unwrap();
                let err = fc.send_buf(0, 1, MsgBuf::new()).unwrap_err();
                assert_eq!(err, CommError::RankFailed { rank: 1 });
                assert!(fc.is_crashed());
                assert!(matches!(fc.probe(0, 1), Err(CommError::RankFailed { rank: 1 })));
                assert!(matches!(
                    fc.recv_buf_timeout(0, 9, Duration::from_millis(1)),
                    Err(CommError::RankFailed { rank: 1 })
                ));
            } else {
                // Consume the pre-crash messages so the world ends clean.
                fc.recv_buf(1, 1).unwrap();
            }
        });
    }

    #[test]
    fn self_sends_never_fault() {
        ThreadComm::run(2, |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(7).with_drop(1.0).with_corrupt(1.0));
            let payload = vec![9u8; 16];
            fc.send_buf(fc.rank(), 3, MsgBuf::copy_from_slice(&payload)).unwrap();
            assert_eq!(fc.recv_buf(fc.rank(), 3).unwrap().as_slice(), &payload[..]);
            assert!(fc.log().is_empty(), "self-edges are not network traffic");
        });
    }

    #[test]
    fn drop_one_discards_corrupt_one_flips() {
        ThreadComm::run(2, |comm| {
            let me = comm.rank();
            // Drop everything 0 → 1; deliver 1 → 0 corrupted.
            let plan = FaultPlan::new(3)
                .with_edge(0, 1, EdgeFaults { drop: 1.0, ..EdgeFaults::default() })
                .with_edge(1, 0, EdgeFaults { corrupt: 1.0, ..EdgeFaults::default() });
            let fc = FaultComm::new(comm, plan);
            if me == 0 {
                fc.send_buf(1, 1, MsgBuf::copy_from_slice(&[1, 2, 3])).unwrap();
                let got = fc.recv_buf(1, 1).unwrap();
                assert_eq!(got.len(), 3);
                assert_ne!(got.as_slice(), &[4, 5, 6], "must arrive corrupted");
            } else {
                fc.send_buf(0, 1, MsgBuf::copy_from_slice(&[4, 5, 6])).unwrap();
                // 0 → 1 was dropped: nothing ever arrives.
                assert!(matches!(
                    fc.recv_buf_timeout(0, 1, Duration::from_millis(30)),
                    Err(CommError::Timeout { src: 0, tag: 1, .. })
                ));
            }
        });
    }

    #[test]
    fn stall_delays_but_completes() {
        use std::time::Instant;
        ThreadComm::run(2, |comm| {
            let fc = FaultComm::new(comm, FaultPlan::new(0).with_stall(0, 0, 60));
            let start = Instant::now();
            if fc.rank() == 0 {
                fc.send_buf(1, 1, MsgBuf::new()).unwrap();
                assert!(start.elapsed() >= Duration::from_millis(60), "stall must fire");
            } else {
                fc.recv_buf(0, 1).unwrap();
            }
        });
    }
}
