//! Vector allreduce schedules: recursive doubling and the Rabenseifner
//! reduce_scatter + allgatherv composition.

use bruck_comm::{CommResult, Communicator, MsgBuf, ReduceOp};

use crate::common::{ar_doubling_tag, AR_FOLD_TAG, AR_UNFOLD_TAG};
use crate::packed_displs;
use crate::probe::span;

use super::{bytes_to_u64s, u64s_to_bytes, AllgathervAlgorithm, ReduceScatterAlgorithm};

/// Recursive-doubling allreduce: whole vectors exchanged at distances
/// `1, 2, 4, …` within a power-of-two core of `m` ranks (`m` the largest
/// power of two ≤ `P`), the `r = P − m` remainder ranks folded in before
/// and handed the result after.
///
/// α-optimal (`⌈log₂ m⌉` latency steps) but every step moves the full
/// `8n` bytes — the small-message schedule.
pub(super) fn allreduce_doubling<C: Communicator + ?Sized>(
    comm: &C,
    buf: &mut [u64],
    op: ReduceOp,
) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    let m = if p.is_power_of_two() { p } else { p.next_power_of_two() / 2 };
    let r = p - m;

    if me >= m {
        {
            let _probe = span("ar_doubling.fold");
            comm.send_buf(me - m, AR_FOLD_TAG, MsgBuf::from_vec(u64s_to_bytes(buf)))?;
        }
        let _probe = span("ar_doubling.unfold");
        let got = comm.recv_buf(me - m, AR_UNFOLD_TAG)?;
        buf.copy_from_slice(&bytes_to_u64s(got.as_slice())?);
        return Ok(());
    }

    if me < r {
        let _probe = span("ar_doubling.fold");
        let got = comm.recv_buf(me + m, AR_FOLD_TAG)?;
        op.apply_slice(buf, &bytes_to_u64s(got.as_slice())?);
    }

    for k in 0..m.trailing_zeros() {
        let _probe = span("ar_doubling.step");
        let partner = me ^ (1usize << k);
        let got = comm.sendrecv_buf(
            partner,
            ar_doubling_tag(k),
            MsgBuf::from_vec(u64s_to_bytes(buf)),
            partner,
            ar_doubling_tag(k),
        )?;
        op.apply_slice(buf, &bytes_to_u64s(got.as_slice())?);
    }

    if me < r {
        let _probe = span("ar_doubling.unfold");
        comm.send_buf(me + m, AR_UNFOLD_TAG, MsgBuf::from_vec(u64s_to_bytes(buf)))?;
    }
    Ok(())
}

/// Rabenseifner allreduce: recursive-halving [`super::reduce_scatter`] of
/// near-equal pieces (`⌈n/P⌉` / `⌊n/P⌋` elements), then Bruck
/// [`super::allgatherv`] of the reduced pieces. Moves `O(8n)` bytes per rank
/// total instead of `8n` per step — the large-vector schedule.
///
/// Composition goes through the dispatch layer, so the wire trace is exactly
/// the two component traces back to back (their tag blocks are disjoint).
pub(super) fn allreduce_rs_ag<C: Communicator + ?Sized>(
    comm: &C,
    buf: &mut [u64],
    op: ReduceOp,
) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    let n = buf.len();
    // Near-equal pieces — the same split the Ranka two-stage algorithm uses.
    let counts: Vec<usize> = (0..p).map(|i| crate::piece_len(n, i, p)).collect();

    let mut piece = vec![0u64; counts[me]];
    super::reduce_scatter(ReduceScatterAlgorithm::RecursiveHalving, comm, buf, &mut piece, &counts, op)?;

    let byte_counts: Vec<usize> = counts.iter().map(|c| c * 8).collect();
    let byte_displs = packed_displs(&byte_counts);
    let contrib = u64s_to_bytes(&piece);
    let mut gathered = vec![0u8; n * 8];
    super::allgatherv(
        AllgathervAlgorithm::Bruck,
        comm,
        &contrib,
        &mut gathered,
        &byte_counts,
        &byte_displs,
    )?;
    buf.copy_from_slice(&bytes_to_u64s(&gathered)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use bruck_comm::ReduceOp;

    use crate::collectives::testutil::{run_ar, SIZES};
    use crate::collectives::AllreduceAlgorithm;

    #[test]
    fn doubling_matches_reference_across_sizes() {
        for p in SIZES {
            for op in ReduceOp::ALL {
                run_ar(AllreduceAlgorithm::RecursiveDoubling, p, 17, op);
            }
        }
    }

    #[test]
    fn rs_ag_matches_reference_across_sizes() {
        for p in SIZES {
            for op in ReduceOp::ALL {
                run_ar(AllreduceAlgorithm::ReduceScatterAllgather, p, 17, op);
            }
        }
    }

    #[test]
    fn degenerate_vectors_are_legal() {
        for algo in AllreduceAlgorithm::ALL {
            // Empty vector, vector shorter than P, single element.
            run_ar(algo, 5, 0, ReduceOp::Sum);
            run_ar(algo, 5, 3, ReduceOp::Max);
            run_ar(algo, 4, 1, ReduceOp::Min);
        }
    }
}
