//! Calibrate the cost model against *this machine's* real measurements —
//! the measurement→model→prediction loop the paper's conclusion calls for.
//!
//! Measures the real threaded runtime at small P across (P, N, algorithm),
//! fits the effective α/β parameters by coordinate descent, and reports the
//! residuals.
//!
//! Run with: `cargo run --release --example calibrate`

use bruck_bench::time_alltoallv;
use bruck_core::AlltoallvAlgorithm;
use bruck_model::{calibrate, fit_error, FitSample, MachineModel, NonuniformAlgo};
use bruck_workload::{Distribution, SizeMatrix};

fn main() {
    const SEED: u64 = 7;
    let pairs = [
        (AlltoallvAlgorithm::Vendor, NonuniformAlgo::Vendor),
        (AlltoallvAlgorithm::TwoPhaseBruck, NonuniformAlgo::TwoPhaseBruck),
        (AlltoallvAlgorithm::PaddedBruck, NonuniformAlgo::PaddedBruck),
    ];

    println!("measuring real threaded all-to-alls (median of 10 iterations each)...");
    let mut samples = Vec::new();
    for p in [8usize, 16, 32] {
        for n in [32usize, 256, 2048] {
            let m = SizeMatrix::generate(Distribution::Uniform, SEED, p, n);
            for (real, model) in pairs {
                let seconds = time_alltoallv(real, &m, 10);
                samples.push(FitSample { p, n, algo: model, seconds });
            }
        }
    }
    println!("  {} samples collected", samples.len());

    // Start from the Theta preset — wildly wrong for a laptop — and fit.
    let start = MachineModel::theta_like();
    let before = fit_error(&samples, Distribution::Uniform, SEED, &start);
    let fitted = calibrate(&samples, Distribution::Uniform, SEED, &start, 30);
    let after = fit_error(&samples, Distribution::Uniform, SEED, &fitted);

    println!("\nfit quality (mean squared log error): {before:.3} → {after:.3}");
    println!("fitted machine parameters for this host:");
    println!("  alpha0     = {:>10.2} µs  (theta preset: {:.2} µs)", fitted.alpha0 * 1e6, start.alpha0 * 1e6);
    println!("  inject     = {:>10.2} µs  (theta preset: {:.2} µs)", fitted.inject * 1e6, start.inject * 1e6);
    println!("  beta       = {:>10.3} ns/B ({:.1} MB/s)", fitted.beta * 1e9, 1.0 / fitted.beta / 1e6);
    println!("  beta_pair  = {:>10.3} ns/B ({:.1} MB/s)", fitted.beta_pair * 1e9, 1.0 / fitted.beta_pair / 1e6);

    println!("\nper-sample residuals (predicted / measured):");
    for s in &samples {
        let pred = bruck_model::predict(s.algo, Distribution::Uniform, SEED, s.p, s.n, &fitted);
        println!(
            "  P={:>3} N={:>5} {:<16} measured {:>9.1} µs, predicted {:>9.1} µs ({:>5.2}x)",
            s.p,
            s.n,
            s.algo.name(),
            s.seconds * 1e6,
            pred * 1e6,
            pred / s.seconds
        );
    }
    println!("\n(use the fitted MachineModel to sweep P beyond what threads can emulate)");
}
