//! Tests for the distributed Datalog engine.

use bruck_comm::ThreadComm;
use bruck_core::AlltoallvAlgorithm;

use crate::datalog::{evaluate, AtomPat, Program, Rule, Term};
use crate::{graph1_like, graph2_like, sequential_closure, transitive_closure, Tuple};

const V: fn(u32) -> Term = Term::Var;

/// `path(x,y) :- edge(x,y). path(x,z) :- path(x,y), edge(y,z).`
fn tc_program() -> Program {
    const EDGE: usize = 0;
    const PATH: usize = 1;
    Program {
        relations: 2,
        rules: vec![
            Rule::copy_rule(AtomPat::new(PATH, V(0), V(1)), AtomPat::new(EDGE, V(0), V(1))),
            Rule::join_rule(
                AtomPat::new(PATH, V(0), V(2)),
                AtomPat::new(PATH, V(0), V(1)),
                AtomPat::new(EDGE, V(1), V(2)),
            ),
        ],
    }
}

fn eval_collect(
    p: usize,
    algo: AlltoallvAlgorithm,
    program: &Program,
    facts: &[Vec<Tuple>],
    rel: usize,
) -> (u64, Vec<Tuple>, usize) {
    let program = program.clone();
    let facts = facts.to_vec();
    let results = ThreadComm::run(p, move |comm| {
        let r = evaluate(comm, algo, &program, &facts).unwrap();
        (r.total_facts[rel], r.local[rel].iter().copied().collect::<Vec<_>>(), r.iterations)
    });
    let total = results[0].0;
    let iters = results[0].2;
    let mut all: Vec<Tuple> = results.into_iter().flat_map(|(_, local, _)| local).collect();
    all.sort_unstable();
    (total, all, iters)
}

#[test]
fn validation_catches_malformed_programs() {
    let ok = tc_program();
    assert!(ok.validate().is_ok());

    let unbound_head = Program {
        relations: 2,
        rules: vec![Rule::copy_rule(AtomPat::new(1, V(9), V(0)), AtomPat::new(0, V(0), V(1)))],
    };
    assert!(unbound_head.validate().is_err());

    let cartesian = Program {
        relations: 2,
        rules: vec![Rule::join_rule(
            AtomPat::new(1, V(0), V(2)),
            AtomPat::new(0, V(0), V(1)),
            AtomPat::new(0, V(2), V(3)),
        )],
    };
    assert!(cartesian.validate().is_err(), "no shared variable");

    let bad_rel = Program {
        relations: 1,
        rules: vec![Rule::copy_rule(AtomPat::new(5, V(0), V(1)), AtomPat::new(0, V(0), V(1)))],
    };
    assert!(bad_rel.validate().is_err());
}

#[test]
fn datalog_tc_matches_native_tc_and_sequential() {
    for edges in [
        graph1_like(2, 15, 6, 3),
        graph2_like(40, 140, 3),
        vec![(0, 1), (1, 2), (2, 0)],
        vec![(7, 7)],
    ] {
        let expect = sequential_closure(&edges);
        for p in [1usize, 3, 4, 8] {
            let (total, all, _) = eval_collect(
                p,
                AlltoallvAlgorithm::TwoPhaseBruck,
                &tc_program(),
                &[edges.clone(), Vec::new()],
                1,
            );
            assert_eq!(total, expect.len() as u64, "p={p}");
            let mut want: Vec<Tuple> = expect.iter().copied().collect();
            want.sort_unstable();
            assert_eq!(all, want, "p={p}");

            // Cross-check against the hand-written TC.
            let e2 = edges.clone();
            let native = ThreadComm::run(p, move |comm| {
                transitive_closure(comm, AlltoallvAlgorithm::Vendor, &e2).unwrap().total_paths
            });
            assert_eq!(native[0], total);
        }
    }
}

#[test]
fn copy_rules_with_constants_filter() {
    // reach_from_zero(x, y) :- edge(x, y) where x = 0:
    //   sel(0, y) :- edge(0, y).
    let program = Program {
        relations: 2,
        rules: vec![Rule::copy_rule(
            AtomPat::new(1, Term::Const(0), V(1)),
            AtomPat::new(0, Term::Const(0), V(1)),
        )],
    };
    let edges = vec![(0u64, 5u64), (0, 9), (3, 0), (2, 5)];
    let (total, all, _) = eval_collect(4, AlltoallvAlgorithm::Vendor, &program, &[edges, vec![]], 1);
    assert_eq!(total, 2);
    assert_eq!(all, vec![(0, 5), (0, 9)]);
}

#[test]
fn repeated_variable_selects_loops() {
    // loops(x, x) :- edge(x, x).
    let program = Program {
        relations: 2,
        rules: vec![Rule::copy_rule(AtomPat::new(1, V(0), V(0)), AtomPat::new(0, V(0), V(0)))],
    };
    let edges = vec![(1u64, 1u64), (2, 3), (4, 4), (3, 2)];
    let (total, all, _) = eval_collect(3, AlltoallvAlgorithm::TwoPhaseBruck, &program, &[edges, vec![]], 1);
    assert_eq!(total, 2);
    assert_eq!(all, vec![(1, 1), (4, 4)]);
}

#[test]
fn two_relation_join_ancestor_style() {
    // grandparent(x, z) :- parent(x, y), parent(y, z).  (non-recursive join)
    let program = Program {
        relations: 2,
        rules: vec![Rule::join_rule(
            AtomPat::new(1, V(0), V(2)),
            AtomPat::new(0, V(0), V(1)),
            AtomPat::new(0, V(1), V(2)),
        )],
    };
    let parent = vec![(1u64, 2u64), (2, 3), (2, 4), (5, 6)];
    let (total, all, iters) =
        eval_collect(4, AlltoallvAlgorithm::Vendor, &program, &[parent, vec![]], 1);
    assert_eq!(total, 2);
    assert_eq!(all, vec![(1, 3), (1, 4)]);
    // Non-recursive: converges after two productive rounds at most.
    assert!(iters <= 3, "iters {iters}");
}

#[test]
fn join_on_first_columns_uses_reverse_shards() {
    // siblings(y, z) :- parent(x, y), parent(x, z)  — join variable is the
    // FIRST column of both atoms, exercising the by-second shard of neither
    // but the by-first of both... and y ≠ z is not expressible, so (y, y)
    // pairs appear; we just check the expected set.
    let program = Program {
        relations: 2,
        rules: vec![Rule::join_rule(
            AtomPat::new(1, V(1), V(2)),
            AtomPat::new(0, V(0), V(1)),
            AtomPat::new(0, V(0), V(2)),
        )],
    };
    let parent = vec![(1u64, 10u64), (1, 11), (2, 20)];
    let (total, all, _) =
        eval_collect(5, AlltoallvAlgorithm::TwoPhaseBruck, &program, &[parent, vec![]], 1);
    let expect = vec![(10u64, 10u64), (10, 11), (11, 10), (11, 11), (20, 20)];
    assert_eq!(total, expect.len() as u64);
    assert_eq!(all, expect);
}

#[test]
fn per_iteration_stats_and_determinism() {
    let edges = graph1_like(2, 12, 4, 1);
    let program = tc_program();
    let run = |algo| {
        let program = program.clone();
        let edges = edges.clone();
        ThreadComm::run(4, move |comm| {
            let r = evaluate(comm, algo, &program, &[edges.clone(), Vec::new()]).unwrap();
            (r.iterations, r.total_facts.clone(), r.per_iteration.len())
        })
        .remove(0)
    };
    let a = run(AlltoallvAlgorithm::Vendor);
    let b = run(AlltoallvAlgorithm::TwoPhaseBruck);
    // Algorithm choice cannot change the fixpoint or its iteration structure.
    assert_eq!(a, b);
    assert_eq!(a.0, a.2);
}
