//! [`RetryPolicy`]: one bounded-exponential-backoff schedule for every
//! retry loop in the workspace.
//!
//! Before this module existed each retrying layer hand-rolled its own
//! backoff arithmetic ([`crate::ReliableComm`]'s ack/retry loop was the
//! canonical copy). The policy is a pure function from an attempt index to a
//! delay, so the same value can drive an ack *deadline* (stop-and-wait ARQ)
//! or a *sleep* between recovery attempts (epoch-level re-execution), and a
//! test can pin the whole schedule as data.
//!
//! Two properties matter for the deterministic backends:
//!
//! * **All sleeps go through the trait clock** ([`Communicator::sleep`]) —
//!   under [`crate::SimComm`] a backoff costs virtual time only, so a
//!   12-retry schedule replays in microseconds of wall time.
//! * **Jitter is seeded**, drawn with splitmix from `(seed, attempt)` — the
//!   same policy value produces the same schedule on every rank and every
//!   run, which keeps co-recovering ranks in lockstep and keeps chaos /
//!   simulation cells replayable.

use std::time::Duration;

use crate::chaos::splitmix;
use crate::Communicator;

/// A bounded exponential backoff schedule with optional seeded jitter.
///
/// Attempt `k` (zero-based) is assigned the deterministic delay
/// `min(base · 2^k, cap)`, stretched by up to `jitter_permille/1000` of
/// itself using a splitmix draw on `(seed, k)`. The policy is `Copy` data:
/// cloning it clones the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry (attempt 0's delay).
    pub base: Duration,
    /// Ceiling for the exponentially growing delay.
    pub cap: Duration,
    /// Retries after the initial attempt; `attempts() == max_retries + 1`.
    pub max_retries: u32,
    /// Maximum jitter as a fraction of the deterministic delay, in permille
    /// (0 = none, 250 = up to +25%).
    pub jitter_permille: u32,
    /// Seed for the jitter draws; ranks sharing a seed share a schedule.
    pub seed: u64,
}

impl RetryPolicy {
    /// A jitter-free bounded exponential schedule — exactly the shape
    /// [`crate::ReliableComm`] has always used for its ack deadlines.
    pub fn exponential(base: Duration, cap: Duration, max_retries: u32) -> RetryPolicy {
        RetryPolicy { base, cap, max_retries, jitter_permille: 0, seed: 0 }
    }

    /// Add seeded jitter of up to `permille`/1000 of each delay.
    pub fn with_jitter(mut self, permille: u32, seed: u64) -> RetryPolicy {
        self.jitter_permille = permille;
        self.seed = seed;
        self
    }

    /// Total attempts the policy allows (initial + retries).
    pub fn attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// The deterministic (jitter-free) delay for zero-based `attempt`:
    /// `min(base · 2^attempt, cap)`. Attempt 0 is always exactly `base` —
    /// the cap bounds *growth*, it does not clamp the configured starting
    /// delay (this matches the ARQ loop the policy was extracted from).
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return self.base;
        }
        let factor = if attempt >= 31 { u32::MAX } else { 1u32 << attempt };
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// The full delay for zero-based `attempt`: [`RetryPolicy::backoff`]
    /// plus the seeded jitter for that attempt.
    pub fn delay(&self, attempt: u32) -> Duration {
        let det = self.backoff(attempt);
        if self.jitter_permille == 0 {
            return det;
        }
        let draw = splitmix(self.seed ^ (u64::from(attempt) << 32) ^ 0xBAC4_0FF5_EED0_0001);
        let permille = draw % (u64::from(self.jitter_permille) + 1);
        let extra_nanos = (det.as_nanos() as u64).saturating_mul(permille) / 1000;
        det + Duration::from_nanos(extra_nanos)
    }

    /// The whole schedule as data — one delay per attempt. Regression tests
    /// pin this vector so refactors cannot silently change retry behavior.
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.attempts()).map(|k| self.delay(k)).collect()
    }

    /// Sleep for `attempt`'s delay on the communicator's trait clock —
    /// virtual time under [`crate::SimComm`], wall time elsewhere.
    pub fn sleep_before_retry<C: Communicator + ?Sized>(&self, comm: &C, attempt: u32) {
        comm.sleep(self.delay(attempt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::exponential(
            Duration::from_millis(10),
            Duration::from_millis(40),
            5,
        );
        let ms: Vec<u64> = p.schedule().iter().map(|d| d.as_millis() as u64).collect();
        assert_eq!(ms, vec![10, 20, 40, 40, 40, 40]);
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let base = RetryPolicy::exponential(
            Duration::from_millis(8),
            Duration::from_millis(64),
            7,
        );
        let a = base.with_jitter(250, 42);
        let b = base.with_jitter(250, 42);
        let c = base.with_jitter(250, 43);
        assert_eq!(a.schedule(), b.schedule(), "same seed, same schedule");
        assert_ne!(a.schedule(), c.schedule(), "different seed, different jitter");
        for (k, d) in a.schedule().iter().enumerate() {
            let det = base.delay(k as u32);
            assert!(*d >= det, "jitter never shortens a delay");
            assert!(*d <= det + det.mul_f64(0.25) + Duration::from_nanos(1));
        }
    }

    #[test]
    fn huge_attempt_indices_saturate_at_the_cap() {
        let p = RetryPolicy::exponential(
            Duration::from_millis(1),
            Duration::from_secs(2),
            200,
        );
        assert_eq!(p.delay(40), Duration::from_secs(2));
        assert_eq!(p.delay(199), Duration::from_secs(2));
    }
}
