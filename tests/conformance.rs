//! Model-vs-measured conformance suite (the `bruck-probe` headline test).
//!
//! Every algorithm × workload cell runs under [`MeteredComm`] with the
//! `bruck-core` phase recorder installed, and three measured quantities are
//! checked against closed-form predictions from `bruck-model`:
//!
//! * **Message counts** — per wire tag, *exact* ([`CommTrace::msgs_for_tag`]).
//! * **Byte volumes** — per wire tag: exact for the direct algorithms; for
//!   padded Bruck the assertion is a bounded band of one pad quantum
//!   (8 bytes, the `u64` length granularity the padding machinery rounds
//!   with) per predicted message — see DESIGN.md §10 for why the band is
//!   sized this way.
//! * **Phase counts** — the span timeline must contain *exactly* the named
//!   phases the algorithm declares, with per-step phases appearing once per
//!   step.
//!
//! A deliberately miscounted fixture (a trace with one extra predicted
//! message / inflated bytes) must make the checker report violations — the
//! negative control that proves the suite can fail.
//!
//! The checker is a pure function returning violation strings, so the
//! negative tests exercise the exact code path the positive cells assert
//! empty.

use bruck_comm::{Communicator, MeteredComm, Metrics, ThreadComm};
use bruck_core::common::ceil_log2;
use bruck_core::probe::{self, PhaseEvent};
use bruck_core::{alltoall, alltoallv, packed_displs, AlltoallAlgorithm, AlltoallvAlgorithm};
use bruck_model::{nonuniform_trace, uniform_trace, CommTrace, MatrixSource, NonuniformAlgo,
    RankSample, UniformAlgo};
use bruck_workload::{Distribution, SizeMatrix};

const SEED: u64 = 0xC04F;
const WORLD_SIZES: [usize; 2] = [8, 12];

/// How predicted vs measured bytes are compared for one cell.
#[derive(Clone, Copy)]
enum ByteRule {
    /// Measured bytes must equal the prediction.
    Exact,
    /// |measured − predicted| ≤ `quantum` × predicted messages: padding may
    /// shift volume by up to one pad quantum per message, never more.
    Quantum(u64),
}

impl ByteRule {
    fn holds(self, got: u64, want_bytes: u64, want_msgs: u64) -> bool {
        match self {
            ByteRule::Exact => got == want_bytes,
            ByteRule::Quantum(q) => got.abs_diff(want_bytes) <= q * want_msgs,
        }
    }
}

/// Compare one rank's metered counters against the model trace. Returns one
/// violation string per mismatch; empty = conformant.
fn conformance_violations(
    rank: usize,
    metrics: &Metrics,
    trace: &CommTrace,
    rule: ByteRule,
) -> Vec<String> {
    let mut v = metrics.consistency_errors();
    let mut predicted_msgs = 0u64;
    let mut predicted_bytes = 0u64;
    for tag in trace.wire_tags() {
        let Some(want_msgs) = trace.msgs_for_tag(rank, tag) else {
            v.push(format!("rank {rank}: trace does not cover rank for tag {tag:#x}"));
            continue;
        };
        let want_bytes = trace.bytes_for_tag(rank, tag).unwrap_or(0);
        predicted_msgs += want_msgs;
        predicted_bytes += want_bytes;
        let got = metrics.sent_for_tag(tag);
        if got.msgs != want_msgs {
            v.push(format!(
                "rank {rank} tag {tag:#x}: sent {} messages, model predicts {want_msgs}",
                got.msgs
            ));
        }
        if !rule.holds(got.bytes, want_bytes, want_msgs) {
            v.push(format!(
                "rank {rank} tag {tag:#x}: sent {} bytes, model predicts {want_bytes} \
                 (outside tolerance)",
                got.bytes
            ));
        }
    }
    // No logical traffic outside the predicted tags: channel totals must be
    // fully explained by the trace.
    if metrics.logical.sent_msgs != predicted_msgs {
        v.push(format!(
            "rank {rank}: {} logical messages total, model explains {predicted_msgs}",
            metrics.logical.sent_msgs
        ));
    }
    if !rule.holds(metrics.logical.sent_bytes, predicted_bytes, predicted_msgs) {
        v.push(format!(
            "rank {rank}: {} logical bytes total, model explains {predicted_bytes} \
             (outside tolerance)",
            metrics.logical.sent_bytes
        ));
    }
    v
}

/// Compare a rank's span timeline against the declared phase list: every
/// expected name must appear exactly `count` times, and nothing else at all.
fn phase_violations(rank: usize, events: &[PhaseEvent], expected: &[(&str, u64)]) -> Vec<String> {
    let mut v = Vec::new();
    for &(name, count) in expected {
        let got = events.iter().filter(|e| e.name == name).count() as u64;
        if got != count {
            v.push(format!("rank {rank}: phase '{name}' recorded {got} times, expected {count}"));
        }
    }
    let total: u64 = expected.iter().map(|&(_, c)| c).sum();
    if events.len() as u64 != total {
        let unexpected: Vec<&str> = events
            .iter()
            .map(|e| e.name)
            .filter(|n| !expected.iter().any(|&(e, _)| e == *n))
            .collect();
        v.push(format!(
            "rank {rank}: {} phase events recorded, expected {total} (unexpected: {unexpected:?})",
            events.len()
        ));
    }
    v
}

/// The three workload shapes of the conformance matrix.
fn workloads(p: usize) -> Vec<(String, SizeMatrix)> {
    // Hand-built sparse matrix: most pairs silent, a few asymmetric heavy
    // pairs. Exercises zero-byte messages and n_max >> mean.
    let sparse = SizeMatrix::from_rows(
        (0..p)
            .map(|src| {
                (0..p)
                    .map(|dst| if (src + 2 * dst) % 3 == 0 { 7 * src + dst + 1 } else { 0 })
                    .collect()
            })
            .collect(),
    );
    vec![
        ("uniform".to_string(), SizeMatrix::generate(Distribution::Uniform, SEED, p, 48)),
        (
            "power-law-0.99".to_string(),
            SizeMatrix::generate(Distribution::POWER_LAW_STEEP, SEED, p, 96),
        ),
        ("sparse".to_string(), sparse),
    ]
}

/// Run one non-uniform cell and return `(per-rank metrics, per-rank events)`.
fn run_metered_v(algo: AlltoallvAlgorithm, m: &SizeMatrix) -> Vec<(Metrics, Vec<PhaseEvent>)> {
    let p = m.p();
    ThreadComm::run(p, |comm| {
        let mc = MeteredComm::new(comm);
        let me = mc.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf: Vec<u8> = (0..sendcounts.iter().sum()).map(|i| (i * 31) as u8).collect();
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        probe::install();
        alltoallv(algo, &mc, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
            .unwrap();
        (mc.metrics(), probe::take())
    })
}

/// The expected phase timeline of a non-uniform algorithm at world size `p`.
fn expected_phases_v(algo: AlltoallvAlgorithm, p: usize) -> Vec<(&'static str, u64)> {
    let steps = u64::from(ceil_log2(p));
    match algo {
        AlltoallvAlgorithm::TwoPhaseBruck => vec![
            ("two_phase.allreduce", 1),
            ("two_phase.meta", steps),
            ("two_phase.pack", steps),
            ("two_phase.data", steps),
            ("two_phase.scatter", steps),
        ],
        AlltoallvAlgorithm::PaddedBruck => vec![
            ("padded.allreduce", 1),
            ("padded.pad", 1),
            ("padded.exchange", 1),
            ("padded.scan", 1),
            // Nested: padded's exchange phase is Zero Rotation Bruck.
            ("zero_rotation.setup", 1),
            ("zero_rotation.step", steps),
        ],
        AlltoallvAlgorithm::SpreadOut => vec![("spread_out.send", 1), ("spread_out.recv", 1)],
        // One window span per batch of 32 peers.
        AlltoallvAlgorithm::Vendor => vec![("vendor.window", (p as u64 - 1).div_ceil(32))],
        other => panic!("no phase expectation table for {other:?}"),
    }
}

/// Positive direction: run the cell, assert zero violations of any kind.
fn assert_cell_conformant(
    algo: AlltoallvAlgorithm,
    model: NonuniformAlgo,
    label: &str,
    m: &SizeMatrix,
    rule: ByteRule,
) {
    let p = m.p();
    let trace = nonuniform_trace(model, &MatrixSource(m), &RankSample::all(p));
    let expected_spans = expected_phases_v(algo, p);
    for (rank, (metrics, events)) in run_metered_v(algo, m).iter().enumerate() {
        let mut v = conformance_violations(rank, metrics, &trace, rule);
        v.extend(phase_violations(rank, events, &expected_spans));
        assert!(v.is_empty(), "{algo:?} / {label} / p={p} rank {rank}:\n{}", v.join("\n"));
    }
}

#[test]
fn two_phase_bruck_conforms_to_model() {
    for p in WORLD_SIZES {
        for (label, m) in workloads(p) {
            assert_cell_conformant(
                AlltoallvAlgorithm::TwoPhaseBruck,
                NonuniformAlgo::TwoPhaseBruck,
                &label,
                &m,
                ByteRule::Exact,
            );
        }
    }
}

#[test]
fn padded_bruck_conforms_to_model() {
    for p in WORLD_SIZES {
        for (label, m) in workloads(p) {
            assert_cell_conformant(
                AlltoallvAlgorithm::PaddedBruck,
                NonuniformAlgo::PaddedBruck,
                &label,
                &m,
                ByteRule::Quantum(8),
            );
        }
    }
}

#[test]
fn spread_out_conforms_to_model() {
    for p in WORLD_SIZES {
        for (label, m) in workloads(p) {
            assert_cell_conformant(
                AlltoallvAlgorithm::SpreadOut,
                NonuniformAlgo::SpreadOut,
                &label,
                &m,
                ByteRule::Exact,
            );
        }
    }
}

#[test]
fn vendor_conforms_to_model() {
    for p in WORLD_SIZES {
        for (label, m) in workloads(p) {
            assert_cell_conformant(
                AlltoallvAlgorithm::Vendor,
                NonuniformAlgo::Vendor,
                &label,
                &m,
                ByteRule::Exact,
            );
        }
    }
}

#[test]
fn uniform_zero_rotation_conforms_to_model() {
    // The uniform radix-2 contribution: three block sizes stand in for the
    // workload shapes (a uniform exchange has no distribution axis).
    for p in WORLD_SIZES {
        for n in [4usize, 64, 257] {
            let trace = uniform_trace(UniformAlgo::ZeroRotationBruck, p, n, &RankSample::all(p));
            let steps = u64::from(ceil_log2(p));
            let expected_spans =
                vec![("zero_rotation.setup", 1), ("zero_rotation.step", steps)];
            let results = ThreadComm::run(p, |comm| {
                let mc = MeteredComm::new(comm);
                let me = mc.rank();
                let sendbuf: Vec<u8> = (0..p * n).map(|i| (i + me) as u8).collect();
                let mut recvbuf = vec![0u8; p * n];
                probe::install();
                alltoall(AlltoallAlgorithm::ZeroRotationBruck, &mc, &sendbuf, &mut recvbuf, n)
                    .unwrap();
                (mc.metrics(), probe::take())
            });
            for (rank, (metrics, events)) in results.iter().enumerate() {
                let mut v = conformance_violations(rank, metrics, &trace, ByteRule::Exact);
                v.extend(phase_violations(rank, events, &expected_spans));
                assert!(v.is_empty(), "zero-rotation / p={p} n={n} rank {rank}:\n{}", v.join("\n"));
            }
        }
    }
}

#[test]
fn miscounted_fixture_fails_the_checker() {
    // Negative control: the same measured run, checked against a trace with
    // one extra predicted message, must produce violations on every rank.
    let p = 8;
    let m = SizeMatrix::generate(Distribution::Uniform, SEED, p, 48);
    let mut trace = nonuniform_trace(NonuniformAlgo::TwoPhaseBruck, &MatrixSource(&m), &RankSample::all(p));
    let step = trace
        .steps
        .iter_mut()
        .find(|s| matches!(s.kind, bruck_model::StepKind::Data(0)))
        .expect("two-phase trace has a Data(0) step");
    for (_, load) in &mut step.loads {
        load.seq_msgs += 1; // the deliberate miscount
        load.bytes_out += 1_000_000;
    }
    let results = run_metered_v(AlltoallvAlgorithm::TwoPhaseBruck, &m);
    for (rank, (metrics, _)) in results.iter().enumerate() {
        let v = conformance_violations(rank, metrics, &trace, ByteRule::Exact);
        assert!(
            v.iter().any(|s| s.contains("messages")) && v.iter().any(|s| s.contains("bytes")),
            "rank {rank}: miscounted fixture must fail both counts and bytes, got {v:?}"
        );
    }
    // And the quantum rule must not absorb a million-byte error either.
    for (rank, (metrics, _)) in results.iter().enumerate() {
        let v = conformance_violations(rank, metrics, &trace, ByteRule::Quantum(8));
        assert!(!v.is_empty(), "rank {rank}: tolerance must not hide gross miscounts");
    }
}

#[test]
fn misnamed_phase_fixture_fails_the_checker() {
    // Phase-count negative control: expecting a span the algorithm never
    // emits (and the wrong count for one it does) must be reported.
    let p = 8;
    let m = SizeMatrix::generate(Distribution::Uniform, SEED, p, 32);
    let results = run_metered_v(AlltoallvAlgorithm::SpreadOut, &m);
    let wrong = [("spread_out.send", 2u64), ("spread_out.warp", 1u64)];
    for (rank, (_, events)) in results.iter().enumerate() {
        let v = phase_violations(rank, events, &wrong);
        assert!(v.len() >= 2, "rank {rank}: expected both phase violations, got {v:?}");
    }
}
