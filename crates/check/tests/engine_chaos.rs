//! The engine under fault injection.
//!
//! Two angles:
//!
//! 1. The production dispatch (`alltoallv`) now routes every named variant
//!    through the configurable engine, so the existing chaos harness
//!    (FaultComm → ReliableComm → `resilient_alltoallv`) exercises the
//!    engine's snap path for free — assert a smoke cell stays clean.
//! 2. The *generalized* machinery (off-point knob combinations the legacy
//!    API could not express) composes with the ARQ layer directly: a lossy
//!    fault plan beneath `ReliableComm` must still deliver byte-correct
//!    buffers through `configurable_alltoallv_general`.

use std::time::Duration;

use bruck_check::chaos::{plan_battery, reliable_config, run_cell};
use bruck_comm::{Communicator, FaultComm, FaultPlan, ReliableComm, ThreadComm};
use bruck_core::{
    configurable_alltoallv_general, packed_displs, AlltoallvAlgorithm, EngineConfig,
};
use bruck_workload::{Distribution, SizeMatrix};

/// A chaos smoke cell through the engine-backed dispatch: the lossy plan
/// (drops + duplicates + corruption + delays) must complete lossless.
#[test]
fn chaos_smoke_cell_is_clean_through_the_engine_dispatch() {
    let p = 5;
    let seed = 0xE21;
    let lossy = plan_battery(p, seed)
        .into_iter()
        .find(|pf| pf.name == "lossy")
        .expect("plan battery always includes the lossy plan");
    let report = run_cell(
        AlltoallvAlgorithm::TwoPhaseBruck,
        p,
        16,
        &lossy,
        seed,
        Duration::from_secs(30),
    );
    assert!(
        report.violation.is_none(),
        "{}: {}",
        report.label,
        report.violation.unwrap()
    );
}

/// Off-point engine configs under a lossy link, repaired by the ARQ layer:
/// the generalized machinery must be oblivious to retransmissions.
#[test]
fn general_engine_survives_a_lossy_link_under_the_arq_layer() {
    let p = 5;
    let m = SizeMatrix::generate(Distribution::Normal, 0xFA17, p, 24);
    let configs = [
        EngineConfig { radix: 3, ..EngineConfig::as_two_phase() },
        EngineConfig { radix: 4, ..EngineConfig::as_sloav() },
        EngineConfig { throttle_window: Some(2), ..EngineConfig::as_spread_out() },
    ];
    for cfg in configs {
        let m2 = m.clone();
        let results = ThreadComm::run(p, move |comm| {
            let plan = FaultPlan::new(0xD0_0D).with_drop(0.06).with_duplicate(0.06);
            let fc = FaultComm::new(comm, plan);
            let rc = ReliableComm::with_config(&fc, reliable_config());
            let me = rc.rank();
            let sendcounts = m2.sendcounts(me);
            let sdispls = packed_displs(&sendcounts);
            let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
            for dst in 0..p {
                for idx in 0..sendcounts[dst] {
                    sendbuf[sdispls[dst] + idx] =
                        (me.wrapping_mul(167) ^ dst.wrapping_mul(59) ^ idx.wrapping_mul(13)) as u8;
                }
            }
            let recvcounts = m2.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            configurable_alltoallv_general(
                &rc, &cfg, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap_or_else(|e| panic!("rank {me}: engine {} under faults: {e}", cfg.key()));
            let _ = rc.quiesce(Duration::from_millis(150), Duration::from_secs(2));
            (recvbuf, rdispls)
        });
        for (me, (recvbuf, rdispls)) in results.iter().enumerate() {
            for src in 0..p {
                for idx in 0..m.get(src, me) {
                    assert_eq!(
                        recvbuf[rdispls[src] + idx],
                        (src.wrapping_mul(167) ^ me.wrapping_mul(59) ^ idx.wrapping_mul(13)) as u8,
                        "{}: rank {me} block from {src} byte {idx}",
                        cfg.key()
                    );
                }
            }
        }
    }
}
