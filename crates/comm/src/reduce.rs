//! Reduction operators for the scalar and vector collectives.

/// Associative, commutative reduction over `u64`, covering everything the
/// all-to-all algorithms need (`MPI_MAX` for the global maximum block size,
/// `MPI_SUM`/`MPI_MIN` for harness statistics) plus the element-wise vector
/// form the wider collective family (reduce_scatter / allreduce) reduces
/// with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise maximum (`MPI_MAX`).
    Max,
    /// Element-wise minimum (`MPI_MIN`).
    Min,
    /// Wrapping sum (`MPI_SUM`; wrapping so adversarial proptest inputs
    /// cannot abort a collective mid-flight).
    Sum,
}

impl ReduceOp {
    /// Every operator, for property sweeps.
    pub const ALL: [ReduceOp; 3] = [ReduceOp::Max, ReduceOp::Min, ReduceOp::Sum];

    /// Combine two values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Sum => a.wrapping_add(b),
        }
    }

    /// The identity element of the operator.
    #[inline]
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Max => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Sum => 0,
        }
    }

    /// Element-wise `acc[i] = op(acc[i], other[i])` over equal-length slices.
    ///
    /// This is the one reduction loop in the workspace: reduce_scatter and
    /// allreduce fold partial vectors through it instead of hand-rolling,
    /// so the operator semantics (wrapping sum, in particular) cannot drift
    /// between call sites.
    ///
    /// # Panics
    /// If the slices differ in length — a protocol bug, not an input error:
    /// every caller derives both lengths from the same counts array.
    #[inline]
    pub fn apply_slice(self, acc: &mut [u64], other: &[u64]) {
        assert_eq!(acc.len(), other.len(), "reduce over mismatched vector lengths");
        for (a, &b) in acc.iter_mut().zip(other) {
            *a = self.apply(*a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Splitmix-style value stream for the property sweeps.
    fn values(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn apply_matches_semantics() {
        assert_eq!(ReduceOp::Max.apply(3, 9), 9);
        assert_eq!(ReduceOp::Min.apply(3, 9), 3);
        assert_eq!(ReduceOp::Sum.apply(3, 9), 12);
        assert_eq!(ReduceOp::Sum.apply(u64::MAX, 1), 0);
    }

    #[test]
    fn identity_is_neutral() {
        for op in ReduceOp::ALL {
            for v in [0u64, 1, 17, u64::MAX] {
                assert_eq!(op.apply(op.identity(), v), v);
                assert_eq!(op.apply(v, op.identity()), v);
            }
        }
    }

    #[test]
    fn operators_are_associative_and_commutative() {
        // Seeded triples, including the wrap-around edge values: the
        // collectives' correctness under arbitrary reduction orders (ring vs
        // tree vs pairwise) stands on exactly these two laws.
        let vals = {
            let mut v = values(0xA11CE, 64);
            v.extend([0, 1, u64::MAX, u64::MAX - 1, 1 << 63]);
            v
        };
        for op in ReduceOp::ALL {
            for (i, &a) in vals.iter().enumerate() {
                for &b in &vals[i..] {
                    assert_eq!(op.apply(a, b), op.apply(b, a), "{op:?} commutativity");
                    for &c in vals.iter().step_by(7) {
                        assert_eq!(
                            op.apply(op.apply(a, b), c),
                            op.apply(a, op.apply(b, c)),
                            "{op:?} associativity"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn apply_slice_is_elementwise_apply() {
        for op in ReduceOp::ALL {
            let mut acc = values(1, 33);
            let other = values(2, 33);
            let want: Vec<u64> =
                acc.iter().zip(&other).map(|(&a, &b)| op.apply(a, b)).collect();
            op.apply_slice(&mut acc, &other);
            assert_eq!(acc, want, "{op:?}");
        }
        // Empty vectors are a no-op, not an error (zero-sized segments are
        // legal collective inputs).
        ReduceOp::Sum.apply_slice(&mut [], &[]);
    }

    #[test]
    #[should_panic(expected = "mismatched vector lengths")]
    fn apply_slice_rejects_length_mismatch() {
        ReduceOp::Sum.apply_slice(&mut [1, 2], &[3]);
    }
}
