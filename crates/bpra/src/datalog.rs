//! A distributed Datalog engine over iterated non-uniform all-to-all.
//!
//! The BPRA line of work ([13, 17, 27, 28] in the paper) evaluates Datalog
//! programs by semi-naive fixpoint: each iteration joins the latest deltas
//! against full relations locally, then redistributes the newly derived
//! facts with one `MPI_Alltoallv` per iteration. This module is that engine,
//! generalized from the hand-written transitive closure in `crate::tc`:
//!
//! * Relations are sets of binary tuples, sharded **twice** — by first column
//!   and by second column — so any binary join is local to the owner of the
//!   join value.
//! * Rules have one or two body atoms over binary relations, with variables,
//!   constants, and repeated-variable filters.
//! * Each fixpoint iteration performs exactly one tuple exchange (with the
//!   pluggable all-to-all algorithm), mirroring the paper's §5 applications.
//!
//! ```text
//! path(x, y) :- edge(x, y).
//! path(x, z) :- path(x, y), edge(y, z).
//! ```

use std::collections::HashMap;

use bruck_comm::{CommResult, Communicator, ReduceOp};
use bruck_core::AlltoallvAlgorithm;

use crate::{exchange_tuples, owner, ExchangeStats, Relation, Tuple};

/// A relation name (interned by the caller; small dense ids).
pub type RelId = usize;

/// A term in an atom: a variable (scoped to one rule) or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// Rule-scoped variable id.
    Var(u32),
    /// Constant value.
    Const(u64),
}

/// A binary atom `rel(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomPat {
    /// Relation id.
    pub rel: RelId,
    /// First argument.
    pub a: Term,
    /// Second argument.
    pub b: Term,
}

impl AtomPat {
    /// Convenience constructor.
    pub fn new(rel: RelId, a: Term, b: Term) -> Self {
        AtomPat { rel, a, b }
    }
}

/// A Horn rule with one or two body atoms.
///
/// For two-atom rules the engine joins on the variables shared between the
/// atoms; at least one shared variable must exist and the join is executed at
/// the owner of the *first* shared variable's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Derived atom; its variables must appear in the body.
    pub head: AtomPat,
    /// One or two body atoms.
    pub body: Vec<AtomPat>,
}

impl Rule {
    /// `head :- body0.`
    pub fn copy_rule(head: AtomPat, body0: AtomPat) -> Self {
        Rule { head, body: vec![body0] }
    }

    /// `head :- body0, body1.`
    pub fn join_rule(head: AtomPat, body0: AtomPat, body1: AtomPat) -> Self {
        Rule { head, body: vec![body0, body1] }
    }
}

/// A Datalog program: rules plus the number of relations they mention.
#[derive(Debug, Clone)]
pub struct Program {
    /// Number of relations (ids are `0..relations`).
    pub relations: usize,
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Validate rule shapes (arity, head variables bound in body).
    pub fn validate(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.body.is_empty() || rule.body.len() > 2 {
                return Err(format!("rule {i}: body must have 1 or 2 atoms"));
            }
            let mut bound = Vec::new();
            for atom in &rule.body {
                if atom.rel >= self.relations {
                    return Err(format!("rule {i}: unknown body relation {}", atom.rel));
                }
                for t in [atom.a, atom.b] {
                    if let Term::Var(v) = t {
                        bound.push(v);
                    }
                }
            }
            if rule.head.rel >= self.relations {
                return Err(format!("rule {i}: unknown head relation {}", rule.head.rel));
            }
            for t in [rule.head.a, rule.head.b] {
                if let Term::Var(v) = t {
                    if !bound.contains(&v) {
                        return Err(format!("rule {i}: head variable {v} not bound in body"));
                    }
                }
            }
            if rule.body.len() == 2 && shared_vars(&rule.body[0], &rule.body[1]).is_empty() {
                return Err(format!("rule {i}: two-atom rule with no shared variable"));
            }
        }
        Ok(())
    }
}

fn vars_of(atom: &AtomPat) -> Vec<u32> {
    let mut vs = Vec::new();
    for t in [atom.a, atom.b] {
        if let Term::Var(v) = t {
            if !vs.contains(&v) {
                vs.push(v);
            }
        }
    }
    vs
}

fn shared_vars(a: &AtomPat, b: &AtomPat) -> Vec<u32> {
    vars_of(a).into_iter().filter(|v| vars_of(b).contains(v)).collect()
}

/// Variable bindings for one rule instantiation.
type Bindings = HashMap<u32, u64>;

/// Try to match `(x, y)` against `atom`, extending `env`.
fn match_atom(atom: &AtomPat, t: Tuple, env: &Bindings) -> Option<Bindings> {
    let mut env = env.clone();
    for (term, val) in [(atom.a, t.0), (atom.b, t.1)] {
        match term {
            Term::Const(c) => {
                if c != val {
                    return None;
                }
            }
            Term::Var(v) => match env.get(&v) {
                Some(&bound) if bound != val => return None,
                Some(_) => {}
                None => {
                    env.insert(v, val);
                }
            },
        }
    }
    Some(env)
}

fn instantiate(term: Term, env: &Bindings) -> u64 {
    match term {
        Term::Const(c) => c,
        Term::Var(v) => *env.get(&v).expect("validated: head variable bound"),
    }
}

/// One relation's two local shards.
#[derive(Debug, Default, Clone)]
struct ShardedRelation {
    /// Tuples `(x, y)` with `owner(x) == me`.
    by_first: Relation,
    /// Tuples stored reversed — `(y, x)` with `owner(y) == me` — so the
    /// second column is indexable.
    by_second: Relation,
}

/// Per-iteration instrumentation of a Datalog run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DatalogIteration {
    /// Globally new facts this iteration.
    pub new_facts: u64,
    /// The iteration's exchange stats.
    pub exchange: ExchangeStats,
}

/// Result of a distributed Datalog evaluation (per rank).
#[derive(Debug)]
pub struct DatalogResult {
    /// Fixpoint iterations executed.
    pub iterations: usize,
    /// Global fact count per relation at fixpoint.
    pub total_facts: Vec<u64>,
    /// This rank's first-column shard of every relation.
    pub local: Vec<Relation>,
    /// Per-iteration instrumentation.
    pub per_iteration: Vec<DatalogIteration>,
}

/// Facts routed during an exchange: `(relation, tuple, reversed?)` packed
/// into the two u64s of a wire tuple. We tag the relation and orientation in
/// the low bits of a header tuple — instead, we simply run one exchange per
/// (relation, orientation) pair batched together by encoding the relation id
/// and orientation into the tuple stream: each outbox interleaves
/// `(header, tuple)` pairs where `header = rel * 2 + reversed`.
fn push_fact(outbox: &mut Vec<Tuple>, rel: RelId, t: Tuple, reversed: bool) {
    outbox.push(((rel * 2 + usize::from(reversed)) as u64, 0));
    outbox.push(t);
}

/// Evaluate `program` over the given per-relation initial facts (every rank
/// passes the same full fact lists; sharding is internal). Returns per-rank
/// results; `local[rel]` holds the rank's first-column shard.
pub fn evaluate<C: Communicator + ?Sized>(
    comm: &C,
    algo: AlltoallvAlgorithm,
    program: &Program,
    facts: &[Vec<Tuple>],
) -> CommResult<DatalogResult> {
    program.validate().expect("invalid program");
    assert_eq!(facts.len(), program.relations, "one fact list per relation");
    let p = comm.size();
    let me = comm.rank();

    let mut rels: Vec<ShardedRelation> = vec![ShardedRelation::default(); program.relations];
    // delta[rel]: new tuples in canonical orientation, present on the rank
    // that owns them by *first* column (sufficient: the engine re-ships
    // reversed copies internally).
    let mut delta_fwd: Vec<Vec<Tuple>> = vec![Vec::new(); program.relations];
    let mut delta_rev: Vec<Vec<Tuple>> = vec![Vec::new(); program.relations];
    for (rel, fact_list) in facts.iter().enumerate() {
        for &t in fact_list {
            if owner(t.0, p) == me && rels[rel].by_first.insert(t) {
                delta_fwd[rel].push(t);
            }
            if owner(t.1, p) == me && rels[rel].by_second.insert((t.1, t.0)) {
                delta_rev[rel].push(t);
            }
        }
    }

    let mut per_iteration = Vec::new();
    loop {
        // Derive new facts from the deltas.
        let mut outboxes: Vec<Vec<Tuple>> = vec![Vec::new(); p];
        let emit = |env: &Bindings, head: &AtomPat, outboxes: &mut Vec<Vec<Tuple>>| {
            let x = instantiate(head.a, env);
            let y = instantiate(head.b, env);
            push_fact(&mut outboxes[owner(x, p)], head.rel, (x, y), false);
            push_fact(&mut outboxes[owner(y, p)], head.rel, (x, y), true);
        };
        for rule in &program.rules {
            match rule.body.as_slice() {
                [atom] => {
                    // ΔR matched directly (first-column shard is canonical).
                    for &t in &delta_fwd[atom.rel] {
                        if let Some(env) = match_atom(atom, t, &Bindings::new()) {
                            emit(&env, &rule.head, &mut outboxes);
                        }
                    }
                }
                [a0, a1] => {
                    let join_var = shared_vars(a0, a1)[0];
                    // Semi-naive: Δa0 ⋈ full(a1) and full(a0) ⋈ Δa1.
                    join_delta_full(
                        a0, a1, join_var, &delta_for(a0, join_var, &delta_fwd, &delta_rev),
                        &rels, p, me, &mut |env| emit(&env, &rule.head, &mut outboxes),
                    );
                    join_delta_full(
                        a1, a0, join_var, &delta_for(a1, join_var, &delta_fwd, &delta_rev),
                        &rels, p, me, &mut |env| emit(&env, &rule.head, &mut outboxes),
                    );
                }
                _ => unreachable!("validated"),
            }
        }

        // One all-to-all ships every derived fact (both orientations).
        let (received, exchange) = exchange_tuples(comm, algo, &outboxes)?;

        // Deduplicate into the shards; new tuples feed the next deltas.
        for d in &mut delta_fwd {
            d.clear();
        }
        for d in &mut delta_rev {
            d.clear();
        }
        let mut new_local = 0u64;
        let mut pending = received.chunks_exact(2);
        for pair in &mut pending {
            let (header, t) = (pair[0], pair[1]);
            let rel = (header.0 / 2) as usize;
            let reversed = header.0 % 2 == 1;
            if reversed {
                if rels[rel].by_second.insert((t.1, t.0)) {
                    delta_rev[rel].push(t);
                }
            } else if rels[rel].by_first.insert(t) {
                delta_fwd[rel].push(t);
                new_local += 1;
            }
        }

        // Count each new fact once globally via its first-column insert (a
        // fact's fwd and rev copies are always emitted together, so the rev
        // shards quiesce exactly when the fwd shards do).
        let new_facts = comm.allreduce_u64(new_local, ReduceOp::Sum)?;
        per_iteration.push(DatalogIteration { new_facts, exchange });
        if new_facts == 0 {
            break;
        }
    }

    let mut total_facts = Vec::with_capacity(program.relations);
    for rel in &rels {
        total_facts.push(comm.allreduce_u64(rel.by_first.len() as u64, ReduceOp::Sum)?);
    }
    Ok(DatalogResult {
        iterations: per_iteration.len(),
        total_facts,
        local: rels.into_iter().map(|r| r.by_first).collect(),
        per_iteration,
    })
}

/// The delta tuples of `atom` oriented so the join variable is the probe key,
/// drawn from whichever shard owns that orientation.
fn delta_for(
    atom: &AtomPat,
    join_var: u32,
    delta_fwd: &[Vec<Tuple>],
    delta_rev: &[Vec<Tuple>],
) -> Vec<Tuple> {
    if atom.a == Term::Var(join_var) {
        // Join value is the first column: the by-first delta is local.
        delta_fwd[atom.rel].clone()
    } else {
        delta_rev[atom.rel].clone()
    }
}

/// Join `delta` tuples of `probe_atom` against the full local shard of
/// `other_atom` on `join_var`, calling `emit` per derived binding set.
#[allow(clippy::too_many_arguments)]
fn join_delta_full(
    probe_atom: &AtomPat,
    other_atom: &AtomPat,
    join_var: u32,
    delta: &[Tuple],
    rels: &[ShardedRelation],
    p: usize,
    me: usize,
    emit: &mut impl FnMut(Bindings),
) {
    let join_term = Term::Var(join_var);
    for &t in delta {
        let Some(env) = match_atom(probe_atom, t, &Bindings::new()) else { continue };
        let key = *env.get(&join_var).expect("join var bound by probe atom");
        debug_assert_eq!(owner(key, p), me, "delta must be sharded by the join value");
        // Scan the other atom's matches for the join value, from the shard
        // indexed by whichever column carries the join variable.
        if other_atom.a == join_term {
            for &second in rels[other_atom.rel].by_first.matches(key) {
                if let Some(env2) = match_atom(other_atom, (key, second), &env) {
                    emit(env2);
                }
            }
        } else {
            for &first in rels[other_atom.rel].by_second.matches(key) {
                if let Some(env2) = match_atom(other_atom, (first, key), &env) {
                    emit(env2);
                }
            }
        }
    }
}
