//! # bruck-datatype — derived-datatype layouts
//!
//! The `-dt` Bruck variants in the paper (`BasicBruck-dt`, `ModifiedBruck-dt`,
//! `ZeroCopyBruck-dt`) describe the non-contiguous set of data blocks moved at
//! each communication step with *MPI-derived datatypes*
//! (`MPI_Type_create_struct` over byte blocks) instead of packing them by hand
//! with `memcpy`. This crate is the freestanding equivalent: an
//! [`IndexedBlocks`] layout is an ordered list of `(displacement, length)`
//! byte blocks over some buffer, with explicit [`IndexedBlocks::pack_into`] /
//! [`IndexedBlocks::unpack_from`] operations.
//!
//! The paper's measurement (its Figure 2) is that datatype-driven transfers
//! *lose* to explicit `memcpy` management for sub-250-byte blocks, because of
//! the pack/unpack engine's bookkeeping. To let the benchmarks reproduce that
//! effect honestly, the pack/unpack routines here intentionally mirror a
//! general datatype engine: they walk a block-descriptor tape per transfer
//! rather than special-casing what a hand-written `memcpy` loop would fuse.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod combinators;
mod layout;

pub use layout::{DatatypeError, IndexedBlocks};
