//! Error types for the message-passing runtime.

use std::fmt;

/// Errors raised by communicator operations.
///
/// The runtime follows MPI's philosophy that communication errors are
/// programming errors: well-formed SPMD programs never see these at runtime.
/// They are surfaced as `Result`s (rather than panics) so that library users
/// can still observe and report misuse cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank argument was outside `0..size`.
    InvalidRank {
        /// The offending rank value.
        rank: usize,
        /// The communicator size it was checked against.
        size: usize,
    },
    /// A receive was posted with a buffer smaller than the matched message.
    ///
    /// MPI calls this a truncation error (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes in the matched incoming message.
        message_len: usize,
        /// Capacity of the posted receive buffer.
        buffer_len: usize,
    },
    /// Mismatched argument lengths (e.g. a counts slice not of length `size`).
    BadArgument(&'static str),
    /// A receive could not be matched *yet*.
    ///
    /// Never returned by the threaded backend (whose receives block). It is
    /// the suspension signal of schedule-extraction executors (`bruck-check`'s
    /// `ModelComm`), which run every rank on one thread and unwind a rank's
    /// execution through `?` when it would block, so the scheduler can run
    /// another rank and replay this one later. Algorithm code must simply
    /// propagate it like any other error.
    WouldBlock {
        /// Source rank the unmatched receive was posted for.
        src: usize,
        /// Tag the unmatched receive was posted for.
        tag: crate::Tag,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CommError::Truncated { message_len, buffer_len } => write!(
                f,
                "message of {message_len} bytes truncated by {buffer_len}-byte receive buffer"
            ),
            CommError::BadArgument(what) => write!(f, "bad argument: {what}"),
            CommError::WouldBlock { src, tag } => {
                write!(f, "receive from rank {src} tag {tag} has no matching message yet")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Convenience alias used across the runtime.
pub type CommResult<T> = Result<T, CommError>;
