//! Error types for the message-passing runtime.

use std::fmt;
use std::time::Duration;

/// Errors raised by communicator operations.
///
/// The runtime distinguishes two families. *Programming errors*
/// ([`CommError::InvalidRank`], [`CommError::Truncated`],
/// [`CommError::BadArgument`]) follow MPI's philosophy: well-formed SPMD
/// programs never see them. *Runtime faults* ([`CommError::Timeout`],
/// [`CommError::RankFailed`]) are different — they are expected outcomes on a
/// lossy or partially-failed system, raised by the deadline-aware receives and
/// by [`crate::ReliableComm`]'s bounded retry, and the resilient drivers in
/// `bruck-core` branch on them to degrade gracefully instead of hanging.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so future fault variants are not a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommError {
    /// A rank argument was outside `0..size`.
    InvalidRank {
        /// The offending rank value.
        rank: usize,
        /// The communicator size it was checked against.
        size: usize,
    },
    /// A receive was posted with a buffer smaller than the matched message.
    ///
    /// MPI calls this a truncation error (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes in the matched incoming message.
        message_len: usize,
        /// Capacity of the posted receive buffer.
        buffer_len: usize,
    },
    /// Mismatched argument lengths (e.g. a counts slice not of length `size`).
    BadArgument(&'static str),
    /// A receive could not be matched *yet*.
    ///
    /// Never returned by the threaded backend (whose receives block). It is
    /// the suspension signal of schedule-extraction executors (`bruck-check`'s
    /// `ModelComm`), which run every rank on one thread and unwind a rank's
    /// execution through `?` when it would block, so the scheduler can run
    /// another rank and replay this one later. Algorithm code must simply
    /// propagate it like any other error.
    WouldBlock {
        /// Source rank the unmatched receive was posted for.
        src: usize,
        /// Tag the unmatched receive was posted for.
        tag: crate::Tag,
    },
    /// A deadline-aware receive found no matching message in time.
    ///
    /// Raised by [`crate::Communicator::recv_buf_timeout`] and friends. On a
    /// healthy system this means the deadline was too tight; under fault
    /// injection it is how a stalled or crashed peer is *detected*.
    Timeout {
        /// Source rank the receive was posted for.
        src: usize,
        /// Tag the receive was posted for.
        tag: crate::Tag,
        /// How long the receive actually waited before giving up.
        waited: Duration,
    },
    /// A peer rank is considered failed: either this rank was scripted to
    /// crash (every subsequent operation on it returns this), or
    /// [`crate::ReliableComm`] exhausted its retransmission budget without an
    /// acknowledgement from `rank`.
    RankFailed {
        /// The rank that failed (may be this rank itself on a crashed rank).
        rank: usize,
    },
    /// The deterministic simulator proved a deadlock: every live rank is
    /// blocked and none of the pending waits carries a timeout, so no
    /// schedule can make progress. Raised by [`crate::SimComm`] from each
    /// blocked receive; never returned by the real-thread backend (which
    /// would simply hang).
    Deadlock {
        /// Source rank this rank was blocked waiting on when the deadlock
        /// was detected.
        src: usize,
        /// Tag this rank was blocked waiting on.
        tag: crate::Tag,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CommError::Truncated { message_len, buffer_len } => write!(
                f,
                "message of {message_len} bytes truncated by {buffer_len}-byte receive buffer"
            ),
            CommError::BadArgument(what) => write!(f, "bad argument: {what}"),
            CommError::WouldBlock { src, tag } => {
                write!(f, "receive from rank {src} tag {tag} has no matching message yet")
            }
            CommError::Timeout { src, tag, waited } => write!(
                f,
                "receive from rank {src} tag {tag} timed out after {waited:?} \
                 (peer slow, stalled, or failed)"
            ),
            CommError::RankFailed { rank } => write!(
                f,
                "rank {rank} failed: crashed, or unacknowledged after bounded retransmission"
            ),
            CommError::Deadlock { src, tag } => write!(
                f,
                "deadlock: every rank is blocked with no timeout pending; \
                 this rank was waiting on rank {src} tag {tag}"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Convenience alias used across the runtime.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_variant_display_is_actionable() {
        let t = CommError::Timeout { src: 3, tag: 7, waited: Duration::from_millis(250) };
        let msg = t.to_string();
        assert!(msg.contains("rank 3") && msg.contains("tag 7") && msg.contains("250ms"), "{msg}");
        let r = CommError::RankFailed { rank: 5 };
        assert!(r.to_string().contains("rank 5"));
    }
}
