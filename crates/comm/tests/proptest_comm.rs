//! Property tests for the message-passing runtime: ordering, matching, and
//! collective correctness over randomized inputs.

use bruck_comm::{Communicator, ReduceOp, ThreadComm, VectorCollectives};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-(source, tag) FIFO holds for arbitrary interleavings of tags.
    #[test]
    fn fifo_per_tag_under_random_schedules(
        tags in prop::collection::vec(0u32..4, 1..60),
        seed in any::<u64>(),
    ) {
        let tags2 = tags.clone();
        ThreadComm::run(2, move |comm| {
            if comm.rank() == 0 {
                // Send sequence numbers per tag, in program order.
                let mut seq = [0u8; 4];
                for &t in &tags {
                    comm.send(1, t, &[seq[t as usize]]).unwrap();
                    seq[t as usize] += 1;
                }
            } else {
                // Receive in a *different* order (tag-major, seeded offset):
                // within each tag the sequence must still be FIFO.
                let mut order: Vec<u32> = (0..4).collect();
                order.rotate_left((seed % 4) as usize);
                for t in order {
                    let count = tags2.iter().filter(|&&x| x == t).count();
                    for expect in 0..count {
                        let got = comm.recv(0, t).unwrap();
                        assert_eq!(got, vec![expect as u8], "tag {t}");
                    }
                }
            }
        });
    }

    /// allreduce agrees with a sequential fold for random values and sizes.
    #[test]
    fn allreduce_matches_sequential_fold(
        p in 1usize..10,
        values in prop::collection::vec(any::<u64>(), 10),
    ) {
        let vals = values[..p].to_vec();
        for op in [ReduceOp::Max, ReduceOp::Min, ReduceOp::Sum] {
            let expect = vals.iter().skip(1).fold(vals[0], |a, &b| op.apply(a, b));
            let vals2 = vals.clone();
            let out = ThreadComm::run(p, move |comm| {
                comm.allreduce_u64(vals2[comm.rank()], op).unwrap()
            });
            prop_assert!(out.iter().all(|&v| v == expect), "{op:?}");
        }
    }

    /// allgatherv returns every rank's exact payload, any lengths.
    #[test]
    fn allgatherv_roundtrips_random_payloads(
        p in 1usize..8,
        lens in prop::collection::vec(0usize..40, 8),
    ) {
        let lens = lens[..p].to_vec();
        let lens2 = lens.clone();
        let out = ThreadComm::run(p, move |comm| {
            let me = comm.rank();
            let mine: Vec<u8> = (0..lens2[me]).map(|i| (me * 91 + i) as u8).collect();
            comm.allgatherv_bytes(&mine).unwrap()
        });
        for got in out {
            for (src, payload) in got.iter().enumerate() {
                let expect: Vec<u8> = (0..lens[src]).map(|i| (src * 91 + i) as u8).collect();
                prop_assert_eq!(payload, &expect);
            }
        }
    }

    /// The counts handshake is an exact transpose for arbitrary matrices.
    #[test]
    fn alltoall_counts_transposes(
        p in 1usize..8,
        flat in prop::collection::vec(0usize..10_000, 64),
    ) {
        let matrix: Vec<Vec<usize>> =
            (0..p).map(|s| (0..p).map(|d| flat[s * 8 + d]).collect()).collect();
        let m2 = matrix.clone();
        let out = ThreadComm::run(p, move |comm| {
            comm.alltoall_counts(&m2[comm.rank()]).unwrap()
        });
        for (me, got) in out.iter().enumerate() {
            for (src, &c) in got.iter().enumerate() {
                prop_assert_eq!(c, matrix[src][me]);
            }
        }
    }
}
