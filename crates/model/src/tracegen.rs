//! Trace generators: byte-exact per-step traffic for every algorithm in
//! `bruck-core`, computed from block-size sources without moving payloads.
//!
//! The generators replicate each algorithm's *routing*. For the Bruck family
//! the key fact is store-and-forward identity: the block with relative index
//! `i` hops at exactly the set bits of `i`, so just before step `k` the block
//! at relative index `i` of rank `q` is the original `(s, d)` block with
//! `s = q ± (i & (2^k − 1))` and `d = s ∓ i` (sign by schedule direction).
//! Summing `size(s, d)` over the step's indices gives the exact bytes on the
//! wire — which integration tests verify against `CountingComm` logs of the
//! real implementations.

use crate::source::SizeSource;
use crate::trace::{CommTrace, RankLoad, Step, StepKind};

/// Uniform algorithms (paper §2 / Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UniformAlgo {
    /// Rotation + log(P) steps + rotation, explicit packing.
    BasicBruck,
    /// Basic Bruck via the datatype engine.
    BasicBruckDt,
    /// No final rotation, explicit packing.
    ModifiedBruck,
    /// Modified Bruck via the datatype engine.
    ModifiedBruckDt,
    /// Alternating-buffer datatype variant.
    ZeroCopyBruckDt,
    /// Neither rotation (the paper's synthesis).
    ZeroRotationBruck,
    /// Linear non-blocking baseline.
    SpreadOut,
}

impl UniformAlgo {
    /// All uniform algorithms in Figure 2 order (plus the baseline).
    pub const ALL: [UniformAlgo; 7] = [
        UniformAlgo::BasicBruck,
        UniformAlgo::BasicBruckDt,
        UniformAlgo::ModifiedBruck,
        UniformAlgo::ModifiedBruckDt,
        UniformAlgo::ZeroCopyBruckDt,
        UniformAlgo::ZeroRotationBruck,
        UniformAlgo::SpreadOut,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            UniformAlgo::BasicBruck => "BasicBruck",
            UniformAlgo::BasicBruckDt => "BasicBruck-dt",
            UniformAlgo::ModifiedBruck => "ModifiedBruck",
            UniformAlgo::ModifiedBruckDt => "ModifiedBruck-dt",
            UniformAlgo::ZeroCopyBruckDt => "ZeroCopyBruck-dt",
            UniformAlgo::ZeroRotationBruck => "ZeroRotationBruck",
            UniformAlgo::SpreadOut => "SpreadOut",
        }
    }
}

/// Non-uniform algorithms (paper §3–4 / Figures 6–13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonuniformAlgo {
    /// All-pairs non-blocking, unthrottled.
    SpreadOut,
    /// Throttled all-pairs: the vendor `MPI_Alltoallv` stand-in.
    Vendor,
    /// Pad → uniform Bruck → scan.
    PaddedBruck,
    /// Pad → vendor uniform all-to-all → scan.
    PaddedAlltoall,
    /// Coupled metadata/data Bruck over a monolithic working buffer.
    TwoPhaseBruck,
    /// SLOAV prior art (combined buffers, pointer array, final scan).
    Sloav,
    /// Leader-based hierarchical exchange (related work, §6), groups of 8.
    Hierarchical,
    /// Ranka et al.'s balanced two-stage decomposition (related work, §6).
    RankaTwoStage,
}

impl NonuniformAlgo {
    /// All non-uniform algorithms.
    pub const ALL: [NonuniformAlgo; 8] = [
        NonuniformAlgo::SpreadOut,
        NonuniformAlgo::Vendor,
        NonuniformAlgo::PaddedBruck,
        NonuniformAlgo::PaddedAlltoall,
        NonuniformAlgo::TwoPhaseBruck,
        NonuniformAlgo::Sloav,
        NonuniformAlgo::Hierarchical,
        NonuniformAlgo::RankaTwoStage,
    ];

    /// The group size [`NonuniformAlgo::Hierarchical`] uses (mirrors
    /// `bruck_core::DEFAULT_GROUP_SIZE`).
    pub const HIER_GROUP: usize = 8;

    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            NonuniformAlgo::SpreadOut => "Spread-out",
            NonuniformAlgo::Vendor => "MPI_Alltoallv",
            NonuniformAlgo::PaddedBruck => "Padded Bruck",
            NonuniformAlgo::PaddedAlltoall => "PaddedAlltoall",
            NonuniformAlgo::TwoPhaseBruck => "Two-phase Bruck",
            NonuniformAlgo::Sloav => "SLOAV",
            NonuniformAlgo::Hierarchical => "Hierarchical",
            NonuniformAlgo::RankaTwoStage => "Ranka two-stage",
        }
    }
}

/// Which ranks a trace covers. Exact per-rank loads are computed for each
/// covered rank; step time is the max over them. For i.i.d. workloads a
/// 64-rank deterministic sample estimates the true max closely at a tiny
/// fraction of the cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankSample {
    ranks: Vec<usize>,
}

impl RankSample {
    /// Threshold below which `auto` covers every rank.
    pub const FULL_THRESHOLD: usize = 256;
    /// Sample size above the threshold.
    pub const SAMPLE: usize = 64;

    /// Cover every rank.
    pub fn all(p: usize) -> Self {
        RankSample { ranks: (0..p).collect() }
    }

    /// Every rank for small `p`, else [`RankSample::SAMPLE`] evenly spaced
    /// ranks (deterministic).
    pub fn auto(p: usize) -> Self {
        if p <= Self::FULL_THRESHOLD {
            Self::all(p)
        } else {
            RankSample { ranks: (0..Self::SAMPLE).map(|i| i * p / Self::SAMPLE).collect() }
        }
    }

    /// The covered ranks.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }
}

#[inline]
fn ceil_log2(p: usize) -> u32 {
    usize::BITS - (p - 1).leading_zeros()
}

#[inline]
fn step_indices(p: usize, k: u32) -> impl Iterator<Item = usize> {
    let mask = 1usize << k;
    (1..p).filter(move |i| i & mask != 0)
}

fn step_block_count(p: usize, k: u32) -> u64 {
    step_indices(p, k).count() as u64
}

/// Exact bytes rank `q` sends at step `k` under the *modified/zero-rotation*
/// schedule (blocks hop downward): before step `k`, relative index `i` at
/// rank `q` holds the original block `(s, d)` with `s = (q + (i & (2^k−1)))
/// mod P`, `d = (s − i) mod P`.
fn modified_dir_step_bytes<S: SizeSource + ?Sized>(s: &S, q: usize, k: u32) -> u64 {
    let p = s.p();
    let low = (1usize << k) - 1;
    let mut total = 0u64;
    for i in step_indices(p, k) {
        let src = (q + (i & low)) % p;
        let dst = (src + p - i) % p;
        total += s.size(src, dst) as u64;
    }
    total
}

/// Exact bytes rank `q` sends at step `k` under the *basic/SLOAV* schedule
/// (blocks hop upward): `s = (q − (i & (2^k−1))) mod P`, `d = (s + i) mod P`.
fn basic_dir_step_bytes<S: SizeSource + ?Sized>(s: &S, q: usize, k: u32) -> u64 {
    let p = s.p();
    let low = (1usize << k) - 1;
    let mut total = 0u64;
    for i in step_indices(p, k) {
        let src = (q + p - (i & low)) % p;
        let dst = (src + i) % p;
        total += s.size(src, dst) as u64;
    }
    total
}

/// The allreduce prologue shared by the padding-based and two-phase
/// algorithms (global maximum block size).
pub(crate) fn collective_step(p: usize, sample: &RankSample) -> Step {
    let rounds = ceil_log2(p) + u32::from(!p.is_power_of_two());
    let load = RankLoad {
        seq_msgs: rounds,
        bytes_out: 8 * u64::from(rounds),
        bytes_in: 8 * u64::from(rounds),
        ..Default::default()
    };
    Step { kind: StepKind::Collective, loads: sample.ranks().iter().map(|&r| (r, load)).collect() }
}

fn local_step(copy_bytes: impl Fn(usize) -> u64, sample: &RankSample) -> Step {
    Step {
        kind: StepKind::Local,
        loads: sample
            .ranks()
            .iter()
            .map(|&r| (r, RankLoad { copy_bytes: copy_bytes(r), ..Default::default() }))
            .collect(),
    }
}

/// Trace of a uniform all-to-all with `P` ranks and `n`-byte blocks.
pub fn uniform_trace(algo: UniformAlgo, p: usize, n: usize, sample: &RankSample) -> CommTrace {
    let mut steps = Vec::new();
    let rot = |sample: &RankSample| local_step(|_| (p * n) as u64, sample);
    let bruck_steps = |steps: &mut Vec<Step>, dt_per_block: u32| {
        for k in 0..ceil_log2(p) {
            let count = step_block_count(p, k);
            let bytes = count * n as u64;
            let load = RankLoad {
                seq_msgs: 1,
                bytes_out: bytes,
                bytes_in: bytes,
                copy_bytes: 2 * bytes,
                dt_blocks: dt_per_block * count as u32,
                ..Default::default()
            };
            steps.push(Step {
                kind: StepKind::UniformData(k),
                loads: sample.ranks().iter().map(|&r| (r, load)).collect(),
            });
        }
    };
    match algo {
        UniformAlgo::BasicBruck => {
            steps.push(rot(sample));
            bruck_steps(&mut steps, 0);
            steps.push(rot(sample));
        }
        UniformAlgo::BasicBruckDt => {
            steps.push(rot(sample));
            bruck_steps(&mut steps, 2);
            steps.push(rot(sample));
        }
        UniformAlgo::ModifiedBruck => {
            steps.push(rot(sample));
            bruck_steps(&mut steps, 0);
        }
        UniformAlgo::ModifiedBruckDt => {
            steps.push(rot(sample));
            bruck_steps(&mut steps, 2);
        }
        UniformAlgo::ZeroCopyBruckDt => {
            // Initial split placement, per-step struct datatypes over two
            // buffers (2× descriptor complexity), final copy-out of R.
            steps.push(rot(sample));
            bruck_steps(&mut steps, 4);
            steps.push(rot(sample));
        }
        UniformAlgo::ZeroRotationBruck => {
            // O(P) index array: 8 bytes per entry, no data rotation at all.
            steps.push(local_step(|_| 8 * p as u64, sample));
            bruck_steps(&mut steps, 0);
        }
        UniformAlgo::SpreadOut => {
            if p > 1 {
                let bytes = ((p - 1) * n) as u64;
                let load = RankLoad {
                    seq_msgs: 1,
                    ov_msgs: (p - 2) as u32,
                    bytes_out: bytes,
                    bytes_in: bytes,
                    ..Default::default()
                };
                steps.push(Step {
                    kind: StepKind::Pairwise { throttled: false },
                    loads: sample.ranks().iter().map(|&r| (r, load)).collect(),
                });
            }
        }
    }
    CommTrace { p, steps }
}

/// Trace of a non-uniform all-to-all over the given size source.
pub fn nonuniform_trace<S: SizeSource + ?Sized>(
    algo: NonuniformAlgo,
    source: &S,
    sample: &RankSample,
) -> CommTrace {
    let p = source.p();
    let mut steps = Vec::new();
    if p <= 1 {
        return CommTrace { p, steps };
    }

    let pairwise = |throttled: bool| -> Step {
        let loads = sample
            .ranks()
            .iter()
            .map(|&q| {
                let self_block = source.size(q, q) as u64;
                (
                    q,
                    RankLoad {
                        seq_msgs: 1,
                        ov_msgs: (p - 2) as u32,
                        bytes_out: source.row_sum(q) - self_block,
                        bytes_in: source.col_sum(q) - self_block,
                        ..Default::default()
                    },
                )
            })
            .collect();
        Step { kind: StepKind::Pairwise { throttled }, loads }
    };

    match algo {
        NonuniformAlgo::SpreadOut => steps.push(pairwise(false)),
        NonuniformAlgo::Vendor => steps.push(pairwise(true)),
        NonuniformAlgo::Hierarchical => {
            hierarchical_steps(source, NonuniformAlgo::HIER_GROUP, sample, &mut steps)
        }
        NonuniformAlgo::RankaTwoStage => ranka_steps(source, sample, &mut steps),
        NonuniformAlgo::TwoPhaseBruck => {
            steps.push(collective_step(p, sample));
            for k in 0..ceil_log2(p) {
                let count = step_block_count(p, k);
                let meta = RankLoad {
                    seq_msgs: 1,
                    bytes_out: 4 * count,
                    bytes_in: 4 * count,
                    ..Default::default()
                };
                steps.push(Step {
                    kind: StepKind::Meta(k),
                    loads: sample.ranks().iter().map(|&r| (r, meta)).collect(),
                });
                let loads = sample
                    .ranks()
                    .iter()
                    .map(|&q| {
                        let out = modified_dir_step_bytes(source, q, k);
                        let peer = (q + (1 << k)) % p;
                        let inb = modified_dir_step_bytes(source, peer, k);
                        (
                            q,
                            RankLoad {
                                seq_msgs: 1,
                                bytes_out: out,
                                bytes_in: inb,
                                copy_bytes: out + inb,
                                ..Default::default()
                            },
                        )
                    })
                    .collect();
                steps.push(Step { kind: StepKind::Data(k), loads });
            }
        }
        NonuniformAlgo::Sloav => {
            for k in 0..ceil_log2(p) {
                let count = step_block_count(p, k);
                let meta = RankLoad {
                    seq_msgs: 1,
                    bytes_out: 8,
                    bytes_in: 8,
                    ..Default::default()
                };
                steps.push(Step {
                    kind: StepKind::Meta(k),
                    loads: sample.ranks().iter().map(|&r| (r, meta)).collect(),
                });
                let loads = sample
                    .ranks()
                    .iter()
                    .map(|&q| {
                        let out = 4 * count + basic_dir_step_bytes(source, q, k);
                        let peer = (q + p - (1 << k) % p) % p;
                        let inb = 4 * count + basic_dir_step_bytes(source, peer, k);
                        (
                            q,
                            RankLoad {
                                seq_msgs: 1,
                                bytes_out: out,
                                bytes_in: inb,
                                copy_bytes: out + inb,
                                ..Default::default()
                            },
                        )
                    })
                    .collect();
                steps.push(Step { kind: StepKind::Data(k), loads });
            }
            // Final scan: every received block is copied to its destination.
            steps.push(local_step(|q| source.col_sum(q), sample));
        }
        NonuniformAlgo::PaddedBruck | NonuniformAlgo::PaddedAlltoall => {
            let n_max = source.n_max();
            steps.push(collective_step(p, sample));
            // Padding: write the P·N uniform buffer (reading row_sum bytes).
            steps.push(local_step(|q| (p * n_max) as u64 + source.row_sum(q), sample));
            if algo == NonuniformAlgo::PaddedBruck {
                // Zero Rotation Bruck over N-byte blocks.
                steps.push(local_step(|_| 8 * p as u64, sample));
                for k in 0..ceil_log2(p) {
                    let bytes = step_block_count(p, k) * n_max as u64;
                    let load = RankLoad {
                        seq_msgs: 1,
                        bytes_out: bytes,
                        bytes_in: bytes,
                        copy_bytes: 2 * bytes,
                        ..Default::default()
                    };
                    steps.push(Step {
                        kind: StepKind::UniformData(k),
                        loads: sample.ranks().iter().map(|&r| (r, load)).collect(),
                    });
                }
            } else {
                let bytes = ((p - 1) * n_max) as u64;
                let load = RankLoad {
                    seq_msgs: 1,
                    ov_msgs: (p - 2) as u32,
                    bytes_out: bytes,
                    bytes_in: bytes,
                    ..Default::default()
                };
                steps.push(Step {
                    kind: StepKind::Pairwise { throttled: true },
                    loads: sample.ranks().iter().map(|&r| (r, load)).collect(),
                });
            }
            // Scan the real bytes out of the padded receive buffer.
            steps.push(local_step(|q| source.col_sum(q), sample));
        }
    }
    CommTrace { p, steps }
}

/// Steps of the hierarchical (leader-based) exchange with the given group
/// size: member→leader gather, leader↔leader exchange, leader→member scatter.
fn hierarchical_steps<S: SizeSource + ?Sized>(
    source: &S,
    group: usize,
    sample: &RankSample,
    steps: &mut Vec<Step>,
) {
    let p = source.p();
    let n_groups = p.div_ceil(group);
    let leader_of = |q: usize| (q / group) * group;
    let members_of = |g: usize| (g * group)..((g + 1) * group).min(p);

    // Gather: members send (8P counts header + their row); leaders receive
    // every member's payload.
    let gather_loads = sample
        .ranks()
        .iter()
        .map(|&q| {
            let load = if q == leader_of(q) {
                let inbound: u64 = members_of(q / group)
                    .filter(|&m| m != q)
                    .map(|m| 8 * p as u64 + source.row_sum(m))
                    .sum();
                RankLoad { bytes_in: inbound, ..Default::default() }
            } else {
                RankLoad {
                    seq_msgs: 1,
                    bytes_out: 8 * p as u64 + source.row_sum(q),
                    ..Default::default()
                }
            };
            (q, load)
        })
        .collect();
    steps.push(Step { kind: StepKind::HierGather, loads: gather_loads });

    // Leader exchange: each leader ships, per other group h, a 4-byte size
    // matrix plus all blocks (s in g, d in h).
    if n_groups > 1 {
        let leader_loads = sample
            .ranks()
            .iter()
            .map(|&q| {
                if q != leader_of(q) {
                    return (q, RankLoad::default());
                }
                let g = q / group;
                let g_size = members_of(g).len() as u64;
                let intra: u64 = members_of(g)
                    .flat_map(|s| members_of(g).map(move |d| (s, d)))
                    .map(|(s, d)| source.size(s, d) as u64)
                    .sum();
                let row_total: u64 = members_of(g).map(|s| source.row_sum(s)).sum();
                let col_total: u64 = members_of(g).map(|d| source.col_sum(d)).sum();
                let header = 4 * g_size * (p as u64 - g_size);
                let load = RankLoad {
                    seq_msgs: 1,
                    ov_msgs: (n_groups - 2) as u32,
                    bytes_out: header + row_total - intra,
                    bytes_in: header + col_total - intra,
                    ..Default::default()
                };
                (q, load)
            })
            .collect();
        steps.push(Step { kind: StepKind::HierLeader, loads: leader_loads });
    }

    // Scatter: leaders flatten each non-leader member's column.
    let scatter_loads = sample
        .ranks()
        .iter()
        .map(|&q| {
            let load = if q == leader_of(q) {
                let outbound: u64 =
                    members_of(q / group).filter(|&d| d != q).map(|d| source.col_sum(d)).sum();
                RankLoad {
                    seq_msgs: 1,
                    bytes_out: outbound,
                    copy_bytes: source.col_sum(q),
                    ..Default::default()
                }
            } else {
                RankLoad { bytes_in: source.col_sum(q), ..Default::default() }
            };
            (q, load)
        })
        .collect();
    steps.push(Step { kind: StepKind::HierScatter, loads: scatter_loads });
}

/// Bytes of piece `i` (of `p`) of a `len`-byte block (mirrors
/// `bruck_core::piece_len`).
#[inline]
fn piece_len(len: usize, i: usize, p: usize) -> usize {
    len / p + usize::from(i < len % p)
}

/// P above which Ranka per-rank loads are estimated statistically (exact
/// computation is O(P²) per covered rank).
const RANKA_EXACT_LIMIT: usize = 1024;

/// Steps of the Ranka two-stage exchange.
fn ranka_steps<S: SizeSource + ?Sized>(source: &S, sample: &RankSample, steps: &mut Vec<Step>) {
    let p = source.p();
    // Σ_d piece_i(size(s, d)): piece `i` of every block in row `s`.
    let pieces_row = |s: usize, i: usize| -> u64 {
        (0..p).map(|d| piece_len(source.size(s, d), i, p) as u64).sum()
    };
    let header = 4 * (p as u64) * (p as u64 - 1);

    if p <= RANKA_EXACT_LIMIT {
        let stage1 = sample
            .ranks()
            .iter()
            .map(|&q| {
                let out = header + source.row_sum(q) - pieces_row(q, q);
                let inb = header
                    + (0..p).filter(|&s| s != q).map(|s| pieces_row(s, q)).sum::<u64>();
                (
                    q,
                    RankLoad {
                        seq_msgs: 1,
                        ov_msgs: (p.saturating_sub(2)) as u32,
                        bytes_out: out,
                        bytes_in: inb,
                        ..Default::default()
                    },
                )
            })
            .collect();
        steps.push(Step { kind: StepKind::RankaStage1, loads: stage1 });
        let stage2 = sample
            .ranks()
            .iter()
            .map(|&q| {
                // out: piece q of every (s, d ≠ q) block.
                let all: u64 = (0..p).map(|s| pieces_row(s, q)).sum();
                let own: u64 =
                    (0..p).map(|s| piece_len(source.size(s, q), q, p) as u64).sum();
                let out = all - own;
                // in: from each intermediate i ≠ q, piece i of column q —
                // i.e. everything destined to q except the pieces q already
                // holds itself: col_sum(q) − own.
                let inb = source.col_sum(q) - own;
                (
                    q,
                    RankLoad {
                        seq_msgs: 1,
                        ov_msgs: (p.saturating_sub(2)) as u32,
                        bytes_out: out,
                        bytes_in: inb,
                        ..Default::default()
                    },
                )
            })
            .collect();
        steps.push(Step { kind: StepKind::RankaStage2, loads: stage2 });
    } else {
        // Statistical estimate: total volume from a 32-column sample.
        let cols = 32.min(p);
        let est_total: u64 =
            (0..cols).map(|i| source.col_sum(i * p / cols)).sum::<u64>() / cols as u64
                * p as u64;
        let per_rank = est_total / p as u64 + (p as u64 - 1) / 2;
        let load = RankLoad {
            seq_msgs: 1,
            ov_msgs: (p - 2) as u32,
            bytes_out: header + per_rank,
            bytes_in: header + per_rank,
            ..Default::default()
        };
        for kind in [StepKind::RankaStage1, StepKind::RankaStage2] {
            let mut l = load;
            if kind == StepKind::RankaStage2 {
                l.bytes_out = per_rank;
                l.bytes_in = per_rank;
            }
            steps.push(Step {
                kind,
                loads: sample.ranks().iter().map(|&r| (r, l)).collect(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DistSource;
    use bruck_workload::Distribution;

    fn src(p: usize, n: usize) -> DistSource {
        DistSource::new(Distribution::Uniform, 42, p, n)
    }

    #[test]
    fn rank_sample_auto_switches_modes() {
        assert_eq!(RankSample::auto(64).ranks().len(), 64);
        assert_eq!(RankSample::auto(256).ranks().len(), 256);
        let s = RankSample::auto(4096);
        assert_eq!(s.ranks().len(), RankSample::SAMPLE);
        assert!(s.ranks().windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(*s.ranks().last().unwrap() < 4096);
    }

    #[test]
    fn two_phase_trace_conserves_bytes_across_steps() {
        // Over all log P steps, the total data bytes leaving all ranks must
        // equal sum over blocks of size · popcount(offset): each block hops
        // once per set bit of its offset.
        let p = 16;
        let s = src(p, 100);
        let trace = nonuniform_trace(NonuniformAlgo::TwoPhaseBruck, &s, &RankSample::all(p));
        let data_bytes: u64 = trace
            .steps
            .iter()
            .filter(|st| matches!(st.kind, StepKind::Data(_)))
            .flat_map(|st| st.loads.iter().map(|(_, l)| l.bytes_out))
            .sum();
        let mut expect = 0u64;
        for srk in 0..p {
            for dst in 0..p {
                let offset = (srk + p - dst) % p; // modified direction: d = s − i
                expect += (s.size(srk, dst) as u64) * offset.count_ones() as u64;
            }
        }
        assert_eq!(data_bytes, expect);
    }

    #[test]
    fn sloav_trace_conserves_bytes_across_steps() {
        let p = 12;
        let s = src(p, 64);
        let trace = nonuniform_trace(NonuniformAlgo::Sloav, &s, &RankSample::all(p));
        let data_bytes: u64 = trace
            .steps
            .iter()
            .filter(|st| matches!(st.kind, StepKind::Data(_)))
            .flat_map(|st| st.loads.iter().map(|(_, l)| l.bytes_out))
            .sum();
        let mut expect = 0u64;
        let meta_total: u64 =
            (0..ceil_log2(p)).map(|k| step_block_count(p, k) * 4 * p as u64).sum();
        for srk in 0..p {
            for dst in 0..p {
                let offset = (dst + p - srk) % p; // basic direction: d = s + i
                expect += (s.size(srk, dst) as u64) * offset.count_ones() as u64;
            }
        }
        assert_eq!(data_bytes, expect + meta_total);
    }

    #[test]
    fn padded_trace_moves_n_max_blocks() {
        let p = 8;
        let s = src(p, 50);
        let trace = nonuniform_trace(NonuniformAlgo::PaddedBruck, &s, &RankSample::all(p));
        for step in &trace.steps {
            if let StepKind::UniformData(k) = step.kind {
                let expect = step_block_count(p, k) * s.n_max() as u64;
                for (_, l) in &step.loads {
                    assert_eq!(l.bytes_out, expect, "step {k}");
                }
            }
        }
    }

    #[test]
    fn spread_out_trace_is_row_and_col_sums() {
        let p = 10;
        let s = src(p, 30);
        let trace = nonuniform_trace(NonuniformAlgo::SpreadOut, &s, &RankSample::all(p));
        assert_eq!(trace.steps.len(), 1);
        for (q, l) in &trace.steps[0].loads {
            assert_eq!(l.bytes_out, s.row_sum(*q) - s.size(*q, *q) as u64);
            assert_eq!(l.bytes_in, s.col_sum(*q) - s.size(*q, *q) as u64);
        }
    }

    #[test]
    fn uniform_traces_have_expected_step_structure() {
        let p = 16;
        let sample = RankSample::all(p);
        let basic = uniform_trace(UniformAlgo::BasicBruck, p, 32, &sample);
        // rotation + 4 steps + rotation
        assert_eq!(basic.steps.len(), 6);
        let zero_rot = uniform_trace(UniformAlgo::ZeroRotationBruck, p, 32, &sample);
        assert_eq!(zero_rot.steps.len(), 5);
        // Zero-rotation moves the same wire bytes but copies far less.
        let wire = |t: &CommTrace| t.total_wire_bytes();
        assert_eq!(wire(&basic), wire(&zero_rot));
        let copies = |t: &CommTrace| -> u64 {
            t.steps.iter().flat_map(|s| s.loads.iter().map(|(_, l)| l.copy_bytes)).sum()
        };
        assert!(copies(&zero_rot) < copies(&basic));
    }

    #[test]
    fn single_rank_traces_are_trivial() {
        let s = src(1, 64);
        for algo in NonuniformAlgo::ALL {
            let t = nonuniform_trace(algo, &s, &RankSample::all(1));
            assert!(t.steps.is_empty(), "{}", algo.name());
        }
    }

    #[test]
    fn trace_times_are_positive_and_finite() {
        let m = crate::MachineModel::theta_like();
        let s = src(64, 256);
        for algo in NonuniformAlgo::ALL {
            let t = nonuniform_trace(algo, &s, &RankSample::auto(64)).time(&m);
            assert!(t.is_finite() && t > 0.0, "{}: {t}", algo.name());
        }
    }
}
