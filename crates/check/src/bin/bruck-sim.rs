//! `bruck-sim`: deterministic-schedule fuzzer for every alltoallv algorithm.
//!
//! Runs an algorithm × workload × schedule-seed matrix under the
//! cooperative simulation scheduler (`bruck_comm::SimComm`): every cell is
//! executed twice and must produce byte-identical schedule traces and
//! results; received payloads must match the closed-form pattern. Fault
//! cells compose `FaultComm` → `ReliableComm` → `resilient_alltoallv` on
//! top of the simulator, so the whole chaos stack is bit-reproducible.
//!
//! On failure the recorded schedule is written to a trace file, a
//! delta-debugging shrinker minimizes it, and the report prints the seed,
//! the trace paths, and the one-command replay:
//!
//!   bruck-sim --replay target/bruck-sim/<cell>.trace
//!
//! Usage:
//!   bruck-sim [--smoke] [--replay FILE]
//!
//! `--smoke` runs the CI-sized matrix (wired into scripts/verify.sh).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use bruck_check::sim_matrix::{
    run_cell, run_coll_matrix, run_matrix, SimCell, SimMatrixConfig, COLL_SCHEDULES,
};
use bruck_comm::ScheduleTrace;

/// Where failing schedules are written (created on demand).
fn trace_dir() -> PathBuf {
    Path::new("target").join("bruck-sim")
}

fn replay(path: &str) -> ExitCode {
    let trace = match ScheduleTrace::load(Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bruck-sim: cannot load trace {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let cell = match SimCell::decode_meta(&trace.meta) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bruck-sim: trace {path} has no replayable cell meta: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "bruck-sim: replaying {} ({} scheduling choices, seed {})",
        cell.label(),
        trace.choices.len(),
        trace.seed
    );
    let outcome = run_cell(&cell, Some(&trace.choices));
    match outcome.failure {
        None => {
            println!("  PASS — the failure does not reproduce under this schedule");
            ExitCode::SUCCESS
        }
        Some(msg) => {
            println!("  FAIL (reproduced) — {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--replay" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--replay needs a trace file path");
                    return ExitCode::from(2);
                };
                return replay(path);
            }
            "--help" | "-h" => {
                println!("usage: bruck-sim [--smoke] [--replay FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let cfg = if smoke { SimMatrixConfig::smoke() } else { SimMatrixConfig::full() };
    println!(
        "bruck-sim: {} matrix, p={}, n_max={}, {} algorithms, schedule seeds {:?} (each cell runs twice for determinism)",
        if smoke { "smoke" } else { "full" },
        cfg.p,
        cfg.n_max,
        cfg.algorithms.len(),
        cfg.sched_seeds,
    );
    let start = Instant::now();
    let report = run_matrix(&cfg, |label, ok| {
        if ok {
            println!("  PASS {label}");
        } else {
            println!("  FAIL {label}");
        }
    });
    if !report.failures.is_empty() {
        let dir = trace_dir();
        let _ = std::fs::create_dir_all(&dir);
        for f in &report.failures {
            let path = dir.join(format!("{}.trace", f.cell.label()));
            let min_path = dir.join(format!("{}.min.trace", f.cell.label()));
            let saved = f.trace.save(&path).is_ok();
            let min_saved = f.min_trace.save(&min_path).is_ok();
            println!("\nbruck-sim FAILURE: {}", f.cell.label());
            println!("  message:        {}", f.message);
            println!("  schedule seed:  {}", f.cell.sched_seed);
            if saved {
                println!("  recorded trace: {} ({} choices)", path.display(), f.trace.choices.len());
                println!("  replay with:    cargo run --release -p bruck-check --bin bruck-sim -- --replay {}", path.display());
            }
            if min_saved {
                println!(
                    "  shrunk trace:   {} ({} choices)",
                    min_path.display(),
                    f.min_trace.choices.len()
                );
            }
        }
    }
    // The collective family (allgatherv / reduce_scatter / allreduce): the
    // same determinism + reference-exactness contract over every schedule.
    let coll_seeds: &[u64] = if smoke { &[1, 2] } else { &[1, 2, 3, 4] };
    println!(
        "\nbruck-sim: collective family, p={}, {} schedules, seeds {:?}",
        cfg.p,
        COLL_SCHEDULES.len(),
        coll_seeds,
    );
    let (coll_cells, coll_failures) =
        run_coll_matrix(cfg.p, cfg.workload_seed, coll_seeds, |label, ok| {
            if ok {
                println!("  PASS {label}");
            } else {
                println!("  FAIL {label}");
            }
        });
    for f in &coll_failures {
        println!("\nbruck-sim FAILURE: {f}");
    }
    println!(
        "\nbruck-sim: {} cells (each run twice), {} failures, {:.1?} total",
        report.cells_run + coll_cells,
        report.failures.len() + coll_failures.len(),
        start.elapsed()
    );
    if report.failures.is_empty() && coll_failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
