//! Padded Bruck (§3.1): make the problem uniform by padding, run the best
//! uniform Bruck, then scan the padding away.

use bruck_comm::{CommResult, Communicator, ReduceOp};

use super::validate_v;
use crate::probe::span;
use crate::uniform::zero_rotation_bruck;

/// Padded Bruck non-uniform all-to-all (same contract as `MPI_Alltoallv`).
///
/// Three phases, exactly as the paper describes: (a) every block is padded to
/// the *global* maximum block size `N` (found with one allreduce); (b) a
/// Zero Rotation Bruck uniform exchange moves the `N`-byte blocks in log(P)
/// steps; (c) a local scan extracts the `recvcounts[i]` real bytes of each
/// block. Latency stays at `α·log P` while the transmitted volume roughly
/// doubles versus two-phase Bruck — hence the narrow small-`N` window where
/// this wins (inequality (3), §3.3).
#[allow(clippy::too_many_arguments)]
pub fn padded_bruck<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;

    // Phase a: global maximum block size, then pad into a uniform buffer.
    let n_max = {
        let _probe = span("padded.allreduce");
        let local_max = sendcounts.iter().copied().max().unwrap_or(0);
        comm.allreduce_u64(local_max as u64, ReduceOp::Max)? as usize
    };
    if n_max == 0 {
        return Ok(()); // nothing anywhere (all blocks empty)
    }
    let mut padded_send = vec![0u8; p * n_max];
    let mut padded_recv = vec![0u8; p * n_max];
    {
        let _probe = span("padded.pad");
        for dst in 0..p {
            let d = sdispls[dst];
            padded_send[dst * n_max..dst * n_max + sendcounts[dst]]
                .copy_from_slice(&sendbuf[d..d + sendcounts[dst]]);
        }
    }

    // Phase b: uniform Bruck on the padded blocks.
    {
        let _probe = span("padded.exchange");
        zero_rotation_bruck(comm, &padded_send, &mut padded_recv, n_max)?;
    }

    // Phase c: scan out the real bytes using recvcounts.
    let _probe = span("padded.scan");
    for src in 0..p {
        let want = recvcounts[src];
        recvbuf[rdispls[src]..rdispls[src] + want]
            .copy_from_slice(&padded_recv[src * n_max..src * n_max + want]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, run_and_check_matrix, TEST_SIZES};
    use super::super::AlltoallvAlgorithm::PaddedBruck;
    use bruck_workload::{Distribution, SizeMatrix};

    #[test]
    fn correct_for_all_communicator_sizes() {
        for p in TEST_SIZES {
            run_and_check(PaddedBruck, p, 32, 0xCAFE);
        }
    }

    #[test]
    fn correct_for_skewed_distributions() {
        for dist in [Distribution::Normal, Distribution::POWER_LAW_STEEP] {
            let m = SizeMatrix::generate(dist, 3, 10, 96);
            run_and_check_matrix(PaddedBruck, &m);
        }
    }

    #[test]
    fn all_empty_blocks() {
        run_and_check_matrix(PaddedBruck, &SizeMatrix::uniform(6, 0));
    }

    #[test]
    fn degenerate_uniform_input_matches_uniform_semantics() {
        // When every block is the same size, padding is a no-op.
        run_and_check_matrix(PaddedBruck, &SizeMatrix::uniform(7, 24));
    }
}
