//! Reduction operators for the scalar collectives.

/// Associative, commutative reduction over `u64`, covering everything the
/// all-to-all algorithms need (`MPI_MAX` for the global maximum block size,
/// `MPI_SUM`/`MPI_MIN` for harness statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise maximum (`MPI_MAX`).
    Max,
    /// Element-wise minimum (`MPI_MIN`).
    Min,
    /// Wrapping sum (`MPI_SUM`; wrapping so adversarial proptest inputs
    /// cannot abort a collective mid-flight).
    Sum,
}

impl ReduceOp {
    /// Combine two values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Sum => a.wrapping_add(b),
        }
    }

    /// The identity element of the operator.
    #[inline]
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Max => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Sum => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_matches_semantics() {
        assert_eq!(ReduceOp::Max.apply(3, 9), 9);
        assert_eq!(ReduceOp::Min.apply(3, 9), 3);
        assert_eq!(ReduceOp::Sum.apply(3, 9), 12);
        assert_eq!(ReduceOp::Sum.apply(u64::MAX, 1), 0);
    }

    #[test]
    fn identity_is_neutral() {
        for op in [ReduceOp::Max, ReduceOp::Min, ReduceOp::Sum] {
            for v in [0u64, 1, 17, u64::MAX] {
                assert_eq!(op.apply(op.identity(), v), v);
                assert_eq!(op.apply(v, op.identity()), v);
            }
        }
    }
}
