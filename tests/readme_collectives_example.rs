//! The README "Beyond alltoallv" example, compiled and run verbatim so the
//! docs cannot rot.

use bruck_comm::{Communicator, ReduceOp, ThreadComm};
use bruck_core::{
    allgatherv, allreduce, packed_displs, AllgathervAlgorithm, AllreduceAlgorithm,
};

#[test]
fn readme_beyond_alltoallv_example() {
    ThreadComm::run(4, |comm| {
        let me = comm.rank();
        // Non-uniform all-gather: rank r contributes r bytes (rank 0: none).
        let counts = vec![0, 1, 2, 3];
        let displs = packed_displs(&counts);
        let mine = vec![me as u8; counts[me]];
        let mut gathered = vec![0u8; counts.iter().sum()];
        allgatherv(AllgathervAlgorithm::Pat, comm, &mine, &mut gathered, &counts, &displs)
            .unwrap();
        assert_eq!(gathered, [1, 2, 2, 3, 3, 3]);

        // Bandwidth-optimal allreduce over u64 vectors.
        let mut v = vec![me as u64; 8];
        allreduce(AllreduceAlgorithm::ReduceScatterAllgather, comm, &mut v, ReduceOp::Sum)
            .unwrap();
        assert_eq!(v, vec![6; 8]);
    });
}
