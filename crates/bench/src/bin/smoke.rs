//! Bench smoke run with observability artifacts.
//!
//! Runs a small algorithm × workload matrix bare and under `MeteredComm`,
//! then writes two artifacts:
//!
//! * `BENCH_PR4.json` — machine-readable per-cell report (bare vs metered
//!   wall-clock, overhead ratio, channel totals, consistency-error count);
//! * `BENCH_PR4.trace.json` — a chrome `trace_events` document of every
//!   cell's per-rank phase timeline (open in `chrome://tracing`/Perfetto).
//!
//! Usage: `smoke [report.json [trace.json]]` (defaults above, written to the
//! working directory). Exits non-zero if any rank's metered counters fail
//! their internal consistency checks — metering drift is a bug, overhead is
//! reported but advisory (wall-clock on shared CI is too noisy to gate on).

use std::path::Path;
use std::process::ExitCode;

use bruck_bench::export::{
    bench_report_json, chrome_trace_json, measure_metered, write_text,
};
use bruck_core::AlltoallvAlgorithm;
use bruck_workload::{Distribution, SizeMatrix};

const SEED: u64 = 2022;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let report_path = args.get(1).map_or("BENCH_PR4.json", String::as_str);
    let trace_path = args.get(2).map_or("BENCH_PR4.trace.json", String::as_str);

    let algos = [
        AlltoallvAlgorithm::SpreadOut,
        AlltoallvAlgorithm::Vendor,
        AlltoallvAlgorithm::PaddedBruck,
        AlltoallvAlgorithm::TwoPhaseBruck,
    ];
    let dists =
        [(Distribution::Uniform, "uniform"), (Distribution::POWER_LAW_STEEP, "power-law-0.99")];
    let (p, n, iters) = (16usize, 64usize, 7usize);

    println!("bench smoke — P = {p}, N = {n}, {iters} iters per cell");
    println!(
        "{:>16} {:>16} | {:>10} {:>10} {:>8} | {:>12} {:>12} {:>6}",
        "algorithm", "distribution", "bare ms", "meter ms", "ratio", "logical msg", "logical B", "drift"
    );

    let mut runs = Vec::new();
    let mut cells = Vec::new();
    let mut drift = 0usize;
    for (dist, label) in dists {
        let m = SizeMatrix::generate(dist, SEED, p, n);
        for algo in algos {
            let (run, timelines) = measure_metered(algo, &m, label, n, iters);
            println!(
                "{:>16} {:>16} | {:>10.3} {:>10.3} {:>8.3} | {:>12} {:>12} {:>6}",
                run.algorithm,
                run.distribution,
                run.bare_s * 1e3,
                run.metered_s * 1e3,
                run.overhead_ratio(),
                run.logical_msgs,
                run.logical_bytes,
                run.consistency_errors,
            );
            drift += run.consistency_errors;
            cells.push((format!("{}/{}", run.algorithm, run.distribution), timelines));
            runs.push(run);
        }
    }

    let worst = runs
        .iter()
        .map(bruck_bench::export::MeteredRun::overhead_ratio)
        .fold(f64::NAN, f64::max);
    println!("worst metered/bare ratio: {worst:.3} (advisory; target <= 1.05)");

    if let Err(e) = write_text(Path::new(report_path), &bench_report_json(&runs)) {
        eprintln!("failed to write {report_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_text(Path::new(trace_path), &chrome_trace_json(&cells)) {
        eprintln!("failed to write {trace_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {report_path} and {trace_path}");

    if drift > 0 {
        eprintln!("FAIL: {drift} metering consistency errors");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
