//! # bruck-bpra — balanced parallel relational algebra over iterated all-to-all
//!
//! The application substrate of the paper's §5: relations are sets of binary
//! tuples hash-partitioned across ranks; fixpoint computations iterate a
//! local join, a non-uniform all-to-all redistribution of the new facts, and
//! a deduplication — thousands of `alltoallv` calls with iteration-varying
//! loads. The all-to-all algorithm is a plug-in
//! ([`bruck_core::AlltoallvAlgorithm`]), which is exactly the paper's
//! experiment: vendor `MPI_Alltoallv` vs two-phase Bruck, same application.
//!
//! * [`transitive_closure`] — §5.1 graph mining, with per-iteration stats.
//! * [`kcfa_like_run`] — §5.2's program-analysis-style spiky load schedule.
//! * [`graph1_like`] / [`graph2_like`] — the two topology regimes of Fig. 11.
//!
//! ```
//! use bruck_comm::ThreadComm;
//! use bruck_core::AlltoallvAlgorithm;
//! use bruck_bpra::{graph1_like, transitive_closure};
//!
//! let edges = graph1_like(2, 10, 3, 42);
//! let totals = ThreadComm::run(4, |comm| {
//!     transitive_closure(comm, AlltoallvAlgorithm::TwoPhaseBruck, &edges)
//!         .unwrap()
//!         .total_paths
//! });
//! assert!(totals.iter().all(|&t| t == totals[0] && t > 0));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cc;
pub mod datalog;
#[cfg(test)]
mod datalog_tests;
mod exchange;
mod graphs;
mod kcfa;
pub mod parser;
mod recover;
pub mod pointsto;
mod relation;
mod tc;
mod tuple;

pub use cc::{connected_components, sequential_components, CcResult};
pub use datalog::{
    evaluate as datalog_evaluate, AtomPat, DatalogIteration, DatalogResult, Program, RelId, Rule,
    Term,
};
pub use exchange::{exchange_tuples, ExchangeStats};
pub use parser::{parse_program, ParseError, ParsedProgram, SYMBOL_BASE};
pub use pointsto::{
    points_to_analysis, points_to_program, sequential_points_to, PointsToInput,
};
pub use graphs::{graph1_like, graph2_like};
pub use kcfa::{facts_at, kcfa_like_run, volume_multiplier, KcfaConfig, KcfaResult};
pub use recover::{
    exchange_tuples_recovering, heal_membership, recovering_closure, RecoveringTcResult,
};
pub use relation::Relation;
pub use tc::{sequential_closure, transitive_closure, TcIteration, TcResult};
pub use tuple::{decode_all, encode_all, encode_into, owner, Tuple, TUPLE_BYTES};
