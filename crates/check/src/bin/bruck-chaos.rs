//! `bruck-chaos`: fault-injection soak for the resilient alltoallv stack.
//!
//! Runs an algorithm × fault-plan × seed matrix, each cell on a fresh
//! threaded world with `FaultComm` → `ReliableComm` → `resilient_alltoallv`
//! layered, under a per-cell watchdog. Asserts the crash-only property:
//! byte-identical completion or a typed error within the deadline — never a
//! hang, never silent corruption.
//!
//! Usage:
//!   bruck-chaos [--smoke] [--seeds 1,2,3]
//!
//! `--smoke` runs the CI-sized matrix (wired into scripts/verify.sh).
//! Seeds come from `--seeds`, else the `BRUCK_CHAOS_SEEDS` environment
//! variable (comma-separated), else built-in defaults.

use std::process::ExitCode;
use std::time::Instant;

use bruck_check::chaos::{run_matrix, seeds_from_env, ChaosConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut cli_seeds: Option<Vec<u64>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seeds" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--seeds needs a comma-separated list");
                    return ExitCode::from(2);
                };
                cli_seeds =
                    Some(list.split(',').filter_map(|t| t.trim().parse().ok()).collect());
            }
            "--help" | "-h" => {
                println!("usage: bruck-chaos [--smoke] [--seeds 1,2,3]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let seeds = match cli_seeds {
        Some(s) if !s.is_empty() => s,
        _ => seeds_from_env(&[1, 2]),
    };
    let cfg = if smoke { ChaosConfig::smoke(seeds) } else { ChaosConfig::full(seeds) };

    println!(
        "bruck-chaos: {} matrix, sizes {:?}, seeds {:?}, {} algorithms",
        if smoke { "smoke" } else { "full" },
        cfg.sizes,
        cfg.seeds,
        cfg.algorithms.len(),
    );
    let start = Instant::now();
    let mut failures = 0usize;
    let reports = run_matrix(&cfg, |r| {
        match &r.violation {
            None => println!("  PASS {:<40} {:>8.1?}", r.label, r.elapsed),
            Some(v) => println!("  FAIL {:<40} {:>8.1?}  {v}", r.label, r.elapsed),
        }
    });
    for r in &reports {
        if r.violation.is_some() {
            failures += 1;
        }
    }
    println!(
        "bruck-chaos: {} cells, {failures} failures, {:.1?} total",
        reports.len(),
        start.elapsed()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
