//! # bruck-check — communication-protocol verifier and repo lint gate
//!
//! Three layers of static assurance over the workspace, all std-only:
//!
//! 1. **Schedule extraction** ([`model`]) — [`model::ModelComm`] symbolically
//!    executes any `Communicator`-generic algorithm on a single thread,
//!    recording every send/recv/probe (collectives included — they are trait
//!    default methods) into vector-clocked per-rank event logs. Unlike a
//!    threaded run, it terminates on deadlocks and reports them.
//! 2. **Protocol analysis** ([`analysis`]) — passes over the extracted
//!    [`bruck_comm::Schedule`]: wait-for-graph deadlock cycles, unmatched
//!    sends, orphaned receives, tag collisions, per-step byte conservation,
//!    and counts/displacement layout checks.
//! 3. **Source lint** ([`lint`]) — `bruck-lint` scans crate sources for
//!    banned patterns with an explicit, counted allowlist.
//!
//! The [`matrix`] module wires layers 1–2 across every algorithm × workload
//! combination; `scripts/verify.sh` runs both binaries as tier-1 gates.
//!
//! A fourth, *dynamic* layer rides in the same crate: the [`chaos`] module
//! (binary `bruck-chaos`) soaks the fault-tolerance stack — fault injection,
//! reliable transport, resilient driver — across an algorithm × fault-plan
//! matrix under a watchdog, asserting the crash-only property (DESIGN.md §9).
//!
//! A fifth layer, the [`sim_matrix`] module (binary `bruck-sim`), fuzzes the
//! *schedule* dimension: every algorithm runs under `bruck-comm`'s
//! deterministic simulator across seeded interleavings with a virtual clock,
//! with recorded, replayable, shrinkable schedule traces (DESIGN.md §11).
//!
//! A sixth layer, the [`dpor`] module (binary `bruck-verify`), upgrades the
//! schedule fuzzer to a *model checker*: stateless dynamic partial-order
//! reduction exhaustively enumerates every inequivalent interleaving of the
//! tiny-world cells, proves byte-identical outcomes and deadlock-freedom at
//! every leaf, and exhaustively audits the event runtime's wakeup protocol
//! with vector-clock happens-before checks (DESIGN.md §13). Shared payload
//! helpers for the dynamic harnesses live in [`cells`].
//!
//! A seventh layer, the [`recovery`] module (also under `bruck-chaos`, via
//! `--recovery-smoke`), exercises the *self-healing* stack end to end:
//! every alltoallv algorithm × crash phase class (negotiate/pack/data/unpack)
//! on a simulated world with a scripted victim, driving failure detection,
//! survivor agreement, communicator shrink, and epoch retry to a typed
//! `Recovered` ending — byte-correct on the survivor view, same-seed
//! digest-deterministic, with virtual-time MTTR regression-checked against
//! the committed `BENCH_PR8.json` (DESIGN.md §14).
//!
//! The verifier's model, guarantees, and non-guarantees are documented in
//! DESIGN.md §8.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod cells;
pub mod chaos;
pub mod dpor;
pub mod lint;
pub mod matrix;
pub mod model;
pub mod recovery;
pub mod sim_matrix;
