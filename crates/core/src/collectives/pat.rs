//! PAT (parallel aggregated trees) schedules, after NCCL's PAT algorithm
//! (arXiv 2506.20252): one binomial tree per source (all-gather) or per
//! destination (reduce-scatter), all `P` trees rotated copies of each other
//! so that every rank sends **one aggregated message per phase** — `⌈log₂ P⌉`
//! phases for any `P`, power of two or not.
//!
//! Offsets are measured from the tree root. In the all-gather tree of source
//! `s`, the block reaches offset `j > 0` at phase `lsb(j)`: phases run
//! *descending* (`k = L−1 … 0`), and at phase `k` every holder at offset
//! `j ≡ 0 (mod 2ᵏ⁺¹)` with `j + 2ᵏ < P` sends to offset `j + 2ᵏ`. The
//! reduce-scatter tree is the exact mirror: phases run *ascending*, and at
//! phase `k` the rank at offset `j` with `lsb(j) = k` sends its aggregated
//! partial toward the root. Rotating over all `P` trees, a rank's per-phase
//! partners collapse to a single pair: `(q + 2ᵏ, q − 2ᵏ) mod P`.

use bruck_comm::{CommResult, Communicator, MsgBuf, ReduceOp};

use crate::common::{add_mod, ceil_log2, pat_ag_tag, pat_rs_tag, sub_mod};
use crate::packed_displs;
use crate::probe::span;

use super::{bytes_to_u64s, u64s_to_bytes};

/// The tree offsets that *hold* a block before phase `k` and are scheduled
/// to forward it: `j ≡ 0 (mod 2ᵏ⁺¹)`, `j + 2ᵏ < p`, ascending.
fn pat_sender_offsets(p: usize, k: u32) -> impl Iterator<Item = usize> {
    let h = 1usize << k;
    (0..p).step_by(2 * h).take_while(move |j| j + h < p)
}

/// PAT all-gather: `⌈log₂ P⌉` phases, one aggregated message per rank per
/// phase to `(me + 2ᵏ) mod P`, received from `(me − 2ᵏ) mod P`.
///
/// Phase `k` wire load for rank `q`:
/// `Σ counts[(q − j) mod P]` bytes over `j ≡ 0 (mod 2ᵏ⁺¹)`, `j + 2ᵏ < P`,
/// on tag `pat_ag_tag(k)`.
pub(super) fn pat_allgatherv<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    counts: &[usize],
    displs: &[usize],
) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    recvbuf[displs[me]..displs[me] + counts[me]].copy_from_slice(sendbuf);
    for k in (0..ceil_log2(p)).rev() {
        let _probe = span("pat_ag.step");
        let h = 1usize << k;
        let dest = add_mod(me, h, p);
        let from = sub_mod(me, h, p);
        // I am at offset j in the tree of source (me − j): forward every
        // block whose tree schedules a send from my offset this phase.
        let mut payload = Vec::new();
        for j in pat_sender_offsets(p, k) {
            let src = sub_mod(me, j, p);
            payload.extend_from_slice(&recvbuf[displs[src]..displs[src] + counts[src]]);
        }
        let got = comm.sendrecv_buf(dest, pat_ag_tag(k), MsgBuf::from_vec(payload), from, pat_ag_tag(k))?;
        // The sender iterated ITS offsets ascending; mirror its loop to
        // unpack, slicing the one arrival buffer zero-copy.
        let mut at = 0;
        for j in pat_sender_offsets(p, k) {
            let src = sub_mod(from, j, p);
            let block = got.slice(at..at + counts[src]);
            recvbuf[displs[src]..displs[src] + counts[src]].copy_from_slice(block.as_slice());
            at += counts[src];
        }
    }
    Ok(())
}

/// PAT reduce-scatter: the ascending-bit mirror. Phase `k` sends one
/// aggregated message of partials to `(me − 2ᵏ) mod P` — the segments of
/// every destination whose tree offset from me has `lsb = k` — and folds
/// the partials received from `(me + 2ᵏ) mod P` into the working vector.
///
/// Phase `k` wire load for rank `q`:
/// `8 · Σ counts[(q − j) mod P]` bytes over `j ≡ 2ᵏ (mod 2ᵏ⁺¹)`, `j < P`,
/// on tag `pat_rs_tag(k)`.
pub(super) fn pat_reduce_scatter<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u64],
    recvbuf: &mut [u64],
    counts: &[usize],
    op: ReduceOp,
) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    let displs = packed_displs(counts);
    let mut work = sendbuf.to_vec();
    for k in 0..ceil_log2(p) {
        let _probe = span("pat_rs.step");
        let h = 1usize << k;
        let dest = sub_mod(me, h, p);
        let from = add_mod(me, h, p);
        // Destinations whose tree offset from me has lowest set bit k: my
        // aggregation for them is complete (their subtrees delivered at
        // phases < k), so they leave now, toward the root.
        let mut payload = Vec::new();
        for j in ((h)..p).step_by(2 * h) {
            let d = sub_mod(me, j, p);
            payload.extend_from_slice(&work[displs[d]..displs[d] + counts[d]]);
        }
        let got = comm.sendrecv_buf(
            dest,
            pat_rs_tag(k),
            MsgBuf::from_vec(u64s_to_bytes(&payload)),
            from,
            pat_rs_tag(k),
        )?;
        let vals = bytes_to_u64s(got.as_slice())?;
        // I receive for destinations where MY offset j is a scheduled
        // receiver this phase (sender sat at offset j + 2ᵏ).
        let mut at = 0;
        for j in pat_sender_offsets(p, k) {
            let d = sub_mod(me, j, p);
            let len = counts[d];
            op.apply_slice(&mut work[displs[d]..displs[d] + len], &vals[at..at + len]);
            at += len;
        }
    }
    recvbuf.copy_from_slice(&work[displs[me]..displs[me] + counts[me]]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use bruck_comm::ReduceOp;

    use crate::collectives::testutil::{gv_counts, run_gv, run_rs, SIZES};
    use crate::collectives::{AllgathervAlgorithm, ReduceScatterAlgorithm};
    use crate::common::ceil_log2;

    #[test]
    fn pat_allgather_matches_reference_across_sizes() {
        for p in SIZES {
            for seed in [1u64, 5] {
                run_gv(AllgathervAlgorithm::Pat, &gv_counts(p, seed));
            }
        }
    }

    #[test]
    fn pat_reduce_scatter_matches_reference_across_sizes() {
        for p in SIZES {
            for op in ReduceOp::ALL {
                run_rs(ReduceScatterAlgorithm::Pat, &gv_counts(p, 3), op);
            }
        }
    }

    #[test]
    fn every_offset_is_covered_exactly_once() {
        // Tree soundness for any P: each non-root offset receives the
        // block (all-gather) / forwards its aggregate (reduce-scatter) at
        // exactly one phase — the lsb of its offset.
        for p in [2usize, 3, 5, 7, 8, 12, 13, 16, 31] {
            let mut reached = vec![0u32; p];
            for k in 0..ceil_log2(p) {
                let h = 1usize << k;
                for j in super::pat_sender_offsets(p, k) {
                    reached[j + h] += 1;
                }
            }
            assert!(reached[1..].iter().all(|&c| c == 1), "p={p}: {reached:?}");
        }
    }

    #[test]
    fn every_phase_sends_exactly_one_message() {
        // j = 0 always qualifies on the holder side and j = 2ᵏ on the
        // mirror side, so PAT's aggregated-message guarantee holds.
        for p in [2usize, 3, 5, 8, 12, 16] {
            for k in 0..ceil_log2(p) {
                assert!(super::pat_sender_offsets(p, k).count() >= 1, "p={p} k={k}");
            }
        }
    }
}
