//! The `bruck-sim` deterministic-schedule fuzz matrix.
//!
//! Every cell runs one full non-uniform exchange under
//! [`bruck_comm::SimComm`] — the cooperative token-passing scheduler with a
//! virtual clock — so the *interleaving itself* is an input: a cell is
//! `(algorithm, workload, schedule seed)`, optionally composed with a
//! [`bruck_comm::FaultPlan`] behind [`bruck_comm::ReliableComm`] and the
//! resilient driver, in which case schedule determinism plus fault
//! determinism makes the whole chaos cell bit-reproducible.
//!
//! Each cell is executed **twice** with the same seed; the harness asserts
//! the schedule traces and result digests are byte-identical (the
//! reproducibility contract a replayable fuzzer stands on), then verifies
//! the received bytes against the closed-form pattern. A failing cell's
//! recorded schedule is handed back so the caller (the `bruck-sim` binary)
//! can save it to a trace file, print the one-command replay, and shrink it.

use crate::cells::{check_block, digest_rank_buf, pattern_send_side};
use bruck_comm::{
    shrink_choices, Communicator, FaultComm, FaultPlan, ReduceOp, ReliableComm, ReliableConfig,
    ScheduleTrace, SimComm, SimConfig, SimStep,
};
use bruck_core::{
    allgatherv, allreduce, alltoallv, packed_displs, pattern_byte, pattern_u64, reduce_scatter,
    reference_allgatherv, reference_allreduce, reference_reduce_scatter, resilient_alltoallv,
    AllgathervAlgorithm, AllreduceAlgorithm, AlltoallvAlgorithm, ExchangeOutcome,
    ReduceScatterAlgorithm, ResilientConfig,
};
use bruck_workload::{Distribution, SizeMatrix};
use std::time::Duration;

/// Workload distributions the matrix draws from, by stable index (the index
/// is what goes into a trace file's `meta` line, so order is part of the
/// trace format).
pub const DISTRIBUTIONS: [Distribution; 3] =
    [Distribution::Uniform, Distribution::Normal, Distribution::POWER_LAW_STEEP];

/// Named fault plans available to sim cells, by stable name. All are
/// repaired by the reliable layer, so every cell must complete lossless;
/// the point here is *reproducibility* of the whole chaos stack, which the
/// determinism re-run asserts.
pub fn fault_plan(name: &str, seed: u64, p: usize) -> Option<FaultPlan> {
    match name {
        "none" => None,
        "clean" => Some(FaultPlan::new(seed)),
        "lossy" => Some(
            FaultPlan::new(seed)
                .with_drop(0.05)
                .with_duplicate(0.05)
                .with_corrupt(0.04)
                .with_delay(0.2, 16),
        ),
        "stall" => Some(FaultPlan::new(seed).with_stall(1 % p.max(1), 3, 40)),
        _ => None,
    }
}

/// Fault-plan names in `meta`-stable order.
pub const FAULT_NAMES: [&str; 4] = ["none", "clean", "lossy", "stall"];

/// One cell of the simulation matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimCell {
    /// Algorithm under test (index into [`AlltoallvAlgorithm::ALL`]).
    pub algo: AlltoallvAlgorithm,
    /// Workload distribution (index into [`DISTRIBUTIONS`]).
    pub dist_idx: usize,
    /// World size.
    pub p: usize,
    /// Densest row/column size in the workload matrix.
    pub n_max: usize,
    /// Seed for the workload matrix.
    pub workload_seed: u64,
    /// Seed for the scheduler's choices — the fuzzed input.
    pub sched_seed: u64,
    /// Fault plan name from [`FAULT_NAMES`] ("none" = plain transport).
    pub fault: String,
}

impl SimCell {
    /// Short human-readable label for reports and trace file names.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-p{}-n{}-w{}-s{}-{}",
            self.algo.name().replace([' ', '_'], ""),
            DISTRIBUTIONS[self.dist_idx].label(),
            self.p,
            self.n_max,
            self.workload_seed,
            self.sched_seed,
            self.fault
        )
    }

    /// Encode the cell into a trace `meta` line so a saved trace is
    /// self-describing: `bruck-sim --replay file` reconstructs the cell
    /// from this.
    pub fn encode_meta(&self) -> String {
        let algo_idx = AlltoallvAlgorithm::ALL
            .iter()
            .position(|a| a == &self.algo)
            .unwrap_or(0);
        format!(
            "cell algo={algo_idx} dist={} p={} n={} wseed={} sseed={} fault={}",
            self.dist_idx, self.p, self.n_max, self.workload_seed, self.sched_seed, self.fault
        )
    }

    /// Decode a cell from a trace `meta` line written by
    /// [`SimCell::encode_meta`].
    pub fn decode_meta(meta: &str) -> Result<SimCell, String> {
        let mut toks = meta.split_whitespace();
        if toks.next() != Some("cell") {
            return Err(format!("not a cell meta line: {meta:?}"));
        }
        let mut algo_idx = None;
        let mut dist_idx = None;
        let mut p = None;
        let mut n = None;
        let mut wseed = None;
        let mut sseed = None;
        let mut fault = None;
        for tok in toks {
            let (k, v) = tok.split_once('=').ok_or_else(|| format!("bad token {tok:?}"))?;
            match k {
                "algo" => algo_idx = Some(v.parse::<usize>().map_err(|e| e.to_string())?),
                "dist" => dist_idx = Some(v.parse::<usize>().map_err(|e| e.to_string())?),
                "p" => p = Some(v.parse::<usize>().map_err(|e| e.to_string())?),
                "n" => n = Some(v.parse::<usize>().map_err(|e| e.to_string())?),
                "wseed" => wseed = Some(v.parse::<u64>().map_err(|e| e.to_string())?),
                "sseed" => sseed = Some(v.parse::<u64>().map_err(|e| e.to_string())?),
                "fault" => fault = Some(v.to_string()),
                other => return Err(format!("unknown cell field {other:?}")),
            }
        }
        let algo_idx = algo_idx.ok_or("missing algo")?;
        let algo = *AlltoallvAlgorithm::ALL
            .get(algo_idx)
            .ok_or_else(|| format!("algo index {algo_idx} out of range"))?;
        let dist_idx = dist_idx.ok_or("missing dist")?;
        if dist_idx >= DISTRIBUTIONS.len() {
            return Err(format!("dist index {dist_idx} out of range"));
        }
        Ok(SimCell {
            algo,
            dist_idx,
            p: p.ok_or("missing p")?,
            n_max: n.ok_or("missing n")?,
            workload_seed: wseed.ok_or("missing wseed")?,
            sched_seed: sseed.ok_or("missing sseed")?,
            fault: fault.ok_or("missing fault")?,
        })
    }
}

/// Retransmission policy used for fault cells under the simulator: short
/// virtual timeouts (virtual time is free), generous retry budget so the
/// lossy plans stay inside it.
pub fn sim_reliable_config() -> ReliableConfig {
    ReliableConfig {
        ack_timeout: Duration::from_millis(5),
        max_retries: 12,
        backoff_cap: Duration::from_millis(20),
    }
}

/// Outcome of executing one cell once.
#[derive(Debug)]
pub struct CellOutcome {
    /// `None` if every rank completed with pattern-exact buffers.
    pub failure: Option<String>,
    /// The schedule that was executed.
    pub trace: ScheduleTrace,
    /// Digest of every rank's receive buffer (order-sensitive), for
    /// byte-identical comparison across runs.
    pub digest: u64,
    /// Per-scheduling-point enabled sets + op footprints, recorded only by
    /// [`run_cell_recorded`] (the DPOR explorer's entry point).
    pub steps: Option<Vec<SimStep>>,
}

impl CellOutcome {
    /// True when the cell passed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Execute one cell under the simulator. `replay` substitutes a recorded
/// schedule for the seeded one (used by `--replay` and by the shrinker).
pub fn run_cell(cell: &SimCell, replay: Option<&[u32]>) -> CellOutcome {
    run_cell_opts(cell, replay, false)
}

/// [`run_cell`] with step recording on: the outcome carries the enabled set
/// and op footprint of every scheduling point, which the DPOR explorer
/// turns into backtrack sets.
pub fn run_cell_recorded(cell: &SimCell, replay: Option<&[u32]>) -> CellOutcome {
    run_cell_opts(cell, replay, true)
}

fn run_cell_opts(cell: &SimCell, replay: Option<&[u32]>, record_steps: bool) -> CellOutcome {
    let m = SizeMatrix::generate(
        DISTRIBUTIONS[cell.dist_idx],
        cell.workload_seed,
        cell.p,
        cell.n_max,
    );
    let cfg = SimConfig {
        seed: cell.sched_seed,
        replay: replay.map(<[u32]>::to_vec),
        meta: cell.encode_meta(),
        record_steps,
    };
    let plan = fault_plan(&cell.fault, cell.sched_seed, cell.p);
    let m_ref = &m;
    let report = SimComm::try_run(cell.p, &cfg, move |comm| -> Result<Vec<u8>, String> {
        let me = comm.rank();
        let (sendcounts, sdispls, sendbuf) = pattern_send_side(m_ref, me);
        let recvcounts = m_ref.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        if let Some(plan) = plan.clone() {
            // The production fault stack, schedule-deterministic end to end.
            let fc = FaultComm::new(comm, plan);
            let rc = ReliableComm::with_config(&fc, sim_reliable_config());
            let rcfg = ResilientConfig {
                algorithm: cell.algo,
                deadline: Duration::from_secs(2),
                commit_timeout: Duration::from_millis(400),
                peer_timeout: Duration::from_secs(1),
                epoch: 0,
            };
            let outcome = resilient_alltoallv(
                &rcfg, &rc, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .map_err(|e| format!("rank {me}: resilient exchange failed: {e}"))?;
            match outcome {
                ExchangeOutcome::Complete | ExchangeOutcome::Recovered { .. } => {}
                other => return Err(format!("rank {me}: non-lossless outcome {other:?}")),
            }
            rc.quiesce(Duration::from_millis(25), Duration::from_millis(500))
                .map_err(|e| format!("rank {me}: quiesce failed: {e}"))?;
        } else {
            alltoallv(
                cell.algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                &rdispls,
            )
            .map_err(|e| format!("rank {me}: exchange failed: {e}"))?;
        }
        for src in 0..m_ref.p() {
            if let Some(mm) = check_block(m_ref, me, src, &rdispls, &recvbuf) {
                return Err(format!(
                    "rank {me}: byte {} of block from {src}: got {}, want {}",
                    mm.idx, mm.got, mm.want
                ));
            }
        }
        Ok(recvbuf)
    });
    let mut digest = 0xC0FF_EE00_5EED_0001u64;
    let mut failure = None;
    for (rank, out) in report.outcomes.iter().enumerate() {
        match out {
            Ok(Ok(buf)) => {
                digest = digest_rank_buf(digest, rank, buf);
            }
            Ok(Err(msg)) => {
                failure.get_or_insert_with(|| msg.clone());
            }
            Err(panic_msg) => {
                failure.get_or_insert_with(|| format!("rank {rank} panicked: {panic_msg}"));
            }
        }
    }
    CellOutcome { failure, trace: report.trace, digest, steps: report.steps }
}

/// A failing cell, fully reproducible: the cell, the recorded schedule, and
/// the ddmin-minimized schedule that still fails.
#[derive(Debug)]
pub struct SimFailure {
    /// The failing cell.
    pub cell: SimCell,
    /// First failure message observed.
    pub message: String,
    /// The schedule recorded on the failing run.
    pub trace: ScheduleTrace,
    /// The shrunken schedule (still failing, usually far shorter).
    pub min_trace: ScheduleTrace,
}

/// Matrix configuration.
pub struct SimMatrixConfig {
    /// Algorithms under test.
    pub algorithms: Vec<AlltoallvAlgorithm>,
    /// Indices into [`DISTRIBUTIONS`].
    pub dist_idxs: Vec<usize>,
    /// World size.
    pub p: usize,
    /// Densest workload row.
    pub n_max: usize,
    /// Workload seed.
    pub workload_seed: u64,
    /// Schedule seeds fuzzed per (algorithm, distribution).
    pub sched_seeds: Vec<u64>,
    /// Fault-plan names composed with a subset of algorithms.
    pub fault_names: Vec<&'static str>,
    /// Algorithms that also run the fault-composed cells.
    pub fault_algorithms: Vec<AlltoallvAlgorithm>,
}

impl SimMatrixConfig {
    /// The verify-gate matrix: every algorithm, one workload, two schedule
    /// seeds, plus the fault stack on the paper's main algorithm.
    pub fn smoke() -> SimMatrixConfig {
        SimMatrixConfig {
            algorithms: AlltoallvAlgorithm::ALL.to_vec(),
            dist_idxs: vec![0],
            p: 5,
            n_max: 24,
            workload_seed: 11,
            sched_seeds: vec![1, 2],
            fault_names: vec!["lossy", "stall"],
            fault_algorithms: vec![AlltoallvAlgorithm::TwoPhaseBruck],
        }
    }

    /// The soak matrix: every algorithm × three distributions × more seeds,
    /// fault stack on two algorithms.
    pub fn full() -> SimMatrixConfig {
        SimMatrixConfig {
            algorithms: AlltoallvAlgorithm::ALL.to_vec(),
            dist_idxs: vec![0, 1, 2],
            p: 7,
            n_max: 32,
            workload_seed: 11,
            sched_seeds: vec![1, 2, 3, 4, 5, 6],
            fault_names: vec!["clean", "lossy", "stall"],
            fault_algorithms: vec![
                AlltoallvAlgorithm::TwoPhaseBruck,
                AlltoallvAlgorithm::SpreadOut,
            ],
        }
    }

    /// Enumerate the matrix cells.
    pub fn cells(&self) -> Vec<SimCell> {
        let mut out = Vec::new();
        for &algo in &self.algorithms {
            for &dist_idx in &self.dist_idxs {
                for &sched_seed in &self.sched_seeds {
                    out.push(SimCell {
                        algo,
                        dist_idx,
                        p: self.p,
                        n_max: self.n_max,
                        workload_seed: self.workload_seed,
                        sched_seed,
                        fault: "none".into(),
                    });
                }
            }
        }
        for &algo in &self.fault_algorithms {
            for fault in &self.fault_names {
                for &sched_seed in &self.sched_seeds {
                    out.push(SimCell {
                        algo,
                        dist_idx: 0,
                        p: self.p,
                        n_max: self.n_max,
                        workload_seed: self.workload_seed,
                        sched_seed,
                        fault: (*fault).into(),
                    });
                }
            }
        }
        out
    }
}

/// Result of a matrix run.
pub struct MatrixReport {
    /// Cells executed (each runs twice for the determinism check).
    pub cells_run: usize,
    /// Failures, each with recorded + shrunken schedules.
    pub failures: Vec<SimFailure>,
}

/// Run every cell twice, asserting determinism, verifying payloads, and
/// shrinking any failure. `progress` is called per cell with its label and
/// pass/fail.
pub fn run_matrix(
    cfg: &SimMatrixConfig,
    mut progress: impl FnMut(&str, bool),
) -> MatrixReport {
    let mut failures = Vec::new();
    let cells = cfg.cells();
    let cells_run = cells.len();
    for cell in cells {
        let first = run_cell(&cell, None);
        let second = run_cell(&cell, None);
        let mut message = first.failure.clone();
        if message.is_none() && first.trace.choices != second.trace.choices {
            message = Some(format!(
                "nondeterministic schedule: run 1 recorded {} choices, run 2 {}",
                first.trace.choices.len(),
                second.trace.choices.len()
            ));
        }
        if message.is_none() && first.digest != second.digest {
            message = Some(format!(
                "nondeterministic results: digest {:#018x} vs {:#018x}",
                first.digest, second.digest
            ));
        }
        let ok = message.is_none();
        progress(&cell.label(), ok);
        if let Some(message) = message {
            let min_choices = shrink_choices(&first.trace.choices, |cand| {
                !run_cell(&cell, Some(cand)).ok()
            });
            let min_trace = ScheduleTrace {
                p: first.trace.p,
                seed: first.trace.seed,
                meta: first.trace.meta.clone(),
                choices: min_choices,
            };
            failures.push(SimFailure { cell, message, trace: first.trace, min_trace });
        }
    }
    MatrixReport { cells_run, failures }
}

/// The collective-family schedules covered by the sim sweep (DESIGN.md §16),
/// in stable label order.
pub const COLL_SCHEDULES: [&str; 8] = [
    "agv/ring",
    "agv/bruck",
    "agv/pat",
    "rs/pairwise",
    "rs/halving",
    "rs/pat",
    "ar/doubling",
    "ar/rsag",
];

/// Non-uniform per-rank counts for the collective sim cells, stirred by the
/// workload seed so different seeds exercise different zero placements.
fn coll_counts(p: usize, seed: u64) -> Vec<usize> {
    (0..p)
        .map(|i| {
            let x = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            if x % 4 == 0 {
                0
            } else {
                (x % 9) as usize + 1
            }
        })
        .collect()
}

/// Outcome of one collective cell run: failure message (if any), the
/// executed schedule, and a digest of every rank's output bytes.
#[derive(Debug)]
pub struct CollOutcome {
    /// `None` if every rank produced the reference result.
    pub failure: Option<String>,
    /// The schedule that was executed.
    pub trace: ScheduleTrace,
    /// Order-sensitive digest of every rank's output.
    pub digest: u64,
}

/// Execute one collective-family schedule under the simulator: dispatch the
/// named schedule on every rank over seeded non-uniform counts and compare
/// each rank's output against the pure reference oracle.
pub fn run_coll_cell(schedule: &str, p: usize, workload_seed: u64, sched_seed: u64) -> CollOutcome {
    let counts = coll_counts(p, workload_seed);
    let total: usize = counts.iter().sum();
    let cfg = SimConfig {
        seed: sched_seed,
        replay: None,
        meta: format!("coll {schedule} p={p} wseed={workload_seed} sseed={sched_seed}"),
        record_steps: false,
    };
    let counts_ref = &counts;
    let report = SimComm::try_run(p, &cfg, move |comm| -> Result<Vec<u8>, String> {
        let me = comm.rank();
        let fail = |what: &str| format!("rank {me}: {schedule} {what}");
        match schedule {
            "agv/ring" | "agv/bruck" | "agv/pat" => {
                let algo = match schedule {
                    "agv/ring" => AllgathervAlgorithm::Ring,
                    "agv/bruck" => AllgathervAlgorithm::Bruck,
                    _ => AllgathervAlgorithm::Pat,
                };
                let inputs: Vec<Vec<u8>> = (0..p)
                    .map(|r| (0..counts_ref[r]).map(|i| pattern_byte(r, i)).collect())
                    .collect();
                let displs = packed_displs(counts_ref);
                let mut recvbuf = vec![0u8; total];
                allgatherv(algo, comm, &inputs[me], &mut recvbuf, counts_ref, &displs)
                    .map_err(|e| fail(&format!("failed: {e}")))?;
                if recvbuf != reference_allgatherv(&inputs) {
                    return Err(fail("diverges from the concatenation reference"));
                }
                Ok(recvbuf)
            }
            "rs/pairwise" | "rs/halving" | "rs/pat" => {
                let algo = match schedule {
                    "rs/pairwise" => ReduceScatterAlgorithm::Pairwise,
                    "rs/halving" => ReduceScatterAlgorithm::RecursiveHalving,
                    _ => ReduceScatterAlgorithm::Pat,
                };
                let inputs: Vec<Vec<u64>> = (0..p)
                    .map(|r| (0..total).map(|i| pattern_u64(r, i)).collect())
                    .collect();
                let want = reference_reduce_scatter(&inputs, counts_ref, ReduceOp::Sum);
                let mut recvbuf = vec![0u64; counts_ref[me]];
                reduce_scatter(algo, comm, &inputs[me], &mut recvbuf, counts_ref, ReduceOp::Sum)
                    .map_err(|e| fail(&format!("failed: {e}")))?;
                if recvbuf != want[me] {
                    return Err(fail("segment diverges from the Sum fold"));
                }
                Ok(recvbuf.iter().flat_map(|v| v.to_le_bytes()).collect())
            }
            "ar/doubling" | "ar/rsag" => {
                let algo = match schedule {
                    "ar/doubling" => AllreduceAlgorithm::RecursiveDoubling,
                    _ => AllreduceAlgorithm::ReduceScatterAllgather,
                };
                let inputs: Vec<Vec<u64>> = (0..p)
                    .map(|r| (0..total).map(|i| pattern_u64(r, i)).collect())
                    .collect();
                let want = reference_allreduce(&inputs, ReduceOp::Sum);
                let mut buf = inputs[me].clone();
                allreduce(algo, comm, &mut buf, ReduceOp::Sum)
                    .map_err(|e| fail(&format!("failed: {e}")))?;
                if buf != want {
                    return Err(fail("diverges from the sequential Sum fold"));
                }
                Ok(buf.iter().flat_map(|v| v.to_le_bytes()).collect())
            }
            other => Err(format!("unknown collective schedule {other:?}")),
        }
    });
    let mut digest = 0xC0FF_EE00_5EED_0001u64;
    let mut failure = None;
    for (rank, out) in report.outcomes.iter().enumerate() {
        match out {
            Ok(Ok(buf)) => digest = digest_rank_buf(digest, rank, buf),
            Ok(Err(msg)) => {
                failure.get_or_insert_with(|| msg.clone());
            }
            Err(panic_msg) => {
                failure.get_or_insert_with(|| format!("rank {rank} panicked: {panic_msg}"));
            }
        }
    }
    CollOutcome { failure, trace: report.trace, digest }
}

/// Run every collective schedule × schedule seed twice, asserting
/// determinism (identical schedule traces and digests) and reference-exact
/// payloads. Returns `(cells_run, failure_messages)`.
pub fn run_coll_matrix(
    p: usize,
    workload_seed: u64,
    sched_seeds: &[u64],
    mut progress: impl FnMut(&str, bool),
) -> (usize, Vec<String>) {
    let mut failures = Vec::new();
    let mut cells_run = 0;
    for schedule in COLL_SCHEDULES {
        for &sched_seed in sched_seeds {
            cells_run += 1;
            let label = format!("{schedule}-p{p}-w{workload_seed}-s{sched_seed}");
            let first = run_coll_cell(schedule, p, workload_seed, sched_seed);
            let second = run_coll_cell(schedule, p, workload_seed, sched_seed);
            let mut message = first.failure.clone();
            if message.is_none() && first.trace.choices != second.trace.choices {
                message = Some(format!(
                    "nondeterministic schedule: run 1 recorded {} choices, run 2 {}",
                    first.trace.choices.len(),
                    second.trace.choices.len()
                ));
            }
            if message.is_none() && first.digest != second.digest {
                message = Some(format!(
                    "nondeterministic results: digest {:#018x} vs {:#018x}",
                    first.digest, second.digest
                ));
            }
            let ok = message.is_none();
            progress(&label, ok);
            if let Some(message) = message {
                failures.push(format!("{label}: {message}"));
            }
        }
    }
    (cells_run, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_meta_round_trips() {
        let cell = SimCell {
            algo: AlltoallvAlgorithm::TwoPhaseBruck,
            dist_idx: 2,
            p: 7,
            n_max: 32,
            workload_seed: 11,
            sched_seed: 42,
            fault: "lossy".into(),
        };
        let decoded = SimCell::decode_meta(&cell.encode_meta()).unwrap();
        assert_eq!(decoded, cell);
        assert!(SimCell::decode_meta("not a cell").is_err());
    }

    #[test]
    fn plain_cell_passes_and_is_deterministic() {
        let cell = SimCell {
            algo: AlltoallvAlgorithm::TwoPhaseBruck,
            dist_idx: 0,
            p: 4,
            n_max: 16,
            workload_seed: 3,
            sched_seed: 9,
            fault: "none".into(),
        };
        let a = run_cell(&cell, None);
        let b = run_cell(&cell, None);
        assert!(a.ok(), "{:?}", a.failure);
        assert_eq!(a.trace.choices, b.trace.choices);
        assert_eq!(a.digest, b.digest);
        // And the recorded schedule replays to the same schedule + digest.
        let replayed = run_cell(&cell, Some(&a.trace.choices));
        assert!(replayed.ok(), "{:?}", replayed.failure);
        assert_eq!(replayed.trace.choices, a.trace.choices);
        assert_eq!(replayed.digest, a.digest);
    }

    #[test]
    fn collective_cells_pass_and_are_deterministic() {
        let (cells_run, failures) =
            run_coll_matrix(5, 11, &[1, 2], |_label, ok| assert!(ok));
        assert_eq!(cells_run, COLL_SCHEDULES.len() * 2);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn fault_cell_is_lossless_and_reproducible() {
        let cell = SimCell {
            algo: AlltoallvAlgorithm::TwoPhaseBruck,
            dist_idx: 0,
            p: 3,
            n_max: 8,
            workload_seed: 3,
            sched_seed: 5,
            fault: "lossy".into(),
        };
        let a = run_cell(&cell, None);
        let b = run_cell(&cell, None);
        assert!(a.ok(), "{:?}", a.failure);
        assert_eq!(a.trace.choices, b.trace.choices, "chaos cell must be bit-reproducible");
        assert_eq!(a.digest, b.digest);
    }
}
