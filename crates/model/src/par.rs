//! Minimal data-parallel map over OS threads (std-only).
//!
//! The sweep and calibration paths are embarrassingly parallel over
//! independent model evaluations; this helper fans a slice out to
//! `available_parallelism` scoped workers that claim indices from a shared
//! atomic counter. Results come back in input order, so callers get
//! deterministic output regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on all available cores; results are in input order.
///
/// Work is claimed index-at-a-time from an atomic counter, so uneven item
/// costs (e.g. model traces at very different `P`) still balance. Falls back
/// to a serial map for trivial inputs or single-core machines.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker panicked")).collect()
    });

    let mut indexed: Vec<(usize, R)> = parts.into_iter().flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&i| i * 2);
        assert_eq!(out, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_completes_in_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, |&i| {
            // Make early indices expensive to force claim interleaving.
            let mut acc = 0usize;
            for k in 0..(64 - i) * 1000 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }
}
