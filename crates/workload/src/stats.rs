//! Summary statistics and histograms over generated workloads (Figure 10f).

use crate::{Distribution, SizeMatrix};

/// Summary statistics of a block-size population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistStats {
    /// Number of blocks observed.
    pub count: usize,
    /// Smallest block (bytes).
    pub min: usize,
    /// Largest block (bytes).
    pub max: usize,
    /// Mean block size (bytes).
    pub mean: f64,
    /// Population standard deviation (bytes).
    pub stddev: f64,
    /// Total bytes.
    pub total: usize,
}

impl DistStats {
    /// Compute statistics over an iterator of block sizes.
    pub fn from_sizes(sizes: impl IntoIterator<Item = usize>) -> Self {
        let mut count = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut total = 0usize;
        let mut sq = 0.0f64;
        for s in sizes {
            count += 1;
            min = min.min(s);
            max = max.max(s);
            total += s;
            sq += (s as f64) * (s as f64);
        }
        if count == 0 {
            return DistStats { count: 0, min: 0, max: 0, mean: 0.0, stddev: 0.0, total: 0 };
        }
        let mean = total as f64 / count as f64;
        let var = (sq / count as f64 - mean * mean).max(0.0);
        DistStats { count, min, max, mean, stddev: var.sqrt(), total }
    }

    /// Statistics over one rank's row of a distribution.
    pub fn of_row(dist: Distribution, seed: u64, rank: usize, p: usize, n_max: usize) -> Self {
        Self::from_sizes(dist.sample_row(seed, rank, p, n_max))
    }

    /// Statistics over a whole matrix.
    pub fn of_matrix(m: &SizeMatrix) -> Self {
        Self::from_sizes((0..m.p()).flat_map(|src| m.sendcounts(src)))
    }
}

/// Histogram of block sizes into `bins` equal-width buckets over `[0, n_max]`
/// — the data behind the paper's Figure 10f distribution plots.
pub fn histogram(sizes: &[usize], n_max: usize, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    let mut h = vec![0usize; bins];
    let width = (n_max.max(1) as f64) / bins as f64;
    for &s in sizes {
        let b = ((s as f64 / width) as usize).min(bins - 1);
        h[b] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_population() {
        let s = DistStats::from_sizes([2usize, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 9);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(s.total, 40);
    }

    #[test]
    fn empty_population() {
        let s = DistStats::from_sizes([]);
        assert_eq!(s.count, 0);
        assert_eq!(s.total, 0);
    }

    #[test]
    fn histogram_shapes_discriminate_distributions() {
        let p = 10_000;
        let n = 1000;
        let uni = histogram(&Distribution::Uniform.sample_row(1, 0, p, n), n, 10);
        let nor = histogram(&Distribution::Normal.sample_row(1, 0, p, n), n, 10);
        let pow = histogram(&Distribution::POWER_LAW_STEEP.sample_row(1, 0, p, n), n, 10);
        // Uniform: roughly flat.
        assert!(uni.iter().all(|&c| c > p / 10 / 2 && c < p / 10 * 2));
        // Normal: middle bins dominate the tails.
        assert!(nor[4] + nor[5] > 4 * (nor[0] + nor[9] + 1));
        // Power-law: first bin dominates everything else.
        assert!(pow[0] > p * 8 / 10);
    }

    #[test]
    fn histogram_bins_cover_max_value() {
        let h = histogram(&[0, 500, 1000], 1000, 4);
        assert_eq!(h.iter().sum::<usize>(), 3);
        assert_eq!(h[3], 1, "value == n_max lands in the last bin");
    }

    #[test]
    fn of_matrix_equals_flat_stats() {
        let m = SizeMatrix::generate(Distribution::Uniform, 2, 6, 50);
        let s = DistStats::of_matrix(&m);
        assert_eq!(s.count, 36);
        assert_eq!(s.total, m.total_bytes());
        assert_eq!(s.max, m.global_max());
    }
}
