//! The configurable non-uniform all-to-all engine: one parameterized
//! algorithm that subsumes every hand-written variant in this crate.
//!
//! The paper's variants (two-phase, spread-out, padded, SLOAV, …) are points
//! in a small knob space — *Configurable Non-uniform All-to-all Algorithms*
//! (arXiv 2411.02581) decomposes them into orthogonal parameters, and this
//! module implements that decomposition over our existing kernels:
//!
//! | knob | values | what it selects |
//! |---|---|---|
//! | [`EngineTopology`] | oracle / direct / bruck / leader / two-stage | message pattern family |
//! | `radix` | `r ≥ 2` | Bruck digit base: `(r−1)·⌈log_r P⌉` steps, `⌈log_r P⌉` forwards |
//! | `throttle_window` | `None` / `Some(w)` | outstanding pairs for direct exchanges |
//! | [`PaddingRule`] | never / always / threshold | pad blocks to the global max `N` first |
//! | [`IntermediateLayout`] | monolithic / block-views | staging store for Bruck forwarding |
//! | `two_phase_split` | bool | decoupled metadata message vs. combined buffer |
//!
//! Every legacy variant is a **named config point** ([`EngineConfig::as_two_phase`],
//! [`EngineConfig::as_spread_out`], …). The production entry point
//! [`configurable_alltoallv`] *snaps* exact named points to the hand-tuned
//! kernels (which carry the pinned `bruck-probe` spans the conformance suite
//! asserts on) and runs the generalized machinery for every other point;
//! [`configurable_alltoallv_general`] always runs the generalized machinery.
//! The differential gauntlet (`tests/engine_equivalence.rs`) proves the snap
//! is semantics-free: at each named point the general path is byte-identical
//! *and* per-tag message-count-identical to the legacy kernel on every
//! backend, so the engine is a strict generalization, not a ninth sibling.

use bruck_comm::{CommError, CommResult, Communicator, MsgBuf, ReduceOp};

use super::validate_v;
use crate::common::{add_mod, data_tag, meta_tag, rotation_index, sub_mod, SPREAD_TAG};
use crate::radix::{radix_schedule, radix_step_rel_indices, zero_rotation_bruck_radix};
use crate::nonuniform::{
    hierarchical_alltoallv, padded_alltoall, padded_bruck, ranka_two_stage_alltoallv,
    reference_alltoallv, sloav_alltoallv, spread_out_alltoallv, two_phase_bruck,
    vendor_alltoallv, AlltoallvAlgorithm, DEFAULT_GROUP_SIZE, VENDOR_WINDOW,
};

/// When to pad every block to the global maximum size `N` before exchanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaddingRule {
    /// Never pad: exchange exact block sizes (metadata where needed).
    Never,
    /// Always pad (the §3.1 padded family): one allreduce finds `N`, blocks
    /// travel as `N`-byte slots, a final scan strips the padding.
    Always,
    /// Pad only when the global maximum block size is at most this many
    /// bytes — the model-driven regime switch of inequality (3), §3.3.
    Threshold(usize),
}

/// Where intermediate (store-and-forward) blocks live during Bruck steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntermediateLayout {
    /// One monolithic `P × N` working buffer with zero-rotation routing and
    /// in-place final delivery (two-phase Bruck's §6.1 improvement). Costs
    /// one allreduce up front to size the buffer.
    Monolithic,
    /// A pointer array of per-offset block views with basic-Bruck routing
    /// and a final scan (SLOAV's two-layer layout). No allreduce.
    BlockViews,
}

/// The message-pattern family a config runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineTopology {
    /// Blocking pairwise oracle (tests and tiny worlds).
    Oracle,
    /// Direct pairwise exchange: every block travels exactly once
    /// (spread-out / vendor / padded-alltoall family).
    Direct,
    /// Radix-`r` Bruck store-and-forward (padded / two-phase / SLOAV family).
    Bruck,
    /// Leader-based hierarchical exchange over groups.
    Leader {
        /// Ranks per group (leaders are the rank-0 member of each group).
        group: usize,
    },
    /// Ranka et al.'s balanced two-stage decomposition.
    TwoStage,
}

/// One point in the engine's knob space. See the [module docs](self) for the
/// knob table and the config-point ↔ legacy-variant mapping.
///
/// Knobs that a topology does not consult are *don't-cares*: the canonical
/// form (what the named constructors produce and [`EngineConfig::key`]
/// serializes) pins them to `radix = 2`, `throttle_window = None`,
/// `layout = Monolithic`, `two_phase_split = false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Message-pattern family.
    pub topology: EngineTopology,
    /// Bruck digit base (`≥ 2`); consulted by [`EngineTopology::Bruck`] only.
    pub radix: usize,
    /// Outstanding-pair window for direct exchanges (`None` = all `P − 1`
    /// pairs in flight); consulted by [`EngineTopology::Direct`] only.
    pub throttle_window: Option<usize>,
    /// Pad-to-uniform rule; consulted by `Direct` and `Bruck`.
    pub padding: PaddingRule,
    /// Intermediate staging layout; consulted by unpadded `Bruck` only.
    pub layout: IntermediateLayout,
    /// `true`: each Bruck step sends a separate 4-byte-per-block metadata
    /// message, then the packed data (two-phase coupling). `false`: one
    /// combined `[sizes][blocks]` buffer preceded by an 8-byte total-size
    /// exchange (SLOAV coupling). Consulted by unpadded `Bruck` only.
    pub two_phase_split: bool,
}

/// Canonical don't-care defaults (see [`EngineConfig`] docs).
const CANONICAL: EngineConfig = EngineConfig {
    topology: EngineTopology::Oracle,
    radix: 2,
    throttle_window: None,
    padding: PaddingRule::Never,
    layout: IntermediateLayout::Monolithic,
    two_phase_split: false,
};

impl EngineConfig {
    /// The pairwise oracle ([`AlltoallvAlgorithm::Reference`]).
    pub fn as_reference() -> EngineConfig {
        EngineConfig { topology: EngineTopology::Oracle, ..CANONICAL }
    }

    /// All pairs in flight, no padding ([`AlltoallvAlgorithm::SpreadOut`]).
    pub fn as_spread_out() -> EngineConfig {
        EngineConfig { topology: EngineTopology::Direct, ..CANONICAL }
    }

    /// Window of [`VENDOR_WINDOW`] outstanding pairs
    /// ([`AlltoallvAlgorithm::Vendor`]).
    pub fn as_vendor() -> EngineConfig {
        EngineConfig {
            topology: EngineTopology::Direct,
            throttle_window: Some(VENDOR_WINDOW),
            ..CANONICAL
        }
    }

    /// Pad → windowed direct exchange → scan
    /// ([`AlltoallvAlgorithm::PaddedAlltoall`]).
    pub fn as_padded_alltoall() -> EngineConfig {
        EngineConfig {
            topology: EngineTopology::Direct,
            throttle_window: Some(VENDOR_WINDOW),
            padding: PaddingRule::Always,
            ..CANONICAL
        }
    }

    /// Pad → radix-2 Zero Rotation Bruck → scan
    /// ([`AlltoallvAlgorithm::PaddedBruck`]).
    pub fn as_padded_bruck() -> EngineConfig {
        EngineConfig {
            topology: EngineTopology::Bruck,
            padding: PaddingRule::Always,
            ..CANONICAL
        }
    }

    /// Coupled split metadata/data over a monolithic working buffer
    /// ([`AlltoallvAlgorithm::TwoPhaseBruck`]).
    pub fn as_two_phase() -> EngineConfig {
        EngineConfig {
            topology: EngineTopology::Bruck,
            layout: IntermediateLayout::Monolithic,
            two_phase_split: true,
            ..CANONICAL
        }
    }

    /// Combined buffers over a block-view pointer array
    /// ([`AlltoallvAlgorithm::Sloav`]).
    pub fn as_sloav() -> EngineConfig {
        EngineConfig {
            topology: EngineTopology::Bruck,
            layout: IntermediateLayout::BlockViews,
            two_phase_split: false,
            ..CANONICAL
        }
    }

    /// Leader-based hierarchical exchange with groups of
    /// [`DEFAULT_GROUP_SIZE`] ([`AlltoallvAlgorithm::Hierarchical`]).
    pub fn as_hierarchical() -> EngineConfig {
        EngineConfig {
            topology: EngineTopology::Leader { group: DEFAULT_GROUP_SIZE },
            ..CANONICAL
        }
    }

    /// Ranka et al.'s two-stage decomposition
    /// ([`AlltoallvAlgorithm::RankaTwoStage`]).
    pub fn as_ranka_two_stage() -> EngineConfig {
        EngineConfig { topology: EngineTopology::TwoStage, ..CANONICAL }
    }

    /// The named config point reproducing `algo`.
    pub fn for_algorithm(algo: AlltoallvAlgorithm) -> EngineConfig {
        match algo {
            AlltoallvAlgorithm::Reference => Self::as_reference(),
            AlltoallvAlgorithm::SpreadOut => Self::as_spread_out(),
            AlltoallvAlgorithm::Vendor => Self::as_vendor(),
            AlltoallvAlgorithm::PaddedBruck => Self::as_padded_bruck(),
            AlltoallvAlgorithm::PaddedAlltoall => Self::as_padded_alltoall(),
            AlltoallvAlgorithm::TwoPhaseBruck => Self::as_two_phase(),
            AlltoallvAlgorithm::Sloav => Self::as_sloav(),
            AlltoallvAlgorithm::Hierarchical => Self::as_hierarchical(),
            AlltoallvAlgorithm::RankaTwoStage => Self::as_ranka_two_stage(),
        }
    }

    /// Every named config point, paired with the variant it reproduces.
    pub fn named_points() -> [(EngineConfig, AlltoallvAlgorithm); 9] {
        AlltoallvAlgorithm::ALL.map(|a| (Self::for_algorithm(a), a))
    }

    /// The legacy variant this config is an exact point of, if any — only
    /// the knobs the topology actually consults participate in the match,
    /// so don't-care fields never block recognition.
    pub fn as_algorithm(&self) -> Option<AlltoallvAlgorithm> {
        match self.topology {
            EngineTopology::Oracle => Some(AlltoallvAlgorithm::Reference),
            EngineTopology::TwoStage => Some(AlltoallvAlgorithm::RankaTwoStage),
            EngineTopology::Leader { group } => {
                (group == DEFAULT_GROUP_SIZE).then_some(AlltoallvAlgorithm::Hierarchical)
            }
            EngineTopology::Direct => match (self.throttle_window, self.padding) {
                (None, PaddingRule::Never) => Some(AlltoallvAlgorithm::SpreadOut),
                (Some(VENDOR_WINDOW), PaddingRule::Never) => Some(AlltoallvAlgorithm::Vendor),
                (Some(VENDOR_WINDOW), PaddingRule::Always) => {
                    Some(AlltoallvAlgorithm::PaddedAlltoall)
                }
                _ => None,
            },
            EngineTopology::Bruck => {
                if self.radix != 2 {
                    return None;
                }
                match (self.padding, self.layout, self.two_phase_split) {
                    // The padded path ignores layout/split: any radix-2
                    // always-padded Bruck is exactly PaddedBruck.
                    (PaddingRule::Always, _, _) => Some(AlltoallvAlgorithm::PaddedBruck),
                    (PaddingRule::Never, IntermediateLayout::Monolithic, true) => {
                        Some(AlltoallvAlgorithm::TwoPhaseBruck)
                    }
                    (PaddingRule::Never, IntermediateLayout::BlockViews, false) => {
                        Some(AlltoallvAlgorithm::Sloav)
                    }
                    _ => None,
                }
            }
        }
    }

    /// Reject configs outside the knob space.
    pub fn validate(&self) -> CommResult<()> {
        if self.radix < 2 {
            return Err(CommError::BadArgument("engine radix must be at least 2"));
        }
        if self.throttle_window == Some(0) {
            return Err(CommError::BadArgument("throttle window must be at least 1"));
        }
        if let EngineTopology::Leader { group } = self.topology {
            if group == 0 {
                return Err(CommError::BadArgument("leader group must be at least 1"));
            }
        }
        Ok(())
    }

    /// Stable text key for this config — the serialization used by
    /// `tuning.table` and the `bruck-tune` artifact. Only knobs the topology
    /// consults appear, so the key is canonical by construction.
    pub fn key(&self) -> String {
        let pad = |p: PaddingRule| match p {
            PaddingRule::Never => "never".to_string(),
            PaddingRule::Always => "always".to_string(),
            PaddingRule::Threshold(t) => format!("le{t}"),
        };
        match self.topology {
            EngineTopology::Oracle => "oracle".to_string(),
            EngineTopology::TwoStage => "twostage".to_string(),
            EngineTopology::Leader { group } => format!("leader:g={group}"),
            EngineTopology::Direct => {
                let w = match self.throttle_window {
                    None => "none".to_string(),
                    Some(w) => w.to_string(),
                };
                format!("direct:w={w}:pad={}", pad(self.padding))
            }
            EngineTopology::Bruck => {
                let layout = match self.layout {
                    IntermediateLayout::Monolithic => "mono",
                    IntermediateLayout::BlockViews => "views",
                };
                let split = if self.two_phase_split { "meta" } else { "combined" };
                format!(
                    "bruck:r={}:layout={layout}:split={split}:pad={}",
                    self.radix,
                    pad(self.padding)
                )
            }
        }
    }

    /// Parse a [`EngineConfig::key`] string back into a (canonical) config.
    /// Errors name the offending token.
    pub fn parse_key(s: &str) -> Result<EngineConfig, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let parse_pad = |v: &str| -> Result<PaddingRule, String> {
            match v {
                "never" => Ok(PaddingRule::Never),
                "always" => Ok(PaddingRule::Always),
                t if t.starts_with("le") => t[2..]
                    .parse()
                    .map(PaddingRule::Threshold)
                    .map_err(|_| format!("bad padding threshold in {t:?}")),
                other => Err(format!("unknown padding rule {other:?}")),
            }
        };
        let mut cfg = match head {
            "oracle" => EngineConfig::as_reference(),
            "twostage" => EngineConfig::as_ranka_two_stage(),
            "leader" => {
                EngineConfig { topology: EngineTopology::Leader { group: 0 }, ..CANONICAL }
            }
            "direct" => EngineConfig { topology: EngineTopology::Direct, ..CANONICAL },
            "bruck" => EngineConfig { topology: EngineTopology::Bruck, ..CANONICAL },
            other => return Err(format!("unknown engine topology {other:?}")),
        };
        for tok in parts {
            let (k, v) = tok.split_once('=').ok_or_else(|| format!("bad token {tok:?}"))?;
            match (head, k) {
                ("leader", "g") => {
                    let group =
                        v.parse().map_err(|_| format!("bad leader group {v:?}"))?;
                    cfg.topology = EngineTopology::Leader { group };
                }
                ("direct", "w") => {
                    cfg.throttle_window = if v == "none" {
                        None
                    } else {
                        Some(v.parse().map_err(|_| format!("bad window {v:?}"))?)
                    };
                }
                ("direct", "pad") | ("bruck", "pad") => cfg.padding = parse_pad(v)?,
                ("bruck", "r") => {
                    cfg.radix = v.parse().map_err(|_| format!("bad radix {v:?}"))?;
                }
                ("bruck", "layout") => {
                    cfg.layout = match v {
                        "mono" => IntermediateLayout::Monolithic,
                        "views" => IntermediateLayout::BlockViews,
                        other => return Err(format!("unknown layout {other:?}")),
                    };
                }
                ("bruck", "split") => {
                    cfg.two_phase_split = match v {
                        "meta" => true,
                        "combined" => false,
                        other => return Err(format!("unknown split mode {other:?}")),
                    };
                }
                _ => return Err(format!("unknown key {k:?} for topology {head:?}")),
            }
        }
        if let EngineTopology::Leader { group: 0 } = cfg.topology {
            return Err("leader config requires g=<group>".to_string());
        }
        Ok(cfg)
    }
}

/// Dispatch to the hand-tuned legacy kernel for `algo` — the snap target of
/// [`configurable_alltoallv`] and the body of [`crate::alltoallv`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_variant<C: Communicator + ?Sized>(
    algo: AlltoallvAlgorithm,
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    match algo {
        AlltoallvAlgorithm::Reference => {
            reference_alltoallv(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
        }
        AlltoallvAlgorithm::SpreadOut => {
            spread_out_alltoallv(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
        }
        AlltoallvAlgorithm::Vendor => {
            vendor_alltoallv(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
        }
        AlltoallvAlgorithm::PaddedBruck => {
            padded_bruck(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
        }
        AlltoallvAlgorithm::PaddedAlltoall => {
            padded_alltoall(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
        }
        AlltoallvAlgorithm::TwoPhaseBruck => {
            two_phase_bruck(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
        }
        AlltoallvAlgorithm::Sloav => {
            sloav_alltoallv(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
        }
        AlltoallvAlgorithm::Hierarchical => hierarchical_alltoallv(
            comm,
            sendbuf,
            sendcounts,
            sdispls,
            recvbuf,
            recvcounts,
            rdispls,
            DEFAULT_GROUP_SIZE,
        ),
        AlltoallvAlgorithm::RankaTwoStage => ranka_two_stage_alltoallv(
            comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
        ),
    }
}

/// The production engine entry (same contract as `MPI_Alltoallv`): exact
/// named config points snap to the hand-tuned kernels (probe spans and
/// conformance pins live there); every other point runs the generalized
/// machinery. The snap is proven semantics-free by the differential gauntlet
/// — see the [module docs](self).
#[allow(clippy::too_many_arguments)]
pub fn configurable_alltoallv<C: Communicator + ?Sized>(
    comm: &C,
    cfg: &EngineConfig,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    cfg.validate()?;
    if let Some(algo) = cfg.as_algorithm() {
        return dispatch_variant(
            algo, comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
        );
    }
    configurable_alltoallv_general(
        comm, cfg, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
    )
}

/// The generalized engine, with no snapping: every config — named points
/// included — runs the parameterized machinery. This is the subject of the
/// differential gauntlet and the knob-space property tests.
#[allow(clippy::too_many_arguments)]
pub fn configurable_alltoallv_general<C: Communicator + ?Sized>(
    comm: &C,
    cfg: &EngineConfig,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    cfg.validate()?;
    match cfg.topology {
        EngineTopology::Oracle => {
            reference_alltoallv(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
        }
        EngineTopology::TwoStage => ranka_two_stage_alltoallv(
            comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
        ),
        EngineTopology::Leader { group } => hierarchical_alltoallv(
            comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls, group,
        ),
        EngineTopology::Direct => direct_general(
            comm, cfg, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
        ),
        EngineTopology::Bruck => bruck_general(
            comm, cfg, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls,
        ),
    }
}

/// Global maximum block size (one allreduce) — the `N` of the paper.
fn global_n_max<C: Communicator + ?Sized>(comm: &C, sendcounts: &[usize]) -> CommResult<usize> {
    let local_max = sendcounts.iter().copied().max().unwrap_or(0);
    Ok(comm.allreduce_u64(local_max as u64, ReduceOp::Max)? as usize)
}

/// Evaluate the padding rule. `Never` costs nothing; `Always`/`Threshold`
/// cost the sizing allreduce. Returns `Some(n_max)` when blocks must pad.
fn padding_n_max<C: Communicator + ?Sized>(
    comm: &C,
    rule: PaddingRule,
    sendcounts: &[usize],
) -> CommResult<Option<usize>> {
    match rule {
        PaddingRule::Never => Ok(None),
        PaddingRule::Always => Ok(Some(global_n_max(comm, sendcounts)?)),
        PaddingRule::Threshold(t) => {
            let n_max = global_n_max(comm, sendcounts)?;
            Ok((n_max <= t).then_some(n_max))
        }
    }
}

/// Generalized direct (pairwise) exchange: spread-out / vendor / padded
/// alltoall, parameterized by window and padding.
#[allow(clippy::too_many_arguments)]
fn direct_general<C: Communicator + ?Sized>(
    comm: &C,
    cfg: &EngineConfig,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    match padding_n_max(comm, cfg.padding, sendcounts)? {
        Some(n_max) => {
            if n_max == 0 {
                return Ok(()); // nothing anywhere (all blocks empty)
            }
            let mut padded_send = vec![0u8; p * n_max];
            for dst in 0..p {
                let d = sdispls[dst];
                padded_send[dst * n_max..dst * n_max + sendcounts[dst]]
                    .copy_from_slice(&sendbuf[d..d + sendcounts[dst]]);
            }
            let mut padded_recv = vec![0u8; p * n_max];
            padded_recv[me * n_max..(me + 1) * n_max]
                .copy_from_slice(&padded_send[me * n_max..(me + 1) * n_max]);
            let packed = MsgBuf::from_vec(padded_send);
            windowed_pairwise(comm, cfg.throttle_window, p, me, |i| {
                let dest = add_mod(me, i, p);
                comm.isend_buf(dest, SPREAD_TAG, packed.slice(dest * n_max..(dest + 1) * n_max))
            }, |i| {
                let src = sub_mod(me, i, p);
                comm.recv_into(src, SPREAD_TAG, &mut padded_recv[src * n_max..(src + 1) * n_max])
                    .map(drop)
            })?;
            for src in 0..p {
                let want = recvcounts[src];
                recvbuf[rdispls[src]..rdispls[src] + want]
                    .copy_from_slice(&padded_recv[src * n_max..src * n_max + want]);
            }
            Ok(())
        }
        None => {
            recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
                .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);
            if p == 1 {
                return Ok(());
            }
            let packed = MsgBuf::copy_from_slice(sendbuf);
            // recvbuf is borrowed mutably inside the recv closure, so the
            // windowed driver cannot also capture it; split per-source.
            let rbuf = std::cell::RefCell::new(recvbuf);
            windowed_pairwise(comm, cfg.throttle_window, p, me, |i| {
                let dest = add_mod(me, i, p);
                comm.isend_buf(
                    dest,
                    SPREAD_TAG,
                    packed.slice(sdispls[dest]..sdispls[dest] + sendcounts[dest]),
                )
            }, |i| {
                let src = sub_mod(me, i, p);
                let mut rb = rbuf.borrow_mut();
                let n = comm.recv_into(
                    src,
                    SPREAD_TAG,
                    &mut rb[rdispls[src]..rdispls[src] + recvcounts[src]],
                )?;
                debug_assert_eq!(n, recvcounts[src], "peer sent unexpected block size");
                Ok(())
            })
        }
    }
}

/// Drive the `P − 1` pairwise exchanges in windows of `window` outstanding
/// pairs (`None` = one unthrottled batch): post the window's sends, drain
/// its receives, advance — the exact op order of `vendor_alltoallv`, and of
/// `spread_out_alltoallv` when the window covers all pairs.
fn windowed_pairwise<C: Communicator + ?Sized>(
    _comm: &C,
    window: Option<usize>,
    p: usize,
    _me: usize,
    mut send: impl FnMut(usize) -> CommResult<()>,
    mut recv: impl FnMut(usize) -> CommResult<()>,
) -> CommResult<()> {
    let w = window.unwrap_or(p.saturating_sub(1)).max(1);
    let mut next = 1usize;
    while next < p {
        let batch_end = (next + w).min(p);
        for i in next..batch_end {
            send(i)?;
        }
        for i in next..batch_end {
            recv(i)?;
        }
        next = batch_end;
    }
    Ok(())
}

/// Generalized Bruck exchange: padding → uniform radix Bruck; otherwise the
/// non-uniform radix loop in the configured layout/coupling.
#[allow(clippy::too_many_arguments)]
fn bruck_general<C: Communicator + ?Sized>(
    comm: &C,
    cfg: &EngineConfig,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;

    if let Some(n_max) = padding_n_max(comm, cfg.padding, sendcounts)? {
        if n_max == 0 {
            return Ok(());
        }
        let mut padded_send = vec![0u8; p * n_max];
        for dst in 0..p {
            let d = sdispls[dst];
            padded_send[dst * n_max..dst * n_max + sendcounts[dst]]
                .copy_from_slice(&sendbuf[d..d + sendcounts[dst]]);
        }
        let mut padded_recv = vec![0u8; p * n_max];
        zero_rotation_bruck_radix(comm, &padded_send, &mut padded_recv, n_max, cfg.radix)?;
        for src in 0..p {
            let want = recvcounts[src];
            recvbuf[rdispls[src]..rdispls[src] + want]
                .copy_from_slice(&padded_recv[src * n_max..src * n_max + want]);
        }
        return Ok(());
    }

    match cfg.layout {
        IntermediateLayout::Monolithic => bruck_monolithic(
            comm,
            cfg.radix,
            cfg.two_phase_split,
            sendbuf,
            sendcounts,
            sdispls,
            recvbuf,
            recvcounts,
            rdispls,
        ),
        IntermediateLayout::BlockViews => bruck_block_views(
            comm,
            cfg.radix,
            cfg.two_phase_split,
            sendbuf,
            sendcounts,
            sdispls,
            recvbuf,
            recvcounts,
            rdispls,
        ),
    }
}

/// Non-uniform radix Bruck over a monolithic `P × N` working buffer with
/// zero-rotation routing and in-place final delivery. `split = true, radix
/// = 2` is wire-identical to [`two_phase_bruck`]; `crate::two_phase_bruck_radix`
/// is a thin shim over this loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bruck_monolithic<C: Communicator + ?Sized>(
    comm: &C,
    radix: usize,
    split: bool,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    // The monolithic buffer needs the global maximum block size.
    let n_max = global_n_max(comm, sendcounts)?;

    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);
    if p == 1 {
        return Ok(());
    }

    let mut working = vec![0u8; p * n_max];
    let rot = rotation_index(me, p);
    let mut cur_size: Vec<usize> = (0..p).map(|j| sendcounts[rot[j]]).collect();
    let mut in_working = vec![false; p];

    let mut slots: Vec<usize> = Vec::new();

    for (idx, weight, d) in radix_schedule(p, radix) {
        let hop = (d * weight) % p;
        let dest = sub_mod(me, hop, p);
        let src = add_mod(me, hop, p);

        slots.clear();
        slots.extend(radix_step_rel_indices(p, weight, d, radix).map(|i| add_mod(i, me, p)));

        let mut sizes_wire: Vec<u8> = Vec::with_capacity(slots.len() * 4);
        for &j in &slots {
            let sz = u32::try_from(cur_size[j])
                .map_err(|_| CommError::BadArgument("block size exceeds u32 metadata"))?;
            sizes_wire.extend_from_slice(&sz.to_le_bytes());
        }
        let meta_len = slots.len() * 4;

        let pack_payload = |out: &mut Vec<u8>,
                            working: &[u8],
                            cur_size: &[usize],
                            in_working: &[bool]| {
            for &j in &slots {
                let sz = cur_size[j];
                if in_working[j] {
                    out.extend_from_slice(&working[j * n_max..j * n_max + sz]);
                } else {
                    let dd = sdispls[rot[j]];
                    out.extend_from_slice(&sendbuf[dd..dd + sz]);
                }
            }
        };

        // (meta bytes, payload region) of the received step, in either
        // coupling: split sends sizes then payload on separate tags;
        // combined prepends the sizes to one buffer behind an 8-byte
        // total-size exchange.
        let (meta_got, data_got, data_base) = if split {
            let meta_got = comm.sendrecv_buf(
                dest,
                meta_tag(idx),
                MsgBuf::from_vec(sizes_wire),
                src,
                meta_tag(idx),
            )?;
            if meta_got.len() != meta_len {
                return Err(CommError::BadArgument("metadata length mismatch"));
            }
            let mut data_wire: Vec<u8> = Vec::new();
            pack_payload(&mut data_wire, &working, &cur_size, &in_working);
            let data_got = comm.sendrecv_buf(
                dest,
                data_tag(idx),
                MsgBuf::from_vec(data_wire),
                src,
                data_tag(idx),
            )?;
            (meta_got, data_got, 0usize)
        } else {
            let mut combined = sizes_wire;
            pack_payload(&mut combined, &working, &cur_size, &in_working);
            let total = (combined.len() as u64).to_le_bytes();
            let their_total = comm.sendrecv_buf(
                dest,
                meta_tag(idx),
                MsgBuf::copy_from_slice(&total),
                src,
                meta_tag(idx),
            )?;
            let their_total = u64::from_le_bytes(
                their_total
                    .as_slice()
                    .try_into()
                    .map_err(|_| CommError::BadArgument("bad size header"))?,
            ) as usize;
            let got = comm.sendrecv_buf(
                dest,
                data_tag(idx),
                MsgBuf::from_vec(combined),
                src,
                data_tag(idx),
            )?;
            if got.len() != their_total || got.len() < meta_len {
                return Err(CommError::BadArgument("combined buffer length mismatch"));
            }
            (got.slice(0..meta_len), got.clone(), meta_len)
        };

        // Scatter: a block is home once every digit above the current
        // position is zero — rel < weight · radix.
        let done_bound = weight.saturating_mul(radix);
        let mut at = data_base;
        for (si, &j) in slots.iter().enumerate() {
            let sz = u32::from_le_bytes(
                meta_got[si * 4..si * 4 + 4]
                    .try_into()
                    .map_err(|_| CommError::BadArgument("bad metadata entry"))?,
            ) as usize;
            if at + sz > data_got.len() {
                return Err(CommError::BadArgument("data payload length mismatch"));
            }
            let rel = sub_mod(j, me, p);
            if rel < done_bound {
                debug_assert_eq!(sz, recvcounts[j], "recvcounts disagrees with routed size");
                recvbuf[rdispls[j]..rdispls[j] + sz].copy_from_slice(&data_got[at..at + sz]);
            } else {
                working[j * n_max..j * n_max + sz].copy_from_slice(&data_got[at..at + sz]);
            }
            in_working[j] = true;
            cur_size[j] = sz;
            at += sz;
        }
        if at != data_got.len() {
            return Err(CommError::BadArgument("data payload length mismatch"));
        }
    }
    Ok(())
}

/// Non-uniform radix Bruck over SLOAV's two-layer block-view layout:
/// offset-keyed refcounted views, basic-Bruck direction, final scan.
/// `split = false, radix = 2` is wire-identical to [`sloav_alltoallv`].
#[allow(clippy::too_many_arguments)]
fn bruck_block_views<C: Communicator + ?Sized>(
    comm: &C,
    radix: usize,
    split: bool,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    let mut temp: Vec<Option<MsgBuf>> = vec![None; p];
    let mut sizes: Vec<usize> = (0..p).map(|i| sendcounts[add_mod(me, i, p)]).collect();

    for (idx, weight, d) in radix_schedule(p, radix) {
        let hop = (d * weight) % p;
        let dest = add_mod(me, hop, p); // basic-Bruck direction
        let src = sub_mod(me, hop, p);
        let offsets: Vec<usize> = radix_step_rel_indices(p, weight, d, radix).collect();

        let mut sizes_wire = Vec::with_capacity(offsets.len() * 4);
        for &i in &offsets {
            let sz = u32::try_from(sizes[i])
                .map_err(|_| CommError::BadArgument("block size exceeds u32 metadata"))?;
            sizes_wire.extend_from_slice(&sz.to_le_bytes());
        }
        let meta_len = offsets.len() * 4;

        let pack_payload = |out: &mut Vec<u8>, temp: &[Option<MsgBuf>], sizes: &[usize]| {
            for &i in &offsets {
                match &temp[i] {
                    Some(block) => out.extend_from_slice(block),
                    None => {
                        let dd = sdispls[add_mod(me, i, p)];
                        out.extend_from_slice(&sendbuf[dd..dd + sizes[i]]);
                    }
                }
            }
        };

        let (meta_got, data_got, data_base) = if split {
            let meta_got = comm.sendrecv_buf(
                dest,
                meta_tag(idx),
                MsgBuf::from_vec(sizes_wire),
                src,
                meta_tag(idx),
            )?;
            if meta_got.len() != meta_len {
                return Err(CommError::BadArgument("metadata length mismatch"));
            }
            let mut data_wire: Vec<u8> = Vec::new();
            pack_payload(&mut data_wire, &temp, &sizes);
            let data_got = comm.sendrecv_buf(
                dest,
                data_tag(idx),
                MsgBuf::from_vec(data_wire),
                src,
                data_tag(idx),
            )?;
            (meta_got, data_got, 0usize)
        } else {
            let mut combined = sizes_wire;
            pack_payload(&mut combined, &temp, &sizes);
            let total = (combined.len() as u64).to_le_bytes();
            let their_total = comm.sendrecv_buf(
                dest,
                meta_tag(idx),
                MsgBuf::copy_from_slice(&total),
                src,
                meta_tag(idx),
            )?;
            let their_total = u64::from_le_bytes(
                their_total
                    .as_slice()
                    .try_into()
                    .map_err(|_| CommError::BadArgument("bad size header"))?,
            ) as usize;
            let got = comm.sendrecv_buf(
                dest,
                data_tag(idx),
                MsgBuf::from_vec(combined),
                src,
                data_tag(idx),
            )?;
            if got.len() != their_total || got.len() < meta_len {
                return Err(CommError::BadArgument("combined buffer length mismatch"));
            }
            (got.slice(0..meta_len), got.clone(), meta_len)
        };

        let mut at = data_base;
        for (oi, &i) in offsets.iter().enumerate() {
            let sz = u32::from_le_bytes(
                meta_got[oi * 4..oi * 4 + 4]
                    .try_into()
                    .map_err(|_| CommError::BadArgument("bad metadata entry"))?,
            ) as usize;
            if at + sz > data_got.len() {
                return Err(CommError::BadArgument("data payload length mismatch"));
            }
            temp[i] = Some(data_got.slice(at..at + sz));
            sizes[i] = sz;
            at += sz;
        }
        if at != data_got.len() {
            return Err(CommError::BadArgument("data payload length mismatch"));
        }
    }

    // Final scan (+ implicit rotation): offset i came from (me − i) mod P.
    for i in 0..p {
        let src_rank = sub_mod(me, i, p);
        let want = recvcounts[src_rank];
        let out = &mut recvbuf[rdispls[src_rank]..rdispls[src_rank] + want];
        match &temp[i] {
            Some(block) => {
                debug_assert_eq!(block.len(), want, "routed size disagrees with recvcounts");
                out.copy_from_slice(block);
            }
            None => {
                // Only the self block (offset 0) never travels.
                debug_assert_eq!(i, 0);
                let dd = sdispls[add_mod(me, i, p)];
                out.copy_from_slice(&sendbuf[dd..dd + want]);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{build_send, check_recv, TEST_SIZES};
    use super::*;
    use crate::packed_displs;
    use bruck_comm::ThreadComm;
    use bruck_workload::{Distribution, SizeMatrix};

    fn run_general(cfg: &EngineConfig, m: &SizeMatrix) {
        let p = m.p();
        ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let (sendbuf, sendcounts, sdispls) = build_send(me, m);
            let recvcounts = m.recvcounts(me);
            let rdispls = packed_displs(&recvcounts);
            let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
            configurable_alltoallv_general(
                comm, cfg, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", cfg.key()));
            check_recv(me, m, &recvbuf, &rdispls);
        });
    }

    #[test]
    fn named_points_round_trip_to_their_algorithms() {
        for (cfg, algo) in EngineConfig::named_points() {
            assert_eq!(cfg.as_algorithm(), Some(algo), "{}", cfg.key());
            assert_eq!(EngineConfig::for_algorithm(algo), cfg);
        }
    }

    #[test]
    fn dont_care_knobs_never_block_recognition() {
        // A direct config with a non-default radix is still spread-out.
        let mut cfg = EngineConfig::as_spread_out();
        cfg.radix = 7;
        cfg.two_phase_split = true;
        assert_eq!(cfg.as_algorithm(), Some(AlltoallvAlgorithm::SpreadOut));
        // Padded Bruck ignores layout and split.
        let mut cfg = EngineConfig::as_padded_bruck();
        cfg.layout = IntermediateLayout::BlockViews;
        cfg.two_phase_split = true;
        assert_eq!(cfg.as_algorithm(), Some(AlltoallvAlgorithm::PaddedBruck));
    }

    #[test]
    fn off_points_are_not_recognized() {
        for cfg in [
            EngineConfig { radix: 4, ..EngineConfig::as_two_phase() },
            EngineConfig {
                throttle_window: Some(8),
                ..EngineConfig::as_spread_out()
            },
            EngineConfig {
                padding: PaddingRule::Threshold(64),
                ..EngineConfig::as_padded_bruck()
            },
            EngineConfig { two_phase_split: false, ..EngineConfig::as_two_phase() },
            EngineConfig { two_phase_split: true, ..EngineConfig::as_sloav() },
            EngineConfig {
                topology: EngineTopology::Leader { group: 3 },
                ..CANONICAL
            },
        ] {
            assert_eq!(cfg.as_algorithm(), None, "{}", cfg.key());
        }
    }

    #[test]
    fn key_round_trips_for_named_and_general_points() {
        let mut configs: Vec<EngineConfig> =
            EngineConfig::named_points().iter().map(|(c, _)| *c).collect();
        configs.extend([
            EngineConfig { radix: 4, ..EngineConfig::as_two_phase() },
            EngineConfig { radix: 3, ..EngineConfig::as_sloav() },
            EngineConfig { radix: 5, ..EngineConfig::as_padded_bruck() },
            EngineConfig {
                throttle_window: Some(8),
                padding: PaddingRule::Threshold(64),
                ..EngineConfig::as_spread_out()
            },
            EngineConfig {
                topology: EngineTopology::Leader { group: 4 },
                ..CANONICAL
            },
            EngineConfig { two_phase_split: false, ..EngineConfig::as_two_phase() },
            EngineConfig { two_phase_split: true, ..EngineConfig::as_sloav() },
        ]);
        for cfg in configs {
            let key = cfg.key();
            let parsed = EngineConfig::parse_key(&key)
                .unwrap_or_else(|e| panic!("{key}: {e}"));
            assert_eq!(parsed.key(), key);
            assert_eq!(parsed.as_algorithm(), cfg.as_algorithm(), "{key}");
        }
    }

    #[test]
    fn parse_key_rejects_malformed_keys() {
        for bad in [
            "frobnicate",
            "bruck:r=x",
            "bruck:radix=2",
            "direct:w=0x10",
            "leader",
            "leader:g=zero",
            "bruck:layout=circular",
            "bruck:split=maybe",
            "direct:pad=le",
        ] {
            assert!(EngineConfig::parse_key(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        assert!(EngineConfig { radix: 1, ..EngineConfig::as_two_phase() }.validate().is_err());
        assert!(EngineConfig {
            throttle_window: Some(0),
            ..EngineConfig::as_spread_out()
        }
        .validate()
        .is_err());
        assert!(EngineConfig {
            topology: EngineTopology::Leader { group: 0 },
            ..CANONICAL
        }
        .validate()
        .is_err());
    }

    #[test]
    fn general_path_correct_at_every_named_point() {
        let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 0xE9, 9, 40);
        for (cfg, _) in EngineConfig::named_points() {
            run_general(&cfg, &m);
        }
    }

    #[test]
    fn general_path_correct_across_the_product_space() {
        // Off-point combos: new radices, windows, couplings, and the
        // threshold padding rule on both sides of the threshold.
        let m = SizeMatrix::generate(Distribution::Normal, 0x5EED, 8, 32);
        for cfg in [
            EngineConfig { radix: 3, ..EngineConfig::as_two_phase() },
            EngineConfig { radix: 8, ..EngineConfig::as_two_phase() },
            EngineConfig { radix: 4, ..EngineConfig::as_sloav() },
            EngineConfig { radix: 3, ..EngineConfig::as_padded_bruck() },
            EngineConfig { two_phase_split: false, ..EngineConfig::as_two_phase() },
            EngineConfig { two_phase_split: true, ..EngineConfig::as_sloav() },
            EngineConfig { throttle_window: Some(2), ..EngineConfig::as_spread_out() },
            EngineConfig { throttle_window: None, ..EngineConfig::as_padded_alltoall() },
            EngineConfig {
                padding: PaddingRule::Threshold(1_000_000),
                ..EngineConfig::as_two_phase()
            },
            EngineConfig {
                padding: PaddingRule::Threshold(1),
                ..EngineConfig::as_two_phase()
            },
            EngineConfig {
                topology: EngineTopology::Leader { group: 3 },
                ..CANONICAL
            },
        ] {
            run_general(&cfg, &m);
        }
    }

    #[test]
    fn general_path_survives_every_world_size() {
        for p in TEST_SIZES {
            let m = SizeMatrix::generate(Distribution::Uniform, 0xC0DE + p as u64, p, 24);
            run_general(&EngineConfig { radix: 3, ..EngineConfig::as_two_phase() }, &m);
            run_general(
                &EngineConfig { two_phase_split: true, ..EngineConfig::as_sloav() },
                &m,
            );
        }
    }

    #[test]
    fn zero_blocks_and_skew_survive_the_general_path() {
        let zero = SizeMatrix::uniform(6, 0);
        let mut rows = vec![vec![0usize; 9]; 9];
        rows[1][6] = 100;
        rows[4][4] = 7;
        rows[8][0] = 1;
        let skew = SizeMatrix::from_rows(rows);
        for m in [&zero, &skew] {
            for cfg in [
                EngineConfig { radix: 3, ..EngineConfig::as_two_phase() },
                EngineConfig { two_phase_split: false, ..EngineConfig::as_two_phase() },
                EngineConfig { two_phase_split: true, ..EngineConfig::as_sloav() },
                EngineConfig { throttle_window: Some(2), ..EngineConfig::as_spread_out() },
            ] {
                run_general(&cfg, m);
            }
        }
    }

    #[test]
    fn production_entry_snaps_and_general_agree() {
        let m = SizeMatrix::generate(Distribution::Uniform, 0xABBA, 8, 24);
        let p = m.p();
        for (cfg, _) in EngineConfig::named_points() {
            let outs = ThreadComm::run(p, |comm| {
                let me = comm.rank();
                let (sendbuf, sendcounts, sdispls) = build_send(me, &m);
                let recvcounts = m.recvcounts(me);
                let rdispls = packed_displs(&recvcounts);
                let mut snapped = vec![0u8; recvcounts.iter().sum()];
                configurable_alltoallv(
                    comm, &cfg, &sendbuf, &sendcounts, &sdispls, &mut snapped, &recvcounts,
                    &rdispls,
                )
                .unwrap();
                let mut general = vec![0u8; recvcounts.iter().sum()];
                configurable_alltoallv_general(
                    comm, &cfg, &sendbuf, &sendcounts, &sdispls, &mut general, &recvcounts,
                    &rdispls,
                )
                .unwrap();
                (snapped, general)
            });
            for (snapped, general) in outs {
                assert_eq!(snapped, general, "{}", cfg.key());
            }
        }
    }
}
