//! `bruck-chaos`: fault-injection soak for the resilient alltoallv stack.
//!
//! Two matrices share the binary:
//!
//! * The **fault soak** (default): algorithm × fault-plan × seed, each cell
//!   on a fresh threaded world with `FaultComm` → `ReliableComm` →
//!   `resilient_alltoallv` layered, under a per-cell watchdog. Asserts the
//!   crash-only property: byte-identical completion or a typed error within
//!   the deadline — never a hang, never silent corruption.
//! * The **recovery matrix** (`--recovery-smoke`): algorithm × crash phase
//!   class under the deterministic simulator, driving the full self-healing
//!   stack (`recovering_alltoallv`: detect → agree → shrink → retry) and
//!   asserting typed `Recovered` endings, byte-correctness on the survivor
//!   view, and same-seed digest determinism. `--out FILE` writes the
//!   virtual-time MTTR per cell as line-JSON (the committed
//!   `BENCH_PR8.json`); `--check-against FILE` regression-checks fresh
//!   MTTRs against such a baseline (>1.6x drift advisory, >8x fatal).
//!
//! Usage:
//!   bruck-chaos [--smoke] [--seeds 1,2,3]
//!   bruck-chaos --recovery-smoke [--seeds 1] [--out FILE] [--check-against FILE]
//!
//! `--smoke` runs the CI-sized fault matrix (wired into scripts/verify.sh).
//! Seeds come from `--seeds`, else the `BRUCK_CHAOS_SEEDS` environment
//! variable (comma-separated), else built-in defaults.

use std::process::ExitCode;
use std::time::Instant;

use bruck_check::chaos::{
    run_coll_battery, run_matrix, seeds_from_env, ChaosConfig, COLL_PLAN_NAMES, COLL_SCHEDULES,
};
use bruck_check::recovery::{
    bench_json_line, check_against_baseline, run_recovery_matrix, RecoveryMatrixConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut recovery = false;
    let mut cli_seeds: Option<Vec<u64>> = None;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--recovery-smoke" => recovery = true,
            "--seeds" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--seeds needs a comma-separated list");
                    return ExitCode::from(2);
                };
                cli_seeds =
                    Some(list.split(',').filter_map(|t| t.trim().parse().ok()).collect());
            }
            "--out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--out needs a file path");
                    return ExitCode::from(2);
                };
                out = Some(path.clone());
            }
            "--check-against" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--check-against needs a file path");
                    return ExitCode::from(2);
                };
                baseline = Some(path.clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: bruck-chaos [--smoke] [--seeds 1,2,3]\n       \
                     bruck-chaos --recovery-smoke [--seeds 1] [--out FILE] \
                     [--check-against FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if recovery {
        return run_recovery(cli_seeds, out, baseline);
    }

    let seeds = match cli_seeds {
        Some(s) if !s.is_empty() => s,
        _ => seeds_from_env(&[1, 2]),
    };
    let cfg = if smoke { ChaosConfig::smoke(seeds) } else { ChaosConfig::full(seeds) };

    println!(
        "bruck-chaos: {} matrix, sizes {:?}, seeds {:?}, {} algorithms",
        if smoke { "smoke" } else { "full" },
        cfg.sizes,
        cfg.seeds,
        cfg.algorithms.len(),
    );
    let start = Instant::now();
    let mut failures = 0usize;
    let reports = run_matrix(&cfg, |r| {
        match &r.violation {
            None => println!("  PASS {:<40} {:>8.1?}", r.label, r.elapsed),
            Some(v) => println!("  FAIL {:<40} {:>8.1?}  {v}", r.label, r.elapsed),
        }
    });
    for r in &reports {
        if r.violation.is_some() {
            failures += 1;
        }
    }
    // The collective-family battery: every allgatherv / reduce_scatter /
    // allreduce schedule under the representative plan trio, each rank
    // wrapped in `collective_with_deadline` so crashes end typed.
    let coll_seeds: &[u64] = if smoke { &cfg.seeds[..1.min(cfg.seeds.len())] } else { &cfg.seeds };
    println!(
        "bruck-chaos: collective battery, p={}, {} schedules x plans {:?}, seeds {:?}",
        cfg.sizes[0],
        COLL_SCHEDULES.len(),
        COLL_PLAN_NAMES,
        coll_seeds,
    );
    let coll_reports =
        run_coll_battery(cfg.sizes[0], coll_seeds, cfg.cell_wall_bound, |r| {
            match &r.violation {
                None => println!("  PASS {:<40} {:>8.1?}", r.label, r.elapsed),
                Some(v) => println!("  FAIL {:<40} {:>8.1?}  {v}", r.label, r.elapsed),
            }
        });
    for r in &coll_reports {
        if r.violation.is_some() {
            failures += 1;
        }
    }
    println!(
        "bruck-chaos: {} cells, {failures} failures, {:.1?} total",
        reports.len() + coll_reports.len(),
        start.elapsed()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_recovery(
    cli_seeds: Option<Vec<u64>>,
    out: Option<String>,
    baseline: Option<String>,
) -> ExitCode {
    let seed = cli_seeds.and_then(|s| s.first().copied()).unwrap_or(1);
    let cfg = RecoveryMatrixConfig { seed, ..RecoveryMatrixConfig::default() };
    println!(
        "bruck-chaos: recovery matrix, p={} victim={} seed={} ({} algorithms x 4 phases)",
        cfg.p,
        cfg.victim,
        cfg.seed,
        cfg.algorithms.len(),
    );
    let start = Instant::now();
    let reports = run_recovery_matrix(&cfg, |r| match (&r.violation, &r.mttr) {
        (None, Some(cm)) => println!(
            "  PASS {:<32} crash@{:<4} cycles={} attempts={} mttr={:.1?}",
            r.label,
            r.crash_after_ops,
            cm.cycles,
            cm.attempts,
            cm.mttr.total()
        ),
        (None, None) => println!("  PASS {:<32}", r.label),
        (Some(v), _) => println!("  FAIL {:<32} {v}", r.label),
    });
    let failures = reports.iter().filter(|r| r.violation.is_some()).count();
    println!(
        "bruck-chaos: {} recovery cells, {failures} failures, {:.1?} total",
        reports.len(),
        start.elapsed()
    );

    if let Some(path) = out {
        let mut body = String::new();
        for r in &reports {
            if let Some(line) = bench_json_line(r) {
                body.push_str(&line);
                body.push('\n');
            }
        }
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("bruck-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bruck-chaos: wrote MTTR baseline to {path}");
    }

    let mut fatal_regressions = 0usize;
    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(body) => {
                let (advisories, fatals) = check_against_baseline(&body, &reports);
                for a in &advisories {
                    println!("  ADVISORY {a}");
                }
                for f in &fatals {
                    println!("  FATAL    {f}");
                }
                fatal_regressions = fatals.len();
                println!(
                    "bruck-chaos: baseline check vs {path}: {} advisories, {} fatal",
                    advisories.len(),
                    fatals.len()
                );
            }
            Err(e) => {
                eprintln!("bruck-chaos: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failures == 0 && fatal_regressions == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
