//! Schedule-independence sweep for survivor agreement: across many
//! simulator seeds (each a different interleaving), every live rank must
//! decide the *same* survivor set and dirty verdict — including when a rank
//! crashes in the middle of the agreement itself, and when suspicion
//! evidence starts out one-sided.

use std::time::Duration;

use bruck_comm::{
    agree_survivors, AgreeConfig, CommError, Communicator, FaultComm, FaultPlan, SimComm,
    SimConfig, Suspicion,
};

const SEEDS: u64 = 20;

fn cfg() -> AgreeConfig {
    AgreeConfig {
        round_timeout: Duration::from_millis(400),
        stable_rounds: 2,
        max_rounds: 48,
        poll: Duration::from_millis(1),
    }
}

/// Healthy world, no suspicions: every seed, every rank decides the full
/// membership, clean.
#[test]
fn healthy_agreement_is_schedule_independent() {
    let p = 5;
    for seed in 0..SEEDS {
        let report = SimComm::try_run(p, &SimConfig::from_seed(seed), move |comm| {
            let members: Vec<usize> = (0..p).collect();
            agree_survivors(comm, &members, 7, &cfg(), &Suspicion::none(p), false)
        });
        for (rank, out) in report.outcomes.iter().enumerate() {
            let o = out.as_ref().expect("no panic").as_ref().unwrap();
            assert_eq!(o.survivors, vec![0, 1, 2, 3, 4], "seed {seed} rank {rank}");
            assert!(!o.dirty, "seed {seed} rank {rank}");
            assert!(!o.evicted_me, "seed {seed} rank {rank}");
        }
    }
}

/// One-sided evidence: only rank 0 initially suspects the absent rank 2;
/// flooding must converge every live rank on the same eviction.
#[test]
fn one_sided_suspicion_converges_across_schedules() {
    let p = 5;
    let absent = 2usize;
    for seed in 0..SEEDS {
        let report = SimComm::try_run(p, &SimConfig::from_seed(seed), move |comm| {
            let me = comm.rank();
            if me == absent {
                // Plays dead: never enters the agreement.
                return Ok(None);
            }
            let members: Vec<usize> = (0..p).collect();
            let mut susp = Suspicion::none(p);
            if me == 0 {
                susp.set(absent);
            }
            agree_survivors(comm, &members, 3, &cfg(), &susp, false).map(Some)
        });
        for (rank, out) in report.outcomes.iter().enumerate() {
            let o = out.as_ref().expect("no panic").as_ref().unwrap();
            if rank == absent {
                assert!(o.is_none());
                continue;
            }
            let o = o.as_ref().unwrap();
            assert_eq!(o.survivors, vec![0, 1, 3, 4], "seed {seed} rank {rank}");
            assert!(!o.evicted_me, "seed {seed} rank {rank}");
        }
    }
}

/// A rank crashes *mid-agreement* (after a few data ops inside the
/// protocol): the live ranks must still converge, on every schedule, to the
/// same survivor set — and the dirty votes of the live ranks must survive
/// the extra failure round.
#[test]
fn crash_mid_agreement_still_converges() {
    let p = 5;
    let victim = 3usize;
    for seed in 0..SEEDS {
        let report = SimComm::try_run(p, &SimConfig::from_seed(seed), move |comm| {
            // The victim's first few sends go through (so peers see its
            // round-0 frame on many schedules), then it dies mid-protocol.
            let fc = FaultComm::new(comm, FaultPlan::new(seed).with_crash(victim, 3));
            let members: Vec<usize> = (0..p).collect();
            let dirty = fc.rank() == 1; // one live rank votes dirty
            agree_survivors(&fc, &members, 11, &cfg(), &Suspicion::none(p), dirty)
        });
        let mut decisions: Vec<(Vec<usize>, bool)> = Vec::new();
        for (rank, out) in report.outcomes.iter().enumerate() {
            let res = out.as_ref().expect("no panic");
            if rank == victim {
                assert!(
                    matches!(
                        res,
                        Err(CommError::RankFailed { .. } | CommError::Timeout { .. })
                    ),
                    "seed {seed}: victim must fail typed, got {res:?}"
                );
                continue;
            }
            let o = res.as_ref().unwrap();
            assert!(!o.evicted_me, "seed {seed} rank {rank}");
            assert!(
                !o.survivors.contains(&victim),
                "seed {seed} rank {rank}: victim evicted"
            );
            assert!(o.dirty, "seed {seed} rank {rank}: rank 1's dirty vote must flood");
            decisions.push((o.survivors.clone(), o.dirty));
        }
        for d in &decisions[1..] {
            assert_eq!(d, &decisions[0], "seed {seed}: all live ranks agree exactly");
        }
    }
}

/// Same seed, two runs: the decision (and round count) must be bit-equal —
/// the agreement is deterministic under the simulator, not merely
/// convergent.
#[test]
fn same_seed_reruns_are_identical() {
    let p = 4;
    let run = |seed: u64| {
        SimComm::try_run(p, &SimConfig::from_seed(seed), move |comm| {
            let members: Vec<usize> = (0..p).collect();
            let mut susp = Suspicion::none(p);
            if comm.rank() == 2 {
                susp.set(0); // false, one-sided accusation of a live rank
            }
            agree_survivors(comm, &members, 5, &cfg(), &susp, comm.rank() == 0)
                .map(|o| (o.survivors, o.suspected.positions(), o.rounds, o.dirty))
        })
    };
    for seed in [0u64, 3, 9, 14] {
        let a = run(seed);
        let b = run(seed);
        for (rank, (x, y)) in a.outcomes.iter().zip(b.outcomes.iter()).enumerate() {
            let x = x.as_ref().expect("no panic").as_ref().unwrap();
            let y = y.as_ref().expect("no panic").as_ref().unwrap();
            assert_eq!(x, y, "seed {seed} rank {rank}");
        }
    }
}
