//! Planned exchanges: amortize the counts handshake across repeated
//! all-to-alls with a fixed (or slowly changing) load — the idea behind
//! Jackson & Booth's *planned AlltoAllv* (related work §6 of the paper), and
//! the natural API for fixpoint applications whose counts only change every
//! iteration.
//!
//! An [`ExchangePlan`] captures the `(sendcounts, recvcounts)` pair once;
//! [`ExchangePlan::displs`] are derived packed offsets. Executing the plan is
//! the caller's choice of algorithm (`bruck-core` takes the same arrays), so
//! this type is algorithm-agnostic and lives with the runtime.
//!
//! ## Handshake hygiene
//!
//! Negotiation is a pairwise count exchange. Two things can poison it:
//! a *stale* count message left over from an earlier negotiate that errored
//! mid-handshake, and the *orphans* a failing negotiate itself leaves behind.
//! [`ExchangePlan::negotiate_isolated`] addresses both — each plan instance
//! runs its handshake on its own tag (so a new negotiation can never match an
//! old instance's strays), and on error it drains whatever count messages for
//! this instance have already arrived, so the failure does not strand
//! messages for the next user of the communicator.

use crate::{CommError, CommResult, Communicator, MsgBuf, Tag, RESERVED_TAG_BASE};

/// First tag of the reserved block used by per-instance plan handshakes.
const PLAN_TAG_BASE: Tag = RESERVED_TAG_BASE + 0x1000;
/// Number of distinct plan-instance tags before reuse wraps around.
const PLAN_TAG_SPAN: u32 = 0x100;

/// A reusable non-uniform exchange plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangePlan {
    sendcounts: Vec<usize>,
    sdispls: Vec<usize>,
    recvcounts: Vec<usize>,
    rdispls: Vec<usize>,
}

/// Exclusive prefix sum with overflow checking: adversarial counts (e.g. two
/// `usize::MAX / 2` blocks) must surface as an error, not a wrapped
/// displacement that silently aliases earlier blocks.
fn packed(counts: &[usize]) -> CommResult<Vec<usize>> {
    let mut displs = Vec::with_capacity(counts.len());
    let mut at = 0usize;
    for &c in counts {
        displs.push(at);
        at = at
            .checked_add(c)
            .ok_or(CommError::BadArgument("displacement prefix sum overflows usize"))?;
    }
    Ok(displs)
}

impl ExchangePlan {
    /// Build a plan collectively: runs the counts handshake once so every
    /// rank learns its receive counts. Equivalent to
    /// [`ExchangePlan::negotiate_isolated`] with instance 0.
    pub fn negotiate<C: Communicator + ?Sized>(
        comm: &C,
        sendcounts: Vec<usize>,
    ) -> CommResult<Self> {
        Self::negotiate_isolated(comm, sendcounts, 0)
    }

    /// Build a plan collectively on a per-instance handshake tag.
    ///
    /// All ranks must pass the same `instance`. Distinct instances use
    /// distinct tags (modulo a reuse window of 256), so a negotiation that
    /// errored mid-handshake — leaving count messages in flight — cannot
    /// poison a later negotiation that uses a fresh instance number. On any
    /// handshake error this rank additionally drains already-arrived count
    /// messages for *this* instance before returning, so they are not
    /// stranded in the mailbox.
    pub fn negotiate_isolated<C: Communicator + ?Sized>(
        comm: &C,
        sendcounts: Vec<usize>,
        instance: u32,
    ) -> CommResult<Self> {
        if sendcounts.len() != comm.size() {
            return Err(CommError::BadArgument("sendcounts.len() != size"));
        }
        let tag = PLAN_TAG_BASE + (instance % PLAN_TAG_SPAN);
        match Self::handshake(comm, &sendcounts, tag) {
            Ok(recvcounts) => Self::from_counts(sendcounts, recvcounts),
            Err(e) => {
                // WouldBlock is a transport-level "retry this op" signal, not
                // a failed handshake: non-blocking communicators (the model
                // verifier's commit-and-replay among them) surface it so the
                // caller can re-issue the same op sequence. Draining here
                // would consume messages a retry still needs.
                if !matches!(e, CommError::WouldBlock { .. }) {
                    Self::drain_instance(comm, tag);
                }
                Err(e)
            }
        }
    }

    /// The pairwise count exchange on an instance tag (same schedule as
    /// [`Communicator::alltoall_counts`]).
    fn handshake<C: Communicator + ?Sized>(
        comm: &C,
        sendcounts: &[usize],
        tag: Tag,
    ) -> CommResult<Vec<usize>> {
        let p = comm.size();
        let me = comm.rank();
        let mut recvcounts = vec![0usize; p];
        recvcounts[me] = sendcounts[me];
        for i in 1..p {
            let dest = (me + i) % p;
            let src = (me + p - i) % p;
            comm.send_buf(
                dest,
                tag,
                MsgBuf::from_vec((sendcounts[dest] as u64).to_le_bytes().to_vec()),
            )?;
            let got = comm.recv_buf(src, tag)?;
            let bytes: [u8; 8] = got.as_slice().try_into().map_err(|_| {
                CommError::BadArgument("malformed count message (stale or corrupt handshake)")
            })?;
            recvcounts[src] = u64::from_le_bytes(bytes) as usize;
        }
        Ok(recvcounts)
    }

    /// Best-effort drain of already-arrived count messages on this instance's
    /// tag. Deliberately fallible-silent: we are already on an error path,
    /// and a peer may legitimately not have sent yet (those messages are
    /// unreachable until they arrive; the per-instance tag keeps them from
    /// matching anyone else).
    fn drain_instance<C: Communicator + ?Sized>(comm: &C, tag: Tag) {
        let me = comm.rank();
        for src in 0..comm.size() {
            if src == me {
                continue;
            }
            while let Ok(Some(_)) = comm.probe(src, tag) {
                if comm.recv_buf(src, tag).is_err() {
                    break;
                }
            }
        }
    }

    /// Build a plan from already-known counts (no communication). Errors if
    /// either packed layout's total size overflows `usize`.
    pub fn from_counts(sendcounts: Vec<usize>, recvcounts: Vec<usize>) -> CommResult<Self> {
        let sdispls = packed(&sendcounts)?;
        let rdispls = packed(&recvcounts)?;
        Ok(ExchangePlan { sendcounts, sdispls, recvcounts, rdispls })
    }

    /// Send counts per destination.
    pub fn sendcounts(&self) -> &[usize] {
        &self.sendcounts
    }

    /// Packed send displacements.
    pub fn sdispls(&self) -> &[usize] {
        &self.sdispls
    }

    /// Receive counts per source.
    pub fn recvcounts(&self) -> &[usize] {
        &self.recvcounts
    }

    /// Packed receive displacements.
    pub fn rdispls(&self) -> &[usize] {
        &self.rdispls
    }

    /// Total bytes this rank sends under the plan.
    pub fn send_bytes(&self) -> usize {
        self.sendcounts.iter().sum()
    }

    /// Total bytes this rank receives under the plan.
    pub fn recv_bytes(&self) -> usize {
        self.recvcounts.iter().sum()
    }

    /// Allocate a receive buffer sized for the plan.
    pub fn alloc_recvbuf(&self) -> Vec<u8> {
        vec![0u8; self.recv_bytes()]
    }

    /// Project a negotiated plan onto a shrunken world: keep only the rows
    /// and columns of ranks whose `alive` flag is set, in rank order, and
    /// re-pack the displacements densely. This remaps pending plan state
    /// across a membership repair (`crate::ShrinkComm`) **without a fresh
    /// counts handshake** — the surviving pairwise counts were already
    /// agreed in the dead epoch's negotiation and do not change when
    /// bystanders are evicted.
    ///
    /// `alive.len()` must equal the plan's world size and must keep at
    /// least one rank.
    pub fn remap_survivors(&self, alive: &[bool]) -> CommResult<ExchangePlan> {
        if alive.len() != self.sendcounts.len() {
            return Err(CommError::BadArgument("alive mask length != plan world size"));
        }
        if !alive.iter().any(|&a| a) {
            return Err(CommError::BadArgument("alive mask keeps no ranks"));
        }
        let keep = |counts: &[usize]| -> Vec<usize> {
            counts
                .iter()
                .zip(alive)
                .filter_map(|(&c, &a)| if a { Some(c) } else { None })
                .collect()
        };
        ExchangePlan::from_counts(keep(&self.sendcounts), keep(&self.recvcounts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Communicator, ThreadComm};

    #[test]
    fn negotiate_learns_the_transpose() {
        let p = 5;
        let plans = ThreadComm::run(p, |comm| {
            let me = comm.rank();
            let sendcounts: Vec<usize> = (0..p).map(|d| me * 10 + d).collect();
            ExchangePlan::negotiate(comm, sendcounts).unwrap()
        });
        for (me, plan) in plans.iter().enumerate() {
            for src in 0..p {
                assert_eq!(plan.recvcounts()[src], src * 10 + me);
            }
            assert_eq!(plan.sdispls()[0], 0);
            assert_eq!(plan.rdispls()[1], plan.recvcounts()[0]);
            assert_eq!(plan.recv_bytes(), plan.recvcounts().iter().sum::<usize>());
            assert_eq!(plan.alloc_recvbuf().len(), plan.recv_bytes());
        }
    }

    #[test]
    fn negotiate_rejects_wrong_length() {
        ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                assert!(ExchangePlan::negotiate(comm, vec![1, 2, 3]).is_err());
            }
            // Rank 1 takes the valid path so nothing is left hanging.
        });
    }

    #[test]
    fn from_counts_is_pure() {
        let plan = ExchangePlan::from_counts(vec![2, 0, 3], vec![1, 1, 1]).unwrap();
        assert_eq!(plan.sdispls(), &[0, 2, 2]);
        assert_eq!(plan.rdispls(), &[0, 1, 2]);
        assert_eq!(plan.send_bytes(), 5);
        assert_eq!(plan.recv_bytes(), 3);
    }

    #[test]
    fn remap_survivors_projects_counts_and_repacks() {
        let plan =
            ExchangePlan::from_counts(vec![3, 5, 7, 2, 4], vec![10, 0, 6, 1, 9]).unwrap();
        // Evict ranks 1 and 3.
        let alive = [true, false, true, false, true];
        let shrunk = plan.remap_survivors(&alive).unwrap();
        assert_eq!(shrunk.sendcounts(), &[3, 7, 4]);
        assert_eq!(shrunk.recvcounts(), &[10, 6, 9]);
        assert_eq!(shrunk.sdispls(), &[0, 3, 10]);
        assert_eq!(shrunk.rdispls(), &[0, 10, 16]);
        assert!(plan.remap_survivors(&[true, false]).is_err(), "wrong length");
        assert!(plan.remap_survivors(&[false; 5]).is_err(), "empty world");
    }

    #[test]
    fn displacement_invariants_hold() {
        // The invariants every consumer (bruck-core's validate_v, the
        // bruck-check layout pass) relies on: packed displacements start at
        // zero, advance by exactly the preceding count (so blocks are
        // adjacent and non-overlapping), and end at the total byte count.
        let sendcounts = vec![3usize, 0, 7, 1, 0, 5];
        let recvcounts = vec![2usize, 2, 2, 0, 9, 1];
        let plan = ExchangePlan::from_counts(sendcounts.clone(), recvcounts.clone()).unwrap();
        for (counts, displs, total) in [
            (&sendcounts, plan.sdispls(), plan.send_bytes()),
            (&recvcounts, plan.rdispls(), plan.recv_bytes()),
        ] {
            assert_eq!(displs[0], 0);
            for i in 1..counts.len() {
                assert_eq!(displs[i], displs[i - 1] + counts[i - 1], "block {i} adjacency");
            }
            assert_eq!(displs[counts.len() - 1] + counts[counts.len() - 1], total);
        }
    }

    #[test]
    fn stale_messages_cannot_poison_a_new_instance() {
        // Regression: a count message stranded by an (aborted) instance-0
        // negotiation must not be matched by a later negotiation that uses a
        // fresh instance number.
        ThreadComm::run(2, |comm| {
            let me = comm.rank();
            if me == 1 {
                // Forge the orphan: an instance-0 count that nobody consumed.
                comm.send(0, PLAN_TAG_BASE, &999u64.to_le_bytes()).unwrap();
            }
            comm.barrier().unwrap();
            let plan =
                ExchangePlan::negotiate_isolated(comm, vec![me + 1, me + 2], 1).unwrap();
            if me == 0 {
                assert_eq!(plan.recvcounts(), &[1, 2], "must not see the stale 999");
                // The stale instance-0 message is still sitting there, intact.
                assert_eq!(comm.recv(1, PLAN_TAG_BASE).unwrap(), 999u64.to_le_bytes());
            } else {
                assert_eq!(plan.recvcounts(), &[2, 3]);
            }
        });
    }

    #[test]
    fn failed_negotiate_drains_its_instance_messages() {
        // Regression: when the handshake errors mid-way, count messages for
        // this instance that already arrived must be consumed, not stranded.
        // Without the drain, rank 1's second message below would outlive the
        // failed negotiation and the world would end dirty.
        let world = crate::World::new(3);
        let tag = PLAN_TAG_BASE + 7;
        std::thread::scope(|s| {
            let w = &world;
            s.spawn(move || {
                let comm = ThreadComm::new(w.clone(), 0);
                comm.barrier().unwrap();
                let err =
                    ExchangePlan::negotiate_isolated(&comm, vec![1, 1, 1], 7).unwrap_err();
                assert!(matches!(err, CommError::BadArgument(_)), "typed error, got {err:?}");
            });
            s.spawn(move || {
                let comm = ThreadComm::new(w.clone(), 1);
                // Garbage first (FIFO: this is what rank 0's handshake reads),
                // then a valid count that only the error-path drain will eat.
                comm.send(0, tag, &[1, 2, 3]).unwrap();
                comm.send(0, tag, &42u64.to_le_bytes()).unwrap();
                comm.barrier().unwrap();
                comm.recv(0, tag).unwrap(); // rank 0's step-1 count send
            });
            s.spawn(move || {
                let comm = ThreadComm::new(w.clone(), 2);
                comm.send(0, tag, &7u64.to_le_bytes()).unwrap();
                comm.barrier().unwrap();
                comm.recv(0, tag).unwrap(); // rank 0's step-2 count send
            });
        });
        assert_eq!(world.pending_messages(), 0, "drain must leave no orphans");
    }

    #[test]
    fn overflowing_counts_are_rejected() {
        let huge = vec![usize::MAX / 2 + 1, usize::MAX / 2 + 1];
        assert!(ExchangePlan::from_counts(huge.clone(), vec![0, 0]).is_err());
        assert!(ExchangePlan::from_counts(vec![0, 0], huge).is_err());
        // A single maximal block is fine: the *sum past it* is what overflows.
        assert!(ExchangePlan::from_counts(vec![usize::MAX, 0], vec![0, 0]).is_ok());
        assert!(ExchangePlan::from_counts(vec![0, usize::MAX], vec![0, 0]).is_ok());
    }
}
