//! Algorithm selection: use the paper's §3.3 performance model (and the
//! trace-based machine model) to answer its own motivating question —
//! "with P = 350 and N = 800, should one use two-phase Bruck, padded Bruck,
//! or the vendor's MPI_Alltoallv?" — then run the winner for real.
//!
//! Run with: `cargo run --release --example algorithm_selection`

use bruck_comm::{Communicator, ThreadComm};
use bruck_core::{alltoallv, packed_displs, select_algorithm, AlltoallvAlgorithm, CostParams};
use bruck_model::{predict, MachineModel, NonuniformAlgo};
use bruck_workload::{Distribution, SizeMatrix};

fn main() {
    let params = CostParams::default();

    println!("§3.3 closed-form selection (α = {:.1e}s, β = {:.1e}s/B):", params.alpha, params.beta);
    for (p, n) in [(350usize, 800usize), (1024, 16), (1024, 64), (4096, 256), (32768, 4096)] {
        let choice = select_algorithm(p, n, &params);
        println!("  P = {p:>6}, N = {n:>5} → {}", choice.name());
    }

    println!("\nTrace-model selection on the Theta-like machine:");
    let theta = MachineModel::theta_like();
    for (p, n) in [(350usize, 800usize), (4096, 256), (4096, 4096)] {
        let mut best = (f64::INFINITY, NonuniformAlgo::Vendor);
        for algo in
            [NonuniformAlgo::Vendor, NonuniformAlgo::PaddedBruck, NonuniformAlgo::TwoPhaseBruck]
        {
            let t = predict(algo, Distribution::Uniform, 1, p, n, &theta);
            if t < best.0 {
                best = (t, algo);
            }
        }
        println!("  P = {p:>6}, N = {n:>5} → {} ({:.3} ms)", best.1.name(), best.0 * 1e3);
    }

    // Run the selected algorithm for real at a thread-feasible scale.
    let p = 16;
    let n = 64;
    let selected = select_algorithm(p, n, &params);
    println!("\nRunning the selected algorithm ({}) for real at P = {p}, N = {n}:", selected.name());
    let m = SizeMatrix::generate(Distribution::Uniform, 9, p, n);
    let ok = ThreadComm::run(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf = vec![me as u8; sendcounts.iter().sum()];
        let recvcounts = comm.alltoall_counts(&sendcounts).unwrap();
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        alltoallv(selected, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
            .unwrap();
        (0..p).all(|src| {
            recvbuf[rdispls[src]..rdispls[src] + recvcounts[src]].iter().all(|&b| b == src as u8)
        })
    });
    assert!(ok.iter().all(|&b| b), "exchange verification failed");
    println!("verified on all {p} ranks ✓");

    // Sanity: the selection degrades gracefully — vendor wins for huge N.
    assert_eq!(select_algorithm(4096, 1 << 22, &params), AlltoallvAlgorithm::SpreadOut);
}
