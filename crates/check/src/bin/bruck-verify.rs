//! `bruck-verify`: exhaustive interleaving verification.
//!
//! Two provers in one binary (see `bruck_check::dpor` and DESIGN.md §13):
//!
//! 1. **DPOR over the simulator** — every algorithm runs in tiny worlds
//!    under `bruck_comm::SimComm`, and stateless dynamic partial-order
//!    reduction enumerates every Mazurkiewicz-inequivalent interleaving,
//!    asserting byte-identical results and no deadlock at every leaf. Each
//!    cell reports explored vs. inequivalent vs. naive interleavings, and
//!    exhaustive cells must *converge* within their budget.
//! 2. **Event-runtime wakeup audit** — tiny scenarios on the event runtime
//!    run under a deterministic single-worker pick policy through every
//!    worker-pick interleaving; each schedule's `hb-audit` transition log is
//!    checked for lost wakeups, stale-epoch wakes, double enqueues, and
//!    happens-before (vector-clock) violations.
//!
//! On any violation the witness schedule is saved, ddmin-minimized, and the
//! one-command replay is printed:
//!
//!   bruck-verify --replay target/bruck-verify/<name>.trace
//!
//! Usage:
//!   bruck-verify [--smoke] [--replay FILE] [--with-bug]
//!
//! `--smoke` runs the CI-sized matrix (wired into scripts/verify.sh);
//! `--with-bug` arms the seeded lost-wakeup bug in the event runtime so the
//! auditor must find it (used by the regression test; exits non-zero iff
//! the bug is *missed*).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use bruck_check::dpor::{
    explore_cell, explore_event_scenario, full_cells, smoke_cells, EventScenario, Violation,
};
use bruck_check::sim_matrix::{run_cell, SimCell};
use bruck_comm::ScheduleTrace;

/// Where witness schedules are written (created on demand).
fn trace_dir() -> PathBuf {
    Path::new("target").join("bruck-verify")
}

/// Per-cell wall-clock budget: generous locally, hard stop for CI hangs.
const CELL_WALL_BUDGET: Duration = Duration::from_secs(120);

fn save_violation(name: &str, v: &Violation) {
    let dir = trace_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.trace"));
    let min_path = dir.join(format!("{name}.min.trace"));
    println!("  message:        {}", v.message);
    if v.trace.save(&path).is_ok() {
        println!("  witness trace:  {} ({} choices)", path.display(), v.trace.choices.len());
        println!(
            "  replay with:    cargo run --release -p bruck-check --bin bruck-verify -- --replay {}",
            path.display()
        );
    }
    if v.min_trace.save(&min_path).is_ok() {
        println!(
            "  shrunk witness: {} ({} choices)",
            min_path.display(),
            v.min_trace.choices.len()
        );
    }
}

fn replay(path: &str) -> ExitCode {
    let trace = match ScheduleTrace::load(Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bruck-verify: cannot load trace {path}: {e}");
            return ExitCode::from(2);
        }
    };
    // Event-auditor traces are tagged `event scenario=<name> bug=<bool>`;
    // everything else is a simulator cell meta line.
    if let Some(rest) = trace.meta.strip_prefix("event ") {
        let mut scenario = None;
        let mut bug = false;
        for tok in rest.split_whitespace() {
            match tok.split_once('=') {
                Some(("scenario", v)) => scenario = EventScenario::parse(v),
                Some(("bug", v)) => bug = v == "true",
                _ => {}
            }
        }
        let Some(scenario) = scenario else {
            eprintln!("bruck-verify: trace {path} names no known event scenario");
            return ExitCode::from(2);
        };
        println!(
            "bruck-verify: replaying event scenario {} ({} picks, bug={bug})",
            scenario.name(),
            trace.choices.len()
        );
        let cfg = bruck_comm::SimConfig::replay_trace(&trace);
        let opts = {
            let mut o = bruck_comm::EventVerifyOpts::default();
            o.audit = true;
            if bug {
                o.with_lost_wakeup_bug()
            } else {
                o
            }
        };
        let run = bruck_check::dpor::run_event_scenario(scenario, &cfg, opts);
        return match bruck_check::dpor::event_leaf_check(scenario, &run) {
            None => {
                println!("  PASS — the violation does not reproduce under this schedule");
                ExitCode::SUCCESS
            }
            Some(msg) => {
                println!("  FAIL (reproduced) — {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let cell = match SimCell::decode_meta(&trace.meta) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bruck-verify: trace {path} has no replayable meta: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "bruck-verify: replaying {} ({} scheduling choices)",
        cell.label(),
        trace.choices.len()
    );
    let outcome = run_cell(&cell, Some(&trace.choices));
    match outcome.failure {
        None => {
            println!("  PASS — the violation does not reproduce under this schedule");
            ExitCode::SUCCESS
        }
        Some(msg) => {
            println!("  FAIL (reproduced) — {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut with_bug = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--with-bug" => with_bug = true,
            "--replay" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--replay needs a trace file path");
                    return ExitCode::from(2);
                };
                return replay(path);
            }
            "--help" | "-h" => {
                println!("usage: bruck-verify [--smoke] [--replay FILE] [--with-bug]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let start = Instant::now();
    let mut failed = false;

    if with_bug {
        // Regression mode: the auditor must *find* the seeded lost-wakeup
        // bug, shrink its witness, and the witness must replay.
        println!("bruck-verify: seeded-bug regression (lost wakeup armed)");
        let report = explore_event_scenario(EventScenario::Ping, 10_000, true);
        match &report.violation {
            Some(v) => {
                println!(
                    "  FOUND after {} schedules: {}",
                    report.executions, v.message
                );
                save_violation("seeded-lost-wakeup", v);
                if v.min_trace.choices.len() > 25 {
                    println!(
                        "  FAIL: shrunk witness has {} choices (> 25)",
                        v.min_trace.choices.len()
                    );
                    return ExitCode::FAILURE;
                }
                println!("  witness shrunk to {} choices — OK", v.min_trace.choices.len());
                return ExitCode::SUCCESS;
            }
            None => {
                println!(
                    "  FAIL: explored {} schedules without detecting the seeded bug",
                    report.executions
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let cells = if smoke { smoke_cells() } else { full_cells() };
    println!(
        "bruck-verify: {} matrix — {} DPOR cells + {} event scenarios",
        if smoke { "smoke" } else { "full" },
        cells.len(),
        EventScenario::ALL.len()
    );

    println!("\n== DPOR over SimComm (explored / inequivalent / naive) ==");
    let mut best_pruning_log10 = f64::NEG_INFINITY;
    for vcell in &cells {
        let report = explore_cell(vcell, CELL_WALL_BUDGET);
        let status = if !report.ok() {
            failed = true;
            "FAIL"
        } else if report.converged {
            "PASS"
        } else {
            "PASS (bounded)"
        };
        println!(
            "  {status} {} — explored {} / inequivalent {} / naive ~10^{:.1} (pruning ×10^{:.1})",
            vcell.cell.label(),
            report.executions,
            report.classes,
            report.naive_log10,
            report.pruning_log10(),
        );
        if report.converged {
            best_pruning_log10 = best_pruning_log10.max(report.pruning_log10());
        }
        if !report.converged && vcell.exhaustive {
            println!(
                "    exceeded budget ({} executions) without converging",
                report.executions
            );
        }
        if let Some(v) = &report.violation {
            save_violation(&vcell.cell.label(), v);
        }
    }
    // The reduction must demonstrably beat naive enumeration somewhere ≥10×.
    if best_pruning_log10 < 1.0 {
        println!("  FAIL: no converged cell achieved ≥10× pruning vs naive enumeration");
        failed = true;
    }

    println!("\n== Event-runtime wakeup-protocol audit ==");
    for scenario in EventScenario::ALL {
        let report = explore_event_scenario(scenario, 200_000, false);
        let ok = report.converged && report.violation.is_none();
        failed |= !ok;
        println!(
            "  {} {:13} — {} worker-pick interleavings{}",
            if ok { "PASS" } else { "FAIL" },
            scenario.name(),
            report.executions,
            if report.converged { "" } else { " (budget exceeded before convergence)" },
        );
        if let Some(v) = &report.violation {
            save_violation(&format!("event-{}", scenario.name()), v);
        }
    }

    println!(
        "\nbruck-verify: {} in {:.1?}",
        if failed { "FAIL" } else { "all interleavings verified" },
        start.elapsed()
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
