//! Per-phase wall-clock accounting (the data behind the paper's Figure 2b).

use std::time::Duration;

use crate::probe::Stopwatch;

/// Wall-clock time spent in each phase of an all-to-all call.
///
/// * `setup` — initial rotation (basic/modified), rotation-index creation
///   (zero-rotation), or padding (padded Bruck).
/// * `comm` — the log(P) communication steps, including per-step pack/unpack.
/// * `finalize` — final rotation (basic), output scan (padded, SLOAV).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Initial rotation / padding / index setup.
    pub setup: Duration,
    /// The log(P) communication steps.
    pub comm: Duration,
    /// Final rotation / scan.
    pub finalize: Duration,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.setup + self.comm + self.finalize
    }
}

/// Tiny helper: time a closure into one of the phase slots.
pub(crate) fn timed<T>(slot: &mut Duration, f: impl FnOnce() -> T) -> T {
    let start = Stopwatch::start();
    let out = f();
    *slot += start.elapsed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let mut d = Duration::ZERO;
        let v = timed(&mut d, || 41 + 1);
        assert_eq!(v, 42);
        let first = d;
        timed(&mut d, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d > first);
    }

    #[test]
    fn total_sums_phases() {
        let t = PhaseTimes {
            setup: Duration::from_millis(1),
            comm: Duration::from_millis(2),
            finalize: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(6));
    }
}
