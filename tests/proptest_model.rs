//! Property tests for the cost model: conservation and symmetry invariants
//! of the trace generators over randomized size matrices.
//!
//! Seeded-random (SplitMix64) rather than `proptest`-driven: the workspace
//! builds hermetically with zero external crates, so each property runs a
//! fixed number of deterministic random cases instead of shrinking searches.

use bruck_model::{nonuniform_trace, MatrixSource, NonuniformAlgo, RankSample, StepKind};
use bruck_workload::{SizeMatrix, SplitMix64};

const CASES: u64 = 24;

fn random_matrix(rng: &mut SplitMix64) -> SizeMatrix {
    let p = rng.next_range(2, 14) as usize;
    let rows: Vec<Vec<usize>> =
        (0..p).map(|_| (0..p).map(|_| rng.next_usize(500)).collect()).collect();
    SizeMatrix::from_rows(rows)
}

/// Within every wire step, global bytes-out equals global bytes-in
/// (every byte sent is received by some covered rank).
#[test]
fn per_step_flow_conservation() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF10C ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        for algo in NonuniformAlgo::ALL {
            let trace = nonuniform_trace(algo, &src, &RankSample::all(p));
            for step in &trace.steps {
                if step.kind.tag().is_none() {
                    continue;
                }
                let out: u64 = step.loads.iter().map(|(_, l)| l.bytes_out).sum();
                let inb: u64 = step.loads.iter().map(|(_, l)| l.bytes_in).sum();
                assert_eq!(out, inb, "case {case}: {} step {:?}", algo.name(), step.kind);
            }
        }
    }
}

/// Bruck-family data steps conserve total payload: each block crosses the
/// wire once per set bit (binary) of its offset; the padded variants move
/// exactly count·N per step.
#[test]
fn two_phase_payload_matches_popcount_routing() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x2BA5 ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        let trace = nonuniform_trace(NonuniformAlgo::TwoPhaseBruck, &src, &RankSample::all(p));
        let data: u64 = trace
            .steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Data(_)))
            .flat_map(|s| s.loads.iter().map(|(_, l)| l.bytes_out))
            .sum();
        let mut expect = 0u64;
        for s in 0..p {
            for d in 0..p {
                let offset = (s + p - d) % p;
                expect += (m.get(s, d) as u64) * u64::from(offset.count_ones());
            }
        }
        assert_eq!(data, expect, "case {case}");
    }
}

/// The spread-out trace moves exactly the matrix, minus self blocks.
#[test]
fn spread_out_moves_exactly_the_matrix() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x59E4 ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        let trace = nonuniform_trace(NonuniformAlgo::Vendor, &src, &RankSample::all(p));
        let wire = trace.total_wire_bytes();
        let expect: u64 = (0..p)
            .flat_map(|s| (0..p).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d)
            .map(|(s, d)| m.get(s, d) as u64)
            .sum();
        assert_eq!(wire, expect, "case {case}");
    }
}

/// Time predictions are finite, non-negative, and monotone in the
/// machine's beta.
#[test]
fn predictions_are_sane() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5A9E ^ case);
        let m = random_matrix(&mut rng);
        let p = m.p();
        let src = MatrixSource(&m);
        let fast = bruck_model::MachineModel::theta_like();
        let mut slow = fast.clone();
        slow.beta *= 4.0;
        slow.beta_pair *= 4.0;
        for algo in NonuniformAlgo::ALL {
            let trace = nonuniform_trace(algo, &src, &RankSample::all(p));
            let tf = trace.time(&fast);
            let ts = trace.time(&slow);
            assert!(tf.is_finite() && tf >= 0.0);
            assert!(ts >= tf, "case {case}: {}: slower beta must not be faster", algo.name());
        }
    }
}
