//! Criterion bench for Figure 2: the six uniform Bruck variants, measured on
//! the real threaded runtime (N = 32 bytes, as in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use bruck_comm::{Communicator, ThreadComm};
use bruck_core::{alltoall, AlltoallAlgorithm};

fn run_iters(algo: AlltoallAlgorithm, p: usize, block: usize, iters: u64) -> Duration {
    let per_rank = ThreadComm::run(p, |comm| {
        let sendbuf: Vec<u8> = (0..p * block).map(|i| i as u8).collect();
        let mut recvbuf = vec![0u8; p * block];
        comm.barrier().unwrap();
        let start = Instant::now();
        for _ in 0..iters {
            alltoall(algo, comm, &sendbuf, &mut recvbuf, block).unwrap();
        }
        start.elapsed()
    });
    per_rank.into_iter().max().unwrap()
}

fn bench_uniform_variants(c: &mut Criterion) {
    let block = 32;
    for p in [16usize, 64] {
        let mut group = c.benchmark_group(format!("fig2_uniform_p{p}"));
        group.sample_size(10);
        for algo in [
            AlltoallAlgorithm::BasicBruck,
            AlltoallAlgorithm::BasicBruckDt,
            AlltoallAlgorithm::ModifiedBruck,
            AlltoallAlgorithm::ModifiedBruckDt,
            AlltoallAlgorithm::ZeroCopyBruckDt,
            AlltoallAlgorithm::ZeroRotationBruck,
            AlltoallAlgorithm::SpreadOut,
        ] {
            group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
                b.iter_custom(|iters| run_iters(algo, p, block, iters));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_uniform_variants);
criterion_main!(benches);
