//! Zero Rotation Bruck (§2.1) — the paper's uniform contribution.
//!
//! A synthesis of two tricks: modified Bruck's reversed schedule removes the
//! final rotation, and SLOAV's rotation index array removes the *initial* one
//! — instead of physically rotating the send buffer, the index array
//! `I[j] = (2p − j) % P` maps each working slot `j` to the original send
//! block that the rotation would have placed there. First-time sends read
//! straight out of the user's send buffer through `I`; received blocks are
//! staged in the receive buffer itself (slot `j` is its own final home for
//! uniform loads) and re-sent from there.

use bruck_comm::{CommResult, Communicator, MsgBuf};

use super::validate_uniform;
use crate::common::{add_mod, ceil_log2, rotation_index, step_rel_indices, sub_mod, uniform_step_tag};
use crate::phases::{timed, PhaseTimes};
use crate::probe::span;

/// Zero Rotation Bruck with explicit `memcpy` buffer management.
pub fn zero_rotation_bruck<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    zero_rotation_bruck_timed(comm, sendbuf, recvbuf, block).map(drop)
}

/// [`zero_rotation_bruck`] with per-phase breakdown: `setup` is only the
/// `O(P)` index-array construction — the point of the algorithm.
pub fn zero_rotation_bruck_timed<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<PhaseTimes> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();
    let mut t = PhaseTimes::default();

    // Phase 1 — O(P) rotation index array instead of an O(P·n) data rotation.
    let rot = timed(&mut t.setup, || {
        let _probe = span("zero_rotation.setup");
        rotation_index(me, p)
    });

    timed(&mut t.comm, || -> CommResult<()> {
        // received[j]: slot j's current data lives in recvbuf (it has been
        // received in an earlier step) rather than in sendbuf[I[j]].
        let mut received = vec![false; p];
        for k in 0..ceil_log2(p) {
            let _probe = span("zero_rotation.step");
            let hop = 1usize << k;
            let dest = sub_mod(me, hop, p);
            let src = add_mod(me, hop, p);
            // Per-step pack is the only copy; the wire region moves to the
            // transport as a `MsgBuf` without another allocation.
            let mut wire = Vec::new();
            for i in step_rel_indices(p, k) {
                let abs = add_mod(i, me, p);
                let from = if received[abs] {
                    &recvbuf[abs * block..(abs + 1) * block]
                } else {
                    let orig = rot[abs] * block;
                    &sendbuf[orig..orig + block]
                };
                wire.extend_from_slice(from);
            }
            let got = comm.sendrecv_buf(
                dest,
                uniform_step_tag(k),
                MsgBuf::from_vec(wire),
                src,
                uniform_step_tag(k),
            )?;
            let mut at = 0;
            for i in step_rel_indices(p, k) {
                let abs = add_mod(i, me, p);
                recvbuf[abs * block..(abs + 1) * block].copy_from_slice(&got[at..at + block]);
                received[abs] = true;
                at += block;
            }
        }
        // The self block never travels: I[p] = p.
        recvbuf[me * block..(me + 1) * block]
            .copy_from_slice(&sendbuf[me * block..(me + 1) * block]);
        Ok(())
    })?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallAlgorithm;
    use super::*;
    use bruck_comm::ThreadComm;

    #[test]
    fn zero_rotation_correct_for_all_sizes() {
        for p in TEST_SIZES {
            run_and_check(AlltoallAlgorithm::ZeroRotationBruck, p, 3);
        }
    }

    #[test]
    fn setup_phase_does_no_data_copies() {
        // The timed breakdown must attribute (essentially) everything to comm:
        // setup builds a P-entry index array only. We check structure, not
        // wall-clock: the setup allocation is O(P), independent of block size.
        ThreadComm::run(4, |comm| {
            let send = super::super::testutil::fill_sendbuf(comm.rank(), 4, 64);
            let mut recv = vec![0u8; 4 * 64];
            let t = zero_rotation_bruck_timed(comm, &send, &mut recv, 64).unwrap();
            assert!(t.finalize.is_zero(), "zero-rotation has no final phase");
        });
    }

    #[test]
    fn matches_basic_bruck_output() {
        for p in [3usize, 8, 12] {
            let block = 6;
            let outs = ThreadComm::run(p, |comm| {
                let send = super::super::testutil::fill_sendbuf(comm.rank(), p, block);
                let mut a = vec![0u8; p * block];
                let mut b = vec![0u8; p * block];
                zero_rotation_bruck(comm, &send, &mut a, block).unwrap();
                super::super::basic_bruck(comm, &send, &mut b, block).unwrap();
                (a, b)
            });
            for (a, b) in outs {
                assert_eq!(a, b);
            }
        }
    }
}
