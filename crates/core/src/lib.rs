//! # bruck-core — uniform and non-uniform all-to-all algorithms
//!
//! The primary contribution of *Optimizing the Bruck Algorithm for
//! Non-uniform All-to-all Communication* (Fan et al., HPDC '22), implemented
//! from scratch over the [`bruck_comm`] runtime.
//!
//! ## Uniform (`MPI_Alltoall` signature) — §2
//!
//! | Function | Paper name | Rotations |
//! |---|---|---|
//! | [`basic_bruck`] / [`basic_bruck_dt`] | BasicBruck(-dt) | initial + final |
//! | [`modified_bruck`] / [`modified_bruck_dt`] | ModifiedBruck(-dt) | initial |
//! | [`zero_copy_bruck_dt`] | ZeroCopyBruck-dt | initial |
//! | [`zero_rotation_bruck`] | ZeroRotationBruck | **none** |
//! | [`spread_out_alltoall`] | Spread-out | — |
//!
//! ## Non-uniform (`MPI_Alltoallv` signature) — §3
//!
//! * [`padded_bruck`] — pad → uniform Bruck → scan (§3.1)
//! * [`two_phase_bruck`] — coupled metadata/data exchange over a monolithic
//!   working buffer (§3.2, Algorithm 1)
//! * [`spread_out_alltoallv`], [`vendor_alltoallv`] — the linear baselines
//! * [`padded_alltoall`] — pad → vendor uniform all-to-all → scan
//! * [`sloav_alltoallv`] — the SLOAV (Xu et al.) prior art, reimplemented (§6.1)
//!
//! ## Beyond alltoallv — the collective family
//!
//! [`allgatherv`] (ring / Bruck doubling / PAT), [`reduce_scatter`]
//! (pairwise / recursive halving / PAT), and [`allreduce`] (recursive
//! doubling / reduce_scatter+allgather), dispatched through
//! [`AllgathervAlgorithm`], [`ReduceScatterAlgorithm`], and
//! [`AllreduceAlgorithm`] — see the [`collectives`] module.
//!
//! ## Model — §3.3
//!
//! [`padded_bruck_cost`], [`two_phase_bruck_cost`], [`spread_out_cost`],
//! inequality (3) as [`padded_beats_two_phase`], and [`select_algorithm`].
//!
//! ## Example
//!
//! ```
//! use bruck_comm::{Communicator, ThreadComm};
//! use bruck_core::{packed_displs, two_phase_bruck};
//!
//! // 4 ranks; rank p sends p+1 bytes of value p to every rank.
//! ThreadComm::run(4, |comm| {
//!     let me = comm.rank();
//!     let sendcounts = vec![me + 1; 4];
//!     let sdispls = packed_displs(&sendcounts);
//!     let sendbuf = vec![me as u8; 4 * (me + 1)];
//!     let recvcounts: Vec<usize> = (0..4).map(|src| src + 1).collect();
//!     let rdispls = packed_displs(&recvcounts);
//!     let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
//!     two_phase_bruck(
//!         comm, &sendbuf, &sendcounts, &sdispls,
//!         &mut recvbuf, &recvcounts, &rdispls,
//!     ).unwrap();
//!     for src in 0..4 {
//!         assert!(recvbuf[rdispls[src]..rdispls[src] + src + 1]
//!             .iter().all(|&b| b == src as u8));
//!     }
//! });
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod allgather;
pub mod collectives;
pub mod common;
mod memory;
mod model;
mod nonuniform;
mod phases;
pub mod probe;
mod radix;
mod uniform;

pub use allgather::bruck_allgatherv;
pub use collectives::{
    allgatherv, allreduce, collective_with_deadline, pattern_byte, pattern_u64, reduce_scatter,
    reference_allgatherv, reference_allreduce, reference_reduce_scatter, AllgathervAlgorithm,
    AllreduceAlgorithm, CollectiveOutcome, ReduceScatterAlgorithm,
};
pub use memory::{memory_overhead_bytes, select_algorithm_with_budget};
pub use model::{
    padded_beats_two_phase, padded_bruck_cost, select_algorithm, spread_out_cost,
    two_phase_bruck_cost, CostParams,
};
pub use nonuniform::{
    adaptive_alltoallv, alltoallv, alltoallw, configurable_alltoallv,
    configurable_alltoallv_general, hierarchical_alltoallv, packed_displs, padded_alltoall,
    padded_bruck, piece_len, piece_offset, ranka_two_stage_alltoallv, recovering_alltoallv,
    reference_alltoallv, resilient_alltoallv, sloav_alltoallv, sloav_alltoallv_timed,
    spread_out_alltoallv, two_phase_bruck, two_phase_bruck_timed, vendor_alltoallv,
    AlltoallvAlgorithm, EngineConfig, EngineTopology, ExchangeOutcome, IntermediateLayout, Mttr,
    NonuniformPhases, PaddingRule, PartialExchange, Recovery, RecoveringConfig, RecoveryOutcome,
    ResilientConfig, DEFAULT_GROUP_SIZE, VENDOR_WINDOW,
};
pub use phases::PhaseTimes;
pub use radix::{
    radix_digit, radix_schedule, radix_step_rel_indices, two_phase_bruck_radix,
    zero_rotation_bruck_radix,
};
pub use uniform::{
    alltoall, alltoall_timed, basic_bruck, basic_bruck_dt, basic_bruck_timed, modified_bruck,
    modified_bruck_dt, modified_bruck_timed, reference_alltoall, spread_out_alltoall,
    zero_copy_bruck_dt, zero_rotation_bruck, zero_rotation_bruck_timed, AlltoallAlgorithm,
};
