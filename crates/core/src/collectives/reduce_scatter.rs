//! Vector reduce-scatter schedules: pairwise exchange and recursive
//! halving.
//!
//! Element space: the input vector on every rank is `Σ counts` `u64`s,
//! segment `i` (`counts[i]` elements at the packed offset) destined for
//! rank `i`. Elements travel little-endian (8 bytes each); all byte closed
//! forms below are `8 ×` element counts.

use bruck_comm::{CommResult, Communicator, MsgBuf, ReduceOp};

use crate::common::{add_mod, rs_halving_tag, sub_mod, RS_FOLD_TAG, RS_PAIRWISE_TAG};
use crate::packed_displs;
use crate::probe::span;

use super::{bytes_to_u64s, u64s_to_bytes};
use crate::common::RS_UNFOLD_TAG;

/// Pairwise-exchange reduce_scatter: `P − 1` rounds; in round `i` rank `q`
/// mails its input segment for `(q + i) mod P` and folds the segment
/// arriving from `(q − i) mod P` into its accumulator.
///
/// Wire load per rank on [`RS_PAIRWISE_TAG`]: `P − 1` messages,
/// `8 · (Σ counts − counts[me])` bytes out.
pub(super) fn reduce_scatter_pairwise<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u64],
    recvbuf: &mut [u64],
    counts: &[usize],
    op: ReduceOp,
) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    let displs = packed_displs(counts);
    recvbuf.copy_from_slice(&sendbuf[displs[me]..displs[me] + counts[me]]);
    for i in 1..p {
        let _probe = span("rs_pairwise.step");
        let dest = add_mod(me, i, p);
        let src = sub_mod(me, i, p);
        let payload = u64s_to_bytes(&sendbuf[displs[dest]..displs[dest] + counts[dest]]);
        let got = comm.sendrecv_buf(
            dest,
            RS_PAIRWISE_TAG,
            MsgBuf::from_vec(payload),
            src,
            RS_PAIRWISE_TAG,
        )?;
        op.apply_slice(recvbuf, &bytes_to_u64s(got.as_slice())?);
    }
    Ok(())
}

/// Recursive-halving reduce_scatter. With `m` the largest power of two
/// ≤ `P` and `r = P − m` remainder ranks:
///
/// 1. **Fold** — rank `q ≥ m` sends its whole input vector to `q − m`
///    ([`RS_FOLD_TAG`], `8 · Σ counts` bytes), which reduces it in. The
///    surviving `m` ranks then own the combined element space; virtual
///    rank `v < r` answers for segments `v` *and* `v + m`.
/// 2. **Halving** — `log₂ m` steps, largest groups first. At the step with
///    half-width `h = 2ᵏ`, rank `v` exchanges with `v ⊕ h`
///    ([`rs_halving_tag`]`(k)`): it sends the segments owned by the other
///    half of its current group and folds the received half into its
///    working vector, halving its responsibility each step.
/// 3. **Unfold** — rank `v < r` mails the finished segment `v + m` back to
///    its remainder partner ([`RS_UNFOLD_TAG`], `8 · counts[v + m]` bytes).
pub(super) fn reduce_scatter_halving<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u64],
    recvbuf: &mut [u64],
    counts: &[usize],
    op: ReduceOp,
) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    let displs = packed_displs(counts);
    let m = if p.is_power_of_two() { p } else { p.next_power_of_two() / 2 };
    let r = p - m;
    let mut work = sendbuf.to_vec();

    if me >= m {
        // Remainder rank: hand the whole vector to the partner, collect the
        // finished segment at the end.
        {
            let _probe = span("rs_halving.fold");
            comm.send_buf(me - m, RS_FOLD_TAG, MsgBuf::from_vec(u64s_to_bytes(&work)))?;
        }
        let _probe = span("rs_halving.unfold");
        let got = comm.recv_buf(me - m, RS_UNFOLD_TAG)?;
        recvbuf.copy_from_slice(&bytes_to_u64s(got.as_slice())?);
        return Ok(());
    }

    if me < r {
        let _probe = span("rs_halving.fold");
        let got = comm.recv_buf(me + m, RS_FOLD_TAG)?;
        op.apply_slice(&mut work, &bytes_to_u64s(got.as_slice())?);
    }

    // Segments virtual rank `w` answers for after the fold.
    let owned = |w: usize| -> Vec<usize> {
        if w < r {
            vec![w, w + m]
        } else {
            vec![w]
        }
    };
    let steps = m.trailing_zeros();
    for k in (0..steps).rev() {
        let _probe = span("rs_halving.step");
        let h = 1usize << k;
        let partner = me ^ h;
        let base = me & !(2 * h - 1);
        let other_base = if me < base + h { base + h } else { base };
        let mut payload = Vec::new();
        for w in other_base..other_base + h {
            for seg in owned(w) {
                payload.extend_from_slice(&work[displs[seg]..displs[seg] + counts[seg]]);
            }
        }
        let got = comm.sendrecv_buf(
            partner,
            rs_halving_tag(k),
            MsgBuf::from_vec(u64s_to_bytes(&payload)),
            partner,
            rs_halving_tag(k),
        )?;
        let vals = bytes_to_u64s(got.as_slice())?;
        let my_base = if other_base == base { base + h } else { base };
        let mut at = 0;
        for w in my_base..my_base + h {
            for seg in owned(w) {
                let len = counts[seg];
                op.apply_slice(&mut work[displs[seg]..displs[seg] + len], &vals[at..at + len]);
                at += len;
            }
        }
    }

    if me < r {
        let _probe = span("rs_halving.unfold");
        let seg = me + m;
        let bytes = u64s_to_bytes(&work[displs[seg]..displs[seg] + counts[seg]]);
        comm.send_buf(seg, RS_UNFOLD_TAG, MsgBuf::from_vec(bytes))?;
    }
    recvbuf.copy_from_slice(&work[displs[me]..displs[me] + counts[me]]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use bruck_comm::ReduceOp;

    use crate::collectives::testutil::{gv_counts, run_rs, SIZES};
    use crate::collectives::ReduceScatterAlgorithm;

    #[test]
    fn pairwise_matches_reference_across_sizes() {
        for p in SIZES {
            for op in ReduceOp::ALL {
                run_rs(ReduceScatterAlgorithm::Pairwise, &gv_counts(p, 3), op);
            }
        }
    }

    #[test]
    fn halving_matches_reference_across_sizes() {
        for p in SIZES {
            for op in ReduceOp::ALL {
                run_rs(ReduceScatterAlgorithm::RecursiveHalving, &gv_counts(p, 3), op);
            }
        }
    }

    #[test]
    fn zero_segments_are_legal() {
        for algo in ReduceScatterAlgorithm::ALL {
            run_rs(algo, &[0, 3, 0, 1, 0], ReduceOp::Sum);
            run_rs(algo, &[0, 0, 0], ReduceOp::Max);
        }
    }
}
