//! The checkable matrix: every algorithm × workload combination the verifier
//! sweeps.
//!
//! Each case symbolically executes one collective (uniform all-to-all,
//! non-uniform all-to-allv, a negotiated [`ExchangePlan`] execution, or a
//! vector allgatherv) under [`crate::model::extract`], verifies the output
//! bytes against the deterministic workload pattern, and runs the full
//! analysis suite from [`crate::analysis`] over the extracted schedule.
//!
//! ## Adding an algorithm to the matrix
//!
//! New `bruck-core` variants are picked up automatically when added to
//! `AlltoallAlgorithm::ALL` / `AlltoallvAlgorithm::ALL`. An algorithm outside
//! those enums needs one new `CaseReport` constructor here: build
//! deterministic per-rank inputs, call the algorithm inside `extract`, push a
//! [`Finding::WrongOutput`] on any output mismatch, and `analyze` the
//! extraction. Keep `p` small (≤ 12): symbolic execution replays each rank's
//! body once per blocking receive.

use std::sync::Mutex;

use bruck_comm::{Communicator, ExchangePlan, ReduceOp, VectorCollectives};
use bruck_core::{
    allgatherv, allreduce, alltoall, alltoallv, configurable_alltoallv_general, packed_displs,
    pattern_byte, pattern_u64, reduce_scatter, reference_allgatherv, reference_allreduce,
    reference_reduce_scatter, AllgathervAlgorithm, AllreduceAlgorithm, AlltoallAlgorithm,
    AlltoallvAlgorithm, EngineConfig, EngineTopology, IntermediateLayout, PaddingRule,
    ReduceScatterAlgorithm,
};
use bruck_workload::{Distribution, SizeMatrix};

use crate::analysis::{analyze, check_layout, Finding};
use crate::model::extract;

/// One verified case: a label and whatever findings it produced.
#[derive(Debug)]
pub struct CaseReport {
    /// Human-readable case id, e.g. `"alltoallv/Two-phase Bruck/normal/p=8"`.
    pub name: String,
    /// All findings from output verification and schedule analysis.
    pub findings: Vec<Finding>,
}

impl CaseReport {
    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Deterministic pattern byte for (source, destination, offset-in-block) —
/// same convention as the `bruck-core` test utilities, so a `WrongOutput`
/// here reproduces under `cargo test` too.
fn pattern(src: usize, dst: usize, idx: usize) -> u8 {
    (src.wrapping_mul(167) ^ dst.wrapping_mul(59) ^ idx.wrapping_mul(13)) as u8
}

/// Communicator sizes the matrix sweeps: powers of two, odd, prime, one.
const MATRIX_SIZES: [usize; 5] = [1, 3, 4, 5, 8];

/// Workload generators the non-uniform cases sweep.
fn matrix_distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::Windowed { r: 25 },
        Distribution::Normal,
        Distribution::POWER_LAW_STEEP,
        Distribution::Hotspot { spacing: 3, damping: 4 },
    ]
}

/// Verify one uniform algorithm at one size/block.
pub fn check_uniform(algo: AlltoallAlgorithm, p: usize, block: usize) -> CaseReport {
    let name = format!("alltoall/{}/p={p}/block={block}", algo.name());
    let wrong: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let ext = extract(p, |comm| {
        let me = comm.rank();
        let mut sendbuf = vec![0u8; p * block];
        for dst in 0..p {
            for idx in 0..block {
                sendbuf[dst * block + idx] = pattern(me, dst, idx);
            }
        }
        let mut recvbuf = vec![0u8; p * block];
        alltoall(algo, comm, &sendbuf, &mut recvbuf, block)?;
        // This tail runs exactly once per rank: the body only reaches it on
        // the attempt that completes, after which the rank is never re-run.
        for src in 0..p {
            for idx in 0..block {
                let got = recvbuf[src * block + idx];
                let want = pattern(src, me, idx);
                if got != want {
                    wrong.lock().unwrap_or_else(|e| e.into_inner()).push(Finding::WrongOutput {
                        rank: me,
                        detail: format!(
                            "byte {idx} of block from rank {src}: got {got:#04x}, want {want:#04x}"
                        ),
                    });
                    break;
                }
            }
        }
        Ok(())
    });
    let mut findings = wrong.into_inner().unwrap_or_else(|e| e.into_inner());
    findings.extend(analyze(&ext));
    CaseReport { name, findings }
}

/// Verify one non-uniform algorithm against one size matrix.
pub fn check_alltoallv(algo: AlltoallvAlgorithm, m: &SizeMatrix, label: &str) -> CaseReport {
    let p = m.p();
    let name = format!("alltoallv/{}/{label}/p={p}", algo.name());
    let wrong: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let ext = extract(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
        for dst in 0..p {
            for idx in 0..sendcounts[dst] {
                sendbuf[sdispls[dst] + idx] = pattern(me, dst, idx);
            }
        }
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        alltoallv(algo, comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)?;
        verify_v(me, m, &recvbuf, &rdispls, &wrong);
        Ok(())
    });
    let mut findings = wrong.into_inner().unwrap_or_else(|e| e.into_inner());
    findings.extend(analyze(&ext));
    CaseReport { name, findings }
}

/// Verify one engine config through the *generalized* machinery (no
/// snap-to-variant dispatch) against one size matrix — this is what holds
/// the knob-space product points, not just the named ones, to the same
/// symbolic-execution analyses as the legacy variants.
pub fn check_engine(cfg: &EngineConfig, m: &SizeMatrix, label: &str) -> CaseReport {
    let p = m.p();
    let name = format!("engine/{}/{label}/p={p}", cfg.key());
    let wrong: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let ext = extract(p, |comm| {
        let me = comm.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let mut sendbuf = vec![0u8; sendcounts.iter().sum()];
        for dst in 0..p {
            for idx in 0..sendcounts[dst] {
                sendbuf[sdispls[dst] + idx] = pattern(me, dst, idx);
            }
        }
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        configurable_alltoallv_general(
            comm, cfg, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
        )?;
        verify_v(me, m, &recvbuf, &rdispls, &wrong);
        Ok(())
    });
    let mut findings = wrong.into_inner().unwrap_or_else(|e| e.into_inner());
    findings.extend(analyze(&ext));
    CaseReport { name, findings }
}

/// General-only engine configs the matrix sweeps alongside the nine named
/// points — product-space members the legacy API could not express.
fn engine_off_points() -> Vec<EngineConfig> {
    vec![
        // Radix-4 two-phase Bruck (separate metadata message).
        EngineConfig { radix: 4, ..EngineConfig::as_two_phase() },
        // Radix-3 block-view Bruck with the combined payload.
        EngineConfig { radix: 3, ..EngineConfig::as_sloav() },
        // Tightly throttled direct exchange.
        EngineConfig { throttle_window: Some(2), ..EngineConfig::as_spread_out() },
        // Threshold padding: pads these 16-byte-cap matrices, so the Bruck
        // topology routes onto the uniform-step schedule.
        EngineConfig {
            topology: EngineTopology::Bruck,
            radix: 2,
            throttle_window: None,
            padding: PaddingRule::Threshold(64),
            layout: IntermediateLayout::Monolithic,
            two_phase_split: true,
        },
    ]
}

/// Verify a negotiated-plan execution: `ExchangePlan::negotiate` from send
/// counts only, layout-check the plan's displacements, then run `algo` with
/// the plan's arrays.
pub fn check_plan(algo: AlltoallvAlgorithm, m: &SizeMatrix, label: &str) -> CaseReport {
    let p = m.p();
    let name = format!("plan/{}/{label}/p={p}", algo.name());
    let wrong: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let ext = extract(p, |comm| {
        let me = comm.rank();
        let plan = ExchangePlan::negotiate(comm, m.sendcounts(me))?;
        let mut sendbuf = vec![0u8; plan.send_bytes()];
        for dst in 0..p {
            for idx in 0..plan.sendcounts()[dst] {
                sendbuf[plan.sdispls()[dst] + idx] = pattern(me, dst, idx);
            }
        }
        let mut recvbuf = plan.alloc_recvbuf();
        {
            let mut w = wrong.lock().unwrap_or_else(|e| e.into_inner());
            w.extend(check_layout(
                &format!("rank {me} plan sdispls"),
                plan.sendcounts(),
                plan.sdispls(),
                sendbuf.len(),
            ));
            w.extend(check_layout(
                &format!("rank {me} plan rdispls"),
                plan.recvcounts(),
                plan.rdispls(),
                recvbuf.len(),
            ));
        }
        alltoallv(
            algo,
            comm,
            &sendbuf,
            plan.sendcounts(),
            plan.sdispls(),
            &mut recvbuf,
            plan.recvcounts(),
            plan.rdispls(),
        )?;
        verify_v(me, m, &recvbuf, plan.rdispls(), &wrong);
        Ok(())
    });
    let mut findings = wrong.into_inner().unwrap_or_else(|e| e.into_inner());
    findings.extend(analyze(&ext));
    CaseReport { name, findings }
}

/// Verify the ring allgatherv from `bruck-comm`'s [`VectorCollectives`].
pub fn check_allgatherv(p: usize) -> CaseReport {
    let name = format!("allgatherv/ring/p={p}");
    let wrong: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let ext = extract(p, |comm| {
        let me = comm.rank();
        // Variable-length payload: rank r contributes r+1 pattern bytes.
        let mine: Vec<u8> = (0..me + 1).map(|i| pattern(me, me, i)).collect();
        let all = comm.allgatherv_bufs(bruck_comm::MsgBuf::from_vec(mine))?;
        for (src, got) in all.iter().enumerate() {
            let want: Vec<u8> = (0..src + 1).map(|i| pattern(src, src, i)).collect();
            if got.as_slice() != want.as_slice() {
                wrong.lock().unwrap_or_else(|e| e.into_inner()).push(Finding::WrongOutput {
                    rank: me,
                    detail: format!("allgatherv slot {src}: got {got:?}, want {want:?}"),
                });
            }
        }
        Ok(())
    });
    let mut findings = wrong.into_inner().unwrap_or_else(|e| e.into_inner());
    findings.extend(analyze(&ext));
    CaseReport { name, findings }
}

/// Per-rank contribution/segment counts for the collective-family cases:
/// non-uniform with zero-sized segments sprinkled in.
fn coll_counts(p: usize) -> Vec<usize> {
    (0..p).map(|i| if i % 4 == 3 { 0 } else { (i * 5 + 3) % 7 + 1 }).collect()
}

/// Verify one `bruck-core` allgatherv schedule under symbolic execution:
/// output equals the concatenation reference on every rank, and the
/// extracted wire schedule passes the full analysis suite (deadlock-free,
/// no tag collisions, balanced matches).
pub fn check_collective_allgatherv(algo: AllgathervAlgorithm, p: usize) -> CaseReport {
    let name = format!("collective/allgatherv/{}/p={p}", algo.name());
    let counts = coll_counts(p);
    let displs = packed_displs(&counts);
    let inputs: Vec<Vec<u8>> =
        (0..p).map(|r| (0..counts[r]).map(|i| pattern_byte(r, i)).collect()).collect();
    let want = reference_allgatherv(&inputs);
    let wrong: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let ext = extract(p, |comm| {
        let me = comm.rank();
        let mut recvbuf = vec![0u8; counts.iter().sum()];
        allgatherv(algo, comm, &inputs[me], &mut recvbuf, &counts, &displs)?;
        if recvbuf != want {
            wrong.lock().unwrap_or_else(|e| e.into_inner()).push(Finding::WrongOutput {
                rank: me,
                detail: format!("allgatherv result diverges from concatenation of {counts:?}"),
            });
        }
        Ok(())
    });
    let mut findings = wrong.into_inner().unwrap_or_else(|e| e.into_inner());
    findings.extend(analyze(&ext));
    CaseReport { name, findings }
}

/// Verify one `bruck-core` reduce_scatter schedule under symbolic execution.
pub fn check_collective_reduce_scatter(
    algo: ReduceScatterAlgorithm,
    p: usize,
    op: ReduceOp,
) -> CaseReport {
    let name = format!("collective/reduce_scatter/{}/{op:?}/p={p}", algo.name());
    let counts = coll_counts(p);
    let total: usize = counts.iter().sum();
    let inputs: Vec<Vec<u64>> =
        (0..p).map(|r| (0..total).map(|i| pattern_u64(r, i)).collect()).collect();
    let want = reference_reduce_scatter(&inputs, &counts, op);
    let wrong: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let ext = extract(p, |comm| {
        let me = comm.rank();
        let mut recvbuf = vec![0u64; counts[me]];
        reduce_scatter(algo, comm, &inputs[me], &mut recvbuf, &counts, op)?;
        if recvbuf != want[me] {
            wrong.lock().unwrap_or_else(|e| e.into_inner()).push(Finding::WrongOutput {
                rank: me,
                detail: format!("reduce_scatter segment diverges from the {op:?} fold"),
            });
        }
        Ok(())
    });
    let mut findings = wrong.into_inner().unwrap_or_else(|e| e.into_inner());
    findings.extend(analyze(&ext));
    CaseReport { name, findings }
}

/// Verify one `bruck-core` allreduce schedule under symbolic execution.
pub fn check_collective_allreduce(algo: AllreduceAlgorithm, p: usize, op: ReduceOp) -> CaseReport {
    let name = format!("collective/allreduce/{}/{op:?}/p={p}", algo.name());
    let n = 2 * p + 1;
    let inputs: Vec<Vec<u64>> =
        (0..p).map(|r| (0..n).map(|i| pattern_u64(r, i)).collect()).collect();
    let want = reference_allreduce(&inputs, op);
    let wrong: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let ext = extract(p, |comm| {
        let me = comm.rank();
        let mut buf = inputs[me].clone();
        allreduce(algo, comm, &mut buf, op)?;
        if buf != want {
            wrong.lock().unwrap_or_else(|e| e.into_inner()).push(Finding::WrongOutput {
                rank: me,
                detail: format!("allreduce result diverges from the sequential {op:?} fold"),
            });
        }
        Ok(())
    });
    let mut findings = wrong.into_inner().unwrap_or_else(|e| e.into_inner());
    findings.extend(analyze(&ext));
    CaseReport { name, findings }
}

/// Run the full verification matrix. This is what `bruck-check` (the binary)
/// and `scripts/verify.sh` gate on.
pub fn run_full_matrix() -> Vec<CaseReport> {
    let mut reports = Vec::new();
    // Uniform algorithms: every size, a small and an odd block (block = 0 is
    // the degenerate all-empty exchange and must also be deadlock-free).
    for &p in &MATRIX_SIZES {
        for block in [0, 3] {
            for algo in AlltoallAlgorithm::ALL {
                reports.push(check_uniform(algo, p, block));
            }
        }
    }
    // Non-uniform algorithms: every generator at every size. Seeds vary with
    // (p, distribution index) so cases don't share matrices.
    for (di, dist) in matrix_distributions().into_iter().enumerate() {
        for &p in &MATRIX_SIZES {
            let m = SizeMatrix::generate(dist, 0xC0FFEE + di as u64 * 31 + p as u64, p, 16);
            for algo in AlltoallvAlgorithm::ALL {
                reports.push(check_alltoallv(algo, &m, &dist.label()));
            }
        }
    }
    // Engine configs through the generalized machinery: the nine named
    // points plus off-point members of the knob space, at a prime and a
    // power-of-two size.
    for &p in &[3usize, 8] {
        let m = SizeMatrix::generate(Distribution::Normal, 0xE2617E + p as u64, p, 16);
        for (cfg, _) in EngineConfig::named_points() {
            reports.push(check_engine(&cfg, &m, "normal"));
        }
        for cfg in engine_off_points() {
            reports.push(check_engine(&cfg, &m, "normal"));
        }
    }
    // Negotiated plans: the counts handshake composes with every variant.
    for &p in &[3usize, 8] {
        let m = SizeMatrix::generate(Distribution::POWER_LAW_STEEP, 0xBEEF + p as u64, p, 16);
        for algo in AlltoallvAlgorithm::ALL {
            reports.push(check_plan(algo, &m, "powerlaw"));
        }
    }
    // Vector collectives.
    for &p in &MATRIX_SIZES {
        reports.push(check_allgatherv(p));
    }
    // The collective family (DESIGN.md §16): every schedule at every size;
    // the reduce family additionally sweeps a non-commutative-looking pair
    // of operators to catch ordering bugs the Sum wrap would mask.
    for &p in &MATRIX_SIZES {
        for algo in AllgathervAlgorithm::ALL {
            reports.push(check_collective_allgatherv(algo, p));
        }
        for algo in ReduceScatterAlgorithm::ALL {
            for op in [ReduceOp::Sum, ReduceOp::Min] {
                reports.push(check_collective_reduce_scatter(algo, p, op));
            }
        }
        for algo in AllreduceAlgorithm::ALL {
            for op in [ReduceOp::Sum, ReduceOp::Max] {
                reports.push(check_collective_allreduce(algo, p, op));
            }
        }
    }
    reports
}

fn verify_v(
    me: usize,
    m: &SizeMatrix,
    recvbuf: &[u8],
    rdispls: &[usize],
    wrong: &Mutex<Vec<Finding>>,
) {
    for src in 0..m.p() {
        let len = m.get(src, me);
        for idx in 0..len {
            let got = recvbuf[rdispls[src] + idx];
            let want = pattern(src, me, idx);
            if got != want {
                wrong.lock().unwrap_or_else(|e| e.into_inner()).push(Finding::WrongOutput {
                    rank: me,
                    detail: format!(
                        "byte {idx} of block from rank {src} (len {len}): got {got:#04x}, want {want:#04x}"
                    ),
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full matrix runs in the `bruck-check` binary and the crate's
    // integration test; here we spot-check one case per family so unit runs
    // stay fast.

    #[test]
    fn one_uniform_case_is_clean() {
        let r = check_uniform(AlltoallAlgorithm::ZeroRotationBruck, 5, 3);
        assert!(r.is_clean(), "{}: {:?}", r.name, r.findings);
    }

    #[test]
    fn one_alltoallv_case_is_clean() {
        let m = SizeMatrix::generate(Distribution::Normal, 7, 5, 16);
        let r = check_alltoallv(AlltoallvAlgorithm::TwoPhaseBruck, &m, "normal");
        assert!(r.is_clean(), "{}: {:?}", r.name, r.findings);
    }

    #[test]
    fn one_plan_case_is_clean() {
        let m = SizeMatrix::generate(Distribution::Uniform, 11, 4, 16);
        let r = check_plan(AlltoallvAlgorithm::Sloav, &m, "uniform");
        assert!(r.is_clean(), "{}: {:?}", r.name, r.findings);
    }

    #[test]
    fn one_engine_case_is_clean() {
        let m = SizeMatrix::generate(Distribution::Normal, 13, 5, 16);
        let cfg = EngineConfig { radix: 3, ..EngineConfig::as_two_phase() };
        let r = check_engine(&cfg, &m, "normal");
        assert!(r.is_clean(), "{}: {:?}", r.name, r.findings);
    }

    #[test]
    fn allgatherv_case_is_clean() {
        let r = check_allgatherv(6);
        assert!(r.is_clean(), "{}: {:?}", r.name, r.findings);
    }
}
