//! Closed-form communication traces for the collective family
//! (`bruck_core::collectives`): non-uniform allgatherv, vector
//! reduce_scatter, vector allreduce, and the PAT schedules.
//!
//! Each generator replicates the exact loop arithmetic of its `bruck-core`
//! counterpart — same step order, same per-step tag, same per-rank byte
//! sums — without moving payload. The collective gauntlet runs the real
//! schedules under `MeteredComm` and asserts every per-tag message and byte
//! count matches these traces exactly, so any drift between model and
//! implementation fails CI.
//!
//! Tag bases mirror `bruck_core::common` (crates do not share the
//! constants; the gauntlet pins both sides to the same values).

use crate::trace::{CommTrace, RankLoad, Step, StepKind};
use crate::tracegen::RankSample;

/// Base tag of ring-allgatherv step `s`: `0x0800 + s`.
pub const AGV_RING_TAG_BASE: u32 = 0x0800;
/// Base tag of Bruck-allgatherv step `k`: `0x0900 + k`.
pub const AGV_BRUCK_TAG_BASE: u32 = 0x0900;
/// Tag of the pairwise-exchange reduce_scatter phase.
pub const RS_PAIRWISE_TAG: u32 = 0x0A00;
/// Base tag of recursive-halving reduce_scatter step `k`: `0x0B00 + k`.
pub const RS_HALVING_TAG_BASE: u32 = 0x0B00;
/// Tag of the recursive-halving pre-fold.
pub const RS_FOLD_TAG: u32 = 0x0B80;
/// Tag of the recursive-halving post-unfold.
pub const RS_UNFOLD_TAG: u32 = 0x0B81;
/// Base tag of recursive-doubling allreduce step `k`: `0x0C00 + k`.
pub const AR_DOUBLING_TAG_BASE: u32 = 0x0C00;
/// Tag of the recursive-doubling pre-fold.
pub const AR_FOLD_TAG: u32 = 0x0C80;
/// Tag of the recursive-doubling post-unfold.
pub const AR_UNFOLD_TAG: u32 = 0x0C81;
/// Base tag of PAT all-gather phase `k`: `0x0D00 + k`.
pub const PAT_AG_TAG_BASE: u32 = 0x0D00;
/// Base tag of PAT reduce-scatter phase `k`: `0x0E00 + k`.
pub const PAT_RS_TAG_BASE: u32 = 0x0E00;

/// Allgatherv schedules modeled here, mirroring
/// `bruck_core::AllgathervAlgorithm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgathervModel {
    /// `P − 1` neighbor hops.
    Ring,
    /// Bruck distance-doubling, `⌈log₂ P⌉` steps.
    Bruck,
    /// PAT descending-bit binomial trees, `⌈log₂ P⌉` phases.
    Pat,
}

impl AllgathervModel {
    /// Every modeled schedule.
    pub const ALL: [AllgathervModel; 3] =
        [AllgathervModel::Ring, AllgathervModel::Bruck, AllgathervModel::Pat];
}

/// Reduce-scatter schedules modeled here, mirroring
/// `bruck_core::ReduceScatterAlgorithm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceScatterModel {
    /// All-pairs exchange, `P − 1` messages per rank on one tag.
    Pairwise,
    /// Recursive halving over a power-of-two core (fold / halve / unfold).
    Halving,
    /// PAT ascending-bit reduction trees, `⌈log₂ P⌉` phases.
    Pat,
}

impl ReduceScatterModel {
    /// Every modeled schedule.
    pub const ALL: [ReduceScatterModel; 3] =
        [ReduceScatterModel::Pairwise, ReduceScatterModel::Halving, ReduceScatterModel::Pat];
}

/// Allreduce schedules modeled here, mirroring
/// `bruck_core::AllreduceAlgorithm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceModel {
    /// Recursive doubling on whole vectors.
    Doubling,
    /// Recursive-halving reduce_scatter + Bruck allgatherv composition.
    RsAg,
}

impl AllreduceModel {
    /// Every modeled schedule.
    pub const ALL: [AllreduceModel; 2] = [AllreduceModel::Doubling, AllreduceModel::RsAg];
}

#[inline]
fn ceil_log2(p: usize) -> u32 {
    usize::BITS - (p - 1).leading_zeros()
}

#[inline]
fn sub_mod(a: usize, b: usize, p: usize) -> usize {
    (a + p - b % p) % p
}

#[inline]
fn add_mod(a: usize, b: usize, p: usize) -> usize {
    (a + b) % p
}

/// Near-equal allreduce piece split — must match `bruck_core::piece_len`.
#[inline]
fn piece_len(n: usize, i: usize, p: usize) -> usize {
    n / p + usize::from(i < n % p)
}

/// The power-of-two core size for halving/doubling: largest `2ᵏ ≤ p`.
#[inline]
fn pow2_core(p: usize) -> usize {
    if p.is_power_of_two() {
        p
    } else {
        p.next_power_of_two() / 2
    }
}

/// PAT holder offsets scheduled to send at phase `k` — must match
/// `bruck_core::collectives`' `pat_sender_offsets`.
fn pat_sender_offsets(p: usize, k: u32) -> impl Iterator<Item = usize> {
    let h = 1usize << k;
    (0..p).step_by(2 * h).take_while(move |j| j + h < p)
}

fn coll_step<F: Fn(usize) -> RankLoad>(
    tag: u32,
    pairwise: bool,
    sample: &RankSample,
    load: F,
) -> Step {
    Step {
        kind: StepKind::Coll { tag, pairwise },
        loads: sample.ranks().iter().map(|&q| (q, load(q))).collect(),
    }
}

/// Byte-exact trace of one allgatherv schedule over per-rank byte `counts`.
pub fn allgatherv_trace(
    algo: AllgathervModel,
    counts: &[usize],
    sample: &RankSample,
) -> CommTrace {
    let p = counts.len();
    let mut steps = Vec::new();
    if p <= 1 {
        return CommTrace { p, steps };
    }
    match algo {
        AllgathervModel::Ring => {
            // Step s: forward the block received at step s − 1; one hop.
            for s in 0..p - 1 {
                steps.push(coll_step(AGV_RING_TAG_BASE + s as u32, false, sample, |q| {
                    let out = counts[sub_mod(q, s, p)] as u64;
                    let inc = counts[sub_mod(q, s + 1, p)] as u64;
                    RankLoad {
                        seq_msgs: 1,
                        bytes_out: out,
                        bytes_in: inc,
                        // The arrival is copied into recvbuf; the forward
                        // reuses the same buffer (zero-copy).
                        copy_bytes: inc,
                        ..Default::default()
                    }
                }));
            }
        }
        AllgathervModel::Bruck => {
            for k in 0..ceil_log2(p) {
                let hop = 1usize << k;
                let cnt = hop.min(p - hop);
                steps.push(coll_step(AGV_BRUCK_TAG_BASE + k, false, sample, |q| {
                    let out: u64 =
                        (0..cnt).map(|j| counts[add_mod(q, j, p)] as u64).sum();
                    let inc: u64 =
                        (0..cnt).map(|j| counts[add_mod(q, hop + j, p)] as u64).sum();
                    RankLoad {
                        seq_msgs: 1,
                        bytes_out: out,
                        bytes_in: inc,
                        // Pack the outgoing run + scatter the incoming one.
                        copy_bytes: out + inc,
                        ..Default::default()
                    }
                }));
            }
        }
        AllgathervModel::Pat => {
            // Execution order is descending k.
            for k in (0..ceil_log2(p)).rev() {
                let h = 1usize << k;
                steps.push(coll_step(PAT_AG_TAG_BASE + k, false, sample, |q| {
                    let out: u64 = pat_sender_offsets(p, k)
                        .map(|j| counts[sub_mod(q, j, p)] as u64)
                        .sum();
                    let from = sub_mod(q, h, p);
                    let inc: u64 = pat_sender_offsets(p, k)
                        .map(|j| counts[sub_mod(from, j, p)] as u64)
                        .sum();
                    RankLoad {
                        seq_msgs: 1,
                        bytes_out: out,
                        bytes_in: inc,
                        copy_bytes: out + inc,
                        ..Default::default()
                    }
                }));
            }
        }
    }
    CommTrace { p, steps }
}

/// Byte-exact trace of one reduce_scatter schedule over per-rank *element*
/// `counts` (each element is 8 wire bytes).
pub fn reduce_scatter_trace(
    algo: ReduceScatterModel,
    counts: &[usize],
    sample: &RankSample,
) -> CommTrace {
    let p = counts.len();
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    let mut steps = Vec::new();
    if p <= 1 {
        return CommTrace { p, steps };
    }
    match algo {
        ReduceScatterModel::Pairwise => {
            // One all-pairs phase on a single tag: P − 1 serialized
            // sendrecvs, each mailing the input segment of one peer.
            steps.push(coll_step(RS_PAIRWISE_TAG, true, sample, |q| RankLoad {
                seq_msgs: (p - 1) as u32,
                bytes_out: 8 * (total - counts[q] as u64),
                bytes_in: 8 * (total - counts[q] as u64),
                copy_bytes: 8 * (total - counts[q] as u64),
                ..Default::default()
            }));
        }
        ReduceScatterModel::Halving => {
            let m = pow2_core(p);
            let r = p - m;
            // Element counts virtual rank `w < m` answers for post-fold.
            let owned = |w: usize| -> u64 {
                counts[w] as u64 + if w < r { counts[w + m] as u64 } else { 0 }
            };
            if r > 0 {
                steps.push(coll_step(RS_FOLD_TAG, false, sample, |q| {
                    if q >= m {
                        RankLoad { seq_msgs: 1, bytes_out: 8 * total, ..Default::default() }
                    } else if q < r {
                        RankLoad { bytes_in: 8 * total, ..Default::default() }
                    } else {
                        RankLoad::default()
                    }
                }));
            }
            for k in (0..m.trailing_zeros()).rev() {
                let h = 1usize << k;
                steps.push(coll_step(RS_HALVING_TAG_BASE + k, false, sample, |q| {
                    if q >= m {
                        return RankLoad::default();
                    }
                    let base = q & !(2 * h - 1);
                    let other_base = if q < base + h { base + h } else { base };
                    let my_base = if other_base == base { base + h } else { base };
                    let out: u64 = (other_base..other_base + h).map(owned).sum();
                    let inc: u64 = (my_base..my_base + h).map(owned).sum();
                    RankLoad {
                        seq_msgs: 1,
                        bytes_out: 8 * out,
                        bytes_in: 8 * inc,
                        copy_bytes: 8 * out,
                        ..Default::default()
                    }
                }));
            }
            if r > 0 {
                steps.push(coll_step(RS_UNFOLD_TAG, false, sample, |q| {
                    if q < r {
                        RankLoad {
                            seq_msgs: 1,
                            bytes_out: 8 * counts[q + m] as u64,
                            ..Default::default()
                        }
                    } else if q >= m {
                        RankLoad { bytes_in: 8 * counts[q] as u64, ..Default::default() }
                    } else {
                        RankLoad::default()
                    }
                }));
            }
        }
        ReduceScatterModel::Pat => {
            // Execution order is ascending k.
            for k in 0..ceil_log2(p) {
                let h = 1usize << k;
                steps.push(coll_step(PAT_RS_TAG_BASE + k, false, sample, |q| {
                    let out: u64 = (h..p)
                        .step_by(2 * h)
                        .map(|j| counts[sub_mod(q, j, p)] as u64)
                        .sum();
                    let inc: u64 = pat_sender_offsets(p, k)
                        .map(|j| counts[sub_mod(q, j, p)] as u64)
                        .sum();
                    RankLoad {
                        seq_msgs: 1,
                        bytes_out: 8 * out,
                        bytes_in: 8 * inc,
                        copy_bytes: 8 * out,
                        ..Default::default()
                    }
                }));
            }
        }
    }
    CommTrace { p, steps }
}

/// Byte-exact trace of one allreduce schedule over `n`-element vectors on
/// `p` ranks.
pub fn allreduce_trace(
    algo: AllreduceModel,
    p: usize,
    n: usize,
    sample: &RankSample,
) -> CommTrace {
    let mut steps = Vec::new();
    if p <= 1 {
        return CommTrace { p, steps };
    }
    match algo {
        AllreduceModel::Doubling => {
            let m = pow2_core(p);
            let r = p - m;
            let full = 8 * n as u64;
            if r > 0 {
                steps.push(coll_step(AR_FOLD_TAG, false, sample, |q| {
                    if q >= m {
                        RankLoad { seq_msgs: 1, bytes_out: full, ..Default::default() }
                    } else if q < r {
                        RankLoad { bytes_in: full, ..Default::default() }
                    } else {
                        RankLoad::default()
                    }
                }));
            }
            for k in 0..m.trailing_zeros() {
                steps.push(coll_step(AR_DOUBLING_TAG_BASE + k, false, sample, |q| {
                    if q < m {
                        RankLoad {
                            seq_msgs: 1,
                            bytes_out: full,
                            bytes_in: full,
                            copy_bytes: full,
                            ..Default::default()
                        }
                    } else {
                        RankLoad::default()
                    }
                }));
            }
            if r > 0 {
                steps.push(coll_step(AR_UNFOLD_TAG, false, sample, |q| {
                    if q < r {
                        RankLoad { seq_msgs: 1, bytes_out: full, ..Default::default() }
                    } else if q >= m {
                        RankLoad { bytes_in: full, ..Default::default() }
                    } else {
                        RankLoad::default()
                    }
                }));
            }
            CommTrace { p, steps }
        }
        AllreduceModel::RsAg => {
            // Exactly the two component traces back to back: the halving
            // reduce_scatter of near-equal element pieces, then the Bruck
            // allgatherv of the reduced pieces (8 bytes per element).
            let counts: Vec<usize> = (0..p).map(|i| piece_len(n, i, p)).collect();
            let mut trace = reduce_scatter_trace(ReduceScatterModel::Halving, &counts, sample);
            let byte_counts: Vec<usize> = counts.iter().map(|c| c * 8).collect();
            let ag = allgatherv_trace(AllgathervModel::Bruck, &byte_counts, sample);
            trace.steps.extend(ag.steps);
            trace
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p: usize) -> RankSample {
        RankSample::all(p)
    }

    #[test]
    fn empty_world_or_singleton_traces_are_empty() {
        for algo in AllgathervModel::ALL {
            assert!(allgatherv_trace(algo, &[7], &sample(1)).steps.is_empty());
        }
        for algo in ReduceScatterModel::ALL {
            assert!(reduce_scatter_trace(algo, &[7], &sample(1)).steps.is_empty());
        }
        for algo in AllreduceModel::ALL {
            assert!(allreduce_trace(algo, 1, 7, &sample(1)).steps.is_empty());
        }
    }

    #[test]
    fn allgatherv_schedules_move_every_byte_to_every_rank() {
        // Σ bytes_in over the steps must equal Σ counts − own contribution:
        // each schedule delivers every remote block exactly once.
        let counts = [3usize, 0, 7, 2, 5, 1, 4];
        let p = counts.len();
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        for algo in AllgathervModel::ALL {
            let t = allgatherv_trace(algo, &counts, &sample(p));
            for q in 0..p {
                let inc: u64 =
                    t.steps.iter().map(|s| s.load_of(q).map_or(0, |l| l.bytes_in)).sum();
                assert_eq!(inc, total - counts[q] as u64, "{algo:?} rank {q}");
            }
        }
    }

    #[test]
    fn traffic_is_globally_balanced() {
        // What all ranks send must equal what all ranks receive, per step.
        let counts = [3usize, 0, 7, 2, 5, 1, 4, 9, 6, 8, 2, 1];
        let p = counts.len();
        for algo in AllgathervModel::ALL {
            for step in allgatherv_trace(algo, &counts, &sample(p)).steps {
                let out: u64 = step.loads.iter().map(|(_, l)| l.bytes_out).sum();
                let inc: u64 = step.loads.iter().map(|(_, l)| l.bytes_in).sum();
                assert_eq!(out, inc, "{algo:?} {:?}", step.kind);
            }
        }
        for algo in ReduceScatterModel::ALL {
            for step in reduce_scatter_trace(algo, &counts, &sample(p)).steps {
                let out: u64 = step.loads.iter().map(|(_, l)| l.bytes_out).sum();
                let inc: u64 = step.loads.iter().map(|(_, l)| l.bytes_in).sum();
                assert_eq!(out, inc, "{algo:?} {:?}", step.kind);
            }
        }
        for algo in AllreduceModel::ALL {
            for step in allreduce_trace(algo, p, 29, &sample(p)).steps {
                let out: u64 = step.loads.iter().map(|(_, l)| l.bytes_out).sum();
                let inc: u64 = step.loads.iter().map(|(_, l)| l.bytes_in).sum();
                assert_eq!(out, inc, "{algo:?} {:?}", step.kind);
            }
        }
    }

    #[test]
    fn log_schedules_use_log_many_steps() {
        for p in [2usize, 3, 5, 8, 12, 16] {
            let counts = vec![4usize; p];
            let lg = ceil_log2(p) as usize;
            assert_eq!(
                allgatherv_trace(AllgathervModel::Ring, &counts, &sample(p)).steps.len(),
                p - 1
            );
            assert_eq!(
                allgatherv_trace(AllgathervModel::Bruck, &counts, &sample(p)).steps.len(),
                lg
            );
            assert_eq!(
                allgatherv_trace(AllgathervModel::Pat, &counts, &sample(p)).steps.len(),
                lg
            );
            assert_eq!(
                reduce_scatter_trace(ReduceScatterModel::Pat, &counts, &sample(p)).steps.len(),
                lg
            );
        }
    }

    #[test]
    fn pat_sends_one_message_per_phase_per_rank() {
        for p in [2usize, 3, 5, 7, 8, 12, 16, 31] {
            let counts = vec![1usize; p];
            for t in [
                allgatherv_trace(AllgathervModel::Pat, &counts, &sample(p)),
                reduce_scatter_trace(ReduceScatterModel::Pat, &counts, &sample(p)),
            ] {
                for step in &t.steps {
                    for (q, l) in &step.loads {
                        assert_eq!(l.seq_msgs, 1, "p={p} rank {q} {:?}", step.kind);
                    }
                }
            }
        }
    }

    #[test]
    fn halving_tags_include_fold_and_unfold_only_when_needed() {
        let t8 = reduce_scatter_trace(ReduceScatterModel::Halving, &[1; 8], &sample(8));
        assert!(!t8.wire_tags().contains(&RS_FOLD_TAG));
        assert!(!t8.wire_tags().contains(&RS_UNFOLD_TAG));
        let t12 = reduce_scatter_trace(ReduceScatterModel::Halving, &[1; 12], &sample(12));
        assert!(t12.wire_tags().contains(&RS_FOLD_TAG));
        assert!(t12.wire_tags().contains(&RS_UNFOLD_TAG));
    }

    #[test]
    fn rs_ag_composition_concatenates_disjoint_tag_blocks() {
        let t = allreduce_trace(AllreduceModel::RsAg, 12, 100, &sample(12));
        let tags = t.wire_tags();
        assert!(tags.iter().any(|&t| (RS_HALVING_TAG_BASE..RS_FOLD_TAG).contains(&t)));
        assert!(tags.iter().any(|&t| (AGV_BRUCK_TAG_BASE..RS_PAIRWISE_TAG).contains(&t)));
    }
}
