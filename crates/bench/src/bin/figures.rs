//! Regenerate every figure of the paper's evaluation as text tables.
//!
//! Usage: `figures <fig2a|fig2b|fig6|fig7|fig8|fig9|fig10|fig10f|fig11|fig12|fig13|model|all>`
//!
//! Model-driven figures sweep the α–β trace simulator (Theta-like preset
//! unless stated); application figures (11, 12) run the real implementations
//! on the threaded runtime at laptop-scale rank counts. Build with
//! `--release`; the large-P sweeps are compute-heavy.

use bruck_bench::{print_table, time_alltoall, time_alltoallv, to_ms, Series};
use bruck_bpra::{graph1_like, graph2_like, kcfa_like_run, transitive_closure, KcfaConfig};
use bruck_comm::ThreadComm;
use bruck_core::{
    padded_beats_two_phase, padded_bruck_cost, select_algorithm, spread_out_cost,
    two_phase_bruck_cost, AlltoallAlgorithm, AlltoallvAlgorithm, CostParams,
};
use bruck_model::{
    crossover_n, nonuniform_trace, predict, two_phase_radix_trace, uniform_trace, DistSource,
    MachineModel, NonuniformAlgo, RankSample, StepKind, UniformAlgo,
};
use bruck_workload::{histogram, Distribution, SizeMatrix};

const SEED: u64 = 2022;

/// The five algorithms of Figure 6's legends.
const FIG6_ALGOS: [NonuniformAlgo; 5] = [
    NonuniformAlgo::SpreadOut,
    NonuniformAlgo::PaddedAlltoall,
    NonuniformAlgo::Vendor,
    NonuniformAlgo::PaddedBruck,
    NonuniformAlgo::TwoPhaseBruck,
];

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run_all = which == "all";
    let mut ran = false;
    let mut want = |name: &str| {
        let hit = run_all || which == name;
        ran |= hit;
        hit
    };

    if want("fig2a") {
        fig2a();
    }
    if want("fig2b") {
        fig2b();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7();
    }
    if want("fig8") {
        fig8();
    }
    if want("fig9") {
        fig9();
    }
    if want("fig10") {
        fig10();
    }
    if want("fig10f") {
        fig10f();
    }
    if want("fig11") {
        fig11();
    }
    if want("fig12") {
        fig12();
    }
    if want("fig13") {
        fig13();
    }
    if want("model") {
        model_table();
    }
    if want("radix") {
        radix_ablation();
    }
    if want("ablation") {
        sloav_ablation();
        memory_table();
        related_work_table();
    }
    if !ran {
        eprintln!(
            "unknown figure '{which}'; expected one of \
             fig2a fig2b fig6 fig7 fig8 fig9 fig10 fig10f fig11 fig12 fig13 model radix all"
        );
        std::process::exit(2);
    }
}

/// Figure 2a: the six uniform Bruck variants, N = 32 bytes.
fn fig2a() {
    let m = MachineModel::theta_like();
    let ps = [256usize, 512, 1024, 2048, 4096];
    let n = 32;
    let series: Vec<Series> = UniformAlgo::ALL[..6]
        .iter()
        .map(|&algo| Series {
            label: algo.name().to_string(),
            ys: ps
                .iter()
                .map(|&p| to_ms(uniform_trace(algo, p, n, &RankSample::auto(p)).time(&m)))
                .collect(),
        })
        .collect();
    print_table("Fig 2a — uniform Bruck variants, N = 32 B (model, theta)", "P", &ps, &series, "ms");

    // Real-execution companion at thread-feasible scale.
    let real_ps = [32usize, 64, 128];
    let series: Vec<Series> = [
        AlltoallAlgorithm::BasicBruck,
        AlltoallAlgorithm::BasicBruckDt,
        AlltoallAlgorithm::ModifiedBruck,
        AlltoallAlgorithm::ModifiedBruckDt,
        AlltoallAlgorithm::ZeroCopyBruckDt,
        AlltoallAlgorithm::ZeroRotationBruck,
    ]
    .iter()
    .map(|&algo| Series {
        label: algo.name().to_string(),
        ys: real_ps.iter().map(|&p| to_ms(time_alltoall(algo, p, n, 20))).collect(),
    })
    .collect();
    print_table(
        "Fig 2a companion — real threaded execution, N = 32 B (20 iters, median)",
        "P",
        &real_ps,
        &series,
        "ms",
    );
}

/// Figure 2b: phase breakdown for the three explicit variants.
fn fig2b() {
    let m = MachineModel::theta_like();
    let ps = [256usize, 512, 1024, 2048, 4096];
    let n = 32;
    println!("\n== Fig 2b — phase breakdown (model, theta, N = 32 B) ==");
    println!(
        "{:>6} {:>20} {:>12} {:>12} {:>12} {:>8}",
        "P", "algorithm", "rot-init ms", "comm ms", "rot-final ms", "rot %"
    );
    for &p in &ps {
        for algo in
            [UniformAlgo::BasicBruck, UniformAlgo::ModifiedBruck, UniformAlgo::ZeroRotationBruck]
        {
            let trace = uniform_trace(algo, p, n, &RankSample::auto(p));
            let mut local = Vec::new();
            let mut comm = 0.0;
            for step in &trace.steps {
                let t = step.time(&m, p);
                match step.kind {
                    StepKind::Local => local.push(t),
                    _ => comm += t,
                }
            }
            let init = local.first().copied().unwrap_or(0.0);
            let fin = if local.len() > 1 { local[1] } else { 0.0 };
            let total = init + comm + fin;
            println!(
                "{:>6} {:>20} {:>12.4} {:>12.4} {:>12.4} {:>7.1}%",
                p,
                algo.name(),
                to_ms(init),
                to_ms(comm),
                to_ms(fin),
                100.0 * (init + fin) / total
            );
        }
    }
}

/// Figure 6: data scaling — time vs N per process count.
fn fig6() {
    let m = MachineModel::theta_like();
    let ns = [16usize, 32, 64, 128, 256, 512, 1024, 2048];
    for p in [128usize, 512, 1024, 4096, 8192, 32768] {
        let series: Vec<Series> = FIG6_ALGOS
            .iter()
            .map(|&algo| Series {
                label: algo.name().to_string(),
                ys: ns
                    .iter()
                    .map(|&n| to_ms(predict(algo, Distribution::Uniform, SEED, p, n, &m)))
                    .collect(),
            })
            .collect();
        print_table(
            &format!("Fig 6 — data scaling, P = {p} (uniform distribution, model, theta)"),
            "N bytes",
            &ns,
            &series,
            "ms",
        );
    }
    // Real-execution companion at thread-feasible scale.
    let p = 64;
    let ns_real = [16usize, 128, 1024];
    let algos = [
        AlltoallvAlgorithm::SpreadOut,
        AlltoallvAlgorithm::Vendor,
        AlltoallvAlgorithm::PaddedBruck,
        AlltoallvAlgorithm::TwoPhaseBruck,
        AlltoallvAlgorithm::Sloav,
    ];
    let series: Vec<Series> = algos
        .iter()
        .map(|&algo| Series {
            label: algo.name().to_string(),
            ys: ns_real
                .iter()
                .map(|&n| {
                    let mat = SizeMatrix::generate(Distribution::Uniform, SEED, p, n);
                    to_ms(time_alltoallv(algo, &mat, 20))
                })
                .collect(),
        })
        .collect();
    print_table(
        &format!("Fig 6 companion — real threaded execution, P = {p} (20 iters, median)"),
        "N bytes",
        &ns_real,
        &series,
        "ms",
    );

    // Headline claim (§4.1): two-phase vs vendor at N = 256.
    println!("\nHeadline — two-phase speedup over MPI_Alltoallv at N = 256:");
    for p in [512usize, 1024, 2048, 4096] {
        let v = predict(NonuniformAlgo::Vendor, Distribution::Uniform, SEED, p, 256, &m);
        let t = predict(NonuniformAlgo::TwoPhaseBruck, Distribution::Uniform, SEED, p, 256, &m);
        println!("  P = {p:>5}: {:.1}% faster (paper: 50.1/38.5/35.8/30.8%)", 100.0 * (v - t) / v);
    }
}

/// Figure 7: weak scaling at N = 64 and N = 512.
fn fig7() {
    let m = MachineModel::theta_like();
    let ps = [128usize, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];
    for n in [64usize, 512] {
        let series: Vec<Series> = FIG6_ALGOS
            .iter()
            .map(|&algo| Series {
                label: algo.name().to_string(),
                ys: ps
                    .iter()
                    .map(|&p| to_ms(predict(algo, Distribution::Uniform, SEED, p, n, &m)))
                    .collect(),
            })
            .collect();
        print_table(
            &format!("Fig 7 — weak scaling, N = {n} B (uniform distribution, model, theta)"),
            "P",
            &ps,
            &series,
            "ms",
        );
    }
}

/// Figure 8: sensitivity to the (100−r)-r window at P = 4096.
fn fig8() {
    let m = MachineModel::theta_like();
    let p = 4096;
    println!("\n== Fig 8 — sensitivity analysis, P = {p} (model, theta) ==");
    println!(
        "{:>8} {:>8} | {:>14} {:>14} {:>14} | winner",
        "N", "window", "Alltoallv ms", "two-phase ms", "padded ms"
    );
    for n in [16usize, 64, 256, 1024] {
        for r in [100u32, 80, 60, 40, 20, 0] {
            let dist = Distribution::Windowed { r };
            let v = predict(NonuniformAlgo::Vendor, dist, SEED, p, n, &m);
            let t = predict(NonuniformAlgo::TwoPhaseBruck, dist, SEED, p, n, &m);
            let pd = predict(NonuniformAlgo::PaddedBruck, dist, SEED, p, n, &m);
            let mut marks = Vec::new();
            if t < v {
                marks.push("two-phase beats Alltoallv (green)");
            }
            if pd < t {
                marks.push("padded beats two-phase (red)");
            }
            println!(
                "{:>8} {:>8} | {:>14.3} {:>14.3} {:>14.3} | {}",
                n,
                dist.label(),
                to_ms(v),
                to_ms(t),
                to_ms(pd),
                marks.join("; ")
            );
        }
    }
}

/// Figure 9: the empirical performance model — crossover frontier.
fn fig9() {
    let m = MachineModel::theta_like();
    let grid: Vec<usize> = (3..=13).map(|e| 1usize << e).collect();
    println!("\n== Fig 9 — empirical performance model (model, theta) ==");
    println!(
        "{:>7} | {:>26} | {:>26}",
        "P", "two-phase beats Alltoallv up to N", "padded beats two-phase up to N"
    );
    for p in [128usize, 512, 1024, 4096, 8192, 16384, 32768] {
        let tv = crossover_n(
            NonuniformAlgo::TwoPhaseBruck,
            NonuniformAlgo::Vendor,
            Distribution::Uniform,
            SEED,
            p,
            &grid,
            &m,
        );
        let pt = crossover_n(
            NonuniformAlgo::PaddedBruck,
            NonuniformAlgo::TwoPhaseBruck,
            Distribution::Uniform,
            SEED,
            p,
            &grid,
            &m,
        );
        let show = |x: Option<usize>| x.map_or("never".to_string(), |n| format!("{n}"));
        println!("{:>7} | {:>26} | {:>26}", p, show(tv), show(pt));
    }
}

/// Figure 10(a–e): power-law and normal distributions.
fn fig10() {
    let m = MachineModel::theta_like();
    let ns = [16usize, 64, 256, 1024, 2048];
    let algos = [NonuniformAlgo::Vendor, NonuniformAlgo::TwoPhaseBruck, NonuniformAlgo::PaddedBruck];
    for (dist, label) in [
        (Distribution::POWER_LAW_STEEP, "power-law base 0.99"),
        (Distribution::POWER_LAW_HEAVY, "power-law base 0.999"),
        (Distribution::Normal, "normal (±3σ window)"),
    ] {
        for p in [4096usize, 8192] {
            let series: Vec<Series> = algos
                .iter()
                .map(|&algo| Series {
                    label: algo.name().to_string(),
                    ys: ns.iter().map(|&n| to_ms(predict(algo, dist, SEED, p, n, &m))).collect(),
                })
                .collect();
            print_table(
                &format!("Fig 10 — {label}, P = {p} (model, theta)"),
                "N bytes",
                &ns,
                &series,
                "ms",
            );
        }
        // Average two-phase speedup at P = 8192 across the N sweep.
        let speedups: Vec<f64> = ns
            .iter()
            .map(|&n| {
                let v = predict(NonuniformAlgo::Vendor, dist, SEED, 8192, n, &m);
                let t = predict(NonuniformAlgo::TwoPhaseBruck, dist, SEED, 8192, n, &m);
                100.0 * (v - t) / v
            })
            .collect();
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("  avg two-phase speedup over Alltoallv at P = 8192 ({label}): {avg:.1}%");
    }
    // §4.3's volume comparison: total bytes per process.
    let steep: u64 = DistSourceTotal(Distribution::POWER_LAW_STEEP, 4096, 1024).total();
    let norm: u64 = DistSourceTotal(Distribution::Normal, 4096, 1024).total();
    println!(
        "  total bytes/process at P = 4096, N = 1024: power-law(0.99) {steep} vs normal {norm} \
         (paper: 203,928 vs 1,593,933)"
    );
}

/// Helper: per-process total volume of a distribution.
struct DistSourceTotal(Distribution, usize, usize);
impl DistSourceTotal {
    fn total(&self) -> u64 {
        use bruck_model::SizeSource;
        DistSource::new(self.0, SEED, self.1, self.2).row_sum(0)
    }
}

/// Figure 10f: the distributions themselves.
fn fig10f() {
    println!("\n== Fig 10f — block-size distributions (histograms, P = 4096, N = 1024) ==");
    for (dist, label) in [
        (Distribution::Uniform, "uniform"),
        (Distribution::Normal, "normal"),
        (Distribution::POWER_LAW_STEEP, "power-law 0.99"),
        (Distribution::POWER_LAW_HEAVY, "power-law 0.999"),
    ] {
        let row = dist.sample_row(SEED, 0, 4096, 1024);
        let h = histogram(&row, 1024, 16);
        let max = *h.iter().max().unwrap() as f64;
        println!("{label:>18}:");
        for (i, &c) in h.iter().enumerate() {
            let bar = "#".repeat((c as f64 / max * 50.0).round() as usize);
            println!("    [{:>4}-{:>4}] {bar} {c}", i * 64, (i + 1) * 64);
        }
    }
}

/// Figure 11: transitive closure, vendor vs two-phase (real execution).
fn fig11() {
    println!("\n== Fig 11 — transitive closure strong scaling (real threaded runs) ==");
    let graph1 = graph1_like(8, 160, 80, SEED);
    let graph2 = graph2_like(420, 1700, SEED);
    for (edges, label) in [(&graph1, "Graph 1 (deep)"), (&graph2, "Graph 2 (bushy)")] {
        println!("\n  {label}: {} edges", edges.len());
        println!(
            "  {:>4} | {:>14} {:>14} | {:>14} {:>14} | {:>10} {:>12}",
            "P", "Alltoallv ms", "comm ms", "two-phase ms", "comm ms", "iters", "paths"
        );
        for p in [2usize, 4, 8, 16] {
            let mut row = Vec::new();
            let mut meta = (0usize, 0u64);
            for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
                let e = edges.clone();
                let results =
                    ThreadComm::run(p, move |comm| transitive_closure(comm, algo, &e).unwrap());
                let total =
                    results.iter().map(|r| r.total_time.as_secs_f64()).fold(0.0f64, f64::max);
                let comm_t =
                    results.iter().map(|r| r.comm_time.as_secs_f64()).fold(0.0f64, f64::max);
                meta = (results[0].iterations, results[0].total_paths);
                row.push((total, comm_t));
            }
            println!(
                "  {:>4} | {:>14.2} {:>14.2} | {:>14.2} {:>14.2} | {:>10} {:>12}",
                p,
                to_ms(row[0].0),
                to_ms(row[0].1),
                to_ms(row[1].0),
                to_ms(row[1].1),
                meta.0,
                meta.1
            );
        }
    }
}

/// Figure 12: kCFA-like iterated exchange (real execution).
fn fig12() {
    println!("\n== Fig 12 — kCFA-like iterated exchanges (real threaded run, P = 16) ==");
    let cfg = KcfaConfig { iterations: 300, base_facts: 24, seed: SEED };
    let mut summaries = Vec::new();
    for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
        let results = ThreadComm::run(16, move |comm| kcfa_like_run(comm, algo, &cfg).unwrap());
        summaries.push((algo, results.into_iter().next().unwrap()));
    }
    let (_, vendor) = &summaries[0];
    let (_, two_phase) = &summaries[1];
    let total = |r: &bruck_bpra::KcfaResult| -> f64 {
        r.per_iteration.iter().map(|s| s.comm_time.as_secs_f64()).sum()
    };
    println!(
        "  total all-to-all time over {} iterations: Alltoallv {:.1} ms, two-phase {:.1} ms \
         ({:.2}x)",
        cfg.iterations,
        to_ms(total(vendor)),
        to_ms(total(two_phase)),
        total(vendor) / total(two_phase)
    );
    let wins = vendor
        .per_iteration
        .iter()
        .zip(&two_phase.per_iteration)
        .filter(|(v, t)| t.comm_time < v.comm_time)
        .count();
    println!("  iterations where two-phase is faster: {wins}/{}", cfg.iterations);
    let ns: Vec<usize> = vendor.per_iteration.iter().map(|s| s.n_max).collect();
    let small = ns.iter().filter(|&&n| n < 1000).count();
    println!(
        "  max block size N: min {} / median {} / max {}; iterations with N < 1000 B: {}/{}",
        ns.iter().min().unwrap(),
        {
            let mut v = ns.clone();
            v.sort_unstable();
            v[v.len() / 2]
        },
        ns.iter().max().unwrap(),
        small,
        cfg.iterations
    );
    println!("\n  first 20 iterations (comm µs):");
    println!("  {:>5} {:>12} {:>12} {:>8}", "iter", "Alltoallv", "two-phase", "N");
    for i in 0..20 {
        println!(
            "  {:>5} {:>12.1} {:>12.1} {:>8}",
            i,
            vendor.per_iteration[i].comm_time.as_secs_f64() * 1e6,
            two_phase.per_iteration[i].comm_time.as_secs_f64() * 1e6,
            vendor.per_iteration[i].n_max
        );
    }
}

/// Figure 13: weak scaling on the Cori- and Stampede-like machines.
fn fig13() {
    let ps = [128usize, 512, 2048, 8192, 32768];
    for machine in [MachineModel::cori_like(), MachineModel::stampede_like()] {
        let series: Vec<Series> = [
            NonuniformAlgo::Vendor,
            NonuniformAlgo::TwoPhaseBruck,
            NonuniformAlgo::PaddedBruck,
        ]
        .iter()
        .map(|&algo| Series {
            label: algo.name().to_string(),
            ys: ps
                .iter()
                .map(|&p| to_ms(predict(algo, Distribution::Normal, SEED, p, 64, &machine)))
                .collect(),
        })
        .collect();
        print_table(
            &format!("Fig 13 — weak scaling, normal distribution, N = 64 B ({})", machine.name),
            "P",
            &ps,
            &series,
            "ms",
        );
    }
}

/// Extension ablation: the radix knob on two-phase Bruck (model sweep).
fn radix_ablation() {
    let m = MachineModel::theta_like();
    let ns = [16usize, 64, 256, 1024, 4096, 16384];
    for p in [1024usize, 4096, 32768] {
        let sample = RankSample::auto(p);
        let series: Vec<Series> = [2usize, 4, 8, 16]
            .iter()
            .map(|&radix| Series {
                label: format!("two-phase radix {radix}"),
                ys: ns
                    .iter()
                    .map(|&n| {
                        let s = DistSource::new(Distribution::Uniform, SEED, p, n);
                        to_ms(two_phase_radix_trace(&s, radix, &sample).time(&m))
                    })
                    .collect(),
            })
            .collect();
        print_table(
            &format!("Radix ablation — two-phase Bruck, P = {p} (model, theta)"),
            "N bytes",
            &ns,
            &series,
            "ms",
        );
        // Best radix per N — the tunable-radix headline.
        print!("  best radix by N:");
        for (i, &n) in ns.iter().enumerate() {
            let best = series
                .iter()
                .min_by(|a, b| a.ys[i].partial_cmp(&b.ys[i]).unwrap())
                .unwrap()
                .label
                .clone();
            print!(" N={n}:{}", best.trim_start_matches("two-phase radix "));
        }
        println!();
    }
}

/// §6.1 ablation: where SLOAV loses to two-phase Bruck, phase by phase
/// (real threaded runs; medians over 20 iterations).
fn sloav_ablation() {
    use bruck_comm::{Communicator, ThreadComm};
    use bruck_core::{packed_displs, sloav_alltoallv_timed, two_phase_bruck_timed};

    println!("\n== §6.1 ablation — SLOAV vs two-phase Bruck phase breakdown (real, P = 32) ==");
    println!(
        "{:>6} {:>16} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "N", "algorithm", "allred µs", "meta µs", "data µs", "copy µs", "scan µs"
    );
    let p = 32;
    for n in [32usize, 256, 2048] {
        let m = SizeMatrix::generate(Distribution::Uniform, SEED, p, n);
        for (name, use_two_phase) in [("two-phase", true), ("SLOAV", false)] {
            let phases = ThreadComm::run(p, |comm| {
                let me = comm.rank();
                let sendcounts = m.sendcounts(me);
                let sdispls = packed_displs(&sendcounts);
                let sendbuf = vec![0u8; sendcounts.iter().sum()];
                let recvcounts = m.recvcounts(me);
                let rdispls = packed_displs(&recvcounts);
                let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
                let mut acc = bruck_core::NonuniformPhases::default();
                for _ in 0..20 {
                    let t = if use_two_phase {
                        two_phase_bruck_timed(
                            comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                            &rdispls,
                        )
                        .unwrap()
                    } else {
                        sloav_alltoallv_timed(
                            comm, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts,
                            &rdispls,
                        )
                        .unwrap()
                    };
                    acc.allreduce += t.allreduce;
                    acc.meta_comm += t.meta_comm;
                    acc.data_comm += t.data_comm;
                    acc.local_copy += t.local_copy;
                    acc.scan += t.scan;
                }
                acc
            });
            let us = |d: std::time::Duration| d.as_secs_f64() * 1e6 / 20.0;
            let max = phases
                .iter()
                .max_by(|a, b| a.total().cmp(&b.total()))
                .copied()
                .unwrap_or_default();
            println!(
                "{:>6} {:>16} | {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                n,
                name,
                us(max.allreduce),
                us(max.meta_comm),
                us(max.data_comm),
                us(max.local_copy),
                us(max.scan)
            );
        }
    }
    println!("  (two-phase: no scan phase, no per-block allocations — the §6.1 improvements)");
}

/// §3.2's space trade-off: auxiliary memory per algorithm.
fn memory_table() {
    use bruck_core::memory_overhead_bytes;
    println!("\n== memory overhead per rank (P = 4096, N = 512, uniform totals) ==");
    let (p, n) = (4096usize, 512usize);
    let totals = p * n / 2;
    for algo in [
        AlltoallvAlgorithm::Vendor,
        AlltoallvAlgorithm::TwoPhaseBruck,
        AlltoallvAlgorithm::PaddedBruck,
        AlltoallvAlgorithm::Sloav,
        AlltoallvAlgorithm::Hierarchical,
        AlltoallvAlgorithm::RankaTwoStage,
    ] {
        let bytes = memory_overhead_bytes(algo, p, n, totals, totals);
        println!("  {:<16} {:>12} bytes ({:.1} MiB)", algo.name(), bytes, bytes as f64 / (1 << 20) as f64);
    }
}

/// Related-work baselines (§6) under the model: hierarchical and Ranka
/// two-stage vs the paper's algorithms.
fn related_work_table() {
    let m = MachineModel::theta_like();
    let ns = [16usize, 128, 1024];
    for p in [512usize, 4096] {
        let series: Vec<Series> = [
            NonuniformAlgo::Vendor,
            NonuniformAlgo::TwoPhaseBruck,
            NonuniformAlgo::Hierarchical,
            NonuniformAlgo::RankaTwoStage,
        ]
        .iter()
        .map(|&algo| Series {
            label: algo.name().to_string(),
            ys: ns
                .iter()
                .map(|&n| to_ms(predict(algo, Distribution::Uniform, SEED, p, n, &m)))
                .collect(),
        })
        .collect();
        print_table(
            &format!("Related-work baselines (§6), P = {p} (model, theta)"),
            "N bytes",
            &ns,
            &series,
            "ms",
        );
    }
}

/// §3.3: the closed-form model and inequality (3).
fn model_table() {
    let params = CostParams::default();
    println!("\n== §3.3 theoretical model (α = {}, β = {}) ==", params.alpha, params.beta);
    println!(
        "{:>7} {:>7} | {:>12} {:>12} {:>12} | {:>10} {:>8}",
        "P", "N", "padded ms", "two-ph ms", "spread ms", "selected", "ineq(3)"
    );
    for p in [128usize, 1024, 4096, 32768] {
        for n in [4usize, 8, 64, 512, 4096] {
            println!(
                "{:>7} {:>7} | {:>12.4} {:>12.4} {:>12.4} | {:>10} {:>8}",
                p,
                n,
                to_ms(padded_bruck_cost(p, n, &params)),
                to_ms(two_phase_bruck_cost(p, n, &params)),
                to_ms(spread_out_cost(p, n, &params)),
                match select_algorithm(p, n, &params) {
                    AlltoallvAlgorithm::PaddedBruck => "padded",
                    AlltoallvAlgorithm::TwoPhaseBruck => "two-phase",
                    _ => "spread-out",
                },
                padded_beats_two_phase(p, n, &params)
            );
        }
    }

    // Model-vs-trace sanity: the closed form and the trace simulator must
    // rank padded vs two-phase identically in the latency-dominated regime.
    let m = MachineModel::theta_like();
    println!("\n  model-vs-trace agreement on the padded/two-phase winner:");
    for (p, n) in [(1024usize, 8usize), (1024, 2048), (8192, 8), (8192, 2048)] {
        let closed = padded_beats_two_phase(p, n, &CostParams { alpha: m.alpha(p), beta: m.beta });
        let s = DistSource::new(Distribution::Uniform, SEED, p, n);
        let sample = RankSample::auto(p);
        let padded = nonuniform_trace(NonuniformAlgo::PaddedBruck, &s, &sample).time(&m);
        let two = nonuniform_trace(NonuniformAlgo::TwoPhaseBruck, &s, &sample).time(&m);
        println!(
            "    P={p:>5} N={n:>5}: closed-form says padded wins = {closed}, trace says {}",
            padded < two
        );
    }
}
