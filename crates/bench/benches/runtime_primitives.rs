//! Criterion bench for the substrate itself: point-to-point latency,
//! collectives, and the datatype engine vs. hand-rolled memcpy packing —
//! the ablation behind the paper's Figure 2 finding that derived datatypes
//! underperform explicit memory management for small blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use bruck_comm::{Communicator, ReduceOp, ThreadComm};
use bruck_datatype::IndexedBlocks;

fn bench_p2p(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_p2p");
    group.sample_size(10);
    for size in [32usize, 4096] {
        group.bench_function(BenchmarkId::new("sendrecv_ping", size), |b| {
            b.iter_custom(|iters| {
                let times = ThreadComm::run(2, |comm| {
                    let payload = vec![0u8; size];
                    let peer = 1 - comm.rank();
                    comm.barrier().unwrap();
                    let start = Instant::now();
                    for _ in 0..iters {
                        comm.sendrecv(peer, 1, &payload, peer, 1).unwrap();
                    }
                    start.elapsed()
                });
                times.into_iter().max().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_collectives");
    group.sample_size(10);
    for p in [8usize, 64] {
        group.bench_function(BenchmarkId::new("barrier", p), |b| {
            b.iter_custom(|iters| {
                let times: Vec<Duration> = ThreadComm::run(p, |comm| {
                    let start = Instant::now();
                    for _ in 0..iters {
                        comm.barrier().unwrap();
                    }
                    start.elapsed()
                });
                times.into_iter().max().unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("allreduce_max", p), |b| {
            b.iter_custom(|iters| {
                let times: Vec<Duration> = ThreadComm::run(p, |comm| {
                    let start = Instant::now();
                    for i in 0..iters {
                        comm.allreduce_u64(i ^ comm.rank() as u64, ReduceOp::Max).unwrap();
                    }
                    start.elapsed()
                });
                times.into_iter().max().unwrap()
            });
        });
    }
    group.finish();
}

/// The Figure 2 micro-cause: datatype-engine pack vs. explicit memcpy pack of
/// the same (P+1)/2 non-contiguous blocks.
fn bench_pack_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_datatype_vs_memcpy");
    for (p, block) in [(256usize, 32usize), (256, 512)] {
        let buf: Vec<u8> = (0..p * block).map(|i| i as u8).collect();
        let blocks: Vec<(usize, usize)> =
            (0..p).filter(|i| i & 1 == 1).map(|i| (i * block, block)).collect();
        let layout = IndexedBlocks::new(blocks.clone()).unwrap();
        let mut wire = vec![0u8; layout.packed_len()];
        group.bench_function(BenchmarkId::new("datatype_pack", format!("p{p}_b{block}")), |b| {
            b.iter(|| layout.pack_into(&buf, &mut wire).unwrap());
        });
        group.bench_function(BenchmarkId::new("memcpy_pack", format!("p{p}_b{block}")), |b| {
            b.iter(|| {
                let mut at = 0;
                for &(d, l) in &blocks {
                    wire[at..at + l].copy_from_slice(&buf[d..d + l]);
                    at += l;
                }
                at
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_p2p, bench_collectives, bench_pack_paths);
criterion_main!(benches);
