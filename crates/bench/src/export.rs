//! Machine-readable exporters for instrumented bench runs.
//!
//! Two artifacts, both hand-rolled JSON (the workspace is std-only):
//!
//! * **Chrome trace** ([`chrome_trace_json`]) — the `trace_events` format
//!   understood by `chrome://tracing` and Perfetto. Every
//!   [`PhaseEvent`](bruck_core::probe::PhaseEvent) from the `bruck-core`
//!   span layer becomes a complete (`"ph": "X"`) slice; ranks map to
//!   threads (`tid`), bench cells to processes (`pid`).
//! * **Bench report** ([`bench_report_json`]) — the `BENCH_PR4.json`
//!   artifact: one record per smoke-matrix cell with bare vs metered
//!   wall-clock and the aggregated [`Metrics`] channel totals.
//!
//! [`measure_metered`] is the producer: it times an algorithm bare (via
//! [`crate::time_alltoallv`]) and again under [`MeteredComm`], then runs one
//! extra instrumented iteration with the probe recorder installed to collect
//! the per-rank phase timeline.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;

use bruck_comm::{Communicator, MeteredComm, ThreadComm};
use bruck_core::probe::{self, PhaseEvent};
use bruck_core::{alltoallv, packed_displs, AlltoallvAlgorithm};
use bruck_workload::SizeMatrix;

/// One rank's phase timeline from an instrumented run.
#[derive(Debug, Clone)]
pub struct PhaseTimeline {
    /// Rank that produced the events.
    pub rank: usize,
    /// Spans in drop order, timestamps relative to the rank's install origin.
    pub events: Vec<PhaseEvent>,
}

/// One cell of the smoke matrix, measured bare and under [`MeteredComm`].
#[derive(Debug, Clone)]
pub struct MeteredRun {
    /// Algorithm name (legend label).
    pub algorithm: String,
    /// Workload distribution label.
    pub distribution: String,
    /// Communicator size.
    pub p: usize,
    /// Nominal per-pair block size fed to the workload generator.
    pub n: usize,
    /// Median wall-clock of the bare run (seconds).
    pub bare_s: f64,
    /// Median wall-clock under `MeteredComm` (seconds).
    pub metered_s: f64,
    /// Sum over ranks of logical-channel messages sent.
    pub logical_msgs: u64,
    /// Sum over ranks of logical-channel bytes sent.
    pub logical_bytes: u64,
    /// Sum over ranks of reserved-channel (collective) messages sent.
    pub reserved_msgs: u64,
    /// Sum over ranks of reserved-channel bytes sent.
    pub reserved_bytes: u64,
    /// Total `Metrics::consistency_errors` across ranks (must be 0).
    pub consistency_errors: usize,
}

impl MeteredRun {
    /// Metered / bare wall-clock ratio (1.0 = metering is free).
    pub fn overhead_ratio(&self) -> f64 {
        if self.bare_s > 0.0 {
            self.metered_s / self.bare_s
        } else {
            f64::NAN
        }
    }
}

/// Escape a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render phase timelines as a chrome `trace_events` document. `pid` labels
/// the bench cell (one process row per cell in the viewer), `tid` the rank.
pub fn chrome_trace_json(cells: &[(String, Vec<PhaseTimeline>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (pid, (label, timelines)) in cells.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(label)
        );
        for tl in timelines {
            for ev in &tl.events {
                let _ = write!(
                    out,
                    ",{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"pid\":{pid},\"tid\":{}}}",
                    json_escape(ev.name),
                    ev.start_ns as f64 / 1e3,
                    ev.dur_ns as f64 / 1e3,
                    tl.rank
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Render the smoke-matrix runs as the `BENCH_PR4.json` artifact.
pub fn bench_report_json(runs: &[MeteredRun]) -> String {
    let max_overhead =
        runs.iter().map(MeteredRun::overhead_ratio).fold(f64::NAN, f64::max);
    let mut out = String::from("{\"schema\":\"bruck-bench/BENCH_PR4\",");
    let _ = write!(out, "\"max_overhead_ratio\":{max_overhead:.4},\"runs\":[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"algorithm\":\"{}\",\"distribution\":\"{}\",\"p\":{},\"n\":{},\
             \"bare_s\":{:.6},\"metered_s\":{:.6},\"overhead_ratio\":{:.4},\
             \"logical_msgs\":{},\"logical_bytes\":{},\
             \"reserved_msgs\":{},\"reserved_bytes\":{},\
             \"consistency_errors\":{}}}",
            json_escape(&r.algorithm),
            json_escape(&r.distribution),
            r.p,
            r.n,
            r.bare_s,
            r.metered_s,
            r.overhead_ratio(),
            r.logical_msgs,
            r.logical_bytes,
            r.reserved_msgs,
            r.reserved_bytes,
            r.consistency_errors,
        );
    }
    out.push_str("]}");
    out
}

/// Write an artifact, creating parent directories as needed.
pub fn write_text(path: &Path, text: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(path, text)
}

/// Measure one smoke cell: `algo` on `m`, bare then metered (same
/// median-of-per-iteration-max methodology as [`crate::time_alltoallv`]),
/// plus one instrumented iteration that collects each rank's phase timeline.
pub fn measure_metered(
    algo: AlltoallvAlgorithm,
    m: &SizeMatrix,
    dist_label: &str,
    n: usize,
    iters: usize,
) -> (MeteredRun, Vec<PhaseTimeline>) {
    let bare_s = crate::time_alltoallv(algo, m, iters);
    let p = m.p();
    let per_rank = ThreadComm::run(p, |comm| {
        let mc = MeteredComm::new(comm);
        let me = mc.rank();
        let sendcounts = m.sendcounts(me);
        let sdispls = packed_displs(&sendcounts);
        let sendbuf: Vec<u8> = (0..sendcounts.iter().sum()).map(|i| i as u8).collect();
        let recvcounts = m.recvcounts(me);
        let rdispls = packed_displs(&recvcounts);
        let mut recvbuf = vec![0u8; recvcounts.iter().sum()];
        let mut times = Vec::with_capacity(iters);
        for it in 0..=iters {
            mc.barrier().unwrap();
            let start = Instant::now();
            alltoallv(
                algo, &mc, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls,
            )
            .unwrap();
            if it > 0 {
                times.push(start.elapsed().as_secs_f64());
            }
        }
        // One extra instrumented pass for the timeline; excluded from timing.
        probe::install();
        alltoallv(algo, &mc, &sendbuf, &sendcounts, &sdispls, &mut recvbuf, &recvcounts, &rdispls)
            .unwrap();
        let events = probe::take();
        (times, mc.metrics(), events)
    });

    let mut per_iter: Vec<f64> = (0..iters)
        .map(|i| per_rank.iter().map(|(t, _, _)| t[i]).fold(0.0f64, f64::max))
        .collect();
    let metered_s = crate::median(&mut per_iter);

    let mut run = MeteredRun {
        algorithm: format!("{algo:?}"),
        distribution: dist_label.to_string(),
        p,
        n,
        bare_s,
        metered_s,
        logical_msgs: 0,
        logical_bytes: 0,
        reserved_msgs: 0,
        reserved_bytes: 0,
        consistency_errors: 0,
    };
    let mut timelines = Vec::with_capacity(p);
    for (rank, (_, metrics, events)) in per_rank.into_iter().enumerate() {
        run.logical_msgs += metrics.logical.sent_msgs;
        run.logical_bytes += metrics.logical.sent_bytes;
        run.reserved_msgs += metrics.reserved.sent_msgs;
        run.reserved_bytes += metrics.reserved.sent_bytes;
        run.consistency_errors += metrics.consistency_errors().len();
        timelines.push(PhaseTimeline { rank, events });
    }
    (run, timelines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_workload::Distribution;

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn chrome_trace_shape() {
        let cells = vec![(
            "two_phase/uniform".to_string(),
            vec![PhaseTimeline {
                rank: 1,
                events: vec![PhaseEvent { name: "x.y", start_ns: 1500, dur_ns: 2500 }],
            }],
        )];
        let doc = chrome_trace_json(&cells);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"x.y\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"dur\":2.500"));
        assert!(doc.contains("\"tid\":1"));
        assert!(doc.contains("\"ph\":\"M\""), "cell label metadata event");
    }

    #[test]
    fn measure_metered_produces_consistent_counts_and_timelines() {
        let m = SizeMatrix::generate(Distribution::Uniform, 3, 6, 32);
        let (run, timelines) =
            measure_metered(AlltoallvAlgorithm::TwoPhaseBruck, &m, "uniform", 32, 2);
        assert_eq!(run.p, 6);
        assert_eq!(run.consistency_errors, 0);
        assert!(run.logical_msgs > 0 && run.logical_bytes > 0);
        assert!(run.reserved_msgs > 0, "barriers + allreduce land on the reserved channel");
        assert_eq!(timelines.len(), 6);
        for tl in &timelines {
            assert!(
                tl.events.iter().any(|e| e.name == "two_phase.data"),
                "rank {} timeline missing data spans: {:?}",
                tl.rank,
                tl.events
            );
        }
        let report = bench_report_json(&[run]);
        assert!(report.contains("\"schema\":\"bruck-bench/BENCH_PR4\""));
        assert!(report.contains("\"consistency_errors\":0"));
    }
}
