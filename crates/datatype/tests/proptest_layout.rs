//! Property tests for the derived-datatype layout engine.
//!
//! Seeded-random (SplitMix64) rather than `proptest`-driven: the workspace
//! builds hermetically with zero external crates, so each property runs a
//! fixed number of deterministic random cases instead of shrinking searches.

use bruck_datatype::IndexedBlocks;
use bruck_workload::SplitMix64;

const CASES: u64 = 64;

/// Generate in-bounds blocks over a buffer of `buf_len` bytes; overlap is
/// allowed (fine for packing/gather, not for unpacking — see the disjoint
/// generator below).
fn random_blocks(rng: &mut SplitMix64) -> (usize, Vec<(usize, usize)>) {
    let buf_len = rng.next_range(1, 256) as usize;
    let n_blocks = rng.next_usize(8);
    let blocks: Vec<(usize, usize)> = (0..n_blocks)
        .map(|_| {
            let d = rng.next_usize(buf_len);
            let l = rng.next_usize(32).min(buf_len - d);
            (d, l)
        })
        .collect();
    (buf_len, blocks)
}

/// Non-overlapping blocks: carve the buffer into disjoint chunks, then
/// pseudo-shuffle so sequence order != address order.
fn random_disjoint_blocks(rng: &mut SplitMix64) -> (usize, Vec<(usize, usize)>) {
    let gap_seed = rng.next_range(1, 256) as usize;
    let n_blocks = rng.next_usize(10);
    let shuffle_seed = rng.next_u64();
    let mut blocks = Vec::new();
    let mut at = gap_seed % 3;
    for i in 0..n_blocks {
        let len = 1 + rng.next_usize(15);
        blocks.push((at, len));
        at += len + (i % 3); // small gaps between blocks
    }
    let n = blocks.len();
    if n > 1 {
        for i in 0..n {
            let j = (shuffle_seed as usize).wrapping_mul(31).wrapping_add(i * 17) % n;
            blocks.swap(i, j);
        }
    }
    (at.max(1), blocks)
}

/// pack never reads outside the buffer and produces exactly packed_len bytes.
#[test]
fn pack_len_is_packed_len() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xDA7A ^ case);
        let (buf_len, blocks) = random_blocks(&mut rng);
        let ty = IndexedBlocks::new(blocks).unwrap();
        if ty.extent() > buf_len {
            continue;
        }
        let src: Vec<u8> = (0..buf_len).map(|i| i as u8).collect();
        let packed = ty.pack(&src).unwrap();
        assert_eq!(packed.len(), ty.packed_len(), "case {case}");
    }
}

/// pack followed by unpack restores exactly the described bytes.
#[test]
fn pack_unpack_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x0DD5 ^ case);
        let (buf_len, blocks) = random_disjoint_blocks(&mut rng);
        let ty = IndexedBlocks::new(blocks).unwrap();
        let buf_len = buf_len.max(ty.extent());
        let src: Vec<u8> = (0..buf_len).map(|i| (i * 7 + 3) as u8).collect();
        let packed = ty.pack(&src).unwrap();
        let mut dst = vec![0u8; buf_len];
        ty.unpack_from(&packed, &mut dst).unwrap();
        // Described bytes must match the source...
        for &(d, l) in ty.blocks() {
            assert_eq!(&dst[d..d + l], &src[d..d + l], "case {case}");
        }
        // ...and re-packing the unpacked buffer is a fixed point.
        assert_eq!(ty.pack(&dst).unwrap(), packed, "case {case}");
    }
}

/// Packed size equals the sum of block lengths; extent equals the max end.
#[test]
fn size_and_extent_invariants() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x51E5 ^ case);
        let (_buf_len, blocks) = random_blocks(&mut rng);
        let ty = IndexedBlocks::new(blocks.clone()).unwrap();
        let sum: usize = blocks.iter().map(|&(_, l)| l).sum();
        let extent = blocks.iter().map(|&(d, l)| d + l).max().unwrap_or(0);
        assert_eq!(ty.packed_len(), sum, "case {case}");
        assert_eq!(ty.extent(), extent, "case {case}");
    }
}

/// from_lengths_displs agrees with new() on zipped inputs.
#[test]
fn constructors_agree() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC095 ^ case);
        let lens: Vec<usize> = (0..rng.next_usize(8)).map(|_| rng.next_usize(32)).collect();
        let displs: Vec<usize> = lens
            .iter()
            .scan(0, |acc, &l| {
                let d = *acc;
                *acc += l + 1;
                Some(d)
            })
            .collect();
        let a = IndexedBlocks::from_lengths_displs(&lens, &displs).unwrap();
        let b = IndexedBlocks::new(displs.into_iter().zip(lens).collect()).unwrap();
        assert_eq!(a, b, "case {case}");
    }
}
