//! Modified Bruck (§2.1, after Träff et al. [39]): the initial rotation is
//! re-aimed (`R[i] = S[(2p − i) % P]`) and the communication direction is
//! reversed (send to `p − 2^k`, receive from `p + 2^k`) so that blocks land at
//! their final positions without any final rotation.

use bruck_comm::{CommResult, Communicator};
use bruck_datatype::IndexedBlocks;

use super::validate_uniform;
use crate::common::{add_mod, ceil_log2, step_rel_indices, sub_mod, uniform_step_tag};
use crate::phases::{timed, PhaseTimes};
use crate::probe::span;

/// Modified Bruck with explicit `memcpy` buffer management.
pub fn modified_bruck<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    modified_bruck_timed(comm, sendbuf, recvbuf, block).map(drop)
}

/// [`modified_bruck`] with per-phase wall-clock breakdown (Figure 2b).
pub fn modified_bruck_timed<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<PhaseTimes> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();
    let mut t = PhaseTimes::default();

    // Phase 1 — re-aimed rotation: R[i] = S[(2p − i) % P].
    timed(&mut t.setup, || {
        let _probe = span("modified.rotate");
        for i in 0..p {
            let src = ((2 * me + p) - i) % p * block;
            recvbuf[i * block..(i + 1) * block].copy_from_slice(&sendbuf[src..src + block]);
        }
    });

    // Phase 2 — reversed-direction steps on the *relative* indices
    // (i + p) % P; blocks keep their relative index as they hop, so they
    // finish in source order with no final rotation.
    timed(&mut t.comm, || -> CommResult<()> {
        let mut wire = Vec::new();
        for k in 0..ceil_log2(p) {
            let _probe = span("modified.step");
            let hop = 1usize << k;
            let dest = sub_mod(me, hop, p);
            let src = add_mod(me, hop, p);
            wire.clear();
            for i in step_rel_indices(p, k) {
                let abs = add_mod(i, me, p);
                wire.extend_from_slice(&recvbuf[abs * block..(abs + 1) * block]);
            }
            let got = comm.sendrecv(dest, uniform_step_tag(k), &wire, src, uniform_step_tag(k))?;
            let mut at = 0;
            for i in step_rel_indices(p, k) {
                let abs = add_mod(i, me, p);
                recvbuf[abs * block..(abs + 1) * block].copy_from_slice(&got[at..at + block]);
                at += block;
            }
        }
        Ok(())
    })?;
    Ok(t)
}

/// Modified Bruck driven by derived datatypes (`ModifiedBruck-dt`).
pub fn modified_bruck_dt<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    block: usize,
) -> CommResult<()> {
    let p = validate_uniform(comm, sendbuf, recvbuf, block)?;
    let me = comm.rank();

    for i in 0..p {
        let src = ((2 * me + p) - i) % p * block;
        recvbuf[i * block..(i + 1) * block].copy_from_slice(&sendbuf[src..src + block]);
    }

    for k in 0..ceil_log2(p) {
        let hop = 1usize << k;
        let dest = sub_mod(me, hop, p);
        let src = add_mod(me, hop, p);
        let layout = IndexedBlocks::new(
            step_rel_indices(p, k).map(|i| (add_mod(i, me, p) * block, block)).collect(),
        )
        .expect("in-bounds step layout");
        let mut wire = vec![0u8; layout.packed_len()];
        layout.pack_into(recvbuf, &mut wire).expect("pack step blocks");
        let got = comm.sendrecv(dest, uniform_step_tag(k), &wire, src, uniform_step_tag(k))?;
        layout.unpack_from(&got, recvbuf).expect("unpack step blocks");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, TEST_SIZES};
    use super::super::AlltoallAlgorithm;

    #[test]
    fn modified_bruck_correct_for_all_sizes() {
        for p in TEST_SIZES {
            run_and_check(AlltoallAlgorithm::ModifiedBruck, p, 3);
        }
    }

    #[test]
    fn modified_bruck_dt_correct_for_all_sizes() {
        for p in TEST_SIZES {
            run_and_check(AlltoallAlgorithm::ModifiedBruckDt, p, 4);
        }
    }

    #[test]
    fn single_byte_blocks() {
        run_and_check(AlltoallAlgorithm::ModifiedBruck, 13, 1);
    }
}
