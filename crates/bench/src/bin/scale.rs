//! `bruck-scale` — throughput benchmark for the event-driven runtime.
//!
//! Runs the non-uniform algorithm suite on [`EventComm`] at large world
//! sizes (P = 4096 … 32768) on a bounded worker pool and records, per cell:
//!
//! * **ranks/sec** — rank-task completions per wall-clock second (`P /
//!   wall`), the headline "how many MPI ranks does this box simulate";
//! * **msgs/sec** — transport deposits per second, the matching-core
//!   throughput under multiplexing;
//! * **executions** — total task executions including wake-driven replays
//!   (`executions / P` is the replay amplification factor).
//!
//! The artifact (`BENCH_PR6.json`) also embeds the PR4-era metered smoke
//! matrix so the perf trajectory stays continuous across PRs. Every cell is
//! appended to the artifact as soon as it finishes (one JSON object per
//! line), so an aborted run leaves a valid partial record. Cells whose
//! estimated peak queue exceeds the memory budget are *recorded as skipped*
//! with the estimate in the reason — never silently dropped.
//!
//! ```text
//! bruck-scale --smoke [--check-against BENCH_PR6.json]   # verify.sh gate
//! bruck-scale --out BENCH_PR6.json                       # full artifact
//!   [--p 4096,16384,32768] [--workers N] [--block C] [--mem-budget-gb G]
//! ```
//!
//! `--check-against` compares each smoke cell's msgs/sec to the same cell in
//! the committed artifact: > [`ADVISORY_SLOWDOWN`]× slower prints a warning,
//! > [`FATAL_SLOWDOWN`]× slower fails the gate (wall-clock on shared CI is
//! noisy, so the fatal bar only catches order-of-magnitude regressions like
//! an accidental O(P) scan reintroduced on the hot path).

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use bruck_bench::export::{measure_metered, write_text, MeteredRun};
use bruck_comm::EventComm;
use bruck_core::{alltoallv, packed_displs, AlltoallvAlgorithm};
use bruck_workload::{Distribution, SizeMatrix};

/// Slowdown ratio that prints an advisory warning in `--check-against`.
const ADVISORY_SLOWDOWN: f64 = 1.6;
/// Slowdown ratio that fails the `--check-against` gate.
const FATAL_SLOWDOWN: f64 = 8.0;
/// Default memory budget for the eager-queue feasibility estimate.
const DEFAULT_MEM_BUDGET_GB: f64 = 100.0;
/// Default per-cell wall-clock budget (estimate-gated, see
/// [`estimated_wall_s`]): generous enough for every P² -shaped cell at
/// 32768, refusing only the Θ(P³) replay-wavefront cells that would run
/// for days.
const DEFAULT_TIME_BUDGET_S: f64 = 3600.0;
/// Estimated resident overhead bytes per queued message, excluding payload
/// (deque slot + match-key share + `MsgBuf` view + replay-arena share;
/// SpreadOut at P = 4096 measures ~5 GB for 16.7M queued 4-byte messages
/// ≈ 300 B each).
const MSG_OVERHEAD_BYTES: f64 = 300.0;

/// One benchmark cell: `algorithm` at world size `p`, or a recorded skip.
struct Cell {
    algorithm: String,
    p: usize,
    block: usize,
    workers: usize,
    wall_s: f64,
    messages: usize,
    executions: u64,
    skip_reason: Option<String>,
}

impl Cell {
    fn ranks_per_s(&self) -> f64 {
        if self.wall_s > 0.0 { self.p as f64 / self.wall_s } else { 0.0 }
    }

    fn msgs_per_s(&self) -> f64 {
        if self.wall_s > 0.0 { self.messages as f64 / self.wall_s } else { 0.0 }
    }

    fn to_json_line(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"algorithm\":\"{}\",\"p\":{},\"block\":{},\"workers\":{}",
            self.algorithm, self.p, self.block, self.workers
        );
        match &self.skip_reason {
            Some(reason) => {
                let reason = reason.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = write!(s, ",\"skipped\":true,\"skip_reason\":\"{reason}\"}}");
            }
            None => {
                let _ = write!(
                    s,
                    ",\"skipped\":false,\"wall_s\":{:.4},\"messages\":{},\"executions\":{},\
                     \"ranks_per_s\":{:.1},\"msgs_per_s\":{:.1}}}",
                    self.wall_s,
                    self.messages,
                    self.executions,
                    self.ranks_per_s(),
                    self.msgs_per_s()
                );
            }
        }
        s
    }
}

/// Stable machine key for an algorithm (debug name: no spaces, no figures
/// styling) — used in the artifact and for `--check-against` matching.
fn algo_key(algo: AlltoallvAlgorithm) -> String {
    format!("{algo:?}")
}

/// Peak resident bytes at the eager crossover — queued messages (count ×
/// per-message overhead) plus queued payload. Under run-to-block scheduling
/// every rank's send wave completes before the receive drain starts, so
/// post-everything-then-drain algorithms hold their full wave in the
/// transport at once.
fn estimated_peak_bytes(algo: AlltoallvAlgorithm, p: usize, block: usize) -> f64 {
    let pf = p as f64;
    let (msgs, payload) = match algo {
        // All P² tiny messages queued at the crossover (measured: 5 GB RSS
        // at P = 4096 with 4-byte blocks).
        AlltoallvAlgorithm::SpreadOut => (pf * pf, block as f64),
        // Both stages post all P−1 sends eagerly and each message carries a
        // 4-byte-per-peer counts row, so payload is ~4P per message — the
        // stage-1 wave alone is ~4P³ bytes (measured: 37 GB RSS at
        // P = 2048). Quadratic message count × linear payload.
        AlltoallvAlgorithm::RankaTwoStage => (pf * pf, 4.0 * pf + block as f64),
        // Pairwise/windowed/staged algorithms block on a receive within a
        // bounded number of sends, so the queue stays O(P × window).
        _ => (pf * 64.0, block as f64),
    };
    msgs * (MSG_OVERHEAD_BYTES + payload)
}

/// Estimated wall seconds for a cell on the calibration box (1 core, the
/// box that produced the committed artifact), from the run-to-block cost
/// model `wall ≈ executions × (per-execution prefix cost)`:
///
/// * **Log-phase** (Bruck family): O(log P) parks per rank, O(P) prefix →
///   wall ∝ P² log P. Calibrated: TwoPhaseBruck ≈ 30 s at P = 4096.
/// * **Pairwise** (Reference, Sloav): the shifted schedule makes each rank's
///   step-i receive depend on its step-i sender, so ranks advance in a
///   wavefront — Θ(P) parks per rank, O(P) prefix → wall ∝ P³.
/// * **Windowed/staged** (Vendor, RankaTwoStage): pairwise shape divided by
///   the window / stage width.
/// * **Eager** (SpreadOut): 1–2 parks per rank (everything is queued after
///   the send wave) → wall ∝ P² message handling; memory is the binding
///   constraint instead.
///
/// Constants are fitted to measurements at P ≤ 4096 (see DESIGN.md §12.6)
/// and deliberately rounded — the gate exists to refuse cells that are
/// orders of magnitude over budget, not to predict wall clock to 10%.
fn estimated_wall_s(algo: AlltoallvAlgorithm, p: usize) -> f64 {
    use AlltoallvAlgorithm::*;
    let x = p as f64 / 4096.0;
    match algo {
        PaddedBruck => 8.0 * x * x,
        TwoPhaseBruck => 30.0 * x * x,
        PaddedAlltoall => 95.0 * x * x * x.sqrt(),
        Hierarchical => 12.0 * x * x * x.sqrt(),
        SpreadOut => 30.0 * x * x,
        RankaTwoStage => 13000.0 * x * x * x,
        Vendor => 75.0 * x * x * x.sqrt(),
        Sloav => 25.0 * x * x * x.sqrt(),
        Reference => 1800.0 * x * x * x,
    }
}

/// Run one cell on the event runtime, or record why it was skipped.
fn run_cell(
    algo: AlltoallvAlgorithm,
    p: usize,
    block: usize,
    workers: usize,
    mem_budget_gb: f64,
    time_budget_s: f64,
) -> Cell {
    let skip = |reason: String| Cell {
        algorithm: algo_key(algo),
        p,
        block,
        workers,
        wall_s: 0.0,
        messages: 0,
        executions: 0,
        skip_reason: Some(reason),
    };
    let est_bytes = estimated_peak_bytes(algo, p, block);
    if est_bytes > mem_budget_gb * 1e9 {
        return skip(format!(
            "estimated peak transport residency ~ {:.0} GB exceeds the {:.0} GB budget \
             (eager send wave; raise --mem-budget-gb to attempt)",
            est_bytes / 1e9,
            mem_budget_gb
        ));
    }
    let est_s = estimated_wall_s(algo, p);
    if est_s > time_budget_s {
        return skip(format!(
            "estimated {est_s:.0} s exceeds the {time_budget_s:.0} s cell budget \
             (run-to-block replay wavefront; raise --time-budget-s to attempt)"
        ));
    }

    // Uniform workload with a shared descriptor set: every rank sends
    // `block` bytes to every peer, so one counts/displs/sendbuf triple
    // serves all P ranks (a per-rank copy would cost O(P²) harness memory
    // at P = 32k before the algorithm even runs).
    let counts = vec![block; p];
    let displs = packed_displs(&counts);
    let total: usize = block * p;
    let sendbuf = vec![0x5Au8; total];

    let start = Instant::now();
    let (_, report) = EventComm::run_report(p, workers, |comm| {
        let mut recvbuf = vec![0u8; total];
        alltoallv(algo, comm, &sendbuf, &counts, &displs, &mut recvbuf, &counts, &displs)
            .unwrap_or_else(|e| panic!("{} at p={p} failed: {e}", algo.name()));
        // Spot-check: with a constant-fill pattern every received byte is
        // the fill; full byte equality is tests/backend_equivalence.rs's job.
        if block > 0 && recvbuf[total - 1] != 0x5A {
            panic!("{} at p={p}: corrupted receive buffer", algo.name());
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    // The O(1) leak gate from the shared store counters: at P = 32k an O(P)
    // sweep per cell would dominate the bench itself.
    if report.pending_messages != 0 || report.dead_match_keys != 0 {
        panic!(
            "{} at p={p}: transport leak ({} pending, {} dead keys)",
            algo.name(),
            report.pending_messages,
            report.dead_match_keys
        );
    }

    Cell {
        algorithm: algo_key(algo),
        p,
        block,
        workers,
        wall_s,
        messages: report.messages,
        executions: report.executions,
        skip_reason: None,
    }
}

/// Render the artifact: header + embedded smoke runs + one cell per line.
fn artifact_json(workers: usize, block: usize, smoke: &[MeteredRun], cells: &[Cell]) -> String {
    let mut out = String::from("{\"schema\":\"bruck-scale/BENCH_PR6\",");
    let _ = write!(out, "\"workers\":{workers},\"block\":{block},");
    out.push_str("\"smoke\":[");
    for (i, r) in smoke.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"algorithm\":\"{}\",\"distribution\":\"{}\",\"p\":{},\"n\":{},\
             \"bare_s\":{:.6},\"metered_s\":{:.6},\"logical_msgs\":{},\"logical_bytes\":{},\
             \"consistency_errors\":{}}}",
            r.algorithm,
            r.distribution,
            r.p,
            r.n,
            r.bare_s,
            r.metered_s,
            r.logical_msgs,
            r.logical_bytes,
            r.consistency_errors
        );
    }
    out.push_str("],\"cells\":[\n");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&c.to_json_line());
    }
    out.push_str("\n]}\n");
    out
}

/// Pull `"field":<number>` out of a single JSON cell line.
fn field_f64(line: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Find the committed cell line matching `(algorithm, p)`.
fn find_cell_line<'t>(text: &'t str, algorithm: &str, p: usize) -> Option<&'t str> {
    let alg_pat = format!("\"algorithm\":\"{algorithm}\"");
    let p_pat = format!("\"p\":{p},");
    text.lines().find(|l| l.contains(&alg_pat) && l.contains(&p_pat))
}

/// Compare fresh smoke cells to the committed artifact. Returns the number
/// of fatal regressions.
fn check_against(baseline: &str, cells: &[Cell]) -> usize {
    let mut fatal = 0;
    for cell in cells.iter().filter(|c| c.skip_reason.is_none()) {
        let Some(line) = find_cell_line(baseline, &cell.algorithm, cell.p) else {
            println!(
                "  {} p={}: no baseline cell (new coverage, nothing to compare)",
                cell.algorithm, cell.p
            );
            continue;
        };
        let Some(base_mps) = field_f64(line, "msgs_per_s") else {
            println!("  {} p={}: baseline cell is a skip marker; nothing to compare",
                cell.algorithm, cell.p);
            continue;
        };
        let now_mps = cell.msgs_per_s();
        let slowdown = if now_mps > 0.0 { base_mps / now_mps } else { f64::INFINITY };
        let verdict = if slowdown > FATAL_SLOWDOWN {
            fatal += 1;
            "FATAL"
        } else if slowdown > ADVISORY_SLOWDOWN {
            "advisory"
        } else {
            "ok"
        };
        println!(
            "  {} p={}: {:.0} msgs/s vs baseline {:.0} ({:.2}x {}) [{verdict}]",
            cell.algorithm,
            cell.p,
            now_mps,
            base_mps,
            slowdown.max(1.0 / slowdown.max(1e-9)),
            if slowdown >= 1.0 { "slower" } else { "faster" },
        );
    }
    fatal
}

/// Parse a comma-separated list of algorithm debug names (`--algos
/// Reference,TwoPhaseBruck`); matching is case-insensitive on the stable key.
fn parse_algo_list(s: &str) -> Vec<AlltoallvAlgorithm> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            let want = t.trim().to_ascii_lowercase();
            AlltoallvAlgorithm::ALL
                .iter()
                .copied()
                .find(|a| algo_key(*a).to_ascii_lowercase() == want)
                .unwrap_or_else(|| {
                    let known: Vec<String> =
                        AlltoallvAlgorithm::ALL.iter().map(|a| algo_key(*a)).collect();
                    panic!("unknown algorithm {t:?}; known: {}", known.join(", "))
                })
        })
        .collect()
}

fn parse_usize_list(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.trim().parse().unwrap_or_else(|_| panic!("bad number in list: {t}")))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke_mode = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut ps: Vec<usize> = vec![4096, 16384, 32768];
    let mut algo_filter: Option<Vec<AlltoallvAlgorithm>> = None;
    let mut block = 4usize;
    let mut workers = bounded_workers();
    let mut mem_budget_gb = DEFAULT_MEM_BUDGET_GB;
    let mut time_budget_s = DEFAULT_TIME_BUDGET_S;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} requires a value")).to_string()
        };
        match a.as_str() {
            "--smoke" => smoke_mode = true,
            "--out" => out_path = Some(val("--out")),
            "--check-against" => check_path = Some(val("--check-against")),
            "--p" => ps = parse_usize_list(&val("--p")),
            "--algos" => algo_filter = Some(parse_algo_list(&val("--algos"))),
            "--time-budget-s" => {
                time_budget_s =
                    val("--time-budget-s").parse().unwrap_or_else(|_| panic!("bad time budget"))
            }
            "--block" => block = val("--block").parse().unwrap_or_else(|_| panic!("bad --block")),
            "--workers" => {
                workers = val("--workers").parse().unwrap_or_else(|_| panic!("bad --workers"))
            }
            "--mem-budget-gb" => {
                mem_budget_gb =
                    val("--mem-budget-gb").parse().unwrap_or_else(|_| panic!("bad budget"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The cell matrix. Smoke: the two P = 4096 log-phase cells — heavy
    // enough to exercise multiplexed park/replay at scale, fast enough for a
    // verify.sh stage (the pairwise/eager regimes are covered by the full
    // artifact run; their P = 4096 cells alone take tens of minutes).
    let (sizes, algos): (Vec<usize>, Vec<AlltoallvAlgorithm>) = if smoke_mode {
        (
            vec![4096],
            vec![AlltoallvAlgorithm::PaddedBruck, AlltoallvAlgorithm::TwoPhaseBruck],
        )
    } else {
        (ps, algo_filter.unwrap_or_else(|| AlltoallvAlgorithm::ALL.to_vec()))
    };

    println!(
        "bruck-scale — event runtime, {workers} workers, block = {block} B, P = {sizes:?}{}",
        if smoke_mode { " (smoke)" } else { "" }
    );
    println!(
        "{:>16} {:>7} | {:>9} {:>12} {:>11} {:>12} {:>8}",
        "algorithm", "P", "wall s", "messages", "ranks/s", "msgs/s", "exec/P"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &p in &sizes {
        // Within one world size: eager algorithms last, so a memory-budget
        // abort can never cost already-finished cells (the artifact is
        // rewritten after every cell anyway).
        let mut row: Vec<AlltoallvAlgorithm> = algos.clone();
        row.sort_by_key(|a| estimated_peak_bytes(*a, p, block) as u64);
        for algo in row {
            let cell = run_cell(algo, p, block, workers, mem_budget_gb, time_budget_s);
            match &cell.skip_reason {
                Some(reason) => {
                    println!("{:>16} {:>7} | skipped: {reason}", cell.algorithm, p);
                }
                None => {
                    println!(
                        "{:>16} {:>7} | {:>9.2} {:>12} {:>11.0} {:>12.0} {:>8.2}",
                        cell.algorithm,
                        p,
                        cell.wall_s,
                        cell.messages,
                        cell.ranks_per_s(),
                        cell.msgs_per_s(),
                        cell.executions as f64 / p as f64
                    );
                }
            }
            cells.push(cell);
            if let Some(path) = &out_path {
                // Incremental write: a crashed or OOM-killed later cell
                // leaves every earlier measurement on disk.
                if let Err(e) = write_text(Path::new(path), &artifact_json(workers, block, &[], &cells))
                {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let mut failed = false;
    if let Some(path) = &check_path {
        match std::fs::read_to_string(path) {
            Ok(baseline) => {
                println!("regression check vs {path} (advisory > {ADVISORY_SLOWDOWN}x, fatal > {FATAL_SLOWDOWN}x):");
                let fatal = check_against(&baseline, &cells);
                if fatal > 0 {
                    eprintln!("FAIL: {fatal} cell(s) regressed more than {FATAL_SLOWDOWN}x");
                    failed = true;
                }
            }
            Err(e) => {
                // A missing baseline is not a regression (first run on a
                // fresh branch); a present-but-unreadable one is.
                if path == "BENCH_PR6.json" && !Path::new(path).exists() {
                    println!("no baseline at {path}; skipping regression check");
                } else {
                    eprintln!("cannot read baseline {path}: {e}");
                    failed = true;
                }
            }
        }
    }

    if let Some(path) = &out_path {
        // Final write embeds the PR4-era metered smoke matrix so one
        // artifact carries the whole perf trajectory.
        println!("measuring embedded metered smoke matrix (P = 16)...");
        let m = SizeMatrix::generate(Distribution::Uniform, 2022, 16, 64);
        let mut smoke_runs = Vec::new();
        for algo in [AlltoallvAlgorithm::TwoPhaseBruck, AlltoallvAlgorithm::PaddedBruck] {
            let (run, _) = measure_metered(algo, &m, "uniform", 64, 5);
            smoke_runs.push(run);
        }
        if let Err(e) =
            write_text(Path::new(path), &artifact_json(workers, block, &smoke_runs, &cells))
        {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// ≤ 2× CPU count, the bounded-pool bar the runtime is specified against.
fn bounded_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get() * 2).unwrap_or(2).clamp(1, 64)
}
