//! Per-rank mailboxes: the matching engine behind point-to-point transfers.
//!
//! Every rank owns one [`Mailbox`]. A send deposits the payload into the
//! destination's mailbox under the `(source, tag)` key (the *eager protocol*:
//! the sender never blocks). A receive pops the oldest message matching its
//! `(source, tag)` pair, blocking on a condition variable until one arrives.
//!
//! Matching preserves MPI's **non-overtaking** rule: two messages from the
//! same source with the same tag are received in the order they were sent,
//! because each `(source, tag)` key maps to a FIFO queue.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::collections::VecDeque;

use crate::Tag;

/// Per-(source, tag) FIFO queues of undelivered messages.
type MatchQueues = HashMap<(usize, Tag), VecDeque<Vec<u8>>>;

/// A single rank's incoming-message store.
///
/// Locking is coarse (one mutex per rank) which is the right trade-off here:
/// contention on a mailbox is between exactly one receiver (the owning rank)
/// and its current senders, and critical sections only move a `Vec<u8>`.
#[derive(Default)]
pub(crate) struct Mailbox {
    queues: Mutex<MatchQueues>,
    arrived: Condvar,
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Deposit a message from `src` with `tag`. Never blocks.
    pub(crate) fn push(&self, src: usize, tag: Tag, data: Vec<u8>) {
        let mut queues = self.queues.lock();
        queues.entry((src, tag)).or_default().push_back(data);
        // notify_all: several receives with distinct (src, tag) keys can be
        // parked on the same condvar (collectives never do this, but user
        // code running helper threads may).
        self.arrived.notify_all();
    }

    /// Pop the oldest message matching `(src, tag)`, blocking until present.
    pub(crate) fn pop(&self, src: usize, tag: Tag) -> Vec<u8> {
        let mut queues = self.queues.lock();
        loop {
            if let Some(q) = queues.get_mut(&(src, tag)) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        // Keep the map from accumulating dead keys across
                        // thousands of fixpoint iterations.
                        queues.remove(&(src, tag));
                    }
                    return msg;
                }
            }
            self.arrived.wait(&mut queues);
        }
    }

    /// Pop with a deadline: `None` if no matching message arrives in time.
    pub(crate) fn pop_timeout(
        &self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> Option<Vec<u8>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queues = self.queues.lock();
        loop {
            if let Some(q) = queues.get_mut(&(src, tag)) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        queues.remove(&(src, tag));
                    }
                    return Some(msg);
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            if self.arrived.wait_until(&mut queues, deadline).timed_out() {
                // One last check: the message may have raced the timeout.
                return queues.get_mut(&(src, tag)).and_then(|q| q.pop_front());
            }
        }
    }

    /// Non-blocking probe: the byte length of the next matching message.
    pub(crate) fn probe(&self, src: usize, tag: Tag) -> Option<usize> {
        let queues = self.queues.lock();
        queues.get(&(src, tag)).and_then(|q| q.front()).map(Vec::len)
    }

    /// Number of undelivered messages (diagnostics / leak tests).
    pub(crate) fn pending(&self) -> usize {
        self.queues.lock().values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_per_key() {
        let mb = Mailbox::new();
        mb.push(0, 7, vec![1]);
        mb.push(0, 7, vec![2]);
        mb.push(1, 7, vec![9]);
        assert_eq!(mb.pop(0, 7), vec![1]);
        assert_eq!(mb.pop(0, 7), vec![2]);
        assert_eq!(mb.pop(1, 7), vec![9]);
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn pop_blocks_until_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop(3, 11));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(3, 11, vec![42]);
        assert_eq!(t.join().unwrap(), vec![42]);
    }

    #[test]
    fn probe_reports_length_without_consuming() {
        let mb = Mailbox::new();
        assert_eq!(mb.probe(0, 0), None);
        mb.push(0, 0, vec![0; 17]);
        assert_eq!(mb.probe(0, 0), Some(17));
        assert_eq!(mb.pop(0, 0).len(), 17);
    }

    #[test]
    fn distinct_tags_do_not_match() {
        let mb = Arc::new(Mailbox::new());
        mb.push(0, 1, vec![1]);
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop(0, 2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "pop(0,2) must not match tag 1");
        mb.push(0, 2, vec![2]);
        assert_eq!(t.join().unwrap(), vec![2]);
        assert_eq!(mb.pop(0, 1), vec![1]);
    }
}
