//! Graph mining (§5.1): distributed transitive closure where the all-to-all
//! algorithm is a plug-in — the paper's Figure 11 experiment in miniature.
//!
//! Computes the closure of a deep graph (Graph 1-like) and a bushy graph
//! (Graph 2-like) with both the vendor-style `MPI_Alltoallv` baseline and
//! two-phase Bruck, and reports total vs. communication time.
//!
//! Run with: `cargo run --release --example graph_mining`

use bruck_bpra::{graph1_like, graph2_like, transitive_closure};
use bruck_comm::ThreadComm;
use bruck_core::AlltoallvAlgorithm;

fn main() {
    let p = 8;
    let graph1 = graph1_like(6, 120, 60, 42);
    let graph2 = graph2_like(320, 1280, 42);

    for (edges, name) in [(&graph1, "Graph 1 (deep, many small iterations)"),
                          (&graph2, "Graph 2 (bushy, few huge iterations)")] {
        println!("\n{name}: {} edges, P = {p}", edges.len());
        for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
            let e = edges.clone();
            let results = ThreadComm::run(p, move |comm| {
                transitive_closure(comm, algo, &e).expect("closure failed")
            });
            let total = results.iter().map(|r| r.total_time).max().unwrap();
            let comm_time = results.iter().map(|r| r.comm_time).max().unwrap();
            let r0 = &results[0];
            println!(
                "  {:<16} {:>7} iterations, {:>9} paths, total {:>8.1} ms, all-to-all {:>8.1} ms",
                algo.name(),
                r0.iterations,
                r0.total_paths,
                total.as_secs_f64() * 1e3,
                comm_time.as_secs_f64() * 1e3,
            );
            // The paper's Figure 12-style view: the per-iteration max block
            // size N determines which algorithm each iteration favours.
            let ns: Vec<usize> = r0.per_iteration.iter().map(|i| i.exchange.n_max).collect();
            let small = ns.iter().filter(|&&n| n < 1000).count();
            println!(
                "    per-iteration N: max {} B, {}/{} iterations below 1000 B",
                ns.iter().max().unwrap(),
                small,
                ns.len()
            );
        }
    }
}
