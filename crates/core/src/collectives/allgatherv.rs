//! Non-uniform all-gather schedules: ring and Bruck distance-doubling.
//!
//! Both operate on known counts (the `MPI_Allgatherv` contract), so no
//! length framing travels on the wire — unlike [`crate::bruck_allgatherv`],
//! the self-describing variant the membership layer uses when counts are
//! *not* globally known. Message and byte volumes are therefore exact
//! closed forms, which the conformance gauntlet pins against `bruck-model`.

use bruck_comm::{CommResult, Communicator, MsgBuf};

use crate::common::{add_mod, agv_bruck_tag, agv_ring_tag, ceil_log2, sub_mod};
use crate::probe::span;

/// Ring allgatherv: `P − 1` steps; at step `s` each rank forwards the block
/// it received at step `s − 1` (its own contribution at `s = 0`) to its
/// right neighbor. Each block travels as the same [`MsgBuf`] view end to
/// end — zero payload copies in the runtime, one copy into `recvbuf` per
/// block on arrival.
///
/// Step `s` wire load per rank: one message of `counts[(me − s) mod P]`
/// bytes on tag `agv_ring_tag(s)`.
pub(super) fn allgatherv_ring<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    counts: &[usize],
    displs: &[usize],
) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    recvbuf[displs[me]..displs[me] + counts[me]].copy_from_slice(sendbuf);
    let right = add_mod(me, 1, p);
    let left = sub_mod(me, 1, p);
    let mut outgoing = MsgBuf::copy_from_slice(sendbuf);
    for s in 0..p.saturating_sub(1) {
        let _probe = span("agv_ring.step");
        let incoming =
            comm.sendrecv_buf(right, agv_ring_tag(s as u32), outgoing, left, agv_ring_tag(s as u32))?;
        // The block that arrives at step s originated at (me − s − 1) mod P.
        let src = sub_mod(me, s + 1, p);
        recvbuf[displs[src]..displs[src] + counts[src]].copy_from_slice(incoming.as_slice());
        outgoing = incoming; // forwarded untouched next step: zero-copy
    }
    Ok(())
}

/// Bruck distance-doubling allgatherv: ⌈log₂ P⌉ steps. Before step `k`,
/// rank `q` holds the contributions of the run `q, q+1, …, q+2ᵏ−1` (mod
/// `P`); at step `k` it sends the first `min(2ᵏ, P − 2ᵏ)` blocks of its run
/// to `(q − 2ᵏ) mod P` and appends the same-shaped run received from
/// `(q + 2ᵏ) mod P`.
///
/// Step `k` wire load for rank `q`: one message of
/// `Σ_{j<cnt_k} counts[(q + j) mod P]` bytes on tag `agv_bruck_tag(k)`,
/// with `cnt_k = min(2ᵏ, P − 2ᵏ)`.
pub(super) fn allgatherv_bruck<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    counts: &[usize],
    displs: &[usize],
) -> CommResult<()> {
    let p = comm.size();
    let me = comm.rank();
    recvbuf[displs[me]..displs[me] + counts[me]].copy_from_slice(sendbuf);
    for k in 0..ceil_log2(p) {
        let _probe = span("agv_bruck.step");
        let hop = 1usize << k;
        let cnt = hop.min(p - hop);
        let mut payload = Vec::new();
        for j in 0..cnt {
            let src = add_mod(me, j, p);
            payload.extend_from_slice(&recvbuf[displs[src]..displs[src] + counts[src]]);
        }
        let dest = sub_mod(me, hop, p);
        let from = add_mod(me, hop, p);
        let got = comm.sendrecv_buf(
            dest,
            agv_bruck_tag(k),
            MsgBuf::from_vec(payload),
            from,
            agv_bruck_tag(k),
        )?;
        // Scatter the received run — blocks from sources me+2ᵏ … me+2ᵏ+cnt−1
        // — into their slots, slicing the one arrival buffer zero-copy.
        let mut at = 0;
        for j in 0..cnt {
            let src = add_mod(me, hop + j, p);
            let block = got.slice(at..at + counts[src]);
            recvbuf[displs[src]..displs[src] + counts[src]].copy_from_slice(block.as_slice());
            at += counts[src];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::collectives::testutil::{gv_counts, run_gv, SIZES};
    use crate::collectives::AllgathervAlgorithm;

    #[test]
    fn ring_matches_reference_across_sizes() {
        for p in SIZES {
            for seed in [1u64, 5] {
                run_gv(AllgathervAlgorithm::Ring, &gv_counts(p, seed));
            }
        }
    }

    #[test]
    fn bruck_matches_reference_across_sizes() {
        for p in SIZES {
            for seed in [1u64, 5] {
                run_gv(AllgathervAlgorithm::Bruck, &gv_counts(p, seed));
            }
        }
    }

    #[test]
    fn all_zero_counts_are_legal() {
        for algo in AllgathervAlgorithm::ALL {
            run_gv(algo, &[0, 0, 0, 0, 0]);
        }
    }
}
