//! Protocol-verification gate: run the full algorithm × workload matrix
//! through the symbolic executor and analysis passes.
//!
//! Exit status 0 iff every case is clean. `scripts/verify.sh` runs this as a
//! tier-1 stage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let reports = bruck_check::matrix::run_full_matrix();
    let total = reports.len();
    let mut dirty = 0usize;
    for report in &reports {
        if !report.is_clean() {
            dirty += 1;
            eprintln!("FAIL {}", report.name);
            for finding in &report.findings {
                eprintln!("  - {finding}");
            }
        }
    }
    if dirty == 0 {
        println!("bruck-check: {total} cases clean (no deadlock cycles, tag collisions, conservation violations, or unmatched sends)");
        ExitCode::SUCCESS
    } else {
        eprintln!("bruck-check: {dirty}/{total} cases with findings");
        ExitCode::FAILURE
    }
}
