//! Calibration: fit a [`MachineModel`]'s effective parameters to measured
//! all-to-all timings.
//!
//! The paper's conclusion calls for "a more rigorous performance model" fed
//! by measurements across machines; this module is the fitting half of that
//! loop. Given `(P, N, algorithm) → seconds` samples (e.g. from the real
//! threaded runs in `bruck-bench`, or from a user's actual cluster), it
//! coordinate-descends the dominant parameters (`alpha0`, `inject`, `beta`,
//! `beta_pair`) to minimize the mean squared *log* error — log error because
//! the sweep spans four orders of magnitude and we care about relative fit.

use crate::par::par_map;
use crate::{predict, MachineModel, NonuniformAlgo};
use bruck_workload::Distribution;

/// One measured data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitSample {
    /// Communicator size.
    pub p: usize,
    /// Maximum block size (bytes).
    pub n: usize,
    /// Algorithm measured.
    pub algo: NonuniformAlgo,
    /// Measured wall-clock seconds.
    pub seconds: f64,
}

/// Mean squared log error of `machine` against the samples.
pub fn fit_error(samples: &[FitSample], dist: Distribution, seed: u64, machine: &MachineModel) -> f64 {
    let errors = par_map(samples, |s| {
        let predicted = predict(s.algo, dist, seed, s.p, s.n, machine).max(1e-12);
        let e = (predicted / s.seconds.max(1e-12)).ln();
        e * e
    });
    errors.iter().sum::<f64>() / samples.len().max(1) as f64
}

/// Fit `alpha0`, `inject` (+unthrottled, scaled together), `beta`, and
/// `beta_pair` by multiplicative coordinate descent from `start`.
///
/// `rounds` full passes; each pass tries ×/÷ step factors per parameter and
/// keeps improvements, shrinking the step when a pass stalls. Deterministic.
pub fn calibrate(
    samples: &[FitSample],
    dist: Distribution,
    seed: u64,
    start: &MachineModel,
    rounds: usize,
) -> MachineModel {
    let mut best = start.clone();
    let mut best_err = fit_error(samples, dist, seed, &best);
    let mut step = 2.0f64;

    for _ in 0..rounds {
        let mut improved = false;
        for param in 0..4 {
            for &factor in &[step, 1.0 / step] {
                let mut candidate = best.clone();
                match param {
                    0 => candidate.alpha0 *= factor,
                    1 => {
                        candidate.inject *= factor;
                        candidate.inject_unthrottled *= factor;
                    }
                    2 => candidate.beta *= factor,
                    _ => candidate.beta_pair *= factor,
                }
                // Keep the structural invariant that all-pairs flows contend
                // at least as badly as permutation steps.
                if candidate.beta_pair < candidate.beta {
                    continue;
                }
                let err = fit_error(samples, dist, seed, &candidate);
                if err < best_err {
                    best = candidate;
                    best_err = err;
                    improved = true;
                }
            }
        }
        if !improved {
            step = step.sqrt();
            if step < 1.01 {
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 99;

    /// Synthesize "measurements" from a known machine.
    fn synth_samples(truth: &MachineModel) -> Vec<FitSample> {
        let mut out = Vec::new();
        for p in [64usize, 128, 256] {
            for n in [16usize, 128, 1024] {
                for algo in [NonuniformAlgo::Vendor, NonuniformAlgo::TwoPhaseBruck, NonuniformAlgo::PaddedBruck]
                {
                    out.push(FitSample {
                        p,
                        n,
                        algo,
                        seconds: predict(algo, Distribution::Uniform, SEED, p, n, truth),
                    });
                }
            }
        }
        out
    }

    #[test]
    fn error_is_zero_on_the_generating_machine() {
        let truth = MachineModel::theta_like();
        let samples = synth_samples(&truth);
        assert!(fit_error(&samples, Distribution::Uniform, SEED, &truth) < 1e-20);
    }

    #[test]
    fn calibrate_recovers_perturbed_parameters() {
        let truth = MachineModel::theta_like();
        let samples = synth_samples(&truth);
        // Start 4–8× off in every fitted dimension.
        let mut start = truth.clone();
        start.alpha0 *= 8.0;
        start.inject /= 4.0;
        start.inject_unthrottled /= 4.0;
        start.beta *= 4.0;
        start.beta_pair /= 2.0;
        let before = fit_error(&samples, Distribution::Uniform, SEED, &start);
        let fitted = calibrate(&samples, Distribution::Uniform, SEED, &start, 25);
        let after = fit_error(&samples, Distribution::Uniform, SEED, &fitted);
        assert!(after < before / 100.0, "fit must improve ≥100×: {before} → {after}");
        // Predictions within 25% across the sample grid.
        for s in &samples {
            let pred = predict(s.algo, Distribution::Uniform, SEED, s.p, s.n, &fitted);
            let ratio = pred / s.seconds;
            assert!((0.75..1.34).contains(&ratio), "{:?}: ratio {ratio}", (s.p, s.n, s.algo));
        }
    }

    #[test]
    fn calibrate_respects_beta_ordering() {
        let truth = MachineModel::theta_like();
        let samples = synth_samples(&truth);
        let fitted = calibrate(&samples, Distribution::Uniform, SEED, &truth, 5);
        assert!(fitted.beta_pair >= fitted.beta);
    }
}
