//! Stateless dynamic partial-order reduction (DPOR) over the deterministic
//! simulator, plus an exhaustive happens-before audit of the event runtime's
//! wakeup protocol. This is the engine behind the `bruck-verify` binary.
//!
//! ## What it proves
//!
//! `bruck-sim` *samples* the schedule space with seeds; this module
//! *exhausts* it for tiny worlds. A [`VerifyCell`] wraps a
//! [`SimCell`](crate::sim_matrix::SimCell) and the explorer enumerates every
//! Mazurkiewicz-inequivalent interleaving of its scheduling points
//! (classic Flanagan–Godefroid stateless DPOR: depth-first replay from
//! schedule prefixes, backtrack sets derived from the dependency relation,
//! sleep sets to kill redundant siblings). At every explored leaf it asserts
//!
//! * the cell completed with pattern-exact, **byte-identical** receive
//!   buffers (same digest as the baseline schedule),
//! * no rank failed or deadlocked,
//!
//! and it counts equivalence classes by canonical (Foata normal form) trace
//! digest, reporting the pruning factor against naive enumeration.
//!
//! ## The dependency relation
//!
//! Two scheduling choices commute unless their pending ops interfere
//! ([`dependent`]): same-rank ops are always dependent; a send is dependent
//! with a matching receive/probe on the other side of its channel;
//! everything that reads the virtual clock (timed receives, sleeps) is
//! conservatively pairwise dependent, because the clock only advances at
//! global quiescence and therefore couples all timed ops. Fault-stack cells
//! are dominated by timed ops, so their reduction degenerates toward full
//! enumeration — such cells run under an explicit *bounded* budget
//! ([`VerifyCell::exhaustive`] = false) and act as systematic deep fuzzing
//! rather than full proofs (DESIGN.md §13).
//!
//! ## The event-runtime auditor
//!
//! The second prong drives `EventComm::run_scheduled` — the PR 6 event
//! runtime under a deterministic single-worker pick policy — through
//! **every** worker-pick interleaving of tiny scenarios, and checks the
//! `hb-audit` transition log of each schedule against the wakeup-protocol
//! invariants ([`audit_check`]): no lost wakeups (every taken waiter is
//! followed by a wake of that rank), no stale-epoch wake application, no
//! double enqueue, vector-clock domination (a woken task's next execution
//! joins its waker's clock), and termination. A violation is minimized with
//! [`shrink_choices`] and saved as a one-command replayable trace.

use crate::sim_matrix::{run_cell, run_cell_recorded, SimCell};
use bruck_comm::{
    shrink_choices, AuditKind, CommError, Communicator, EventComm, EventRun, EventVerifyOpts,
    ScheduleTrace, SimConfig, SimOp, WakeSource,
};
use bruck_core::AlltoallvAlgorithm;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Dependency relation and canonical trace digests
// ---------------------------------------------------------------------------

/// True when `a` reads the virtual clock: ordering it against any other
/// clock reader can change what global quiescence looks like, so all such
/// ops are conservatively pairwise dependent.
fn clocked(a: &SimOp) -> bool {
    matches!(a, SimOp::Sleep | SimOp::Recv { timed: true, .. })
}

/// The DPOR dependency relation over pending-op footprints. `ra`/`rb` are
/// the ranks the ops belong to. Sound over-approximation: independent ops
/// always commute in `SimComm`; dependent ops may not.
pub fn dependent(ra: u32, a: &SimOp, rb: u32, b: &SimOp) -> bool {
    if ra == rb {
        return true;
    }
    if clocked(a) && clocked(b) {
        return true;
    }
    match (a, b) {
        // A send interferes with the matching-channel receive/probe on the
        // destination rank: executing one changes whether the other blocks.
        (SimOp::Send { dest, tag }, SimOp::Recv { src, tag: rt, .. })
        | (SimOp::Send { dest, tag }, SimOp::Probe { src, tag: rt }) => {
            *dest as u32 == rb && *src as u32 == ra && tag == rt
        }
        (SimOp::Recv { src, tag: rt, .. }, SimOp::Send { dest, tag })
        | (SimOp::Probe { src, tag: rt }, SimOp::Send { dest, tag }) => {
            *dest as u32 == ra && *src as u32 == rb && tag == rt
        }
        // Sends commute with each other (per-channel queues), receives and
        // probes on different ranks touch disjoint mailboxes, and spawns
        // touch nothing.
        _ => false,
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn op_code(op: &SimOp) -> u64 {
    match op {
        SimOp::Spawn => 1,
        SimOp::Send { dest, tag } => mix(2 ^ ((*dest as u64) << 8) ^ ((*tag as u64) << 32)),
        SimOp::Recv { src, tag, timed } => {
            mix(3 ^ ((*src as u64) << 8) ^ ((*tag as u64) << 32) ^ ((*timed as u64) << 62))
        }
        SimOp::Probe { src, tag } => mix(4 ^ ((*src as u64) << 8) ^ ((*tag as u64) << 32)),
        SimOp::Sleep => 5,
    }
}

/// Canonical digest of one executed schedule under the dependency relation:
/// the Foata normal form — each event lands in the earliest layer after
/// every earlier dependent event, and layers are rank-sorted — is identical
/// for every interleaving of the same Mazurkiewicz trace, so the set of
/// digests seen counts the *inequivalent* schedules explored.
pub fn canonical_trace_digest(run: &[(u32, SimOp)]) -> u64 {
    let mut layer = vec![0usize; run.len()];
    for j in 0..run.len() {
        let mut l = 0;
        for i in 0..j {
            if dependent(run[i].0, &run[i].1, run[j].0, &run[j].1) {
                l = l.max(layer[i] + 1);
            }
        }
        layer[j] = l;
    }
    let mut keyed: Vec<(usize, u32, u64)> =
        run.iter().zip(&layer).map(|(&(r, op), &l)| (l, r, op_code(&op))).collect();
    keyed.sort_unstable();
    let mut d = 0xF0A7_A0F0_D16E_5701u64;
    for (l, r, code) in keyed {
        d = mix(d ^ l as u64);
        d = mix(d ^ r as u64);
        d = mix(d ^ code);
    }
    d
}

/// log10 of the number of naive interleavings of the run: the multinomial
/// `(Σ n_r)! / Π n_r!` over per-rank step counts, in log space (the value
/// itself overflows anything for even modest worlds).
pub fn naive_interleavings_log10(run: &[(u32, SimOp)]) -> f64 {
    let mut per_rank: BTreeMap<u32, u64> = BTreeMap::new();
    for &(r, _) in run {
        *per_rank.entry(r).or_insert(0) += 1;
    }
    let ln_fact = |n: u64| -> f64 { (2..=n).map(|k| (k as f64).ln()).sum() };
    let total: u64 = per_rank.values().sum();
    let ln = ln_fact(total) - per_rank.values().map(|&n| ln_fact(n)).sum::<f64>();
    ln / std::f64::consts::LN_10
}

// ---------------------------------------------------------------------------
// The stateless DPOR explorer over SimComm cells
// ---------------------------------------------------------------------------

/// One cell of the verification matrix: a simulator cell plus its
/// exploration contract.
#[derive(Debug, Clone)]
pub struct VerifyCell {
    /// The simulator cell (algorithm, workload, world size, fault plan).
    pub cell: SimCell,
    /// Execution budget for this cell.
    pub max_executions: u64,
    /// When true the cell must *converge* (every inequivalent interleaving
    /// explored) within budget or the run fails. Fault-stack cells, whose
    /// clock coupling defeats the reduction, set this false and run as
    /// budget-bounded systematic exploration instead.
    pub exhaustive: bool,
}

/// Exploration outcome for one cell.
#[derive(Debug)]
pub struct CellVerifyReport {
    /// The explored cell.
    pub cell: VerifyCell,
    /// Schedules executed (complete replays from the root).
    pub executions: u64,
    /// Distinct Mazurkiewicz classes seen (canonical trace digests).
    pub classes: usize,
    /// Scheduling points of the baseline schedule.
    pub baseline_len: usize,
    /// log10 of the naive interleaving count of the baseline schedule.
    pub naive_log10: f64,
    /// True when the backtrack frontier emptied — every inequivalent
    /// interleaving has been explored.
    pub converged: bool,
    /// First property violation found, already minimized.
    pub violation: Option<Violation>,
}

impl CellVerifyReport {
    /// Pruning factor vs. naive enumeration, in log10 (so 1.0 means 10×).
    pub fn pruning_log10(&self) -> f64 {
        self.naive_log10 - (self.executions.max(1) as f64).log10()
    }

    /// True when the cell met its contract: no violation, and converged if
    /// it promised to.
    pub fn ok(&self) -> bool {
        self.violation.is_none() && (self.converged || !self.cell.exhaustive)
    }
}

/// A property violation with its full and ddmin-minimized witness schedules.
#[derive(Debug)]
pub struct Violation {
    /// What went wrong at the leaf.
    pub message: String,
    /// The schedule that exposed it.
    pub trace: ScheduleTrace,
    /// The minimized schedule (still failing).
    pub min_trace: ScheduleTrace,
}

/// One node of the DFS stack: the scheduling point's enabled set and the
/// DPOR bookkeeping that decides which siblings still need exploring.
struct Node {
    /// Enabled ranks and their pending-op footprints, as recorded.
    enabled: Vec<(u32, SimOp)>,
    /// The rank executed from this point on the current path.
    chosen: u32,
    /// Ranks whose subtree at this node has been explored.
    done: BTreeSet<u32>,
    /// Ranks that must be explored from this node (Flanagan–Godefroid
    /// backtrack sets, seeded with the first chosen rank).
    backtrack: BTreeSet<u32>,
    /// Sleep set: ranks whose op here provably re-explores an equivalent
    /// schedule (already explored in a sibling and independent of everything
    /// executed since). Never picked.
    sleep: BTreeMap<u32, SimOp>,
}

impl Node {
    fn op_of(&self, rank: u32) -> Option<SimOp> {
        self.enabled.iter().find(|(r, _)| *r == rank).map(|(_, op)| *op)
    }

    fn next_candidate(&self) -> Option<u32> {
        self.backtrack
            .iter()
            .copied()
            .find(|r| !self.done.contains(r) && !self.sleep.contains_key(r))
    }
}

/// Exhaustively explore one cell. `wall_budget` bounds the whole cell's
/// exploration regardless of the execution budget.
pub fn explore_cell(vcell: &VerifyCell, wall_budget: Duration) -> CellVerifyReport {
    let start = Instant::now();
    let cell = &vcell.cell;
    let mut executions = 0u64;
    let mut classes: BTreeSet<u64> = BTreeSet::new();
    let mut stack: Vec<Node> = Vec::new();
    let mut prefix: Vec<u32> = Vec::new();
    let mut baseline_digest = None;
    let mut baseline_len = 0usize;
    let mut naive_log10 = 0.0f64;
    let mut violation = None;
    let mut converged = false;

    loop {
        let out = run_cell_recorded(cell, Some(&prefix));
        executions += 1;
        let steps = out.steps.as_deref().unwrap_or(&[]);
        let run: Vec<(u32, SimOp)> = steps
            .iter()
            .map(|s| {
                let op = match s.enabled.iter().find(|(r, _)| *r == s.chosen) {
                    Some((_, op)) => *op,
                    None => panic!("recorded step chose rank {} outside its enabled set", s.chosen),
                };
                (s.chosen, op)
            })
            .collect();
        classes.insert(canonical_trace_digest(&run));

        // Leaf assertions: every explored schedule must complete cleanly
        // with byte-identical results.
        let baseline = *baseline_digest.get_or_insert_with(|| {
            baseline_len = run.len();
            naive_log10 = naive_interleavings_log10(&run);
            out.digest
        });
        let leaf_failure = out.failure.clone().or_else(|| {
            (out.digest != baseline).then(|| {
                format!(
                    "schedule-dependent result: digest {:#018x}, baseline {:#018x}",
                    out.digest, baseline
                )
            })
        });
        if let Some(message) = leaf_failure {
            let fails = |cand: &[u32]| {
                let o = run_cell(cell, Some(cand));
                o.failure.is_some() || o.digest != baseline
            };
            let min_choices = shrink_choices(&out.trace.choices, fails);
            let min_trace = ScheduleTrace {
                p: out.trace.p,
                seed: out.trace.seed,
                meta: out.trace.meta.clone(),
                choices: min_choices,
            };
            violation = Some(Violation { message, trace: out.trace, min_trace });
            break;
        }

        // Fold the realized run into the DFS stack: the replayed prefix
        // keeps its bookkeeping, the fresh suffix becomes new nodes whose
        // sleep sets are inherited through the independence filter.
        for (j, (rank, op)) in run.iter().enumerate().skip(stack.len()) {
            let sleep = match stack.last() {
                Some(parent) => {
                    let pop = match parent.op_of(parent.chosen) {
                        Some(op) => op,
                        None => panic!("parent node chose a rank outside its enabled set"),
                    };
                    parent
                        .sleep
                        .iter()
                        .filter(|(r, sop)| !dependent(**r, sop, parent.chosen, &pop))
                        .map(|(r, sop)| (*r, *sop))
                        .collect()
                }
                None => BTreeMap::new(),
            };
            stack.push(Node {
                enabled: steps[j].enabled.clone(),
                chosen: *rank,
                done: BTreeSet::from([*rank]),
                backtrack: BTreeSet::from([*rank]),
                sleep,
            });
            // The prefix mirrors the stack: replaying it reproduces the
            // path down to any node we later backtrack from.
            prefix.push(*rank);
            let _ = op;
        }

        // Flanagan–Godefroid backtrack rule over the realized run: for each
        // executed step j, the *last* earlier step i (of another rank) whose
        // op is dependent with j's must also try running j's rank first.
        for j in 0..run.len() {
            let (rj, oj) = run[j];
            let mut i = j;
            while i > 0 {
                i -= 1;
                let (ri, oi) = run[i];
                if ri != rj && dependent(ri, &oi, rj, &oj) {
                    if stack[i].op_of(rj).is_some() {
                        stack[i].backtrack.insert(rj);
                    } else {
                        // `rj` was not enabled at `i`: conservatively try
                        // everything that was.
                        let all: Vec<u32> = stack[i].enabled.iter().map(|(r, _)| *r).collect();
                        stack[i].backtrack.extend(all);
                    }
                    break;
                }
            }
        }

        // Pick the deepest unexplored backtrack point and re-run from it.
        let mut next = None;
        while let Some(node) = stack.last_mut() {
            if let Some(cand) = node.next_candidate() {
                // The just-finished subtree's root op goes to sleep for the
                // remaining siblings: any schedule starting with it here has
                // been covered.
                if let Some(op) = node.op_of(node.chosen) {
                    node.sleep.insert(node.chosen, op);
                }
                node.done.insert(cand);
                node.chosen = cand;
                next = Some(stack.len());
                break;
            }
            stack.pop();
            prefix.pop();
        }
        match next {
            None => {
                converged = true;
                break;
            }
            Some(depth) => {
                prefix.truncate(depth - 1);
                prefix.push(stack[depth - 1].chosen);
            }
        }
        if executions >= vcell.max_executions || start.elapsed() > wall_budget {
            break;
        }
    }

    CellVerifyReport {
        cell: vcell.clone(),
        executions,
        classes: classes.len(),
        baseline_len,
        naive_log10,
        converged,
        violation,
    }
}

/// Per-algorithm exhaustive-exploration budget at P = 3. The schedule space
/// depends only on the communication *structure* (DPOR sees op footprints,
/// not byte counts), so these are stable per algorithm: the metadata-heavy
/// two-phase family needs far more executions per inequivalent class than
/// the direct senders. `None` means the P = 3 space is too large to exhaust
/// (> ~200k executions without converging) — the cell runs *bounded*
/// instead, and the algorithm's exhaustive proof is its P = 2 cell.
fn p3_budget(algo: AlltoallvAlgorithm) -> Option<u64> {
    match algo {
        // Converges at ~120k executions (measured); give it headroom.
        AlltoallvAlgorithm::PaddedBruck => Some(200_000),
        AlltoallvAlgorithm::TwoPhaseBruck
        | AlltoallvAlgorithm::Sloav
        | AlltoallvAlgorithm::RankaTwoStage => None,
        // The light algorithms all converge within a few thousand runs.
        _ => Some(60_000),
    }
}

/// The smoke verification matrix: every algorithm at P = 2 and P = 3 over a
/// uniform and a skewed workload, plus a bounded fault-stack cell. Sized to
/// converge in seconds (wired into `scripts/verify.sh`).
pub fn smoke_cells() -> Vec<VerifyCell> {
    let mut out = Vec::new();
    for &algo in &AlltoallvAlgorithm::ALL {
        for (p, dist_idx) in [(2usize, 0usize), (3, 2)] {
            let (max_executions, exhaustive) = if p == 2 {
                (60_000, true)
            } else {
                match p3_budget(algo) {
                    Some(budget) => (budget, true),
                    None => (20_000, false),
                }
            };
            out.push(VerifyCell {
                cell: SimCell {
                    algo,
                    dist_idx,
                    p,
                    n_max: 3,
                    workload_seed: 11,
                    sched_seed: 1,
                    fault: "none".into(),
                },
                max_executions,
                exhaustive,
            });
        }
    }
    // The fault stack: clock coupling defeats the reduction (module docs),
    // so this is bounded systematic exploration, not a convergence proof.
    out.push(VerifyCell {
        cell: SimCell {
            algo: AlltoallvAlgorithm::TwoPhaseBruck,
            dist_idx: 0,
            p: 2,
            n_max: 2,
            workload_seed: 11,
            sched_seed: 1,
            fault: "clean".into(),
        },
        max_executions: 400,
        exhaustive: false,
    });
    out
}

/// The full matrix: smoke plus every algorithm at P = 4 and a lossy
/// fault-stack cell. At P = 4 only `Hierarchical` (whose 2×2 grid splits
/// the world into near-independent halves) converges within reach
/// (~10k executions, measured); the other schedule spaces are ≥ 10^16
/// naive and still growing past 400k explored, so those cells run
/// bounded — the per-algorithm exhaustive proofs are the P ≤ 3 cells.
pub fn full_cells() -> Vec<VerifyCell> {
    let mut out = smoke_cells();
    for &algo in &AlltoallvAlgorithm::ALL {
        let exhaustive = algo == AlltoallvAlgorithm::Hierarchical;
        out.push(VerifyCell {
            cell: SimCell {
                algo,
                dist_idx: 1,
                p: 4,
                n_max: 4,
                workload_seed: 11,
                sched_seed: 1,
                fault: "none".into(),
            },
            max_executions: if exhaustive { 60_000 } else { 50_000 },
            exhaustive,
        });
    }
    out.push(VerifyCell {
        cell: SimCell {
            algo: AlltoallvAlgorithm::TwoPhaseBruck,
            dist_idx: 0,
            p: 3,
            n_max: 2,
            workload_seed: 11,
            sched_seed: 1,
            fault: "lossy".into(),
        },
        max_executions: 800,
        exhaustive: false,
    });
    out
}

// ---------------------------------------------------------------------------
// Event-runtime wakeup-protocol auditor
// ---------------------------------------------------------------------------

/// Tiny event-runtime scenarios the auditor explores exhaustively. Each is
/// small enough that *every* worker-pick interleaving fits in the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventScenario {
    /// Rank 0 sends one message, rank 1 receives it (the minimal park/wake
    /// handshake, and the seeded lost-wakeup bug's habitat).
    Ping,
    /// Both ranks send to each other, then receive (wake vs. store-hit in
    /// both directions).
    Cross,
    /// A 3-rank ring pass (chained wakes).
    Ring3,
    /// Rank 1 receives with a timeout racing rank 0's send: explores both
    /// the message-wins and timer-wins outcomes, including stale-timer
    /// drops.
    TimeoutRace,
}

impl EventScenario {
    /// All scenarios, in report order.
    pub const ALL: [EventScenario; 4] =
        [EventScenario::Ping, EventScenario::Cross, EventScenario::Ring3, EventScenario::TimeoutRace];

    /// Stable name (used in trace `meta` lines).
    pub fn name(&self) -> &'static str {
        match self {
            EventScenario::Ping => "ping",
            EventScenario::Cross => "cross",
            EventScenario::Ring3 => "ring3",
            EventScenario::TimeoutRace => "timeout-race",
        }
    }

    /// Parse a stable name back.
    pub fn parse(name: &str) -> Option<EventScenario> {
        Self::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// World size.
    pub fn p(&self) -> usize {
        match self {
            EventScenario::Ring3 => 3,
            _ => 2,
        }
    }

    /// Run the scenario's closure for one rank; returns a small outcome
    /// code checked by [`acceptable`](EventScenario::acceptable). A failed
    /// op panics; scheduled mode captures the panic as that rank's outcome.
    fn body(&self, comm: &EventComm<'_>) -> u64 {
        fn must<T>(r: Result<T, CommError>) -> T {
            match r {
                Ok(v) => v,
                Err(e) => panic!("scenario op failed: {e}"),
            }
        }
        let me = comm.rank();
        match self {
            EventScenario::Ping => {
                if me == 0 {
                    must(comm.send(1, 3, &[7]));
                    0
                } else {
                    u64::from(must(comm.recv(0, 3))[0])
                }
            }
            EventScenario::Cross => {
                let other = 1 - me;
                must(comm.send(other, 4, &[10 + me as u8]));
                u64::from(must(comm.recv(other, 4))[0])
            }
            EventScenario::Ring3 => {
                let right = (me + 1) % 3;
                let left = (me + 2) % 3;
                must(comm.send(right, 5, &[me as u8]));
                u64::from(must(comm.recv(left, 5))[0])
            }
            EventScenario::TimeoutRace => {
                if me == 0 {
                    must(comm.send(1, 6, &[9]));
                    0
                } else {
                    match comm.recv_timeout(0, 6, Duration::from_millis(1)) {
                        Ok(buf) => u64::from(buf[0]),
                        Err(CommError::Timeout { .. }) => 1000,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }
    }

    /// Is this per-rank outcome legal for the scenario? Scenarios with a
    /// genuine race (timeout vs. message) admit a set of outcomes; all
    /// others are singletons.
    fn acceptable(&self, rank: usize, out: u64) -> bool {
        match self {
            EventScenario::Ping => out == if rank == 0 { 0 } else { 7 },
            EventScenario::Cross => out == 10 + (1 - rank as u64),
            EventScenario::Ring3 => out == (rank as u64 + 2) % 3,
            EventScenario::TimeoutRace => {
                if rank == 0 {
                    out == 0
                } else {
                    out == 9 || out == 1000
                }
            }
        }
    }
}

/// Run one scenario under the scheduled event runtime.
pub fn run_event_scenario(
    scenario: EventScenario,
    cfg: &SimConfig,
    opts: EventVerifyOpts,
) -> EventRun<u64> {
    EventComm::run_scheduled(scenario.p(), cfg, opts, move |comm| scenario.body(comm))
}

/// Check one scheduled run's audit log against the wakeup-protocol
/// invariants. Returns one message per violation (empty = clean).
pub fn audit_check(run: &EventRun<u64>, p: usize) -> Vec<String> {
    let mut bad = Vec::new();
    let events = &run.audit;
    // (1) Lost wakeup: every taken waiter is eventually woken (enqueued or
    // flagged mid-unwind) or its rank finishes/has the wake superseded.
    for (i, e) in events.iter().enumerate() {
        if let AuditKind::WaiterTaken { rank, epoch, by } = e.kind {
            let woken = events[i + 1..].iter().any(|later| match later.kind {
                AuditKind::Enqueued { rank: r, .. }
                | AuditKind::WakeFlagged { rank: r, .. }
                | AuditKind::TaskDone { rank: r }
                | AuditKind::StaleDrop { rank: r, .. } => r == rank,
                _ => false,
            });
            if !woken {
                bad.push(format!(
                    "lost wakeup: waiter of rank {rank} (epoch {epoch}) taken by {by:?} \
                     but the rank is never woken or finished"
                ));
            }
        }
    }
    // (2) Stale-epoch application: an external wake must be applied at the
    // epoch of the rank's latest committed park; a park-commit requeue must
    // match the rank's latest execution epoch.
    let mut last_park = vec![None::<u64>; p];
    let mut last_exec = vec![None::<u64>; p];
    // (3) Double enqueue: between two wakes of a rank there must be an
    // execution of it.
    let mut pending_wake = vec![false; p];
    for e in events {
        match e.kind {
            AuditKind::ParkCommitted { rank, epoch } => last_park[rank] = Some(epoch),
            AuditKind::ExecStart { rank, epoch } => {
                last_exec[rank] = Some(epoch);
                pending_wake[rank] = false;
            }
            AuditKind::Enqueued { rank, epoch, by } => {
                let want = match by {
                    WakeSource::ParkCommit => last_exec[rank],
                    _ => last_park[rank],
                };
                if want != Some(epoch) {
                    bad.push(format!(
                        "stale-epoch wake: rank {rank} enqueued by {by:?} at epoch {epoch}, \
                         expected {want:?}"
                    ));
                }
                if pending_wake[rank] {
                    bad.push(format!("double enqueue: rank {rank} woken twice without running"));
                }
                pending_wake[rank] = true;
            }
            _ => {}
        }
    }
    // (4) Happens-before: a woken rank's next execution must causally follow
    // the wake (its clock joins the waker's — domination componentwise).
    for (i, e) in events.iter().enumerate() {
        if let AuditKind::Enqueued { rank, .. } = e.kind {
            if let Some(exec) = events[i + 1..]
                .iter()
                .find(|l| matches!(l.kind, AuditKind::ExecStart { rank: r, .. } if r == rank))
            {
                if exec.clock.iter().zip(&e.clock).any(|(a, b)| a < b) {
                    bad.push(format!(
                        "happens-before violation: rank {rank}'s post-wake execution does \
                         not causally follow its enqueue"
                    ));
                }
            }
        }
    }
    // (5) Termination: unless the runtime reported itself stuck, every rank
    // must have completed.
    if run.stuck.is_none() {
        for rank in 0..p {
            if !events.iter().any(|e| matches!(e.kind, AuditKind::TaskDone { rank: r } if r == rank))
            {
                bad.push(format!("rank {rank} never completed in a run that claims to have"));
            }
        }
    }
    bad
}

/// Verdict of checking one scheduled run end to end: runtime stuck, audit
/// violations, and outcome legality.
pub fn event_leaf_check(scenario: EventScenario, run: &EventRun<u64>) -> Option<String> {
    if let Some(stuck) = &run.stuck {
        return Some(stuck.clone());
    }
    for (rank, out) in run.outcomes.iter().enumerate() {
        match out {
            None => return Some(format!("rank {rank} never completed")),
            Some(Err(msg)) => return Some(format!("rank {rank} panicked: {msg}")),
            Some(Ok(v)) => {
                if !scenario.acceptable(rank, *v) {
                    return Some(format!("rank {rank}: illegal outcome {v}"));
                }
            }
        }
    }
    audit_check(run, scenario.p()).into_iter().next()
}

/// Report of exhaustively exploring one event scenario.
#[derive(Debug)]
pub struct EventVerifyReport {
    /// The scenario explored.
    pub scenario: EventScenario,
    /// Schedules executed.
    pub executions: u64,
    /// True when every worker-pick interleaving was explored.
    pub converged: bool,
    /// First violation found, minimized.
    pub violation: Option<Violation>,
}

/// Exhaustively explore every worker-pick interleaving of a scenario
/// (enabled sets carry no op footprints, so this is plain DFS, no
/// reduction — the trees are tiny). `with_bug` arms the seeded lost-wakeup
/// bug (needs the `seeded-bugs` feature to have any effect).
pub fn explore_event_scenario(
    scenario: EventScenario,
    max_executions: u64,
    with_bug: bool,
) -> EventVerifyReport {
    // bruck-check compiles bruck-comm with `seeded-bugs` (Cargo.toml), so
    // the arming constructor is always available here; the bug still fires
    // only in runs that arm it.
    let opts = || {
        let mut o = EventVerifyOpts::default();
        o.audit = true;
        if with_bug {
            o.with_lost_wakeup_bug()
        } else {
            o
        }
    };
    let meta = format!("event scenario={} bug={}", scenario.name(), with_bug);
    let cfg_for = |prefix: &[u32]| SimConfig {
        seed: 0,
        replay: Some(prefix.to_vec()),
        meta: meta.clone(),
        record_steps: false,
    };
    let mut executions = 0u64;
    let mut stack: Vec<(Vec<u32>, BTreeSet<u32>, u32)> = Vec::new(); // (enabled, done, chosen)
    let mut prefix: Vec<u32> = Vec::new();
    let mut violation = None;
    let mut converged = false;
    loop {
        let run = run_event_scenario(scenario, &cfg_for(&prefix), opts());
        executions += 1;
        if let Some(message) = event_leaf_check(scenario, &run) {
            let fails = |cand: &[u32]| {
                let r = run_event_scenario(scenario, &cfg_for(cand), opts());
                event_leaf_check(scenario, &r).is_some()
            };
            let min_choices = shrink_choices(&run.trace.choices, fails);
            let mut trace = run.trace;
            trace.meta = meta.clone();
            let min_trace = ScheduleTrace {
                p: trace.p,
                seed: trace.seed,
                meta: meta.clone(),
                choices: min_choices,
            };
            violation = Some(Violation { message, trace, min_trace });
            break;
        }
        for step in run.steps.iter().skip(stack.len()) {
            stack.push((step.enabled.clone(), BTreeSet::from([step.chosen]), step.chosen));
        }
        let mut next = None;
        while let Some((enabled, done, chosen)) = stack.last_mut() {
            if let Some(cand) = enabled.iter().copied().find(|r| !done.contains(r)) {
                done.insert(cand);
                *chosen = cand;
                next = Some(stack.len());
                break;
            }
            stack.pop();
            prefix.pop();
        }
        match next {
            None => {
                converged = true;
                break;
            }
            Some(depth) => {
                prefix.truncate(depth - 1);
                prefix.push(stack[depth - 1].2);
            }
        }
        if executions >= max_executions {
            break;
        }
    }
    EventVerifyReport { scenario, executions, converged, violation }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(dest: usize, tag: u32) -> SimOp {
        SimOp::Send { dest, tag }
    }

    fn recv(src: usize, tag: u32) -> SimOp {
        SimOp::Recv { src, tag, timed: false }
    }

    #[test]
    fn dependency_relation_matches_channels() {
        // Matching channel endpoints are dependent, both directions.
        assert!(dependent(0, &send(1, 7), 1, &recv(0, 7)));
        assert!(dependent(1, &recv(0, 7), 0, &send(1, 7)));
        // Different tag, source, or destination: independent.
        assert!(!dependent(0, &send(1, 7), 1, &recv(0, 8)));
        assert!(!dependent(0, &send(1, 7), 2, &recv(0, 7)));
        assert!(!dependent(0, &send(2, 7), 1, &recv(0, 7)));
        // Same rank always dependent; spawns independent across ranks.
        assert!(dependent(0, &SimOp::Spawn, 0, &send(1, 7)));
        assert!(!dependent(0, &SimOp::Spawn, 1, &SimOp::Spawn));
        // Clock-coupled ops are pairwise dependent.
        assert!(dependent(0, &SimOp::Sleep, 1, &SimOp::Recv { src: 0, tag: 1, timed: true }));
        // Sends to different destinations commute.
        assert!(!dependent(0, &send(2, 7), 1, &send(2, 7)));
    }

    #[test]
    fn foata_digest_identifies_equivalent_interleavings() {
        // Two independent sends commute: both orders share a digest.
        let a = vec![(0u32, send(2, 1)), (1u32, send(3, 1))];
        let b = vec![(1u32, send(3, 1)), (0u32, send(2, 1))];
        assert_eq!(canonical_trace_digest(&a), canonical_trace_digest(&b));
        // A send and its matching receive do not commute.
        let c = vec![(0u32, send(1, 1)), (1u32, recv(0, 1))];
        let d = vec![(1u32, recv(0, 1)), (0u32, send(1, 1))];
        assert_ne!(canonical_trace_digest(&c), canonical_trace_digest(&d));
    }

    #[test]
    fn naive_count_is_the_multinomial() {
        // 2 ranks × 2 steps each: C(4,2) = 6 interleavings.
        let run = vec![(0u32, SimOp::Spawn), (0, send(1, 1)), (1, SimOp::Spawn), (1, recv(0, 1))];
        let got = naive_interleavings_log10(&run);
        assert!((got - 6f64.log10()).abs() < 1e-9, "got 10^{got}");
    }

    #[test]
    fn tiny_cell_converges_and_prunes() {
        let vcell = VerifyCell {
            cell: SimCell {
                algo: AlltoallvAlgorithm::SpreadOut,
                dist_idx: 0,
                p: 2,
                n_max: 3,
                workload_seed: 11,
                sched_seed: 1,
                fault: "none".into(),
            },
            max_executions: 50_000,
            exhaustive: true,
        };
        let report = explore_cell(&vcell, Duration::from_secs(60));
        assert!(report.ok(), "violation: {:?}", report.violation);
        assert!(report.converged, "did not converge in {} executions", report.executions);
        assert!(report.classes >= 2, "a 2-rank exchange has inequivalent schedules");
        assert!(
            report.executions < 10u64.pow(report.naive_log10.ceil() as u32).max(1),
            "explored {} ≥ naive 10^{:.1}",
            report.executions,
            report.naive_log10
        );
    }

    #[test]
    fn event_scenarios_converge_exhaustively() {
        for scenario in [EventScenario::Ping, EventScenario::Cross] {
            let report = explore_event_scenario(scenario, 100_000, false);
            assert!(report.converged, "{scenario:?} did not converge");
            assert!(report.violation.is_none(), "{scenario:?}: {:?}", report.violation);
            assert!(report.executions >= 2, "{scenario:?} has at least two interleavings");
        }
    }

    /// Regression pin for the seeded lost-wakeup bug (DESIGN.md §13.2): the
    /// exhaustive explorer must *find* the schedule-dependent fault that
    /// seed-based testing can miss, shrink the witness to a handful of
    /// scheduling choices, and the witness must replay deterministically.
    #[test]
    fn seeded_lost_wakeup_is_found_shrunk_and_replayable() {
        let report = explore_event_scenario(EventScenario::Ping, 10_000, true);
        let v = match &report.violation {
            Some(v) => v,
            None => panic!(
                "explored {} schedules without detecting the seeded lost wakeup",
                report.executions
            ),
        };
        assert!(
            v.message.contains("stuck") || v.message.contains("lost"),
            "unexpected violation kind: {}",
            v.message
        );
        assert!(
            v.min_trace.choices.len() <= 25,
            "shrunk witness has {} choices (> 25)",
            v.min_trace.choices.len()
        );
        // The saved witness replays: arm the bug, force the minimized
        // schedule, and the same violation must reproduce.
        let cfg = SimConfig::replay_trace(&v.min_trace);
        let opts = {
            let mut o = EventVerifyOpts::default();
            o.audit = true;
            o.with_lost_wakeup_bug()
        };
        let run = run_event_scenario(EventScenario::Ping, &cfg, opts);
        assert!(
            event_leaf_check(EventScenario::Ping, &run).is_some(),
            "minimized witness did not reproduce the violation"
        );
        // Without the bug armed, the exact same schedule is clean — the
        // fault is the seeded bug, not the schedule.
        let cfg = SimConfig::replay_trace(&v.min_trace);
        let opts = {
            let mut o = EventVerifyOpts::default();
            o.audit = true;
            o
        };
        let run = run_event_scenario(EventScenario::Ping, &cfg, opts);
        assert!(
            event_leaf_check(EventScenario::Ping, &run).is_none(),
            "clean runtime failed under the witness schedule"
        );
    }
}
