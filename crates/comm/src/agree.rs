//! All-survivor agreement: turn per-rank suspicion sets into one survivor
//! set that every live rank decides identically.
//!
//! [`crate::detect_failures`] produces *local* suspicions — a member that
//! died mid-window may have proved itself to some peers and not others, and
//! a member can keep dying while agreement itself is running. This module
//! runs a flooding consensus over suspicion bitmaps
//! ([`crate::Suspicion`]):
//!
//! 1. **Rounds.** Each round, every participating rank sends its current
//!    bitmap to every member it does not suspect, then collects one frame
//!    from each such member (with a timeout) and unions what it receives.
//!    A member that times out — or whose send fails with
//!    [`crate::CommError::RankFailed`] — joins the suspicion set, so
//!    failures *during* agreement simply re-enter the flood as new bits and
//!    the round structure re-runs on the shrunken view until a fixpoint.
//! 2. **Stability.** A rank's view is *stable* when a round changes
//!    nothing: its own set did not grow and every collected frame echoed
//!    exactly its set. After [`AgreeConfig::stable_rounds`] consecutive
//!    stable rounds the rank *decides*.
//! 3. **Decision flooding.** A deciding rank broadcasts a DECIDED frame
//!    carrying the final bitmap to every member (best-effort, including
//!    suspected ones — a falsely-suspected live rank learns its eviction
//!    here) and returns. Any rank that receives a DECIDED frame mid-round
//!    immediately adopts the decided set, re-floods it, and returns — so
//!    one decision propagates even if its originator crashes mid-flood,
//!    as long as any live rank received it.
//!
//! Two deciding ranks always decide the same set: deciding requires two
//! rounds in which *every* live participant echoed the decider's exact
//! bitmap, so concurrent deciders have pairwise-equal bitmaps, and any
//! later rank adopts a flooded decision instead of deciding independently.
//! The one unavoidable wrinkle (crash-stop consensus with real timeouts):
//! a member that dies *after* the last flood it participated in may still
//! appear in the decided survivor set. That is not a safety violation for
//! the recovery stack — the next epoch's exchange trips over the stale
//! member and the whole detect → agree → shrink cycle runs again (this is
//! what makes recovery *multi*-epoch).
//!
//! A rank that finds its own position suspected in any received bitmap is
//! **evicted**: it keeps merging, stops sending, and returns with
//! [`AgreeOutcome::evicted_me`] set so its driver can fail the local rank
//! deliberately instead of hanging. Newly-suspected members are sent one
//! *courtesy* copy of the accusing bitmap for exactly this purpose.
//!
//! Alongside the bitmap, every frame floods a **dirty flag** — a unanimous
//! commit/abort vote in the style of ULFM's `MPI_Comm_agree`. A rank whose
//! preceding exchange failed enters with `dirty = true`; the flag is OR-ed
//! into every view it touches and is part of the stability condition, so
//! the decided `(survivors, dirty)` pair is identical at every live rank.
//! This is what lets a driver whose failure evidence is *asymmetric* (one
//! rank's fallback was lossless, a peer's was not; a collective faulted on
//! some ranks and completed on others) converge on one global verdict:
//! either every survivor commits the epoch, or every survivor retries it.
//!
//! Frames travel on the reserved tag `RESERVED_TAG_BASE + 0x3100 + (epoch
//! mod 256)` and carry the full epoch; stale-epoch frames are discarded on
//! receipt. All waiting is on the trait clock, so agreement is
//! deterministic (and nearly free) under [`crate::SimComm`].

use std::time::Duration;

use crate::detect::Suspicion;
use crate::{CommError, CommResult, Communicator, MsgBuf, Tag, RESERVED_TAG_BASE};

/// Base of the agreement tag block (`0x3100..0x31FF` above
/// [`RESERVED_TAG_BASE`]): 256 epochs.
pub(crate) const AGREE_TAG_BASE: Tag = RESERVED_TAG_BASE + 0x3100;

fn agree_tag(epoch: u32) -> Tag {
    AGREE_TAG_BASE + (epoch % 0x100)
}

const KIND_ROUND: u8 = 0;
const KIND_DECIDED: u8 = 1;

const FLAG_DIRTY: u8 = 1;

fn frame(kind: u8, dirty: bool, epoch: u32, round: u32, bits: &Suspicion) -> MsgBuf {
    let body = bits.to_bytes();
    let mut v = Vec::with_capacity(10 + body.len());
    v.push(kind);
    v.push(if dirty { FLAG_DIRTY } else { 0 });
    v.extend_from_slice(&epoch.to_le_bytes());
    v.extend_from_slice(&round.to_le_bytes());
    v.extend_from_slice(&body);
    MsgBuf::from_vec(v)
}

fn parse_frame(n: usize, epoch: u32, buf: &MsgBuf) -> Option<(u8, bool, u32, Suspicion)> {
    if buf.len() < 10 {
        return None;
    }
    let kind = buf[0];
    let dirty = buf[1] & FLAG_DIRTY != 0;
    let fep = u32::from_le_bytes(buf[2..6].try_into().ok()?);
    let round = u32::from_le_bytes(buf[6..10].try_into().ok()?);
    if fep != epoch {
        return None;
    }
    let bits = Suspicion::from_bytes(n, &buf[10..])?;
    Some((kind, dirty, round, bits))
}

/// Timing and termination policy for [`agree_survivors`].
///
/// Round deadlines are **anchored**: round `r`'s collection at a rank ends
/// at `entry + (r+1) · round_timeout`, where `entry` is when that rank
/// called [`agree_survivors`]. Anchoring is what keeps ranks from drifting
/// apart — a rank that burns a full window suspecting a dead peer in round
/// `r` is still inside every other rank's round-`r+1` deadline, provided
/// `round_timeout` exceeds the entry skew. Rounds do **not** busy-wait to
/// their deadline: a round completes the moment every expected frame has
/// arrived, so an all-alive agreement runs at message speed and only
/// rounds that witness a failure pay the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreeConfig {
    /// Per-round collection window. Must exceed the entry skew between
    /// ranks (detection may end at different instants on different ranks)
    /// plus, above an ARQ layer, that layer's retry budget for one send to
    /// a dead peer.
    pub round_timeout: Duration,
    /// Consecutive stable rounds required before deciding (≥ 1; 2 gives a
    /// freshly-propagated suspicion a round to reach everyone first).
    pub stable_rounds: u32,
    /// Hard cap on rounds; exceeding it returns
    /// [`crate::CommError::Timeout`] (crash-only: a wedged agreement fails
    /// loudly rather than spinning).
    pub max_rounds: u32,
    /// Poll quantum between probe passes while collecting, on the trait
    /// clock.
    pub poll: Duration,
}

impl Default for AgreeConfig {
    fn default() -> Self {
        AgreeConfig {
            round_timeout: Duration::from_millis(200),
            stable_rounds: 2,
            max_rounds: 64,
            poll: Duration::from_micros(50),
        }
    }
}

/// What agreement concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreeOutcome {
    /// The agreed survivor set, as sorted parent ranks (the member list
    /// minus the agreed suspicions). The dense renumbering is its index
    /// order — position `i` in this vector is rank `i` of the shrunken
    /// world.
    pub survivors: Vec<usize>,
    /// The agreed suspicion set over member positions.
    pub suspected: Suspicion,
    /// Rounds executed before deciding (or adopting).
    pub rounds: u32,
    /// This rank is itself in the agreed suspicion set: it must not use the
    /// survivor communicator (peers will not talk to it) — its driver
    /// should fail the local rank.
    pub evicted_me: bool,
    /// The decision was adopted from a peer's DECIDED flood rather than
    /// reached by local stability.
    pub adopted: bool,
    /// The agreed dirty flag: true iff *any* participant entered agreement
    /// with `dirty = true`. Drivers use it as a unanimous commit/abort vote
    /// — "did every live rank's preceding exchange succeed?" — so either
    /// all survivors commit the epoch or all retry it.
    pub dirty: bool,
}

/// Flood-and-decide agreement over `members` (sorted parent ranks,
/// including the caller): see the module docs for the protocol. `initial`
/// seeds the flood with this rank's detector verdicts; `dirty` seeds the
/// flooded commit/abort vote (pass `true` when this rank's preceding
/// exchange failed — the decided [`AgreeOutcome::dirty`] is then true at
/// every survivor).
///
/// Errors only for local failure (this rank crashed, malformed arguments)
/// or protocol non-termination within [`AgreeConfig::max_rounds`].
pub fn agree_survivors<C: Communicator + ?Sized>(
    comm: &C,
    members: &[usize],
    epoch: u32,
    cfg: &AgreeConfig,
    initial: &Suspicion,
    dirty: bool,
) -> CommResult<AgreeOutcome> {
    let me = comm.rank();
    let n = members.len();
    if initial.members() != n {
        return Err(CommError::BadArgument("initial suspicion set size != members"));
    }
    if members.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CommError::BadArgument("members must be sorted and unique"));
    }
    let Some(me_pos) = members.iter().position(|&m| m == me) else {
        return Err(CommError::BadArgument("calling rank not in members"));
    };
    if cfg.stable_rounds == 0 || cfg.max_rounds == 0 {
        return Err(CommError::BadArgument("stable_rounds and max_rounds must be >= 1"));
    }
    for &m in members {
        comm.check_rank(m)?;
    }
    let tag = agree_tag(epoch);

    let mut susp = initial.clone();
    let mut dirty = dirty;
    // Members suspected before agreement began (detector verdicts): high
    // confidence, never contacted. Members that become suspected *during*
    // agreement get one courtesy frame so a falsely-accused live rank can
    // learn its eviction.
    let mut courtesy_done: Vec<bool> = (0..n).map(|i| susp.get(i)).collect();
    let mut stable = 0u32;
    let start = comm.now();

    let outcome = |survivor_bits: Suspicion, rounds: u32, adopted: bool, dirty: bool| {
        let evicted_me = survivor_bits.get(me_pos);
        let survivors: Vec<usize> = (0..n)
            .filter(|&i| !survivor_bits.get(i))
            .map(|i| members[i])
            .collect();
        AgreeOutcome { survivors, suspected: survivor_bits, rounds, evicted_me, adopted, dirty }
    };

    for round in 0..cfg.max_rounds {
        let sent_bits = susp.clone();
        let sent_dirty = dirty;
        let round_frame = frame(KIND_ROUND, sent_dirty, epoch, round, &sent_bits);

        // Send to every unsuspected peer; one courtesy copy to the newly
        // suspected. Send failures incriminate the peer, not us.
        for i in 0..n {
            if i == me_pos {
                continue;
            }
            let is_susp = susp.get(i);
            if is_susp && courtesy_done[i] {
                continue;
            }
            if let Err(e) = comm.send_buf(members[i], tag, round_frame.clone()) {
                match e {
                    CommError::RankFailed { rank } if rank != me => {
                        if let Some(pos) = members.iter().position(|&m| m == rank) {
                            susp.set(pos);
                        }
                    }
                    other => return Err(other),
                }
            }
            if is_susp {
                courtesy_done[i] = true;
            }
        }

        // Collect one frame from every peer we did not suspect at round
        // start. Collection is concurrent (probe-driven over all pending
        // peers) against a deadline **anchored** to our entry time, so a
        // peer that burned its full round-`r` window on a member we had
        // already suspected is still inside our round-`r+1` window.
        let deadline = start + cfg.round_timeout * (round + 1);
        let mut pending: Vec<usize> =
            (0..n).filter(|&i| i != me_pos && !sent_bits.get(i)).collect();
        let mut all_echoed_exactly = true;
        while !pending.is_empty() {
            let mut progressed = false;
            let mut k = 0;
            while k < pending.len() {
                let i = pending[k];
                let peer = members[i];
                let polled = match comm.probe(peer, tag) {
                    Ok(Some(_)) => comm.recv_buf(peer, tag).map(Some),
                    Ok(None) => Ok(None),
                    Err(e) => Err(e),
                };
                match polled {
                    Ok(None) => {
                        k += 1;
                    }
                    Ok(Some(buf)) => {
                        progressed = true;
                        let Some((kind, fdirty, _round, bits)) = parse_frame(n, epoch, &buf)
                        else {
                            continue; // stale epoch or corrupt — re-probe
                        };
                        if kind == KIND_DECIDED {
                            // Adopt: re-flood so the decision survives its
                            // originator, then return it verbatim.
                            let decided = frame(KIND_DECIDED, fdirty, epoch, round, &bits);
                            for j in 0..n {
                                if j != me_pos && j != i {
                                    if comm.send_buf(members[j], tag, decided.clone()).is_err() {
                                        // Best-effort flood: unreachable
                                        // peers learn from someone else or
                                        // from the next epoch.
                                    }
                                }
                            }
                            return Ok(outcome(bits, round + 1, true, fdirty));
                        }
                        if bits != sent_bits || fdirty != sent_dirty {
                            all_echoed_exactly = false;
                        }
                        susp.union(&bits);
                        dirty |= fdirty;
                        pending.swap_remove(k);
                    }
                    Err(CommError::RankFailed { rank }) if rank != me => {
                        progressed = true;
                        if let Some(pos) = members.iter().position(|&m| m == rank) {
                            susp.set(pos);
                        }
                        susp.set(i);
                        all_echoed_exactly = false;
                        pending.swap_remove(k);
                    }
                    Err(e) => return Err(e),
                }
            }
            if pending.is_empty() {
                break;
            }
            if comm.now() >= deadline {
                // Whoever has not produced a frame by the anchored deadline
                // is suspected; the next round floods that news.
                for &i in &pending {
                    susp.set(i);
                }
                all_echoed_exactly = false;
                break;
            }
            if !progressed {
                comm.sleep(cfg.poll);
            }
        }

        if susp.get(me_pos) {
            // Someone (perhaps everyone) suspects us. Participate no
            // further; report eviction with our best view.
            return Ok(outcome(susp, round + 1, false, dirty));
        }
        if susp == sent_bits && dirty == sent_dirty && all_echoed_exactly {
            stable += 1;
        } else {
            stable = 0;
        }
        if stable >= cfg.stable_rounds {
            // Decide and flood, best-effort, to every member — including
            // suspected ones, so a falsely-suspected rank learns.
            let decided = frame(KIND_DECIDED, dirty, epoch, round, &susp);
            for j in 0..n {
                if j != me_pos {
                    if comm.send_buf(members[j], tag, decided.clone()).is_err() {
                        // Best-effort: a dead peer cannot learn anyway.
                    }
                }
            }
            return Ok(outcome(susp, round + 1, false, dirty));
        }
    }

    Err(CommError::Timeout {
        src: me,
        tag,
        waited: comm.now().saturating_sub(start),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::Suspicion;
    use crate::{SimComm, SimConfig, ThreadComm};

    fn quick() -> AgreeConfig {
        AgreeConfig {
            round_timeout: Duration::from_millis(150),
            stable_rounds: 2,
            max_rounds: 32,
            poll: Duration::from_micros(200),
        }
    }

    #[test]
    fn empty_suspicions_decide_full_membership() {
        ThreadComm::run(4, |comm| {
            let out =
                agree_survivors(comm, &[0, 1, 2, 3], 0, &quick(), &Suspicion::none(4), false)
                    .unwrap();
            assert_eq!(out.survivors, vec![0, 1, 2, 3]);
            assert!(!out.evicted_me);
            assert!(!out.dirty);
            out
        });
    }

    #[test]
    fn one_dirty_entrant_makes_the_whole_decision_dirty() {
        // Rank 1 enters with a failed-exchange vote; everyone must decide
        // dirty = true with the full survivor set.
        let outs = ThreadComm::run(4, |comm| {
            let dirty = comm.rank() == 1;
            agree_survivors(comm, &[0, 1, 2, 3], 3, &quick(), &Suspicion::none(4), dirty)
                .unwrap()
        });
        for (r, out) in outs.iter().enumerate() {
            assert_eq!(out.survivors, vec![0, 1, 2, 3], "rank {r}");
            assert!(out.dirty, "rank {r}: dirty vote must flood to everyone");
        }
    }

    #[test]
    fn one_sided_suspicion_floods_to_everyone() {
        // Only rank 0 suspects the (absent) rank 2; all participants must
        // converge on the same survivor set {0, 1, 3}.
        let outs = ThreadComm::run(4, |comm| {
            if comm.rank() == 2 {
                return None;
            }
            let mut initial = Suspicion::none(4);
            if comm.rank() == 0 {
                initial.set(2);
            }
            Some(
                agree_survivors(comm, &[0, 1, 2, 3], 1, &quick(), &initial, false)
                    .unwrap(),
            )
        });
        for (r, out) in outs.iter().enumerate() {
            if r == 2 {
                continue;
            }
            let out = out.as_ref().unwrap();
            assert_eq!(out.survivors, vec![0, 1, 3], "rank {r}");
            assert!(!out.evicted_me, "rank {r}");
        }
    }

    #[test]
    fn survivor_sets_agree_under_sim_across_schedules() {
        for seed in 0..6u64 {
            let report = SimComm::try_run(5, &SimConfig::from_seed(seed), |comm| {
                if comm.rank() == 3 {
                    return Ok(None); // plays dead
                }
                let mut initial = Suspicion::none(5);
                if comm.rank() % 2 == 0 {
                    initial.set(3);
                }
                agree_survivors(comm, &[0, 1, 2, 3, 4], 2, &quick(), &initial, false).map(Some)
            });
            let mut sets = Vec::new();
            for (rank, o) in report.outcomes.iter().enumerate() {
                if rank == 3 {
                    continue;
                }
                let out = o.as_ref().expect("no panic").as_ref().unwrap().clone().unwrap();
                assert!(!out.evicted_me, "seed {seed} rank {rank}");
                sets.push(out.survivors);
            }
            for s in &sets {
                assert_eq!(s, &vec![0, 1, 2, 4], "seed {seed}");
            }
        }
    }
}
