//! Two-phase Bruck (§3.2, Algorithm 1) — the paper's headline contribution.
//!
//! Each of the log(P) Bruck steps is a *coupled* exchange: a metadata message
//! carrying the byte sizes of the outgoing blocks, then the blocks themselves
//! packed into one data message. A monolithic working buffer `W` of `P × N`
//! bytes (`N` = global maximum block size, found with one allreduce) stages
//! every intermediate block: slot `j` of `W` is reserved for working slot
//! `j`, so staging needs no per-block allocation, no pointer array and no
//! resizing — the §6.1 improvements over SLOAV.
//!
//! Routing is Zero Rotation Bruck's: working slot `j` at rank `p` carries the
//! block with relative index `i = (j − p) mod P`; a block's first send reads
//! straight from the user buffer through the rotation index array, and a
//! block whose relative index is exhausted (`i < 2^{k+1}` at step `k`) is
//! received directly into its final position in the user's receive buffer —
//! no rotation and no final scan.

use bruck_comm::{CommError, CommResult, Communicator, MsgBuf, ReduceOp};

use super::validate_v;
use crate::common::{add_mod, ceil_log2, data_tag, meta_tag, rotation_index, step_rel_indices, sub_mod};
use crate::probe::span;

/// Two-phase Bruck non-uniform all-to-all (same contract as `MPI_Alltoallv`).
#[allow(clippy::too_many_arguments)]
pub fn two_phase_bruck<C: Communicator + ?Sized>(
    comm: &C,
    sendbuf: &[u8],
    sendcounts: &[usize],
    sdispls: &[usize],
    recvbuf: &mut [u8],
    recvcounts: &[usize],
    rdispls: &[usize],
) -> CommResult<()> {
    let p = validate_v(comm, sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)?;
    let me = comm.rank();

    // Line 1: global maximum block size N (one allreduce).
    let n_max = {
        let _probe = span("two_phase.allreduce");
        let local_max = sendcounts.iter().copied().max().unwrap_or(0);
        comm.allreduce_u64(local_max as u64, ReduceOp::Max)? as usize
    };

    // Self block: never communicated (relative index 0).
    recvbuf[rdispls[me]..rdispls[me] + recvcounts[me]]
        .copy_from_slice(&sendbuf[sdispls[me]..sdispls[me] + sendcounts[me]]);
    if p == 1 {
        return Ok(());
    }

    // Line 2: monolithic working buffer, slot j at W[j*N .. (j+1)*N].
    let mut working = vec![0u8; p * n_max];
    // Lines 3–5: rotation index array I[j] = (2p − j) mod P.
    let rot = rotation_index(me, p);
    // Current byte size of the block in working slot j (initially the
    // original block the rotation maps there — the paper updates
    // `sendcounts[I[sd]]` in place; we keep a separate array and leave the
    // caller's slice untouched).
    let mut cur_size: Vec<usize> = (0..p).map(|j| sendcounts[rot[j]]).collect();
    // status: slot j's data has been received into W (vs. still in sendbuf).
    let mut in_working = vec![false; p];

    let mut slots: Vec<usize> = Vec::with_capacity(p.div_ceil(2));

    for k in 0..ceil_log2(p) {
        let hop = 1usize << k;
        let dest = sub_mod(me, hop, p); // "sendrank" in Algorithm 1
        let src = add_mod(me, hop, p); // "recvrank"

        // Lines 7–10: the working slots sd transmitted this step.
        slots.clear();
        slots.extend(step_rel_indices(p, k).map(|i| add_mod(i, me, p)));

        // Lines 11–13 + 16: metadata — the sizes of the outgoing blocks.
        // The wire buffers are handed to the transport as `MsgBuf`s (the
        // per-step pack is the only copy; the send itself moves the region).
        let meta_got = {
            let _probe = span("two_phase.meta");
            let mut meta_wire: Vec<u8> = Vec::with_capacity(slots.len() * 4);
            for &j in &slots {
                let sz = u32::try_from(cur_size[j])
                    .map_err(|_| CommError::BadArgument("block size exceeds u32 metadata"))?;
                meta_wire.extend_from_slice(&sz.to_le_bytes());
            }
            comm.sendrecv_buf(dest, meta_tag(k), MsgBuf::from_vec(meta_wire), src, meta_tag(k))?
        };
        if meta_got.len() != slots.len() * 4 {
            return Err(CommError::BadArgument("metadata length mismatch"));
        }

        // Lines 17–23: pack outgoing blocks — from W if previously received,
        // else from the user's send buffer through the rotation index.
        let mut data_wire: Vec<u8> = Vec::new();
        {
            let _probe = span("two_phase.pack");
            for &j in &slots {
                let sz = cur_size[j];
                if in_working[j] {
                    data_wire.extend_from_slice(&working[j * n_max..j * n_max + sz]);
                } else {
                    let d = sdispls[rot[j]];
                    data_wire.extend_from_slice(&sendbuf[d..d + sz]);
                }
            }
        }

        // Line 24 + lines 25–33: coupled data exchange and scatter.
        let data_got = {
            let _probe = span("two_phase.data");
            comm.sendrecv_buf(dest, data_tag(k), MsgBuf::from_vec(data_wire), src, data_tag(k))?
        };
        let _probe = span("two_phase.scatter");
        let mut at = 0;
        for (idx, &j) in slots.iter().enumerate() {
            let sz = u32::from_le_bytes(
                meta_got[idx * 4..idx * 4 + 4].try_into().expect("4-byte metadata entry"),
            ) as usize;
            let rel = sub_mod(j, me, p);
            if rel < 2 * hop {
                // Final hop for this block (all set bits ≤ k): deliver
                // straight into the user's receive buffer (lines 26–27).
                debug_assert_eq!(sz, recvcounts[j], "recvcounts disagrees with routed size");
                recvbuf[rdispls[j]..rdispls[j] + sz].copy_from_slice(&data_got[at..at + sz]);
            } else {
                // Will be forwarded at a later step: stage in W (line 29).
                working[j * n_max..j * n_max + sz].copy_from_slice(&data_got[at..at + sz]);
            }
            in_working[j] = true;
            cur_size[j] = sz;
            at += sz;
        }
        if at != data_got.len() {
            return Err(CommError::BadArgument("data payload length mismatch"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{run_and_check, run_and_check_matrix, TEST_SIZES};
    use super::super::AlltoallvAlgorithm::TwoPhaseBruck;
    use bruck_workload::{Distribution, SizeMatrix};

    #[test]
    fn correct_for_all_communicator_sizes() {
        for p in TEST_SIZES {
            run_and_check(TwoPhaseBruck, p, 32, 0xBEEF);
        }
    }

    #[test]
    fn correct_for_all_distributions() {
        for dist in [
            Distribution::Uniform,
            Distribution::Windowed { r: 30 },
            Distribution::Normal,
            Distribution::POWER_LAW_STEEP,
        ] {
            let m = SizeMatrix::generate(dist, 7, 12, 64);
            run_and_check_matrix(TwoPhaseBruck, &m);
        }
    }

    #[test]
    fn zero_sized_blocks_everywhere() {
        let m = SizeMatrix::uniform(8, 0);
        run_and_check_matrix(TwoPhaseBruck, &m);
    }

    #[test]
    fn single_nonzero_block() {
        // Only rank 2 sends anything, and only to rank 5.
        let mut rows = vec![vec![0usize; 8]; 8];
        rows[2][5] = 40;
        run_and_check_matrix(TwoPhaseBruck, &SizeMatrix::from_rows(rows));
    }

    #[test]
    fn highly_skewed_sizes() {
        // One huge block per rank among tiny ones exercises the W staging.
        let p = 9;
        let rows: Vec<Vec<usize>> = (0..p)
            .map(|src| (0..p).map(|dst| if dst == (src + 3) % p { 512 } else { 1 }).collect())
            .collect();
        run_and_check_matrix(TwoPhaseBruck, &SizeMatrix::from_rows(rows));
    }
}
