//! Distributed semi-naive transitive closure (§5.1).
//!
//! The classic BPRA formulation: edges `E(y, z)` are sharded by their first
//! column, paths `T(x, y)` by their second — so the semi-naive join
//! `ΔT(x, y) ⋈ E(y, z)` is entirely local, and only the *new* paths
//! `(x, z)` must be routed (to `owner(z)`) through one non-uniform all-to-all
//! per iteration. Iteration count equals the longest path length in the
//! graph, which is exactly why the paper's Graph 1 (deep) and Graph 2
//! (shallow, bushy) stress the all-to-all so differently.

use std::time::{Duration, Instant};

use bruck_comm::{CommResult, Communicator, ReduceOp};
use bruck_core::AlltoallvAlgorithm;

use crate::{exchange_tuples, owner, ExchangeStats, Relation, Tuple};

/// Instrumentation for one fixpoint iteration.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcIteration {
    /// Globally new paths discovered this iteration.
    pub new_paths: u64,
    /// The iteration's all-to-all stats (N, bytes, time).
    pub exchange: ExchangeStats,
}

/// Result of a distributed transitive-closure run (per rank).
#[derive(Debug)]
pub struct TcResult {
    /// Fixpoint iterations executed (including the final empty one).
    pub iterations: usize,
    /// Total paths in the closure, globally.
    pub total_paths: u64,
    /// This rank's shard of the closure (paths `(x, y)` with
    /// `owner(y) == rank`).
    pub local_paths: Relation,
    /// Per-iteration instrumentation.
    pub per_iteration: Vec<TcIteration>,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Time spent inside the all-to-all exchanges.
    pub comm_time: Duration,
}

/// Compute the transitive closure of `edges` (every rank passes the same
/// full edge list; sharding is internal). `algo` selects the all-to-all —
/// the single knob the paper's §5 experiments turn.
pub fn transitive_closure<C: Communicator + ?Sized>(
    comm: &C,
    algo: AlltoallvAlgorithm,
    edges: &[Tuple],
) -> CommResult<TcResult> {
    let start = Instant::now();
    let p = comm.size();
    let me = comm.rank();

    // Shard E by first column (join key).
    let my_edges: Relation = edges.iter().copied().filter(|e| owner(e.0, p) == me).collect();
    // T and the initial delta: paths sharded by second column.
    let mut local_paths: Relation =
        edges.iter().copied().filter(|e| owner(e.1, p) == me).collect();
    let mut delta: Vec<Tuple> = local_paths.iter().copied().collect();

    let mut per_iteration = Vec::new();
    let mut comm_time = Duration::ZERO;
    loop {
        // Local join: ΔT(x, y) ⋈ E(y, z) → candidate paths (x, z).
        let mut outboxes: Vec<Vec<Tuple>> = vec![Vec::new(); p];
        my_edges.join_on_first(&delta, |x, _y, z| outboxes[owner(z, p)].push((x, z)));

        let (received, exchange) = exchange_tuples(comm, algo, &outboxes)?;
        comm_time += exchange.comm_time;

        // Deduplicate against the local shard of T.
        delta.clear();
        for t in received {
            if local_paths.insert(t) {
                delta.push(t);
            }
        }
        let new_paths = comm.allreduce_u64(delta.len() as u64, ReduceOp::Sum)?;
        per_iteration.push(TcIteration { new_paths, exchange });
        if new_paths == 0 {
            break;
        }
    }

    let total_paths = comm.allreduce_u64(local_paths.len() as u64, ReduceOp::Sum)?;
    Ok(TcResult {
        iterations: per_iteration.len(),
        total_paths,
        local_paths,
        per_iteration,
        total_time: start.elapsed(),
        comm_time,
    })
}

/// Sequential reference closure (tests and single-rank baselines).
pub fn sequential_closure(edges: &[Tuple]) -> Relation {
    let index: Relation = edges.iter().copied().collect();
    let mut closure: Relation = edges.iter().copied().collect();
    let mut delta: Vec<Tuple> = edges.to_vec();
    while !delta.is_empty() {
        let mut next = Vec::new();
        index.join_on_first(&delta, |x, _y, z| next.push((x, z)));
        delta.clear();
        for t in next {
            if closure.insert(t) {
                delta.push(t);
            }
        }
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use bruck_comm::ThreadComm;

    fn chain(n: u64) -> Vec<Tuple> {
        (0..n).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn sequential_closure_of_chain() {
        // Chain 0→1→2→3: closure has n(n+1)/2 = 6 paths.
        let c = sequential_closure(&chain(3));
        assert_eq!(c.len(), 6);
        assert!(c.contains(&(0, 3)));
        assert!(!c.contains(&(3, 0)));
    }

    #[test]
    fn distributed_matches_sequential_on_small_graphs() {
        let graphs: Vec<Vec<Tuple>> = vec![
            chain(6),
            vec![(0, 1), (1, 2), (2, 0)],                   // cycle
            vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],   // diamond + tail
            vec![(5, 5)],                                   // self loop
            vec![],                                         // empty
        ];
        for edges in graphs {
            let expect = sequential_closure(&edges);
            for algo in [AlltoallvAlgorithm::Vendor, AlltoallvAlgorithm::TwoPhaseBruck] {
                let edges2 = edges.clone();
                let results = ThreadComm::run(4, move |comm| {
                    let r = transitive_closure(comm, algo, &edges2).unwrap();
                    (r.total_paths, r.local_paths.iter().copied().collect::<Vec<_>>())
                });
                let mut all: Vec<Tuple> = Vec::new();
                for (total, local) in &results {
                    assert_eq!(*total, expect.len() as u64);
                    all.extend(local);
                }
                all.sort_unstable();
                let mut want: Vec<Tuple> = expect.iter().copied().collect();
                want.sort_unstable();
                assert_eq!(all, want, "algo {algo:?}, edges {edges:?}");
            }
        }
    }

    #[test]
    fn iteration_count_tracks_longest_path() {
        // Semi-naive extension adds one edge per iteration: a chain with L
        // edges takes L−1 productive iterations plus the final empty one.
        let l = 9;
        let results = ThreadComm::run(3, move |comm| {
            transitive_closure(comm, AlltoallvAlgorithm::TwoPhaseBruck, &chain(l))
                .unwrap()
                .iterations
        });
        for iters in results {
            assert_eq!(iters, l as usize);
        }
    }

    #[test]
    fn per_iteration_stats_are_recorded() {
        let results = ThreadComm::run(2, |comm| {
            transitive_closure(comm, AlltoallvAlgorithm::Vendor, &chain(4)).unwrap()
        });
        for r in results {
            assert_eq!(r.per_iteration.len(), r.iterations);
            assert_eq!(r.per_iteration.last().unwrap().new_paths, 0);
            assert!(r.total_time >= r.comm_time);
        }
    }

    #[test]
    fn works_on_single_rank() {
        let results = ThreadComm::run(1, |comm| {
            transitive_closure(comm, AlltoallvAlgorithm::TwoPhaseBruck, &chain(5))
                .unwrap()
                .total_paths
        });
        assert_eq!(results[0], 15);
    }
}
