//! Property tests for the message-passing runtime: ordering, matching, and
//! collective correctness over randomized inputs.
//!
//! Seeded-random (SplitMix64) rather than `proptest`-driven: the workspace
//! builds hermetically with zero external crates, so each property runs a
//! fixed number of deterministic random cases instead of shrinking searches.

use bruck_comm::{Communicator, ReduceOp, ThreadComm, VectorCollectives};
use bruck_workload::SplitMix64;

const CASES: u64 = 16;

/// Per-(source, tag) FIFO holds for arbitrary interleavings of tags.
#[test]
fn fifo_per_tag_under_random_schedules() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF1F0 ^ case);
        let n = rng.next_range(1, 60) as usize;
        let tags: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32 % 4).collect();
        let seed = rng.next_u64();
        let tags2 = tags.clone();
        ThreadComm::run(2, move |comm| {
            if comm.rank() == 0 {
                // Send sequence numbers per tag, in program order.
                let mut seq = [0u8; 4];
                for &t in &tags {
                    comm.send(1, t, &[seq[t as usize]]).unwrap();
                    seq[t as usize] += 1;
                }
            } else {
                // Receive in a *different* order (tag-major, seeded offset):
                // within each tag the sequence must still be FIFO.
                let mut order: Vec<u32> = (0..4).collect();
                order.rotate_left((seed % 4) as usize);
                for t in order {
                    let count = tags2.iter().filter(|&&x| x == t).count();
                    for expect in 0..count {
                        let got = comm.recv(0, t).unwrap();
                        assert_eq!(got, vec![expect as u8], "tag {t}");
                    }
                }
            }
        });
    }
}

/// allreduce agrees with a sequential fold for random values and sizes.
#[test]
fn allreduce_matches_sequential_fold() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA11D ^ case);
        let p = rng.next_range(1, 10) as usize;
        let vals: Vec<u64> = (0..p).map(|_| rng.next_u64()).collect();
        for op in [ReduceOp::Max, ReduceOp::Min, ReduceOp::Sum] {
            let expect = vals.iter().skip(1).fold(vals[0], |a, &b| op.apply(a, b));
            let vals2 = vals.clone();
            let out =
                ThreadComm::run(p, move |comm| comm.allreduce_u64(vals2[comm.rank()], op).unwrap());
            assert!(out.iter().all(|&v| v == expect), "{op:?} case {case}");
        }
    }
}

/// allgatherv returns every rank's exact payload, any lengths.
#[test]
fn allgatherv_roundtrips_random_payloads() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA119 ^ case);
        let p = rng.next_range(1, 8) as usize;
        let lens: Vec<usize> = (0..p).map(|_| rng.next_usize(40)).collect();
        let lens2 = lens.clone();
        let out = ThreadComm::run(p, move |comm| {
            let me = comm.rank();
            let mine: Vec<u8> = (0..lens2[me]).map(|i| (me * 91 + i) as u8).collect();
            comm.allgatherv_bytes(&mine).unwrap()
        });
        for got in out {
            for (src, payload) in got.iter().enumerate() {
                let expect: Vec<u8> = (0..lens[src]).map(|i| (src * 91 + i) as u8).collect();
                assert_eq!(payload, &expect, "case {case}");
            }
        }
    }
}

/// The counts handshake is an exact transpose for arbitrary matrices.
#[test]
fn alltoall_counts_transposes() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC025 ^ case);
        let p = rng.next_range(1, 8) as usize;
        let matrix: Vec<Vec<usize>> =
            (0..p).map(|_| (0..p).map(|_| rng.next_usize(10_000)).collect()).collect();
        let m2 = matrix.clone();
        let out = ThreadComm::run(p, move |comm| comm.alltoall_counts(&m2[comm.rank()]).unwrap());
        for (me, got) in out.iter().enumerate() {
            for (src, &c) in got.iter().enumerate() {
                assert_eq!(c, matrix[src][me], "case {case}");
            }
        }
    }
}

/// Zero-copy path: random fan-outs of disjoint slices of one packed region
/// deliver exactly the slice bytes, and the compat path observes them
/// identically.
#[test]
fn random_slice_fanout_roundtrips() {
    use bruck_comm::MsgBuf;
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x51CE ^ case);
        let p = rng.next_range(2, 9) as usize;
        let block = rng.next_range(1, 64) as usize;
        ThreadComm::run(p, move |comm| {
            let me = comm.rank();
            // One packed region per rank: block for dest 0, dest 1, ...
            let mut packed = Vec::with_capacity(p * block);
            for d in 0..p {
                packed.extend(std::iter::repeat((me * 31 + d) as u8).take(block));
            }
            let region = MsgBuf::from_vec(packed);
            for d in 0..p {
                comm.send_buf(d, 77, region.slice(d * block..(d + 1) * block)).unwrap();
            }
            for s in 0..p {
                let got = comm.recv_buf(s, 77).unwrap();
                assert_eq!(got.len(), block);
                assert!(got.iter().all(|&b| b == (s * 31 + me) as u8));
            }
        });
    }
}
