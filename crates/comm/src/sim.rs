//! `SimSched` — a deterministic simulation runtime for schedule exploration.
//!
//! The threaded backend ([`crate::ThreadComm`]) exercises exactly one
//! OS-chosen interleaving per run; this module runs the *same unmodified
//! algorithms* under a cooperative token-passing scheduler instead:
//!
//! * **One runnable rank at a time.** Each rank is still an OS thread (so
//!   algorithm code needs no changes), but a token — guarded by one mutex and
//!   condition variable — lets exactly one of them execute. Every
//!   communicator operation (send, receive, probe, sleep) is a yield point
//!   where the central scheduler picks the next runnable rank.
//! * **Seeded choice.** The scheduler draws each pick from a SplitMix64
//!   stream, so a `(program, seed)` pair fully determines the interleaving.
//!   The sequence of picked ranks is the *schedule trace*
//!   ([`ScheduleTrace`]), serializable to a file and replayable bit-for-bit.
//! * **Virtual time.** [`SimComm::now`] reads a virtual clock that only
//!   advances when every rank is blocked, jumping straight to the earliest
//!   pending deadline. `recv_buf_timeout` therefore fires after *exactly*
//!   its budget of virtual time and zero wall-clock time, and
//!   [`crate::DeadlineComm`] / [`crate::FaultComm`] stalls compose with it
//!   unchanged.
//! * **Deadlock as a value.** If every live rank is blocked and no pending
//!   wait carries a timeout, no schedule can make progress; the scheduler
//!   proves the deadlock and wakes every blocked rank with
//!   [`CommError::Deadlock`] instead of hanging.
//!
//! Replay consumes a recorded choice list; once it is exhausted (or a
//! recorded choice names a rank that is not runnable, which happens when the
//! program diverged) the scheduler falls back to the lowest runnable rank.
//! Every choice-list prefix is therefore a complete, runnable schedule —
//! the property the delta-debugging shrinker ([`shrink_choices`]) relies on
//! to minimize a failing schedule by deleting choices.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::chaos::splitmix;
use crate::mailbox::{MatchStore, StoreStats};
use crate::{CommError, CommResult, Communicator, MsgBuf, Tag};

// ---------------------------------------------------------------------------
// Schedule traces.
// ---------------------------------------------------------------------------

/// A recorded schedule: the exact sequence of ranks the scheduler picked,
/// plus the world size and seed that produced it. Serializable to a small
/// text file so a failing interleaving can be attached to a bug report and
/// replayed anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// World size the schedule was recorded against.
    pub p: usize,
    /// RNG seed the schedule was recorded from (provenance; replay does not
    /// re-draw from it).
    pub seed: u64,
    /// Free-form single-line context (e.g. the `bruck-sim` cell that failed).
    pub meta: String,
    /// The picked rank at every scheduling point, in order.
    pub choices: Vec<u32>,
}

impl ScheduleTrace {
    /// Serialize to the `bruck-sim-trace v1` text format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("bruck-sim-trace v1\n");
        out.push_str(&format!("p {}\n", self.p));
        out.push_str(&format!("seed {}\n", self.seed));
        if !self.meta.is_empty() {
            out.push_str(&format!("meta {}\n", self.meta));
        }
        out.push_str("choices");
        for c in &self.choices {
            out.push_str(&format!(" {c}"));
        }
        out.push('\n');
        out
    }

    /// Parse the `bruck-sim-trace v1` text format. Error messages name the
    /// offending line (1-based) and quote its content, so a corrupted or
    /// hand-edited trace file points straight at the damage.
    pub fn parse(text: &str) -> Result<ScheduleTrace, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "bruck-sim-trace v1")) => {}
            Some((_, other)) => {
                return Err(format!("line 1: bad trace header {other:?} (want \"bruck-sim-trace v1\")"))
            }
            None => return Err("line 1: empty input (want \"bruck-sim-trace v1\" header)".into()),
        }
        let mut p = None;
        let mut seed = None;
        let mut meta = String::new();
        let mut choices = None;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "p" => {
                    p = Some(rest.parse::<usize>().map_err(|e| {
                        format!("line {lineno}: bad p in {line:?}: {e}")
                    })?)
                }
                "seed" => {
                    seed = Some(rest.parse::<u64>().map_err(|e| {
                        format!("line {lineno}: bad seed in {line:?}: {e}")
                    })?)
                }
                "meta" => meta = rest.to_string(),
                "choices" => {
                    let mut v = Vec::new();
                    for tok in rest.split_whitespace() {
                        v.push(tok.parse::<u32>().map_err(|e| {
                            format!("line {lineno}: bad choice {tok:?} in choices line: {e}")
                        })?);
                    }
                    choices = Some(v);
                }
                other => {
                    return Err(format!("line {lineno}: unknown trace field {other:?} in {line:?}"))
                }
            }
        }
        Ok(ScheduleTrace {
            p: p.ok_or("truncated trace: missing \"p\" line")?,
            seed: seed.ok_or("truncated trace: missing \"seed\" line")?,
            meta,
            choices: choices.ok_or("truncated trace: missing \"choices\" line")?,
        })
    }

    /// Write the trace to `path` in the text format.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.serialize())
    }

    /// Read a trace previously written by [`ScheduleTrace::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<ScheduleTrace> {
        let text = std::fs::read_to_string(path)?;
        ScheduleTrace::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl std::fmt::Display for ScheduleTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.serialize())
    }
}

// ---------------------------------------------------------------------------
// Step recording: the dependency footprint a model checker needs.
// ---------------------------------------------------------------------------

/// The dependency footprint of the operation a rank will execute the next
/// time it is scheduled. Recorded (when [`SimConfig::record_steps`] is set)
/// for every rank in the enabled set at every scheduling point, so an
/// external explorer (DPOR in `bruck-check`) can decide which pairs of
/// scheduling choices commute without re-running the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOp {
    /// The rank has attached but not yet reached its first communicator
    /// call: its first slice of execution is purely local.
    Spawn,
    /// About to deposit into `dest`'s store under key `(self, tag)`.
    Send {
        /// Destination rank.
        dest: usize,
        /// Message tag.
        tag: Tag,
    },
    /// About to pop (or block on) key `(src, tag)` in its own store.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: Tag,
        /// True for `recv_buf_timeout`: the op also observes the virtual
        /// clock, so it is dependent on every other clock-coupled op.
        timed: bool,
    },
    /// About to peek key `(src, tag)` in its own store.
    Probe {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: Tag,
    },
    /// Virtual-time sleep (clock-coupled).
    Sleep,
}

/// One recorded scheduling point: which rank the scheduler picked and every
/// rank that was runnable at that moment, each with the footprint of the op
/// it would have executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStep {
    /// The rank the scheduler picked (mirrors the entry appended to
    /// [`ScheduleTrace::choices`] at this point).
    pub chosen: u32,
    /// Every runnable rank at this point, ascending, with its pending op.
    pub enabled: Vec<(u32, SimOp)>,
}

// ---------------------------------------------------------------------------
// Scheduler configuration and reports.
// ---------------------------------------------------------------------------

/// How the scheduler makes its picks.
#[derive(Debug, Clone)]
enum SchedMode {
    /// Draw every pick from the seeded SplitMix64 stream.
    Random,
    /// Consume a recorded choice list; after exhaustion (or on a choice that
    /// names a non-runnable rank) fall back to the lowest runnable rank, so
    /// any prefix of a recording is a complete deterministic schedule.
    Replay(VecDeque<u32>),
}

/// Configuration for one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the scheduler's random picks (ignored by replay).
    pub seed: u64,
    /// Recorded choices to replay instead of drawing from the seed.
    pub replay: Option<Vec<u32>>,
    /// Free-form context copied into the resulting [`ScheduleTrace::meta`].
    pub meta: String,
    /// Record a [`SimStep`] (enabled set + op footprints) at every
    /// scheduling point. Off by default: recording allocates per pick, and
    /// only the model checker reads it.
    pub record_steps: bool,
}

impl SimConfig {
    /// Random scheduling from `seed`.
    pub fn from_seed(seed: u64) -> SimConfig {
        SimConfig { seed, replay: None, meta: String::new(), record_steps: false }
    }

    /// Replay the choices of a recorded trace (deterministic lowest-ready
    /// fallback once they run out).
    pub fn replay_trace(trace: &ScheduleTrace) -> SimConfig {
        SimConfig {
            seed: trace.seed,
            replay: Some(trace.choices.clone()),
            meta: trace.meta.clone(),
            record_steps: false,
        }
    }
}

/// Outcome of [`SimComm::try_run`]: per-rank results with panics captured as
/// strings, plus the recorded schedule.
#[derive(Debug)]
pub struct SimReport<T> {
    /// One entry per rank: the closure's return value, or the panic payload
    /// rendered as a string.
    pub outcomes: Vec<Result<T, String>>,
    /// The schedule that was actually executed.
    pub trace: ScheduleTrace,
    /// Per-scheduling-point enabled sets and op footprints, present iff
    /// [`SimConfig::record_steps`] was set. Aligned 1:1 with
    /// [`ScheduleTrace::choices`].
    pub steps: Option<Vec<SimStep>>,
}

impl<T> SimReport<T> {
    /// True if no rank panicked.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_ok())
    }
}

/// Outcome of [`SimComm::run`]: per-rank results plus the recorded schedule.
#[derive(Debug)]
pub struct SimRun<T> {
    /// One entry per rank, indexed by rank.
    pub results: Vec<T>,
    /// The schedule that was actually executed.
    pub trace: ScheduleTrace,
}

// ---------------------------------------------------------------------------
// Scheduler state.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    /// Thread not yet attached (startup only).
    NotStarted,
    /// Runnable, waiting to be picked. The flags carry the *reason* a
    /// blocked rank was woken so its pending receive can surface the right
    /// result when it is next scheduled.
    Ready { timed_out: bool, deadlocked: bool },
    /// Holds the token.
    Running,
    /// Parked in a receive with no matching message.
    Blocked { src: usize, tag: Tag, deadline: Option<Duration>, since: Duration },
    /// Parked in a virtual-time sleep.
    Sleeping { until: Duration },
    /// Closure returned (or panicked).
    Done,
}

struct SimState {
    /// Per-destination matching stores (the same [`MatchStore`] engine the
    /// threaded mailbox and the event runtime use): `(src, tag)` → FIFO of
    /// payloads. Deposits happen in token order, so per-edge FIFO gives the
    /// same non-overtaking guarantee as the threaded mailbox.
    queues: Vec<MatchStore>,
    ranks: Vec<RankState>,
    /// Rank currently holding the token (None during startup/shutdown).
    current: Option<usize>,
    /// The virtual clock. Advances only in `pick_next`, when no rank is
    /// runnable, jumping to the earliest pending deadline.
    now: Duration,
    rng: u64,
    mode: SchedMode,
    /// Every pick made so far — the schedule trace being recorded.
    choices: Vec<u32>,
    /// The op each rank will execute when next scheduled. Registered at op
    /// entry, *before* the yield, so every scheduling point sees a current
    /// footprint for every enabled rank.
    pending: Vec<SimOp>,
    /// Recorded scheduling points (empty unless `record` is set).
    steps: Vec<SimStep>,
    /// Whether to record [`SimStep`]s.
    record: bool,
    /// Threads attached so far; scheduling starts when all `p` are in.
    started: usize,
}

/// The shared world of one simulated run: scheduler state + the condition
/// variable rank threads park on while they do not hold the token.
pub struct SimWorld {
    state: Mutex<SimState>,
    cv: Condvar,
    p: usize,
    seed: u64,
}

impl SimWorld {
    fn new(p: usize, cfg: &SimConfig) -> SimWorld {
        let mode = match &cfg.replay {
            Some(choices) => SchedMode::Replay(choices.iter().copied().collect()),
            None => SchedMode::Random,
        };
        let stats = StoreStats::new();
        SimWorld {
            state: Mutex::new(SimState {
                queues: (0..p).map(|_| MatchStore::new(Arc::clone(&stats))).collect(),
                ranks: vec![RankState::NotStarted; p],
                current: None,
                now: Duration::ZERO,
                rng: splitmix(cfg.seed ^ 0x51ED_5EED_0BAD_CAFE),
                mode,
                choices: Vec::new(),
                pending: vec![SimOp::Spawn; p],
                steps: Vec::new(),
                record: cfg.record_steps,
                started: 0,
            }),
            cv: Condvar::new(),
            p,
            seed: cfg.seed,
        }
    }

    /// Poison-tolerant lock: a panicking rank thread is caught before it can
    /// unwind through scheduler code, but recover anyway so one bug cannot
    /// wedge the whole run.
    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pick the next rank to run and hand it the token, advancing the
    /// virtual clock (or proving a deadlock) if nothing is runnable.
    fn pick_next(&self, st: &mut SimState) {
        st.current = None;
        loop {
            let ready: Vec<usize> = (0..self.p)
                .filter(|&r| matches!(st.ranks[r], RankState::Ready { .. }))
                .collect();
            if let Some(&first) = ready.first() {
                let pick = match &mut st.mode {
                    SchedMode::Replay(q) => match q.pop_front() {
                        Some(c) if ready.contains(&(c as usize)) => c as usize,
                        // Diverged or exhausted recording: lowest runnable.
                        _ => first,
                    },
                    SchedMode::Random => {
                        st.rng = splitmix(st.rng);
                        ready[(st.rng % ready.len() as u64) as usize]
                    }
                };
                st.choices.push(pick as u32);
                if st.record {
                    let enabled =
                        ready.iter().map(|&r| (r as u32, st.pending[r])).collect();
                    st.steps.push(SimStep { chosen: pick as u32, enabled });
                }
                st.current = Some(pick);
                self.cv.notify_all();
                return;
            }
            if st.ranks.iter().all(|r| *r == RankState::Done) {
                self.cv.notify_all();
                return;
            }
            // Nothing runnable: advance virtual time to the earliest pending
            // deadline, or prove a deadlock if there is none.
            let next_deadline = st
                .ranks
                .iter()
                .filter_map(|r| match r {
                    RankState::Blocked { deadline, .. } => *deadline,
                    RankState::Sleeping { until } => Some(*until),
                    _ => None,
                })
                .min();
            match next_deadline {
                Some(t) => {
                    st.now = st.now.max(t);
                    for r in st.ranks.iter_mut() {
                        match *r {
                            RankState::Blocked { deadline: Some(d), .. } if d <= st.now => {
                                *r = RankState::Ready { timed_out: true, deadlocked: false };
                            }
                            RankState::Sleeping { until } if until <= st.now => {
                                *r = RankState::Ready { timed_out: false, deadlocked: false };
                            }
                            _ => {}
                        }
                    }
                }
                None => {
                    // Every live rank is blocked without a timeout: no
                    // schedule can make progress. Wake them all with the
                    // deadlock verdict.
                    for r in st.ranks.iter_mut() {
                        if matches!(r, RankState::Blocked { .. }) {
                            *r = RankState::Ready { timed_out: false, deadlocked: true };
                        }
                    }
                }
            }
        }
    }

    /// Park until `rank` holds the token; returns with the rank `Running`
    /// and the wake-reason flags of the `Ready` state it left.
    fn wait_for_token<'a>(
        &'a self,
        mut st: MutexGuard<'a, SimState>,
        rank: usize,
    ) -> (MutexGuard<'a, SimState>, bool, bool) {
        while st.current != Some(rank) {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let (timed_out, deadlocked) = match st.ranks[rank] {
            RankState::Ready { timed_out, deadlocked } => (timed_out, deadlocked),
            _ => (false, false),
        };
        st.ranks[rank] = RankState::Running;
        (st, timed_out, deadlocked)
    }

    /// A scheduling point: give up the token, let the scheduler pick (it may
    /// re-pick this rank), and return once this rank is picked again.
    fn yield_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, SimState>,
        rank: usize,
    ) -> MutexGuard<'a, SimState> {
        st.ranks[rank] = RankState::Ready { timed_out: false, deadlocked: false };
        self.pick_next(&mut st);
        let (st, _, _) = self.wait_for_token(st, rank);
        st
    }

    /// First scheduling point of a rank thread: enter as `Ready`, start the
    /// scheduler once the last rank is in, and park until first picked.
    fn attach(&self, rank: usize) {
        let mut st = self.lock();
        st.ranks[rank] = RankState::Ready { timed_out: false, deadlocked: false };
        st.started += 1;
        if st.started == self.p {
            self.pick_next(&mut st);
        }
        let _ = self.wait_for_token(st, rank);
    }

    /// Last scheduling point of a rank thread: mark it done and pass the
    /// token on.
    fn detach(&self, rank: usize) {
        let mut st = self.lock();
        st.ranks[rank] = RankState::Done;
        if st.current == Some(rank) {
            self.pick_next(&mut st);
        }
    }

    fn sim_send(&self, rank: usize, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        if dest >= self.p {
            return Err(CommError::InvalidRank { rank: dest, size: self.p });
        }
        let mut st = self.lock();
        st.pending[rank] = SimOp::Send { dest, tag };
        st = self.yield_turn(st, rank);
        st.queues[dest].push(rank, tag, buf);
        // Hand-off: a rank parked in a matching receive becomes runnable.
        if let RankState::Blocked { src, tag: t, .. } = st.ranks[dest] {
            if src == rank && t == tag {
                st.ranks[dest] = RankState::Ready { timed_out: false, deadlocked: false };
            }
        }
        Ok(())
    }

    /// Core receive: yields, then blocks until a matching message, timeout,
    /// or proved deadlock. `max_len` makes it a bounded receive that fails
    /// with [`CommError::Truncated`] *without consuming* the message.
    fn sim_recv(
        &self,
        rank: usize,
        src: usize,
        tag: Tag,
        timeout: Option<Duration>,
        max_len: Option<usize>,
    ) -> CommResult<MsgBuf> {
        if src >= self.p {
            return Err(CommError::InvalidRank { rank: src, size: self.p });
        }
        let mut st = self.lock();
        st.pending[rank] = SimOp::Recv { src, tag, timed: timeout.is_some() };
        st = self.yield_turn(st, rank);
        let op_start = st.now;
        let deadline = timeout.map(|t| op_start + t);
        loop {
            match st.queues[rank].peek_len(src, tag) {
                Some(len) if max_len.is_some_and(|cap| len > cap) => {
                    // Bounded receive too small: error out *without*
                    // consuming, exactly like the threaded mailbox.
                    return Err(CommError::Truncated {
                        message_len: len,
                        buffer_len: max_len.unwrap_or(0),
                    });
                }
                Some(_) => {
                    if let Some(msg) = st.queues[rank].try_pop(src, tag) {
                        return Ok(msg);
                    }
                }
                None => {}
            }
            st.ranks[rank] = RankState::Blocked { src, tag, deadline, since: op_start };
            self.pick_next(&mut st);
            let (g, timed_out, deadlocked) = self.wait_for_token(st, rank);
            st = g;
            // A message beats a simultaneous wake verdict: re-check the
            // queue first (another deadlock-woken rank may have sent to us
            // from its error path before we were scheduled).
            let has_msg = st.queues[rank].peek_len(src, tag).is_some();
            if !has_msg {
                if deadlocked {
                    return Err(CommError::Deadlock { src, tag });
                }
                if timed_out {
                    return Err(CommError::Timeout {
                        src,
                        tag,
                        waited: st.now.saturating_sub(op_start),
                    });
                }
            }
        }
    }

    fn sim_probe(&self, rank: usize, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        if src >= self.p {
            return Err(CommError::InvalidRank { rank: src, size: self.p });
        }
        let mut st = self.lock();
        st.pending[rank] = SimOp::Probe { src, tag };
        st = self.yield_turn(st, rank);
        Ok(st.queues[rank].peek_len(src, tag))
    }

    fn sim_sleep(&self, rank: usize, d: Duration) {
        let mut st = self.lock();
        st.pending[rank] = SimOp::Sleep;
        if d.is_zero() {
            drop(self.yield_turn(st, rank));
            return;
        }
        let until = st.now + d;
        st.ranks[rank] = RankState::Sleeping { until };
        self.pick_next(&mut st);
        let _ = self.wait_for_token(st, rank);
    }

    fn sim_now(&self) -> Duration {
        self.lock().now
    }
}

// ---------------------------------------------------------------------------
// The per-rank communicator handle.
// ---------------------------------------------------------------------------

/// A rank's handle onto a [`SimWorld`]. Implements [`Communicator`], so every
/// algorithm and wrapper stack in the workspace runs under the deterministic
/// scheduler unmodified.
pub struct SimComm<'w> {
    world: &'w SimWorld,
    rank: usize,
}

impl SimComm<'_> {
    /// Run `f` on every rank of a `p`-rank simulated world scheduled from
    /// `seed`, mirroring [`crate::ThreadComm::run`]. Panics on any rank are
    /// propagated after all threads join.
    pub fn run<T, F>(p: usize, seed: u64, f: F) -> SimRun<T>
    where
        F: Fn(&SimComm<'_>) -> T + Sync,
        T: Send,
    {
        let (outcomes, trace, _) = Self::run_inner(p, &SimConfig::from_seed(seed), &f);
        let mut results = Vec::with_capacity(p);
        for o in outcomes {
            match o {
                Ok(v) => results.push(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        SimRun { results, trace }
    }

    /// Run `f` on every rank under `cfg`, capturing panics as per-rank
    /// failures instead of propagating them — the harness entry point for
    /// fuzzing, replay, and shrinking.
    pub fn try_run<T, F>(p: usize, cfg: &SimConfig, f: F) -> SimReport<T>
    where
        F: Fn(&SimComm<'_>) -> T + Sync,
        T: Send,
    {
        let (outcomes, trace, steps) = Self::run_inner(p, cfg, &f);
        let outcomes = outcomes
            .into_iter()
            .map(|o| {
                o.map_err(|payload| {
                    if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "panic (non-string payload)".to_string()
                    }
                })
            })
            .collect();
        SimReport { outcomes, trace, steps }
    }

    fn run_inner<T, F>(
        p: usize,
        cfg: &SimConfig,
        f: &F,
    ) -> (Vec<Result<T, Box<dyn std::any::Any + Send>>>, ScheduleTrace, Option<Vec<SimStep>>)
    where
        F: Fn(&SimComm<'_>) -> T + Sync,
        T: Send,
    {
        assert!(p > 0, "world size must be at least 1");
        let world = SimWorld::new(p, cfg);
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..p)
                .map(|rank| {
                    let world = &world;
                    scope.spawn(move || {
                        world.attach(rank);
                        let comm = SimComm { world, rank };
                        // Catch here so a panicking rank releases the token
                        // (detach) and the rest of the world keeps running —
                        // typically into a proved deadlock, not a hang.
                        let out = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                        world.detach(rank);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|payload| Err(payload)))
                .collect::<Vec<_>>()
        });
        let mut st = world.lock();
        let trace = ScheduleTrace {
            p,
            seed: world.seed,
            meta: cfg.meta.clone(),
            choices: st.choices.clone(),
        };
        let steps = cfg.record_steps.then(|| std::mem::take(&mut st.steps));
        drop(st);
        (outcomes, trace, steps)
    }
}

impl Communicator for SimComm<'_> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.p
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.world.sim_send(self.rank, dest, tag, buf)
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.world.sim_recv(self.rank, src, tag, None, None)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        let msg = self.world.sim_recv(self.rank, src, tag, None, Some(buf.len()))?;
        buf[..msg.len()].copy_from_slice(&msg);
        Ok(msg.len())
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.world.sim_probe(self.rank, src, tag)
    }

    fn recv_buf_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> CommResult<MsgBuf> {
        self.world.sim_recv(self.rank, src, tag, Some(timeout), None)
    }

    fn now(&self) -> Duration {
        self.world.sim_now()
    }

    fn sleep(&self, d: Duration) {
        self.world.sim_sleep(self.rank, d)
    }
}

// ---------------------------------------------------------------------------
// Delta-debugging shrinker.
// ---------------------------------------------------------------------------

/// Minimize a failing choice list with ddmin-style chunk deletion.
///
/// `still_fails(candidate)` must re-run the program replaying `candidate`
/// (deterministic lowest-ready fallback past its end — what
/// [`SimConfig::replay_trace`] does) and report whether the failure still
/// reproduces. The returned list always still fails. Chunks are tried from
/// the tail first, so the common "everything after the race is irrelevant"
/// case collapses to a prefix in the first passes.
pub fn shrink_choices(
    choices: &[u32],
    mut still_fails: impl FnMut(&[u32]) -> bool,
) -> Vec<u32> {
    if still_fails(&[]) {
        return Vec::new();
    }
    let mut cur = choices.to_vec();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let chunks = cur.len().div_ceil(chunk);
        let mut reduced = false;
        for i in (0..chunks).rev() {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (hi - lo));
            cand.extend_from_slice(&cur[..lo]);
            cand.extend_from_slice(&cur[hi..]);
            if still_fails(&cand) {
                cur = cand;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn same_seed_same_trace_and_results() {
        let body = |comm: &SimComm<'_>| {
            let me = comm.rank() as u64;
            comm.allreduce_u64(me, ReduceOp::Sum).unwrap()
        };
        let a = SimComm::run(4, 7, body);
        let b = SimComm::run(4, 7, body);
        assert_eq!(a.results, vec![6, 6, 6, 6]);
        assert_eq!(a.results, b.results);
        assert_eq!(a.trace, b.trace);
        assert!(!a.trace.choices.is_empty());
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let body = |comm: &SimComm<'_>| {
            comm.barrier().unwrap();
            comm.rank()
        };
        // Not guaranteed for any single pair, so scan a few seeds; with 4
        // ranks in a barrier at least one pair of seeds must differ.
        let traces: Vec<_> = (0..8).map(|s| SimComm::run(4, s, body).trace.choices).collect();
        assert!(traces.windows(2).any(|w| w[0] != w[1]), "all 8 seeds gave one schedule");
    }

    #[test]
    fn replay_reproduces_the_recorded_schedule() {
        let body = |comm: &SimComm<'_>| {
            let peer = comm.size() - 1 - comm.rank();
            if peer == comm.rank() {
                return 0;
            }
            comm.send(peer, 5, &[comm.rank() as u8]).unwrap();
            comm.recv(peer, 5).unwrap()[0] as usize
        };
        let rec = SimComm::run(5, 99, body);
        let rep = SimComm::try_run(5, &SimConfig::replay_trace(&rec.trace), body);
        assert!(rep.all_ok());
        assert_eq!(rep.trace.choices, rec.trace.choices);
    }

    #[test]
    fn virtual_timeout_fires_at_exactly_the_budget_instantly() {
        let budget = Duration::from_secs(3600); // an hour of virtual time
        let wall = std::time::Instant::now();
        let run = SimComm::run(2, 1, |comm| {
            if comm.rank() == 0 {
                // Rank 1 never sends on tag 9.
                comm.recv_buf_timeout(1, 9, budget)
            } else {
                comm.sleep(Duration::from_millis(5));
                Err(CommError::BadArgument("unused"))
            }
        });
        match &run.results[0] {
            Err(CommError::Timeout { waited, .. }) => assert_eq!(*waited, budget),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(wall.elapsed() < budget, "virtual time must not consume wall-clock time");
    }

    #[test]
    fn sleep_advances_virtual_clock_exactly() {
        let run = SimComm::run(1, 0, |comm| {
            let t0 = comm.now();
            comm.sleep(Duration::from_millis(250));
            comm.now() - t0
        });
        assert_eq!(run.results[0], Duration::from_millis(250));
    }

    #[test]
    fn deadlock_is_proved_not_hung() {
        let run = SimComm::run(2, 3, |comm| {
            // Both ranks receive first: a textbook deadlock.
            let peer = 1 - comm.rank();
            comm.recv_buf(peer, 1)
        });
        for r in &run.results {
            assert!(
                matches!(r, Err(CommError::Deadlock { .. })),
                "expected proved deadlock, got {r:?}"
            );
        }
    }

    #[test]
    fn timed_wait_escapes_a_deadlock() {
        // One rank has a timeout, so the world is not deadlocked: virtual
        // time advances to its deadline and it unblocks (then sends).
        let run = SimComm::run(2, 3, |comm| {
            let peer = 1 - comm.rank();
            if comm.rank() == 0 {
                let first = comm.recv_buf_timeout(peer, 1, Duration::from_millis(10));
                comm.send(peer, 1, b"go").unwrap();
                first.map(|_| ()).map_err(|e| e)
            } else {
                comm.recv_buf(peer, 1).map(|_| ()).map_err(|e| e)
            }
        });
        assert!(matches!(run.results[0], Err(CommError::Timeout { .. })));
        assert!(run.results[1].is_ok());
    }

    #[test]
    fn truncated_recv_into_is_non_destructive_under_sim() {
        let run = SimComm::run(2, 11, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, &[1, 2, 3, 4]).unwrap();
                0
            } else {
                let mut small = [0u8; 2];
                let err = comm.recv_into(0, 2, &mut small).unwrap_err();
                assert!(matches!(err, CommError::Truncated { message_len: 4, buffer_len: 2 }));
                let mut big = [0u8; 8];
                comm.recv_into(0, 2, &mut big).unwrap()
            }
        });
        assert_eq!(run.results[1], 4);
    }

    #[test]
    fn panic_on_one_rank_does_not_hang_the_world() {
        let report = SimComm::try_run(2, &SimConfig::from_seed(5), |comm| {
            if comm.rank() == 0 {
                panic!("injected bug on rank 0");
            }
            // Rank 1 waits for a message that can now never arrive; the
            // scheduler proves the deadlock instead of hanging.
            comm.recv_buf(0, 1).map(|_| ()).map_err(|e| e)
        });
        assert!(report.outcomes[0].as_ref().is_err_and(|m| m.contains("injected bug")));
        assert!(matches!(report.outcomes[1], Ok(Err(CommError::Deadlock { .. }))));
    }

    #[test]
    fn trace_round_trips_through_text_and_file() {
        let t = ScheduleTrace {
            p: 4,
            seed: 0xDEAD_BEEF,
            meta: "algo=TwoPhaseBruck dist=uniform".into(),
            choices: vec![0, 3, 3, 1, 2, 0],
        };
        let parsed = ScheduleTrace::parse(&t.serialize()).unwrap();
        assert_eq!(parsed, t);
        let path = std::env::temp_dir().join("bruck-sim-roundtrip.trace");
        t.save(&path).unwrap();
        assert_eq!(ScheduleTrace::load(&path).unwrap(), t);
        let _ = std::fs::remove_file(&path);
        assert!(ScheduleTrace::parse("not a trace").is_err());
    }

    #[test]
    fn parse_rejects_bad_header_naming_the_line() {
        let err = ScheduleTrace::parse("bruck-sim-trace v9\np 2\nseed 1\nchoices 0\n")
            .unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("bruck-sim-trace v9"), "{err}");
        let err = ScheduleTrace::parse("").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn parse_rejects_non_numeric_fields_naming_the_line() {
        let err = ScheduleTrace::parse("bruck-sim-trace v1\np two\nseed 1\nchoices 0\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:") && err.contains("bad p"), "{err}");
        let err = ScheduleTrace::parse("bruck-sim-trace v1\np 2\nseed xx\nchoices 0\n")
            .unwrap_err();
        assert!(err.starts_with("line 3:") && err.contains("bad seed"), "{err}");
        let err = ScheduleTrace::parse("bruck-sim-trace v1\np 2\nseed 1\nchoices 0 1 oops 3\n")
            .unwrap_err();
        assert!(err.starts_with("line 4:") && err.contains("\"oops\""), "{err}");
        let err = ScheduleTrace::parse("bruck-sim-trace v1\np 2\nbogus 7\nchoices 0\n")
            .unwrap_err();
        assert!(err.starts_with("line 3:") && err.contains("unknown trace field"), "{err}");
    }

    #[test]
    fn parse_rejects_truncated_traces() {
        let err = ScheduleTrace::parse("bruck-sim-trace v1\nseed 1\nchoices 0\n").unwrap_err();
        assert!(err.contains("missing \"p\""), "{err}");
        let err = ScheduleTrace::parse("bruck-sim-trace v1\np 2\nchoices 0\n").unwrap_err();
        assert!(err.contains("missing \"seed\""), "{err}");
        let err = ScheduleTrace::parse("bruck-sim-trace v1\np 2\nseed 1\n").unwrap_err();
        assert!(err.contains("missing \"choices\""), "{err}");
    }

    #[test]
    fn trace_roundtrip_property_over_seeded_traces() {
        // Property: serialize ∘ parse is the identity for arbitrary traces,
        // including empty choice lists and meta with internal spaces.
        let mut z = 0xBADC_0FFE_u64;
        for case in 0..64 {
            z = splitmix(z);
            let n = (z % 40) as usize;
            let mut choices = Vec::with_capacity(n);
            for _ in 0..n {
                z = splitmix(z);
                choices.push((z % 8) as u32);
            }
            let t = ScheduleTrace {
                p: (case % 7) + 1,
                seed: z,
                meta: if case % 3 == 0 { String::new() } else { format!("cell a=b c={case}") },
                choices,
            };
            let parsed = ScheduleTrace::parse(&t.serialize()).unwrap();
            assert_eq!(parsed, t, "round-trip failed for case {case}");
        }
    }

    #[test]
    fn recorded_steps_align_with_choices_and_carry_footprints() {
        let mut cfg = SimConfig::from_seed(42);
        cfg.record_steps = true;
        let report = SimComm::try_run(2, &cfg, |comm| {
            let peer = 1 - comm.rank();
            if comm.rank() == 0 {
                comm.send(peer, 7, b"x").unwrap();
            } else {
                comm.recv(peer, 7).unwrap();
            }
        });
        assert!(report.all_ok());
        let steps = report.steps.as_ref().expect("steps recorded");
        assert_eq!(steps.len(), report.trace.choices.len());
        for (step, &choice) in steps.iter().zip(&report.trace.choices) {
            assert_eq!(step.chosen, choice);
            assert!(step.enabled.iter().any(|&(r, _)| r == choice));
        }
        // The send and the matching recv footprints must both appear.
        let all: Vec<SimOp> =
            steps.iter().flat_map(|s| s.enabled.iter().map(|&(_, op)| op)).collect();
        assert!(all.contains(&SimOp::Send { dest: 1, tag: 7 }));
        assert!(all.contains(&SimOp::Recv { src: 0, tag: 7, timed: false }));
        // Recording off → no steps.
        let off = SimComm::try_run(2, &SimConfig::from_seed(42), |comm| comm.rank());
        assert!(off.steps.is_none());
    }

    #[test]
    fn shrinker_reduces_to_the_minimal_failing_core() {
        // A synthetic oracle: "fails" iff the list contains at least three
        // 2s. ddmin must strip everything else.
        let noisy: Vec<u32> =
            vec![0, 1, 2, 3, 0, 2, 1, 1, 3, 2, 0, 1, 3, 0, 2, 1, 0, 3, 1, 0];
        let fails = |c: &[u32]| c.iter().filter(|&&x| x == 2).count() >= 3;
        assert!(fails(&noisy));
        let min = shrink_choices(&noisy, fails);
        assert_eq!(min, vec![2, 2, 2]);
    }

    #[test]
    fn collectives_work_under_every_seed() {
        for seed in 0..10 {
            let run = SimComm::run(5, seed, |comm| {
                let sum = comm.allreduce_u64(comm.rank() as u64, ReduceOp::Sum).unwrap();
                let all = comm.allgather_u64(10 + comm.rank() as u64).unwrap();
                (sum, all)
            });
            for (sum, all) in run.results {
                assert_eq!(sum, 10);
                assert_eq!(all, vec![10, 11, 12, 13, 14]);
            }
        }
    }
}
