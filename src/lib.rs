//! # ruck — non-uniform all-to-all communication with optimized Bruck algorithms
//!
//! Facade crate re-exporting the full workspace API. See the individual crates:
//! [`bruck_comm`], [`bruck_datatype`], [`bruck_core`], [`bruck_workload`],
//! [`bruck_model`], [`bruck_bpra`]. The `bruck-check` verifier and `bruck-lint`
//! source gate live outside the facade; run them via
//! `cargo run -p bruck-check --bin bruck-check` / `--bin bruck-lint` (both are
//! tier-1 stages of `scripts/verify.sh`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use bruck_bpra as bpra;
pub use bruck_comm as comm;
pub use bruck_core as core;
pub use bruck_datatype as datatype;
pub use bruck_model as model;
pub use bruck_workload as workload;
