//! `ModelComm`: single-threaded symbolic schedule extraction.
//!
//! The threaded backend can only *observe* one interleaving per run; this
//! module instead executes every rank of a `Communicator`-generic algorithm on
//! **one** thread and extracts its full communication schedule — including
//! runs that would deadlock real threads, which is precisely when a verifier
//! is most useful.
//!
//! ## Execution model: commit-and-replay
//!
//! Rank bodies are ordinary blocking code; they cannot be paused mid-call
//! without threads or async. The executor therefore runs each rank's body
//! *from the top* repeatedly:
//!
//! * Operations already **committed** in an earlier attempt are *replayed*:
//!   the call is checked against the committed record (same destination, tag,
//!   payload) and returns the recorded result without touching global state.
//! * The first **new** operation past the committed prefix executes for real:
//!   sends are eager and always commit; a receive with a matching in-flight
//!   message commits and consumes it; a receive with no match returns
//!   [`CommError::WouldBlock`], which the body propagates out through `?`,
//!   unwinding the rank so the scheduler can run another.
//!
//! The driver ([`extract`]) sweeps all ranks to a fixpoint: it stops when
//! every rank has completed (or failed), or when a full sweep commits nothing
//! new — a stall, meaning every live rank is parked on a receive that no
//! possible future can satisfy. The stalled ranks and their wanted messages
//! are exactly the input of wait-for-graph deadlock analysis.
//!
//! This is sound because rank bodies are deterministic functions of their
//! received payloads (all algorithms in this workspace are; the replay layer
//! *verifies* it, panicking on divergence) and because matching is FIFO per
//! `(src, dst, tag)`, mirroring the runtime's non-overtaking guarantee.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use bruck_comm::{
    BlockedOn, CommError, CommResult, Communicator, Event, EventKind, MsgBuf, MsgRecord, Schedule,
    Tag, VectorClock,
};

/// Backstop against probe spin-loops and runaway bodies: a rank committing
/// more operations than this panics rather than hanging the checker.
const OP_LIMIT: usize = 1 << 20;

/// A committed operation in a rank's program-order log (the replay script).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    /// `msg` indexes the schedule's message table.
    Send { dst: usize, tag: Tag, msg: usize },
    /// `msg` indexes the schedule's message table.
    Recv { src: usize, tag: Tag, msg: usize },
    Probe { src: usize, tag: Tag, found: Option<usize> },
}

struct WorldInner {
    clocks: Vec<VectorClock>,
    schedule: Schedule,
    /// In-flight (sent, not yet received) message ids, FIFO per key.
    pending: HashMap<(usize, usize, Tag), VecDeque<usize>>,
    /// Committed per-rank operation logs.
    ops: Vec<Vec<Op>>,
    /// Replay cursor per rank, reset at the start of each attempt.
    cursors: Vec<usize>,
    /// Send/recv commits so far (probes excluded — they never unblock
    /// anything, so they don't count as scheduler progress).
    commits: u64,
}

/// Shared state of one symbolic execution; every rank's [`ModelComm`] points
/// at the same world.
pub struct ModelWorld {
    p: usize,
    inner: Mutex<WorldInner>,
}

impl ModelWorld {
    fn new(p: usize) -> Arc<Self> {
        Arc::new(ModelWorld {
            p,
            inner: Mutex::new(WorldInner {
                clocks: vec![VectorClock::new(p); p],
                schedule: Schedule::new(p),
                pending: HashMap::new(),
                ops: (0..p).map(|_| Vec::new()).collect(),
                cursors: vec![0; p],
                commits: 0,
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, WorldInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The communicator handed to rank bodies under symbolic execution.
///
/// Implements the full [`Communicator`] surface (collectives included, via
/// the default methods) but never blocks: an unmatched receive returns
/// [`CommError::WouldBlock`] instead.
pub struct ModelComm {
    rank: usize,
    world: Arc<ModelWorld>,
}

impl ModelComm {
    fn diverged(&self, wanted: &str, got: &Op) -> ! {
        panic!(
            "model divergence on rank {}: replay expected {:?} but the body issued {wanted}; \
             rank bodies must be deterministic functions of their received payloads",
            self.rank, got
        )
    }
}

impl Communicator for ModelComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.p
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.check_rank(dest)?;
        let me = self.rank;
        let mut w = self.world.lock();
        let cursor = w.cursors[me];
        if cursor < w.ops[me].len() {
            match w.ops[me][cursor].clone() {
                Op::Send { dst, tag: t, msg } if dst == dest && t == tag => {
                    assert_eq!(
                        w.schedule.messages[msg].payload.as_slice(),
                        buf.as_slice(),
                        "model divergence on rank {me}: replayed send to {dest} tag {tag} \
                         carries a different payload than the committed one"
                    );
                    w.cursors[me] += 1;
                    return Ok(());
                }
                other => self.diverged(&format!("send to {dest} tag {tag}"), &other),
            }
        }
        // Commit a new eager send.
        assert!(w.ops[me].len() < OP_LIMIT, "rank {me} exceeded the model op limit");
        w.clocks[me].tick(me);
        let clock = w.clocks[me].clone();
        let msg = w.schedule.messages.len();
        let event_idx = w.schedule.events[me].len();
        w.schedule.messages.push(MsgRecord {
            src: me,
            dst: dest,
            tag,
            payload: buf.clone(),
            send_clock: clock.clone(),
            send_event: (me, event_idx),
            recv_event: None,
        });
        w.schedule.events[me].push(Event {
            kind: EventKind::Send { dst: dest, tag, len: buf.len(), msg },
            clock,
        });
        w.pending.entry((me, dest, tag)).or_default().push_back(msg);
        w.ops[me].push(Op::Send { dst: dest, tag, msg });
        w.cursors[me] += 1;
        w.commits += 1;
        Ok(())
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.check_rank(src)?;
        let me = self.rank;
        let mut w = self.world.lock();
        let cursor = w.cursors[me];
        if cursor < w.ops[me].len() {
            match w.ops[me][cursor].clone() {
                Op::Recv { src: s, tag: t, msg } if s == src && t == tag => {
                    w.cursors[me] += 1;
                    return Ok(w.schedule.messages[msg].payload.clone());
                }
                other => self.diverged(&format!("recv from {src} tag {tag}"), &other),
            }
        }
        let Some(msg) = w.pending.get_mut(&(src, me, tag)).and_then(VecDeque::pop_front) else {
            return Err(CommError::WouldBlock { src, tag });
        };
        assert!(w.ops[me].len() < OP_LIMIT, "rank {me} exceeded the model op limit");
        let send_clock = w.schedule.messages[msg].send_clock.clone();
        w.clocks[me].tick(me);
        w.clocks[me].join(&send_clock);
        let clock = w.clocks[me].clone();
        let event_idx = w.schedule.events[me].len();
        let payload = w.schedule.messages[msg].payload.clone();
        w.schedule.messages[msg].recv_event = Some((me, event_idx));
        w.schedule.events[me].push(Event {
            kind: EventKind::Recv { src, tag, len: payload.len(), msg },
            clock,
        });
        w.ops[me].push(Op::Recv { src, tag, msg });
        w.cursors[me] += 1;
        w.commits += 1;
        Ok(payload)
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        // Truncation check against the *head* message first, mirroring the
        // runtime: a too-small buffer errors without consuming the message.
        {
            let me = self.rank;
            let w = self.world.lock();
            if w.cursors[me] >= w.ops[me].len() {
                if let Some(&msg) =
                    w.pending.get(&(src, me, tag)).and_then(VecDeque::front)
                {
                    let mlen = w.schedule.messages[msg].payload.len();
                    if mlen > buf.len() {
                        return Err(CommError::Truncated {
                            message_len: mlen,
                            buffer_len: buf.len(),
                        });
                    }
                }
            }
        }
        let got = self.recv_buf(src, tag)?;
        // Replay of an originally-committed recv_into lands here too; the
        // body is deterministic, so the buffer is necessarily large enough.
        buf[..got.len()].copy_from_slice(got.as_slice());
        Ok(got.len())
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.check_rank(src)?;
        let me = self.rank;
        let mut w = self.world.lock();
        let cursor = w.cursors[me];
        if cursor < w.ops[me].len() {
            match w.ops[me][cursor].clone() {
                Op::Probe { src: s, tag: t, found } if s == src && t == tag => {
                    w.cursors[me] += 1;
                    return Ok(found);
                }
                other => self.diverged(&format!("probe from {src} tag {tag}"), &other),
            }
        }
        // Commit the probe answer so replays stay deterministic even though
        // global state moves between attempts.
        assert!(w.ops[me].len() < OP_LIMIT, "rank {me} exceeded the model op limit (probe spin?)");
        let found = w
            .pending
            .get(&(src, me, tag))
            .and_then(VecDeque::front)
            .map(|&msg| w.schedule.messages[msg].payload.len());
        w.clocks[me].tick(me);
        let clock = w.clocks[me].clone();
        w.schedule.events[me].push(Event { kind: EventKind::Probe { src, tag, found }, clock });
        w.ops[me].push(Op::Probe { src, tag, found });
        w.cursors[me] += 1;
        Ok(found)
    }
}

/// How one rank's body ended under symbolic execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankOutcome {
    /// The body ran to completion.
    Completed,
    /// The body was still parked on an unmatched receive when the world
    /// stalled — deadlock evidence.
    Blocked(BlockedOn),
    /// The body returned a real error (not the internal suspension signal).
    Failed(CommError),
}

/// The result of a symbolic execution: the extracted schedule plus each
/// rank's fate.
#[derive(Debug)]
pub struct Extraction {
    /// The full vector-clocked communication history.
    pub schedule: Schedule,
    /// Per-rank outcome, indexed by rank.
    pub ranks: Vec<RankOutcome>,
}

impl Extraction {
    /// Did every rank run to completion?
    pub fn all_completed(&self) -> bool {
        self.ranks.iter().all(|r| *r == RankOutcome::Completed)
    }

    /// Ranks still parked on a receive when extraction stalled.
    pub fn blocked_ranks(&self) -> Vec<(usize, BlockedOn)> {
        self.ranks
            .iter()
            .enumerate()
            .filter_map(|(r, o)| match o {
                RankOutcome::Blocked(b) => Some((r, *b)),
                _ => None,
            })
            .collect()
    }
}

/// Symbolically execute `body` on `p` ranks and extract the schedule.
///
/// `body` is the SPMD program: it is invoked with each rank's [`ModelComm`]
/// (possibly many times — see the module docs' commit-and-replay protocol, so
/// it must be deterministic and must propagate errors rather than swallow
/// them). Extraction ends when every rank completes or fails, or when a full
/// sweep makes no progress (a stall; blocked ranks are reported in the
/// outcome and in [`Schedule::blocked`]).
pub fn extract<F>(p: usize, body: F) -> Extraction
where
    F: Fn(&ModelComm) -> CommResult<()>,
{
    assert!(p > 0, "need at least one rank");
    let world = ModelWorld::new(p);
    let mut outcomes: Vec<Option<RankOutcome>> = vec![None; p];
    let mut parked: Vec<Option<BlockedOn>> = vec![None; p];
    loop {
        let commits_before = world.lock().commits;
        let mut settled_this_sweep = false;
        for rank in 0..p {
            if outcomes[rank].is_some() {
                continue;
            }
            world.lock().cursors[rank] = 0;
            let comm = ModelComm { rank, world: Arc::clone(&world) };
            match body(&comm) {
                Ok(()) => {
                    outcomes[rank] = Some(RankOutcome::Completed);
                    parked[rank] = None;
                    settled_this_sweep = true;
                }
                Err(CommError::WouldBlock { src, tag }) => {
                    parked[rank] = Some(BlockedOn { src, tag });
                }
                Err(e) => {
                    outcomes[rank] = Some(RankOutcome::Failed(e));
                    parked[rank] = None;
                    settled_this_sweep = true;
                }
            }
        }
        if outcomes.iter().all(Option::is_some) {
            break;
        }
        // A sweep that commits nothing and settles no rank can never do
        // better later: the world is a deterministic function of its state,
        // so every live rank is parked on a receive no future can satisfy.
        if world.lock().commits == commits_before && !settled_this_sweep {
            break;
        }
    }
    let mut schedule = world.lock().schedule.clone();
    let ranks: Vec<RankOutcome> = (0..p)
        .map(|r| match (&outcomes[r], parked[r]) {
            (Some(o), _) => o.clone(),
            (None, Some(b)) => RankOutcome::Blocked(b),
            (None, None) => unreachable!("a live rank at stall must be parked on a receive"),
        })
        .collect();
    for (r, outcome) in ranks.iter().enumerate() {
        if let RankOutcome::Blocked(b) = outcome {
            schedule.blocked[r] = Some(*b);
        }
    }
    Extraction { schedule, ranks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_extracts_completely() {
        let ext = extract(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &[1, 2])?;
                let back = comm.recv(1, 6)?;
                assert_eq!(back, vec![3]);
            } else {
                let got = comm.recv(0, 5)?;
                assert_eq!(got, vec![1, 2]);
                comm.send(0, 6, &[3])?;
            }
            Ok(())
        });
        assert!(ext.all_completed());
        assert_eq!(ext.schedule.messages.len(), 2);
        assert!(ext.schedule.unmatched_messages().is_empty());
    }

    #[test]
    fn cyclic_recv_first_is_reported_blocked() {
        // Every rank receives from its left neighbour before sending: a
        // textbook deadlock no thread-based test can terminate on.
        let p = 3;
        let ext = extract(p, move |comm| {
            let me = comm.rank();
            let left = (me + p - 1) % p;
            let _ = comm.recv(left, 9)?;
            comm.send((me + 1) % p, 9, &[me as u8])?;
            Ok(())
        });
        assert!(!ext.all_completed());
        let blocked = ext.blocked_ranks();
        assert_eq!(blocked.len(), 3, "all ranks parked: {blocked:?}");
        for (rank, on) in blocked {
            assert_eq!(on.src, (rank + p - 1) % p);
            assert_eq!(on.tag, 9);
        }
    }

    #[test]
    fn collectives_run_under_the_model() {
        use bruck_comm::ReduceOp;
        let ext = extract(5, |comm| {
            comm.barrier()?;
            let sum = comm.allreduce_u64(comm.rank() as u64 + 1, ReduceOp::Sum)?;
            assert_eq!(sum, 15);
            let all = comm.allgather_u64(comm.rank() as u64 * 10)?;
            assert_eq!(all, vec![0, 10, 20, 30, 40]);
            let counts = comm.alltoall_counts(&[1, 2, 3, 4, 5])?;
            assert_eq!(counts.len(), 5);
            Ok(())
        });
        assert!(ext.all_completed(), "{:?}", ext.ranks);
        assert!(ext.schedule.unmatched_messages().is_empty());
    }

    #[test]
    fn probe_commits_and_replays() {
        let ext = extract(2, |comm| {
            if comm.rank() == 0 {
                // Probe before anything can have arrived: committed as None.
                let first = comm.probe(1, 3)?;
                assert_eq!(first, None);
                let got = comm.recv(1, 3)?; // forces a later attempt
                assert_eq!(got.len(), 4);
                // After the recv the probe above must still replay as None.
                Ok(())
            } else {
                comm.send(0, 3, &[0; 4])
            }
        });
        assert!(ext.all_completed(), "{:?}", ext.ranks);
    }

    #[test]
    fn truncated_recv_into_fails_the_rank_without_consuming() {
        let ext = extract(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[9; 10])
            } else {
                let mut small = [0u8; 4];
                comm.recv_into(0, 1, &mut small)?;
                Ok(())
            }
        });
        assert_eq!(
            ext.ranks[1],
            RankOutcome::Failed(CommError::Truncated { message_len: 10, buffer_len: 4 })
        );
        // The message stayed in flight.
        assert_eq!(ext.schedule.unmatched_messages().len(), 1);
    }
}
