//! [`ReliableComm`]: clean MPI semantics on top of a lossy transport.
//!
//! The algorithms in this workspace assume what MPI guarantees: every send is
//! delivered exactly once, uncorrupted, in order. [`crate::FaultComm`] breaks
//! all three on purpose. This wrapper repairs them with the classic
//! stop-and-wait ARQ recipe:
//!
//! * **Sequence numbers** per `(peer, tag)` channel — duplicates are detected
//!   and re-acknowledged, never delivered twice.
//! * **Checksums** over every frame — a corrupted frame (or ack) is silently
//!   discarded, indistinguishable from a drop, and repaired by retransmission.
//! * **Ack / retry** with bounded exponential backoff — a send retransmits
//!   until acknowledged; when the retry budget is exhausted the peer is
//!   declared dead ([`crate::CommError::RankFailed`]).
//!
//! ## Progress model
//!
//! All reliable traffic travels on two reserved wire tags (data + acks); the
//! application tag rides inside the frame header. Every blocking point in the
//! wrapper — a send awaiting its ack, a receive awaiting data — *services
//! incoming traffic*: it pops arrived data frames for any channel, verifies,
//! acknowledges, and stashes them. This is what keeps the eager-protocol
//! deadlock-freedom the algorithms rely on: two ranks that send to each other
//! simultaneously each ack the other's frame from inside their own send.
//!
//! Because acknowledging requires a live peer, a rank must not stop servicing
//! while peers may still retransmit: call [`ReliableComm::quiesce`] after the
//! last application exchange (the `bruck-chaos` harness does) so a dropped
//! *ack* near the end cannot strand a peer in its retry loop.
//!
//! ## Costs
//!
//! Framing costs one payload copy per send (the zero-copy path resumes on the
//! receive side: stashed payloads are views of the arrived frame). Latency is
//! one round trip per message — this wrapper is for surviving hostile
//! networks, not for peak throughput.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use crate::chaos::splitmix;
use crate::retry::RetryPolicy;
use crate::{CommError, CommResult, Communicator, MsgBuf, Tag, RESERVED_TAG_BASE};

/// Wire tag carrying framed application payloads.
const RELIABLE_DATA_TAG: Tag = RESERVED_TAG_BASE + 0x2000;
/// Wire tag carrying acknowledgements.
const RELIABLE_ACK_TAG: Tag = RESERVED_TAG_BASE + 0x2001;

/// Data frame header: seq (8) | logical tag (4) | checksum (8).
const DATA_HDR: usize = 20;
/// Ack frame: seq (8) | logical tag (4) | checksum (8).
const ACK_LEN: usize = 20;

/// Retransmission policy for [`ReliableComm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Initial ack deadline before the first retransmission.
    pub ack_timeout: Duration,
    /// Retransmissions after the initial send; when exhausted the destination
    /// is reported as [`crate::CommError::RankFailed`].
    pub max_retries: u32,
    /// Ceiling for the exponentially growing retransmission timeout.
    pub backoff_cap: Duration,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            ack_timeout: Duration::from_millis(40),
            max_retries: 6,
            backoff_cap: Duration::from_millis(320),
        }
    }
}

impl ReliableConfig {
    /// The ack-deadline schedule as a [`RetryPolicy`]: jitter-free bounded
    /// exponential backoff starting at `ack_timeout`, capped at
    /// `backoff_cap`, for `max_retries + 1` attempts. This is the single
    /// source of truth for the ARQ's retransmission timing.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::exponential(self.ack_timeout, self.backoff_cap, self.max_retries)
    }
}

/// Frame checksum: splitmix-folded over the header fields, payload length,
/// and payload chunks. Not cryptographic — it detects the single-byte flips
/// a faulty link (or [`crate::FaultComm`]) produces.
fn checksum(seq: u64, ltag: Tag, payload: &[u8]) -> u64 {
    let mut h = splitmix(seq ^ (u64::from(ltag) << 32) ^ 0x5EED_C0DE_F417_CAFE);
    h = splitmix(h ^ payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        h = splitmix(h ^ u64::from_le_bytes(b));
    }
    h
}

fn build_data_frame(seq: u64, ltag: Tag, payload: &MsgBuf) -> MsgBuf {
    let mut v = Vec::with_capacity(DATA_HDR + payload.len());
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(&ltag.to_le_bytes());
    v.extend_from_slice(&checksum(seq, ltag, payload).to_le_bytes());
    v.extend_from_slice(payload);
    MsgBuf::from_vec(v)
}

/// Parse + verify a data frame; `None` means corrupt or malformed (treated
/// exactly like a dropped frame — the sender will retransmit).
fn parse_data_frame(frame: &MsgBuf) -> Option<(u64, Tag, MsgBuf)> {
    if frame.len() < DATA_HDR {
        return None;
    }
    let seq = u64::from_le_bytes(frame[0..8].try_into().ok()?);
    let ltag = Tag::from_le_bytes(frame[8..12].try_into().ok()?);
    let ck = u64::from_le_bytes(frame[12..20].try_into().ok()?);
    let payload = frame.slice(DATA_HDR..);
    if checksum(seq, ltag, payload.as_slice()) != ck {
        return None;
    }
    Some((seq, ltag, payload))
}

fn build_ack_frame(seq: u64, ltag: Tag) -> MsgBuf {
    let mut v = Vec::with_capacity(ACK_LEN);
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(&ltag.to_le_bytes());
    v.extend_from_slice(&checksum(seq, ltag, &[]).to_le_bytes());
    MsgBuf::from_vec(v)
}

fn parse_ack_frame(frame: &MsgBuf) -> Option<(u64, Tag)> {
    if frame.len() != ACK_LEN {
        return None;
    }
    let seq = u64::from_le_bytes(frame[0..8].try_into().ok()?);
    let ltag = Tag::from_le_bytes(frame[8..12].try_into().ok()?);
    let ck = u64::from_le_bytes(frame[12..20].try_into().ok()?);
    if checksum(seq, ltag, &[]) != ck {
        return None;
    }
    Some((seq, ltag))
}

#[derive(Default)]
struct ReliableState {
    /// Next sequence number to assign, per outgoing `(dest, tag)` channel.
    next_seq: BTreeMap<(usize, Tag), u64>,
    /// Next sequence number expected, per incoming `(src, tag)` channel.
    expected: BTreeMap<(usize, Tag), u64>,
    /// Verified, deduplicated, in-order payloads awaiting the application's
    /// receive, per `(src, tag)`.
    stash: BTreeMap<(usize, Tag), VecDeque<MsgBuf>>,
}

/// A reliability wrapper around any [`Communicator`]. One wrapper per rank
/// (like [`crate::ChaosComm`] / [`crate::FaultComm`]); it owns the channel
/// state for its rank, so keep one instance alive across all exchanges on a
/// given communicator.
pub struct ReliableComm<'a, C: Communicator + ?Sized> {
    inner: &'a C,
    cfg: ReliableConfig,
    state: Mutex<ReliableState>,
}

/// The polling pause used by every wait loop when a service pass found
/// nothing: long enough to not burn a core, short against any timeout.
/// Taken on the inner communicator's clock, so under [`crate::SimComm`] it
/// advances virtual time instead of suspending the OS thread.
const IDLE_PAUSE: Duration = Duration::from_micros(50);

impl<'a, C: Communicator + ?Sized> ReliableComm<'a, C> {
    /// Wrap `inner` with the default retransmission policy.
    pub fn new(inner: &'a C) -> Self {
        Self::with_config(inner, ReliableConfig::default())
    }

    /// Wrap `inner` with an explicit retransmission policy.
    pub fn with_config(inner: &'a C, cfg: ReliableConfig) -> Self {
        ReliableComm { inner, cfg, state: Mutex::new(ReliableState::default()) }
    }

    /// The active retransmission policy.
    pub fn config(&self) -> ReliableConfig {
        self.cfg
    }

    /// Verified-but-unreceived payloads currently stashed (diagnostics).
    pub fn stashed(&self) -> usize {
        self.lock().stash.values().map(VecDeque::len).sum()
    }

    fn lock(&self) -> MutexGuard<'_, ReliableState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn idle_pause(&self) {
        self.inner.sleep(IDLE_PAUSE);
    }

    /// Drain every arrived wire frame: verify, deduplicate, acknowledge, and
    /// stash. Returns how many frames were handled (0 = network was quiet).
    fn service_incoming(&self) -> CommResult<usize> {
        let me = self.inner.rank();
        let p = self.inner.size();
        let mut handled = 0usize;
        for src in 0..p {
            if src == me {
                continue;
            }
            while self.inner.probe(src, RELIABLE_DATA_TAG)?.is_some() {
                let frame = self.inner.recv_buf(src, RELIABLE_DATA_TAG)?;
                handled += 1;
                // Corrupt / malformed frames are dropped without an ack: the
                // sender retransmits, exactly as for a genuine drop.
                let Some((seq, ltag, payload)) = parse_data_frame(&frame) else {
                    continue;
                };
                let ack = {
                    let mut s = self.lock();
                    let exp = s.expected.entry((src, ltag)).or_insert(0);
                    if seq == *exp {
                        *exp += 1;
                        s.stash.entry((src, ltag)).or_default().push_back(payload);
                        true
                    } else {
                        // seq < expected: a retransmission of something we
                        // already delivered — its ack was lost; re-ack and
                        // discard. seq > expected cannot happen under
                        // stop-and-wait + FIFO wire; drop defensively.
                        seq < *exp
                    }
                };
                if ack {
                    self.inner.send_buf(src, RELIABLE_ACK_TAG, build_ack_frame(seq, ltag))?;
                }
            }
        }
        Ok(handled)
    }

    /// Pop any pending acks from `dest`, looking for `(tag, seq)`. Stale acks
    /// (re-acks of frames already completed) are discarded.
    fn take_ack(&self, dest: usize, tag: Tag, seq: u64) -> CommResult<bool> {
        while self.inner.probe(dest, RELIABLE_ACK_TAG)?.is_some() {
            let frame = self.inner.recv_buf(dest, RELIABLE_ACK_TAG)?;
            if let Some((aseq, altag)) = parse_ack_frame(&frame) {
                if altag == tag && aseq == seq {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn pop_stash(&self, src: usize, tag: Tag) -> Option<MsgBuf> {
        let mut s = self.lock();
        let q = s.stash.get_mut(&(src, tag))?;
        let msg = q.pop_front();
        if q.is_empty() {
            s.stash.remove(&(src, tag));
        }
        msg
    }

    fn send_reliable(&self, dest: usize, tag: Tag, payload: MsgBuf) -> CommResult<()> {
        let me = self.inner.rank();
        if dest == me {
            // Self-sends are process-local: straight into the stash, no wire.
            self.lock().stash.entry((me, tag)).or_default().push_back(payload);
            return Ok(());
        }
        self.inner.check_rank(dest)?;
        let seq = {
            let mut s = self.lock();
            let c = s.next_seq.entry((dest, tag)).or_insert(0);
            let seq = *c;
            *c += 1;
            seq
        };
        let frame = build_data_frame(seq, tag, &payload);
        let policy = self.cfg.retry_policy();
        for attempt in 0..policy.attempts() {
            self.inner.send_buf(dest, RELIABLE_DATA_TAG, frame.clone())?;
            let deadline = self.inner.now() + policy.delay(attempt);
            loop {
                let handled = self.service_incoming()?;
                if self.take_ack(dest, tag, seq)? {
                    return Ok(());
                }
                if self.inner.now() >= deadline {
                    break;
                }
                if handled == 0 {
                    self.idle_pause();
                }
            }
        }
        Err(CommError::RankFailed { rank: dest })
    }

    fn recv_reliable(&self, src: usize, tag: Tag, timeout: Option<Duration>) -> CommResult<MsgBuf> {
        self.inner.check_rank(src)?;
        let me = self.inner.rank();
        let start = self.inner.now();
        loop {
            if let Some(msg) = self.pop_stash(src, tag) {
                return Ok(msg);
            }
            let handled = if src == me { 0 } else { self.service_incoming()? };
            if handled > 0 {
                continue; // something arrived — re-check the stash first
            }
            if let Some(t) = timeout {
                let waited = self.inner.now().saturating_sub(start);
                if waited >= t {
                    return Err(CommError::Timeout { src, tag, waited });
                }
            }
            self.idle_pause();
        }
    }

    /// Keep servicing retransmissions until the network has been quiet for
    /// `quiet` (no frame arrived), or `max_total` has elapsed. Call after the
    /// last application-level exchange: a peer whose *ack* was lost is still
    /// retransmitting, and leaving without re-acking would convert a lost ack
    /// into a spurious [`crate::CommError::RankFailed`] on the peer. `quiet`
    /// should exceed the peers' [`ReliableConfig::backoff_cap`].
    pub fn quiesce(&self, quiet: Duration, max_total: Duration) -> CommResult<()> {
        let start = self.inner.now();
        let mut last_activity = start;
        loop {
            if self.service_incoming()? > 0 {
                last_activity = self.inner.now();
            }
            let now = self.inner.now();
            if now.saturating_sub(last_activity) >= quiet || now.saturating_sub(start) >= max_total
            {
                return Ok(());
            }
            self.idle_pause();
        }
    }
}

impl<C: Communicator + ?Sized> Communicator for ReliableComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_buf(&self, dest: usize, tag: Tag, buf: MsgBuf) -> CommResult<()> {
        self.send_reliable(dest, tag, buf)
    }

    fn recv_buf(&self, src: usize, tag: Tag) -> CommResult<MsgBuf> {
        self.recv_reliable(src, tag, None)
    }

    fn recv_buf_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> CommResult<MsgBuf> {
        self.recv_reliable(src, tag, Some(timeout))
    }

    fn recv_into(&self, src: usize, tag: Tag, buf: &mut [u8]) -> CommResult<usize> {
        self.inner.check_rank(src)?;
        let me = self.inner.rank();
        loop {
            {
                let mut s = self.lock();
                if let Some(q) = s.stash.get_mut(&(src, tag)) {
                    if let Some(front) = q.front() {
                        // Non-destructive truncation, like the mailbox: the
                        // check happens before the message leaves the stash.
                        if front.len() > buf.len() {
                            return Err(CommError::Truncated {
                                message_len: front.len(),
                                buffer_len: buf.len(),
                            });
                        }
                        if let Some(msg) = q.pop_front() {
                            buf[..msg.len()].copy_from_slice(&msg);
                            if q.is_empty() {
                                s.stash.remove(&(src, tag));
                            }
                            return Ok(msg.len());
                        }
                    }
                }
            }
            let handled = if src == me { 0 } else { self.service_incoming()? };
            if handled == 0 {
                self.idle_pause();
            }
        }
    }

    fn probe(&self, src: usize, tag: Tag) -> CommResult<Option<usize>> {
        self.inner.check_rank(src)?;
        if src != self.inner.rank() {
            self.service_incoming()?;
        }
        Ok(self.lock().stash.get(&(src, tag)).and_then(VecDeque::front).map(MsgBuf::len))
    }

    fn now(&self) -> Duration {
        self.inner.now()
    }

    fn sleep(&self, d: Duration) {
        self.inner.sleep(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeFaults, FaultComm, FaultPlan, ReduceOp, ThreadComm};
    use std::time::Instant;

    fn quick_cfg() -> ReliableConfig {
        ReliableConfig {
            ack_timeout: Duration::from_millis(10),
            // Generous budget: a test message only fails if data-or-ack is
            // lost on all 13 attempts, vanishingly unlikely at the fault
            // rates below — and a single RankFailed would hang the peer's
            // blocking recv, so exhaustion must be out of reach here.
            max_retries: 12,
            backoff_cap: Duration::from_millis(80),
        }
    }

    /// A hostile network: drops, duplicates, and corruption on every edge.
    fn hostile(seed: u64) -> FaultPlan {
        FaultPlan::new(seed).with_drop(0.1).with_duplicate(0.1).with_corrupt(0.08)
    }

    #[test]
    fn clean_channel_preserves_order_and_content() {
        ThreadComm::run(2, |comm| {
            let rc = ReliableComm::with_config(comm, quick_cfg());
            if rc.rank() == 0 {
                for i in 0..50u8 {
                    rc.send(1, 4, &[i, i.wrapping_mul(3)]).unwrap();
                }
            } else {
                for i in 0..50u8 {
                    assert_eq!(rc.recv(0, 4).unwrap(), vec![i, i.wrapping_mul(3)]);
                }
            }
        });
    }

    #[test]
    fn lossy_duplicating_corrupting_channel_is_repaired() {
        for seed in [1u64, 2, 3] {
            ThreadComm::run(2, move |comm| {
                let fc = FaultComm::new(comm, hostile(seed));
                let rc = ReliableComm::with_config(&fc, quick_cfg());
                // Both directions at once: the sendrecv pattern that would
                // deadlock if a blocked sender did not service incoming.
                let me = rc.rank();
                let peer = 1 - me;
                for i in 0..30u32 {
                    let payload: Vec<u8> = (0..17).map(|b| (b as u32 * 7 + i + me as u32) as u8).collect();
                    let got = rc.sendrecv(peer, 6, &payload, peer, 6).unwrap();
                    let expect: Vec<u8> =
                        (0..17).map(|b| (b as u32 * 7 + i + peer as u32) as u8).collect();
                    assert_eq!(got, expect, "seed {seed} round {i}: exactly-once, in order, intact");
                }
                rc.quiesce(Duration::from_millis(120), Duration::from_secs(2)).unwrap();
            });
        }
    }

    #[test]
    fn collectives_survive_a_hostile_network() {
        ThreadComm::run(5, |comm| {
            let fc = FaultComm::new(comm, hostile(9));
            let rc = ReliableComm::with_config(&fc, quick_cfg());
            rc.barrier().unwrap();
            let sum = rc.allreduce_u64(rc.rank() as u64, ReduceOp::Sum).unwrap();
            assert_eq!(sum, 10);
            let all = rc.allgather_u64(rc.rank() as u64 * 5).unwrap();
            assert_eq!(all, vec![0, 5, 10, 15, 20]);
            rc.quiesce(Duration::from_millis(120), Duration::from_secs(2)).unwrap();
        });
    }

    #[test]
    fn unacked_send_reports_rank_failed_in_bounded_time() {
        ThreadComm::run(2, |comm| {
            // Every frame 0 → 1 is dropped (data and nothing comes back),
            // so the retry budget must exhaust into a typed RankFailed.
            let plan = FaultPlan::new(0)
                .with_edge(0, 1, EdgeFaults { drop: 1.0, ..EdgeFaults::default() });
            let fc = FaultComm::new(comm, plan);
            let cfg = ReliableConfig {
                ack_timeout: Duration::from_millis(5),
                max_retries: 3,
                backoff_cap: Duration::from_millis(20),
            };
            let rc = ReliableComm::with_config(&fc, cfg);
            if rc.rank() == 0 {
                let start = Instant::now();
                let err = rc.send(1, 1, &[42]).unwrap_err();
                assert_eq!(err, CommError::RankFailed { rank: 1 });
                // 5 + 10 + 20 + 20 ms of timeouts plus slack.
                assert!(start.elapsed() < Duration::from_secs(2), "retry must be bounded");
            }
            // Rank 1 simply exits; it never sees a verified frame.
        });
    }

    #[test]
    fn recv_timeout_is_typed_on_a_silent_channel() {
        ThreadComm::run(2, |comm| {
            let rc = ReliableComm::with_config(comm, quick_cfg());
            if rc.rank() == 0 {
                let err = rc.recv_buf_timeout(1, 3, Duration::from_millis(30)).unwrap_err();
                assert!(matches!(err, CommError::Timeout { src: 1, tag: 3, .. }));
            }
        });
    }

    #[test]
    fn self_sends_work_and_skip_the_wire() {
        ThreadComm::run(1, |comm| {
            let rc = ReliableComm::with_config(comm, quick_cfg());
            rc.send(0, 9, &[1, 2, 3]).unwrap();
            assert_eq!(rc.probe(0, 9).unwrap(), Some(3));
            assert_eq!(rc.recv(0, 9).unwrap(), vec![1, 2, 3]);
        });
    }

    #[test]
    fn recv_into_truncation_is_non_destructive() {
        ThreadComm::run(2, |comm| {
            let rc = ReliableComm::with_config(comm, quick_cfg());
            if rc.rank() == 0 {
                rc.send(1, 2, &[7; 16]).unwrap();
                rc.quiesce(Duration::from_millis(60), Duration::from_secs(1)).unwrap();
            } else {
                let mut small = [0u8; 4];
                let err = rc.recv_into(0, 2, &mut small).unwrap_err();
                assert_eq!(err, CommError::Truncated { message_len: 16, buffer_len: 4 });
                let mut big = [0u8; 16];
                assert_eq!(rc.recv_into(0, 2, &mut big).unwrap(), 16);
                assert_eq!(big, [7; 16]);
            }
        });
    }

    #[test]
    fn retry_policy_pins_the_pre_refactor_ack_schedule() {
        // send_reliable used to compute its retransmission deadlines inline:
        //   rto = ack_timeout; per attempt: wait rto; rto = min(rto * 2, cap)
        // The shared RetryPolicy must reproduce that schedule bit-for-bit,
        // for the default config and for skewed ones (cap below base, zero
        // retries, cap not a power-of-two multiple of base).
        let cases = [
            ReliableConfig::default(),
            ReliableConfig {
                ack_timeout: Duration::from_millis(10),
                max_retries: 5,
                backoff_cap: Duration::from_millis(40),
            },
            ReliableConfig {
                ack_timeout: Duration::from_millis(25),
                max_retries: 8,
                backoff_cap: Duration::from_millis(90),
            },
            ReliableConfig {
                ack_timeout: Duration::from_millis(50),
                max_retries: 0,
                backoff_cap: Duration::from_millis(10),
            },
        ];
        for cfg in cases {
            let mut legacy = Vec::new();
            let mut rto = cfg.ack_timeout;
            for _attempt in 0..=cfg.max_retries {
                legacy.push(rto);
                rto = (rto * 2).min(cfg.backoff_cap);
            }
            assert_eq!(
                cfg.retry_policy().schedule(),
                legacy,
                "schedule drifted for {cfg:?}"
            );
        }
    }

    #[test]
    fn corrupt_frames_never_reach_the_application() {
        // With corruption-only faults the checksum must catch every flip:
        // whatever arrives is bit-exact.
        ThreadComm::run(2, |comm| {
            let plan = FaultPlan::new(5).with_corrupt(0.5);
            let fc = FaultComm::new(comm, plan);
            let rc = ReliableComm::with_config(&fc, quick_cfg());
            if rc.rank() == 0 {
                for i in 0..40u8 {
                    rc.send(1, 1, &[i; 64]).unwrap();
                }
                rc.quiesce(Duration::from_millis(120), Duration::from_secs(2)).unwrap();
            } else {
                for i in 0..40u8 {
                    assert_eq!(rc.recv(0, 1).unwrap(), vec![i; 64]);
                }
                rc.quiesce(Duration::from_millis(120), Duration::from_secs(2)).unwrap();
            }
        });
    }
}
