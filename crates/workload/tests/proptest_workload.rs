//! Property tests for the workload generators.

use bruck_workload::{histogram, DistStats, Distribution, SizeMatrix};
use proptest::prelude::*;

fn any_distribution() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Uniform),
        (0u32..=100).prop_map(|r| Distribution::Windowed { r }),
        Just(Distribution::Normal),
        Just(Distribution::POWER_LAW_STEEP),
        Just(Distribution::POWER_LAW_HEAVY),
        (1u32..16, 1u32..64)
            .prop_map(|(spacing, damping)| Distribution::Hotspot { spacing, damping }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sizes are always within [0, N] and deterministic in (seed, src, dst).
    #[test]
    fn sizes_bounded_and_deterministic(
        dist in any_distribution(),
        seed in any::<u64>(),
        p in 1usize..64,
        n_max in 0usize..4096,
    ) {
        let src = seed as usize % p;
        let row = dist.sample_row(seed, src, p, n_max);
        prop_assert_eq!(row.len(), p);
        for (dst, &s) in row.iter().enumerate() {
            prop_assert!(s <= n_max, "{}: size {s} > {n_max}", dist.label());
            prop_assert_eq!(s, dist.block_size(seed, src, dst, p, n_max));
        }
    }

    /// Windowed distributions respect their lower bound.
    #[test]
    fn windowed_lower_bound(
        seed in any::<u64>(),
        r in 0u32..=100,
        n_max in 1usize..2048,
    ) {
        let lo = (n_max as f64 * f64::from(100 - r) / 100.0).round() as usize;
        let row = Distribution::Windowed { r }.sample_row(seed, 0, 64, n_max);
        // Allow the rounding boundary itself.
        prop_assert!(row.iter().all(|&s| s + 1 >= lo), "lo={lo} min={:?}", row.iter().min());
    }

    /// Matrix accessors agree: row/col sums, totals, and the global max.
    #[test]
    fn matrix_invariants(
        dist in any_distribution(),
        seed in any::<u64>(),
        p in 1usize..24,
        n_max in 0usize..512,
    ) {
        let m = SizeMatrix::generate(dist, seed, p, n_max);
        let total_rows: usize = (0..p).map(|r| m.bytes_sent(r)).sum();
        let total_cols: usize = (0..p).map(|c| m.bytes_received(c)).sum();
        prop_assert_eq!(total_rows, m.total_bytes());
        prop_assert_eq!(total_cols, m.total_bytes());
        prop_assert!(m.global_max() <= n_max);
        let stats = DistStats::of_matrix(&m);
        prop_assert_eq!(stats.total, m.total_bytes());
        prop_assert_eq!(stats.count, p * p);
    }

    /// Histograms partition the population.
    #[test]
    fn histogram_partitions(
        sizes in prop::collection::vec(0usize..1000, 0..200),
        bins in 1usize..20,
    ) {
        let h = histogram(&sizes, 1000, bins);
        prop_assert_eq!(h.len(), bins);
        prop_assert_eq!(h.iter().sum::<usize>(), sizes.len());
    }

    /// Different seeds decorrelate rows (statistically: not identical for
    /// non-trivial sizes).
    #[test]
    fn seeds_change_the_workload(seed in any::<u64>()) {
        let a = Distribution::Uniform.sample_row(seed, 0, 256, 1024);
        let b = Distribution::Uniform.sample_row(seed.wrapping_add(1), 0, 256, 1024);
        prop_assert_ne!(a, b);
    }
}
